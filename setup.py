"""Classic setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail. ``pip install -e .``
falls back to this setup.py via ``--no-use-pep517``; plain
``python setup.py develop`` also works.
"""
from setuptools import setup

setup()
