"""Package-wide logging hierarchy.

Every ``repro`` module logs through a child of the ``repro`` logger
(``get_logger("harness.runner")`` -> ``repro.harness.runner``), so one
knob controls the whole simulator. Library use stays silent by default
(a ``NullHandler`` on the root); entry points (``python -m
repro.harness``) call :func:`configure` to route records to stderr.

``REPRO_LOG_LEVEL`` (e.g. ``DEBUG``, ``INFO``, ``WARNING``) overrides
the configured level.
"""

import logging
import sys

#: Root logger name for the whole package.
ROOT_NAME = "repro"

logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())


class _DynamicStderrHandler(logging.Handler):
    """StreamHandler that resolves ``sys.stderr`` at emit time, so
    redirected/captured stderr (pytest, CLI tests) is honoured."""

    def emit(self, record):
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:              # pragma: no cover - best effort
            self.handleError(record)


def get_logger(name=None):
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_NAME)
    return logging.getLogger("%s.%s" % (ROOT_NAME, name))


def configure(level=logging.INFO, fmt="%(levelname)s %(name)s: %(message)s"):
    """Route ``repro.*`` records to stderr (idempotent).

    Returns the root ``repro`` logger. ``REPRO_LOG_LEVEL`` overrides
    ``level`` when set.
    """
    from repro.config import envreg
    env_level = envreg.get("REPRO_LOG_LEVEL")
    if env_level:
        level = getattr(logging, env_level.strip().upper(), level)
    root = logging.getLogger(ROOT_NAME)
    if not any(isinstance(h, _DynamicStderrHandler) for h in root.handlers):
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter(fmt))
        root.addHandler(handler)
    root.setLevel(level)
    return root
