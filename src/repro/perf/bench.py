"""Simulator throughput benchmarks and the perf regression gate.

The benchmark layer measures how fast the *simulator itself* runs — not
the simulated machine — on a pinned matrix of (engine, workload,
configuration) points:

* ``emu`` points run the functional :class:`~repro.emu.emulator.Emulator`
  to completion and report kilo-instructions per wall second. The
  ``superblock`` variant dispatches one compiled function per
  straight-line region (:mod:`repro.isa.superblock`) instead of one
  closure per instruction.
* ``core`` points run the detailed :class:`~repro.pipeline.core.O3Core`
  and report kilo-cycles per wall second.
* ``batch`` points run a small same-image job batch (baseline + two
  MSSR cells) through the shared-image serial path with cold workload
  caches, so the one-build-many-runs amortisation is part of the
  measured time. Metric: total kilo-cycles per wall second.

Reports are JSON (``BENCH_PIPELINE.json`` at the repo root is the
checked-in baseline). Raw wall-clock throughput is not comparable across
machines, so every report also records ``calibration_kops`` — the speed
of a fixed pure-Python spin loop on the measuring machine — and the gate
(:func:`compare_reports`) compares *calibration-normalised* ratios:
``metric / calibration`` must not drop more than ``threshold`` versus
the baseline. That makes the checked-in numbers portable: a slower
machine scores proportionally lower on both the matrix and the
calibration loop.

Each point is measured best-of-``repeats`` (the minimum wall time), the
standard defence against scheduler noise for single-process CPU-bound
loops.
"""

import json
import os
import subprocess
import sys
import time

REPORT_VERSION = 1

#: Spin-loop iterations for one calibration sample.
_CALIBRATION_ITERS = 2_000_000


class BenchPoint:
    """One pinned benchmark point.

    ``mode`` is ``"emu"`` (functional emulator, metric kinsts/s),
    ``"core"`` (detailed pipeline, metric kcycles/s) or ``"batch"``
    (shared-image job batch, metric total kcycles/s). ``kind`` is a
    harness configuration kind (``baseline``/``mssr``/...), only
    meaningful for core points. ``variant`` selects an alternate
    dispatch strategy of the same engine — currently ``"superblock"``
    for emulator points. ``config`` holds extra dotted
    configuration-tree overrides for core points (``{"mem.model":
    "ported"}``). Both are omitted from the spec when unset so reports
    from before the fields existed round-trip unchanged.
    """

    __slots__ = ("name", "mode", "workload", "kind", "scale", "variant",
                 "config")

    def __init__(self, name, mode, workload, kind="baseline", scale=0.2,
                 variant=None, config=None):
        if mode not in ("emu", "core", "batch"):
            raise ValueError("mode must be 'emu', 'core' or 'batch', "
                             "got %r" % mode)
        self.name = name
        self.mode = mode
        self.workload = workload
        self.kind = kind
        self.scale = scale
        self.variant = variant
        self.config = dict(config) if config else None

    def spec(self):
        out = {"name": self.name, "mode": self.mode,
               "workload": self.workload, "kind": self.kind,
               "scale": self.scale}
        if self.variant is not None:
            out["variant"] = self.variant
        if self.config is not None:
            out["config"] = dict(self.config)
        return out

    @classmethod
    def from_spec(cls, spec):
        return cls(spec["name"], spec["mode"], spec["workload"],
                   kind=spec.get("kind", "baseline"),
                   scale=spec.get("scale", 0.2),
                   variant=spec.get("variant"),
                   config=spec.get("config"))

    def __repr__(self):
        return "<BenchPoint %s>" % self.name


#: The pinned measurement matrix. Scales are chosen so the full matrix
#: runs in tens of seconds; both branchy microbenchmarks are covered on
#: the emulator, and the detailed core is measured for both the baseline
#: pipeline and the MSSR reuse configuration.
DEFAULT_MATRIX = (
    BenchPoint("emu-nested-mispred", "emu", "nested-mispred", scale=0.4),
    BenchPoint("emu-linear-mispred", "emu", "linear-mispred", scale=0.4),
    BenchPoint("emu-sb-nested-mispred", "emu", "nested-mispred",
               scale=0.4, variant="superblock"),
    BenchPoint("emu-sb-linear-mispred", "emu", "linear-mispred",
               scale=0.4, variant="superblock"),
    BenchPoint("core-baseline-nested-mispred", "core", "nested-mispred",
               kind="baseline", scale=0.2),
    BenchPoint("core-mssr-nested-mispred", "core", "nested-mispred",
               kind="mssr", scale=0.2),
    BenchPoint("core-baseline-linear-mispred", "core", "linear-mispred",
               kind="baseline", scale=0.2),
    BenchPoint("core-batched-nested-mispred", "batch", "nested-mispred",
               scale=0.1),
    BenchPoint("core-ported-ptr-chase", "core", "ptr-chase", scale=0.2,
               config={"mem.model": "ported"}),
)

#: Subset used by the CI smoke run. These are the *same* point
#: definitions (same scales) as the full matrix — normalised comparisons
#: against a full-matrix baseline stay unbiased — just fewer of them.
QUICK_NAMES = ("emu-nested-mispred", "emu-sb-nested-mispred",
               "core-baseline-nested-mispred")


def select_points(names, matrix=DEFAULT_MATRIX):
    """Matrix points with the given names (order of ``names``)."""
    by_name = {p.name: p for p in matrix}
    missing = [n for n in names if n not in by_name]
    if missing:
        raise KeyError("unknown bench point(s): %s" % ", ".join(missing))
    return tuple(by_name[n] for n in names)


def matrix_from_report(report):
    """Rebuild the point definitions a report was measured with."""
    return tuple(BenchPoint.from_spec(p["point"])
                 for p in report["points"])


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------
def _spin(iters):
    acc = 0
    for i in range(iters):
        acc = (acc + i) & 0xFFFF
    return acc


def calibration_kops(repeats=3):
    """Kilo-iterations/s of a fixed pure-Python spin loop (best-of)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _spin(_CALIBRATION_ITERS)
        best = min(best, time.perf_counter() - start)
    return _CALIBRATION_ITERS / best / 1e3


def _batch_jobs(point):
    """The pinned same-image job batch of a ``batch`` point: one
    baseline cell plus two MSSR cells over one program image."""
    from repro.harness.jobs import SimJob
    return [SimJob(point.workload, "baseline", point.scale),
            SimJob(point.workload, "mssr", point.scale, {"streams": 2}),
            SimJob(point.workload, "mssr", point.scale, {"streams": 4})]


def run_point(point, repeats=3):
    """Measure one point; returns its result dict (see module docs)."""
    from repro.workloads import get_workload

    best = float("inf")
    cycles = insts = 0
    if point.mode == "batch":
        # Shared-image batch: the workload build happens *inside* the
        # timed region (caches cleared per repeat) but only once for
        # all jobs in the batch — that amortisation is the point.
        from repro.harness.jobs import execute
        jobs = _batch_jobs(point)
        for _ in range(repeats):
            get_workload(point.workload).clear_cache()
            start = time.perf_counter()
            total_cycles = total_insts = 0
            for job in jobs:
                stats = execute(job)
                total_cycles += stats.cycles
                total_insts += stats.committed_insts
            best = min(best, time.perf_counter() - start)
            cycles, insts = total_cycles, total_insts
    elif point.mode == "emu":
        from repro.emu.emulator import Emulator
        _mod, prog = get_workload(point.workload).build(point.scale)
        prog.predecode()  # exclude one-time predecode from the timing
        superblock = point.variant == "superblock"
        if superblock:
            prog.superblocks()  # exclude one-time codegen too
        for _ in range(repeats):
            emu = Emulator(prog, superblock=superblock)
            start = time.perf_counter()
            result = emu.run()
            best = min(best, time.perf_counter() - start)
            insts = result.inst_count
    else:
        from repro.harness.jobs import build_config, build_scheme
        from repro.pipeline.core import O3Core
        _mod, prog = get_workload(point.workload).build(point.scale)
        prog.predecode()
        for _ in range(repeats):
            core = O3Core(prog, build_config(point.kind, point.config),
                          reuse_scheme=build_scheme(point.kind,
                                                    point.config))
            start = time.perf_counter()
            result = core.run()
            best = min(best, time.perf_counter() - start)
            cycles = core.cycle
            insts = result.stats.committed_insts
    out = {
        "point": point.spec(),
        "seconds": best,
        "cycles": cycles,
        "insts": insts,
        "kinsts_per_s": insts / best / 1e3,
    }
    if point.mode in ("core", "batch"):
        out["kcycles_per_s"] = cycles / best / 1e3
    return out


def run_bench(points=DEFAULT_MATRIX, repeats=3, log=None):
    """Measure every point; returns the list of result dicts."""
    results = []
    for point in points:
        result = run_point(point, repeats=repeats)
        if log is not None:
            metric = result.get("kcycles_per_s",
                                result["kinsts_per_s"])
            unit = ("kcycles/s" if point.mode in ("core", "batch")
                    else "kinsts/s")
            log("%-32s %10.1f %s" % (point.name, metric, unit))
        results.append(result)
    return results


def profile_point(point, out_path, repeats=1):
    """cProfile one point's measured run into ``out_path`` (pstats
    binary format, loadable with ``pstats.Stats``)."""
    import cProfile

    from repro.workloads import get_workload

    profiler = cProfile.Profile()
    if point.mode == "batch":
        from repro.harness.jobs import execute
        jobs = _batch_jobs(point)
        for _ in range(repeats):
            get_workload(point.workload).clear_cache()
            profiler.enable()
            for job in jobs:
                execute(job)
            profiler.disable()
        profiler.dump_stats(out_path)
        return
    _mod, prog = get_workload(point.workload).build(point.scale)
    prog.predecode()
    if point.mode == "emu":
        from repro.emu.emulator import Emulator
        superblock = point.variant == "superblock"
        if superblock:
            prog.superblocks()
        for _ in range(repeats):
            emu = Emulator(prog, superblock=superblock)
            profiler.enable()
            emu.run()
            profiler.disable()
    else:
        from repro.harness.jobs import build_config, build_scheme
        from repro.pipeline.core import O3Core
        for _ in range(repeats):
            core = O3Core(prog, build_config(point.kind, point.config),
                          reuse_scheme=build_scheme(point.kind,
                                                    point.config))
            profiler.enable()
            core.run()
            profiler.disable()
    profiler.dump_stats(out_path)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
def _git_commit():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
            check=True).stdout.strip()
    except Exception:
        return "unknown"


def build_report(results, calibration=None):
    """Assemble the JSON-able report from :func:`run_bench` results."""
    return {
        "version": REPORT_VERSION,
        "commit": _git_commit(),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "calibration_kops": (calibration if calibration is not None
                             else calibration_kops()),
        "points": results,
    }


def write_report(report, path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def append_history(report, path):
    """Append one line for ``report`` to the JSONL perf history.

    The history file is append-only: every measured run adds one
    compact record — wall time, commit, calibration and the gated
    metric of every point — so throughput trends survive the
    re-pinning of ``BENCH_PIPELINE.json`` (which only ever holds the
    latest baseline). Returns the record written.
    """
    record = {
        "time": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": report["commit"],
        "python": report["python"],
        "calibration_kops": report["calibration_kops"],
        "points": {r["point"]["name"]: round(point_metric(r), 3)
                   for r in report["points"]},
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    for key in ("version", "calibration_kops", "points"):
        if key not in report:
            raise ValueError("malformed bench report %s: missing %r"
                             % (path, key))
    return report


def point_metric(result):
    """The gated metric of one result: kcycles/s for core and batch
    points, kinsts/s for emulator points."""
    if result["point"]["mode"] in ("core", "batch"):
        return result["kcycles_per_s"]
    return result["kinsts_per_s"]


def compare_reports(current, baseline, threshold=0.15):
    """Regression check of ``current`` against ``baseline``.

    Compares calibration-normalised metrics over the points present in
    *both* reports; returns a list of human-readable failure strings
    (empty = gate passes). A point regresses when its normalised metric
    is below ``(1 - threshold)`` times the baseline's.
    """
    failures = []
    cur_cal = current["calibration_kops"]
    base_cal = baseline["calibration_kops"]
    if cur_cal <= 0 or base_cal <= 0:
        return ["non-positive calibration_kops (current=%r baseline=%r)"
                % (cur_cal, base_cal)]
    cur_by_name = {r["point"]["name"]: r for r in current["points"]}
    floor = 1.0 - threshold
    for base_result in baseline["points"]:
        name = base_result["point"]["name"]
        cur_result = cur_by_name.get(name)
        if cur_result is None:
            continue
        base_norm = point_metric(base_result) / base_cal
        cur_norm = point_metric(cur_result) / cur_cal
        if base_norm <= 0:
            continue
        ratio = cur_norm / base_norm
        if ratio < floor:
            failures.append(
                "%s: normalised throughput %.3f of baseline "
                "(%.1f vs %.1f raw; threshold %.0f%%)"
                % (name, ratio, point_metric(cur_result),
                   point_metric(base_result), threshold * 100.0))
    return failures
