"""Performance benchmark layer: pinned throughput matrix + regression gate.

See :mod:`repro.perf.bench` for the measurement machinery and
``benchmarks/test_perf_gate.py`` for the gate that compares a fresh
measurement against the checked-in ``BENCH_PIPELINE.json`` baseline.
"""

from repro.perf.bench import (
    BenchPoint,
    DEFAULT_MATRIX,
    QUICK_NAMES,
    REPORT_VERSION,
    build_report,
    calibration_kops,
    compare_reports,
    load_report,
    matrix_from_report,
    profile_point,
    run_bench,
    run_point,
    select_points,
    write_report,
)

__all__ = [
    "BenchPoint",
    "DEFAULT_MATRIX",
    "QUICK_NAMES",
    "REPORT_VERSION",
    "build_report",
    "calibration_kops",
    "compare_reports",
    "load_report",
    "matrix_from_report",
    "profile_point",
    "run_bench",
    "run_point",
    "select_points",
    "write_report",
]
