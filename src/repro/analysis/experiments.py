"""Programmatic reproduction of every table and figure in the paper.

Each ``table*``/``fig*`` function runs the required simulations (with
in-process result caching, since e.g. the baseline runs are shared
across experiments) and returns plain data structures; the benchmark
files under ``benchmarks/`` print and sanity-check them, and
EXPERIMENTS.md records paper-vs-measured values.

Simulated runs are scaled down from the paper's SimPoint/full-input
sizes via the ``scale`` parameter — shapes (who wins, where) are the
reproduction target, not absolute cycle counts.
"""

import math

from repro.pipeline.config import (
    baseline_config,
    mssr_config,
    ri_config,
)
from repro.pipeline.core import O3Core
from repro.workloads import get_workload
from repro.workloads.registry import suite_names
from repro.hwmodels.storage import StorageModel
from repro.hwmodels.synthesis import (
    reconvergence_detection_report,
    reuse_test_report,
)

_RESULT_CACHE = {}


def config_for(kind, **params):
    """Build a named configuration.

    ``kind``: ``baseline``, ``mssr`` (params: streams, wpb, log) or
    ``ri`` (params: sets, ways).
    """
    if kind == "baseline":
        return baseline_config()
    if kind == "mssr":
        return mssr_config(num_streams=params.get("streams", 4),
                           wpb_entries=params.get("wpb", 16),
                           squash_log_entries=params.get("log", 64))
    if kind == "ri":
        return ri_config(num_sets=params.get("sets", 64),
                         assoc=params.get("ways", 4))
    if kind == "dir":
        # DIR plugs in as an explicit scheme object (value-based reuse
        # needs no core configuration beyond the baseline).
        return baseline_config()
    raise ValueError("unknown config kind %r" % kind)


def _scheme_for(kind, **params):
    if kind != "dir":
        return None
    from repro.baselines.dir_reuse import DynamicInstructionReuse, DIRConfig
    return DynamicInstructionReuse(DIRConfig(
        num_sets=params.get("sets", 64), assoc=params.get("ways", 4)))


def run_workload(name, kind="baseline", scale=0.15, **params):
    """Simulate one workload under one configuration; returns SimStats.

    ``kind``: ``baseline``, ``mssr``, ``ri`` or ``dir``. Results are
    cached per (workload, scale, config) for the lifetime of the process.
    """
    key = (name, round(scale, 6), kind, tuple(sorted(params.items())))
    if key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    workload = get_workload(name)
    _mod, prog = workload.build(scale)
    config = config_for(kind, **params)
    scheme = _scheme_for(kind, **params)
    result = O3Core(prog, config, reuse_scheme=scheme).run()
    _RESULT_CACHE[key] = result.stats
    return result.stats


def speedup(stats, base_stats):
    """Runtime improvement of ``stats`` over ``base_stats`` (cycles)."""
    return base_stats.cycles / stats.cycles - 1.0


def geomean_improvement(improvements):
    """Geometric mean of (1 + improvement) - 1."""
    if not improvements:
        return 0.0
    log_sum = sum(math.log1p(v) for v in improvements)
    return math.expm1(log_sum / len(improvements))


# ---------------------------------------------------------------------------
# Table 1: microbenchmark speedups, MSSR streams vs RI associativity
# ---------------------------------------------------------------------------
def table1_microbench(scale=0.2):
    """Returns {bench: {("mssr", n): improvement, ("ri", w): improvement}}.

    Matches the paper's setup: MSSR tracks 1/2/4 streams of up to 64
    instructions; RI uses a 64-set table with 1/2/4 ways (capacity-
    matched).
    """
    out = {}
    for bench in ("nested-mispred", "linear-mispred"):
        base = run_workload(bench, "baseline", scale)
        row = {}
        for streams in (1, 2, 4):
            stats = run_workload(bench, "mssr", scale,
                                 streams=streams, wpb=16, log=64)
            row[("mssr", streams)] = speedup(stats, base)
        for ways in (1, 2, 4):
            stats = run_workload(bench, "ri", scale, sets=64, ways=ways)
            row[("ri", ways)] = speedup(stats, base)
        out[bench] = row
    return out


# ---------------------------------------------------------------------------
# Figure 3: RI reuse-table replacement frequencies
# ---------------------------------------------------------------------------
def fig3_ri_replacements(scale=0.2, num_sets=64):
    """Returns {(bench, ways): per-set replacement count list}."""
    out = {}
    for bench in ("nested-mispred", "linear-mispred"):
        for ways in (1, 2, 4):
            stats = run_workload(bench, "ri", scale,
                                 sets=num_sets, ways=ways)
            out[(bench, ways)] = list(stats.ri_set_replacements or
                                      [0] * num_sets)
    return out


# ---------------------------------------------------------------------------
# Figure 4: reconvergence-type breakdown (and the intro's "10% avg / 31%
# max missed by single-stream" statistic)
# ---------------------------------------------------------------------------
def fig4_reconvergence_types(scale=0.15, workloads=None):
    """Returns {workload: (simple, software, hardware)} as fractions."""
    if workloads is None:
        workloads = (suite_names("spec2006") + suite_names("spec2017")
                     + suite_names("gap"))
    out = {}
    for name in workloads:
        stats = run_workload(name, "mssr", scale,
                             streams=4, wpb=16, log=64)
        total = (stats.reconv_simple + stats.reconv_software
                 + stats.reconv_hardware)
        if total == 0:
            out[name] = (0.0, 0.0, 0.0)
        else:
            out[name] = (stats.reconv_simple / total,
                         stats.reconv_software / total,
                         stats.reconv_hardware / total)
    return out


def multi_stream_fraction(breakdown):
    """Fraction of reconvergence missed by single-stream tracking
    (software-induced + hardware-induced), per workload and averaged."""
    fractions = {name: soft + hard
                 for name, (_simple, soft, hard) in breakdown.items()}
    values = [v for v in fractions.values()]
    avg = sum(values) / len(values) if values else 0.0
    return fractions, avg


# ---------------------------------------------------------------------------
# Figure 10: IPC improvement across stream/WPB configurations
# ---------------------------------------------------------------------------
#: (streams, wpb entries) points from the paper; the squash log stream is
#: 4x the WPB size (4 instructions per fetch block on average, 4.1.2).
FIG10_CONFIGS = ((1, 16), (1, 64), (2, 64), (4, 64))
FIG10_UPPER_BOUND = (4, 1024)


def fig10_ipc_sweep(scale=0.12, suites=("spec2006", "spec2017", "gap"),
                    configs=FIG10_CONFIGS):
    """Returns {suite: {workload: {(streams, wpb): ipc_improvement}}}."""
    out = {}
    for suite in suites:
        suite_out = {}
        for workload in suite_names(suite):
            base = run_workload(workload, "baseline", scale)
            row = {}
            for streams, wpb in configs:
                stats = run_workload(workload, "mssr", scale,
                                     streams=streams, wpb=wpb,
                                     log=min(4 * wpb, 4096))
                row[(streams, wpb)] = stats.ipc / base.ipc - 1.0
            suite_out[workload] = row
        out[suite] = suite_out
    return out


def fig10_suite_averages(sweep):
    """Average improvement per suite per configuration."""
    out = {}
    for suite, rows in sweep.items():
        config_values = {}
        for row in rows.values():
            for config, value in row.items():
                config_values.setdefault(config, []).append(value)
        out[suite] = {config: geomean_improvement(values)
                      for config, values in config_values.items()}
    return out


# ---------------------------------------------------------------------------
# Figure 11: reconvergence stream distance
# ---------------------------------------------------------------------------
def fig11_stream_distance(scale=0.12, workloads=None, streams=8):
    """Aggregated stream-distance histogram {distance: count}.

    Uses a deep (8-stream) configuration so distances beyond the default
    4 are observable, as the paper's profiling does.
    """
    if workloads is None:
        workloads = (suite_names("spec2006") + suite_names("spec2017")
                     + suite_names("gap"))
    hist = {}
    for name in workloads:
        stats = run_workload(name, "mssr", scale,
                             streams=streams, wpb=16, log=64)
        for distance, count in stats.stream_distance_hist.items():
            hist[distance] = hist.get(distance, 0) + count
    return hist


def distance_cdf(hist):
    """Cumulative fraction by distance (sorted)."""
    total = sum(hist.values())
    out = []
    running = 0
    for distance in sorted(hist):
        running += hist[distance]
        out.append((distance, running / total if total else 0.0))
    return out


# ---------------------------------------------------------------------------
# Figure 12: RGID (MSSR) vs RI on GAP at matched capacities
# ---------------------------------------------------------------------------
def fig12_rgid_vs_ri(scale=0.12,
                     rgid_configs=((1, 64), (2, 64), (4, 64),
                                   (1, 128), (2, 128), (4, 128)),
                     ri_configs=((64, 1), (64, 2), (64, 4),
                                 (128, 1), (128, 2), (128, 4))):
    """Returns {workload: {"rgid (n,p)": imp, "ri (sets,ways)": imp}}.

    ``rgid_configs`` are (streams, log entries); WPB entries are one
    quarter of the log size (Section 4.1.2). ``ri_configs`` are
    (sets, ways) — total entries are capacity-matched against RGID.
    """
    out = {}
    for workload in suite_names("gap"):
        base = run_workload(workload, "baseline", scale)
        row = {}
        for streams, log in rgid_configs:
            stats = run_workload(workload, "mssr", scale, streams=streams,
                                 wpb=max(4, log // 4), log=log)
            row[("rgid", streams, log)] = stats.ipc / base.ipc - 1.0
        for sets, ways in ri_configs:
            stats = run_workload(workload, "ri", scale,
                                 sets=sets, ways=ways)
            row[("ri", sets, ways)] = stats.ipc / base.ipc - 1.0
        out[workload] = row
    return out


# ---------------------------------------------------------------------------
# Tables 2 and 4: hardware models
# ---------------------------------------------------------------------------
def table2_storage(num_streams=4, wpb_entries=16, squash_log_entries=64):
    model = StorageModel(num_streams=num_streams, wpb_entries=wpb_entries,
                         squash_log_entries=squash_log_entries)
    return model.report()


def table4_synthesis():
    recon = [reconvergence_detection_report(4, m) for m in (16, 32, 64)]
    reuse = [reuse_test_report(w) for w in (4, 6, 8)]
    return {"reconvergence_detection": recon, "reuse_test": reuse}
