"""Programmatic reproduction of every table and figure in the paper.

Each ``table*``/``fig*`` function declares the full set of (workload x
configuration) points it needs as :class:`~repro.harness.SimJob`
batches and submits them to the simulation harness in one call, then
assembles plain data structures from the results. The harness layers an
in-process memo (shared baseline runs simulate once per process, even
across figures), an on-disk JSON cache (``REPRO_CACHE_DIR``) and a
``multiprocessing`` pool (the ``jobs=`` knob, default ``REPRO_JOBS``)
under every batch — see :mod:`repro.harness`.

The benchmark files under ``benchmarks/`` print and sanity-check the
returned structures, and EXPERIMENTS.md records paper-vs-measured
values.

Simulated runs are scaled down from the paper's SimPoint/full-input
sizes via the ``scale`` parameter — shapes (who wins, where) are the
reproduction target, not absolute cycle counts.
"""

import math

from repro.harness import SimJob, build_config, build_scheme, submit
from repro.workloads.registry import suite_names
from repro.hwmodels.storage import StorageModel
from repro.hwmodels.synthesis import (
    reconvergence_detection_report,
    reuse_test_report,
)


def config_for(kind, **params):
    """Build a named configuration.

    ``kind``: ``baseline``, ``mssr`` (params: streams, wpb, log) or
    ``ri`` (params: sets, ways).
    """
    return build_config(kind, **params)


def _scheme_for(kind, **params):
    return build_scheme(kind, **params)


def _mssr_job(name, scale, streams, wpb, log):
    return SimJob(name, "mssr", scale,
                  {"streams": streams, "wpb": wpb, "log": log})


def run_workload(name, kind="baseline", scale=0.15, jobs=None,
                 sampling=None, **params):
    """Simulate one workload under one configuration; returns SimStats.

    ``kind``: ``baseline``, ``mssr``, ``ri`` or ``dir``. A thin wrapper
    over the batch harness: results are memoised per job hash for the
    process lifetime and persisted to the on-disk cache. ``sampling``
    (``True`` or a :class:`~repro.sampling.SamplingSpec`-shaped dict)
    switches to SimPoint-sampled execution — the returned SimStats is
    the weighted whole-program estimate.
    """
    job = SimJob(name, kind, scale, params, sampling=sampling)
    return submit([job], n_jobs=jobs)[job]


def run_sweep(source, jobs=None):
    """Expand and run a declared scenario sweep.

    ``source`` is a sweep file path (TOML/JSON), a parsed sweep dict or
    a :class:`~repro.config.sweep.Sweep`. Returns
    ``(plan, {entry: SimStats})`` where ``plan`` is the expanded
    :class:`~repro.config.sweep.SweepPlan` and the dict has one row per
    *declared* entry — deduplicated jobs share the same SimStats
    object. The CLI equivalent is ``python -m repro.harness sweep``.
    """
    from repro.config.sweep import Sweep, load_sweep, sweep_from_dict
    if isinstance(source, Sweep):
        sweep = source
    elif isinstance(source, dict):
        sweep = sweep_from_dict(source)
    else:
        sweep = load_sweep(source)
    plan = sweep.expand()
    results = submit(plan.jobs,
                     n_jobs=jobs if jobs is not None else sweep.jobs)
    return plan, {entry: results[entry.job] for entry in plan.entries}


def speedup(stats, base_stats):
    """Runtime improvement of ``stats`` over ``base_stats`` (cycles)."""
    return base_stats.cycles / stats.cycles - 1.0


def geomean_improvement(improvements):
    """Geometric mean of (1 + improvement) - 1."""
    if not improvements:
        return 0.0
    log_sum = sum(math.log1p(v) for v in improvements)
    return math.expm1(log_sum / len(improvements))


# ---------------------------------------------------------------------------
# Table 1: microbenchmark speedups, MSSR streams vs RI associativity
# ---------------------------------------------------------------------------
def table1_microbench(scale=0.2, jobs=None):
    """Returns {bench: {("mssr", n): improvement, ("ri", w): improvement}}.

    Matches the paper's setup: MSSR tracks 1/2/4 streams of up to 64
    instructions; RI uses a 64-set table with 1/2/4 ways (capacity-
    matched).
    """
    benches = ("nested-mispred", "linear-mispred")
    base_jobs = {bench: SimJob(bench, "baseline", scale)
                 for bench in benches}
    mssr_jobs = {(bench, streams): _mssr_job(bench, scale, streams, 16, 64)
                 for bench in benches for streams in (1, 2, 4)}
    ri_jobs = {(bench, ways): SimJob(bench, "ri", scale,
                                     {"sets": 64, "ways": ways})
               for bench in benches for ways in (1, 2, 4)}
    results = submit(list(base_jobs.values()) + list(mssr_jobs.values())
                     + list(ri_jobs.values()), n_jobs=jobs)

    out = {}
    for bench in benches:
        base = results[base_jobs[bench]]
        row = {}
        for streams in (1, 2, 4):
            row[("mssr", streams)] = speedup(
                results[mssr_jobs[(bench, streams)]], base)
        for ways in (1, 2, 4):
            row[("ri", ways)] = speedup(
                results[ri_jobs[(bench, ways)]], base)
        out[bench] = row
    return out


# ---------------------------------------------------------------------------
# Figure 3: RI reuse-table replacement frequencies
# ---------------------------------------------------------------------------
def fig3_ri_replacements(scale=0.2, num_sets=64, jobs=None):
    """Returns {(bench, ways): per-set replacement count list}."""
    jobset = {(bench, ways): SimJob(bench, "ri", scale,
                                    {"sets": num_sets, "ways": ways})
              for bench in ("nested-mispred", "linear-mispred")
              for ways in (1, 2, 4)}
    results = submit(list(jobset.values()), n_jobs=jobs)
    return {key: list(results[job].ri_set_replacements)
            for key, job in jobset.items()}


# ---------------------------------------------------------------------------
# Figure 4: reconvergence-type breakdown (and the intro's "10% avg / 31%
# max missed by single-stream" statistic)
# ---------------------------------------------------------------------------
def fig4_reconvergence_types(scale=0.15, workloads=None, jobs=None):
    """Returns {workload: (simple, software, hardware)} as fractions."""
    if workloads is None:
        workloads = (suite_names("spec2006") + suite_names("spec2017")
                     + suite_names("gap"))
    jobset = {name: _mssr_job(name, scale, 4, 16, 64)
              for name in workloads}
    results = submit(list(jobset.values()), n_jobs=jobs)

    out = {}
    for name in workloads:
        stats = results[jobset[name]]
        total = (stats.reconv_simple + stats.reconv_software
                 + stats.reconv_hardware)
        if total == 0:
            out[name] = (0.0, 0.0, 0.0)
        else:
            out[name] = (stats.reconv_simple / total,
                         stats.reconv_software / total,
                         stats.reconv_hardware / total)
    return out


def multi_stream_fraction(breakdown):
    """Fraction of reconvergence missed by single-stream tracking
    (software-induced + hardware-induced), per workload and averaged."""
    fractions = {name: soft + hard
                 for name, (_simple, soft, hard) in breakdown.items()}
    values = [v for v in fractions.values()]
    avg = sum(values) / len(values) if values else 0.0
    return fractions, avg


# ---------------------------------------------------------------------------
# Figure 10: IPC improvement across stream/WPB configurations
# ---------------------------------------------------------------------------
#: (streams, wpb entries) points from the paper; the squash log stream is
#: 4x the WPB size (4 instructions per fetch block on average, 4.1.2).
FIG10_CONFIGS = ((1, 16), (1, 64), (2, 64), (4, 64))
FIG10_UPPER_BOUND = (4, 1024)


def fig10_ipc_sweep(scale=0.12, suites=("spec2006", "spec2017", "gap"),
                    configs=FIG10_CONFIGS, jobs=None, sampling=None):
    """Returns {suite: {workload: {(streams, wpb): ipc_improvement}}}.

    ``sampling`` runs every point SimPoint-sampled instead of in full
    (same spec across the sweep, so baselines and MSSR points measure
    the same intervals and the improvement ratios stay comparable).
    """
    base_jobs = {}
    point_jobs = {}
    for suite in suites:
        for workload in suite_names(suite):
            base_jobs[workload] = SimJob(workload, "baseline", scale,
                                         sampling=sampling)
            for streams, wpb in configs:
                point_jobs[(workload, streams, wpb)] = SimJob(
                    workload, "mssr", scale,
                    {"streams": streams, "wpb": wpb,
                     "log": min(4 * wpb, 4096)},
                    sampling=sampling)
    results = submit(list(base_jobs.values()) + list(point_jobs.values()),
                     n_jobs=jobs)

    out = {}
    for suite in suites:
        suite_out = {}
        for workload in suite_names(suite):
            base = results[base_jobs[workload]]
            row = {}
            for streams, wpb in configs:
                stats = results[point_jobs[(workload, streams, wpb)]]
                row[(streams, wpb)] = stats.ipc / base.ipc - 1.0
            suite_out[workload] = row
        out[suite] = suite_out
    return out


def fig10_suite_averages(sweep):
    """Average improvement per suite per configuration."""
    out = {}
    for suite, rows in sweep.items():
        config_values = {}
        for row in rows.values():
            for config, value in row.items():
                config_values.setdefault(config, []).append(value)
        out[suite] = {config: geomean_improvement(values)
                      for config, values in config_values.items()}
    return out


# ---------------------------------------------------------------------------
# Figure 11: reconvergence stream distance
# ---------------------------------------------------------------------------
def fig11_stream_distance(scale=0.12, workloads=None, streams=8,
                          jobs=None):
    """Aggregated stream-distance histogram {distance: count}.

    Uses a deep (8-stream) configuration so distances beyond the default
    4 are observable, as the paper's profiling does.
    """
    if workloads is None:
        workloads = (suite_names("spec2006") + suite_names("spec2017")
                     + suite_names("gap"))
    jobset = [_mssr_job(name, scale, streams, 16, 64)
              for name in workloads]
    results = submit(jobset, n_jobs=jobs)

    hist = {}
    for job in jobset:
        for distance, count in results[job].stream_distance_hist.items():
            hist[distance] = hist.get(distance, 0) + count
    return hist


def distance_cdf(hist):
    """Cumulative fraction by distance (sorted)."""
    total = sum(hist.values())
    out = []
    running = 0
    for distance in sorted(hist):
        running += hist[distance]
        out.append((distance, running / total if total else 0.0))
    return out


# ---------------------------------------------------------------------------
# Figure 12: RGID (MSSR) vs RI on GAP at matched capacities
# ---------------------------------------------------------------------------
def fig12_rgid_vs_ri(scale=0.12,
                     rgid_configs=((1, 64), (2, 64), (4, 64),
                                   (1, 128), (2, 128), (4, 128)),
                     ri_configs=((64, 1), (64, 2), (64, 4),
                                 (128, 1), (128, 2), (128, 4)),
                     jobs=None):
    """Returns {workload: {"rgid (n,p)": imp, "ri (sets,ways)": imp}}.

    ``rgid_configs`` are (streams, log entries); WPB entries are one
    quarter of the log size (Section 4.1.2). ``ri_configs`` are
    (sets, ways) — total entries are capacity-matched against RGID.
    """
    workloads = suite_names("gap")
    base_jobs = {name: SimJob(name, "baseline", scale)
                 for name in workloads}
    rgid_jobs = {(name, streams, log): _mssr_job(
                     name, scale, streams, max(4, log // 4), log)
                 for name in workloads for streams, log in rgid_configs}
    ri_jobs = {(name, sets, ways): SimJob(name, "ri", scale,
                                          {"sets": sets, "ways": ways})
               for name in workloads for sets, ways in ri_configs}
    results = submit(list(base_jobs.values()) + list(rgid_jobs.values())
                     + list(ri_jobs.values()), n_jobs=jobs)

    out = {}
    for name in workloads:
        base = results[base_jobs[name]]
        row = {}
        for streams, log in rgid_configs:
            stats = results[rgid_jobs[(name, streams, log)]]
            row[("rgid", streams, log)] = stats.ipc / base.ipc - 1.0
        for sets, ways in ri_configs:
            stats = results[ri_jobs[(name, sets, ways)]]
            row[("ri", sets, ways)] = stats.ipc / base.ipc - 1.0
        out[name] = row
    return out


# ---------------------------------------------------------------------------
# Tables 2 and 4: hardware models
# ---------------------------------------------------------------------------
def table2_storage(num_streams=4, wpb_entries=16, squash_log_entries=64):
    model = StorageModel(num_streams=num_streams, wpb_entries=wpb_entries,
                         squash_log_entries=squash_log_entries)
    return model.report()


def table4_synthesis():
    recon = [reconvergence_detection_report(4, m) for m in (16, 32, 64)]
    reuse = [reuse_test_report(w) for w in (4, 6, 8)]
    return {"reconvergence_detection": recon, "reuse_test": reuse}
