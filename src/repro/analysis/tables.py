"""Plain-text table rendering for experiment output."""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table.

    ``rows`` may contain ints, floats (rendered with 3 decimals unless
    they are percentages already formatted as strings) or strings.
    """
    def render(cell):
        if isinstance(cell, float):
            return "%.3f" % cell
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _numeric(cell):
    stripped = cell.replace("%", "").replace("+", "").replace("-", "") \
        .replace(".", "").replace("x", "")
    return stripped.isdigit()


def pct(value):
    """Format a ratio as a signed percentage string."""
    return "%+.2f%%" % (100.0 * value)
