"""Experiment entry points: one function per paper table/figure.

Every function that simulates submits its full (workload x config)
batch to :mod:`repro.harness` — deduplicated, memoised in-process,
persisted to disk (``REPRO_CACHE_DIR``) and parallelised across worker
processes via the ``jobs=`` knob (default ``REPRO_JOBS``).
"""

from repro.analysis.experiments import (
    run_workload,
    config_for,
    table1_microbench,
    fig3_ri_replacements,
    fig4_reconvergence_types,
    fig10_ipc_sweep,
    fig11_stream_distance,
    fig12_rgid_vs_ri,
    table2_storage,
    table4_synthesis,
    geomean_improvement,
)
from repro.analysis.tables import format_table

__all__ = [
    "run_workload",
    "config_for",
    "table1_microbench",
    "fig3_ri_replacements",
    "fig4_reconvergence_types",
    "fig10_ipc_sweep",
    "fig11_stream_distance",
    "fig12_rgid_vs_ri",
    "table2_storage",
    "table4_synthesis",
    "geomean_improvement",
    "format_table",
]
