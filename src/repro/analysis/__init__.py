"""Experiment harness: one entry point per paper table/figure."""

from repro.analysis.experiments import (
    run_workload,
    config_for,
    table1_microbench,
    fig3_ri_replacements,
    fig4_reconvergence_types,
    fig10_ipc_sweep,
    fig11_stream_distance,
    fig12_rgid_vs_ri,
    table2_storage,
    table4_synthesis,
    geomean_improvement,
)
from repro.analysis.tables import format_table

__all__ = [
    "run_workload",
    "config_for",
    "table1_microbench",
    "fig3_ri_replacements",
    "fig4_reconvergence_types",
    "fig10_ipc_sweep",
    "fig11_stream_distance",
    "fig12_rgid_vs_ri",
    "table2_storage",
    "table4_synthesis",
    "geomean_improvement",
    "format_table",
]
