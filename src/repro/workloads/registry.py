"""Workload registry: lazy construction and caching of compiled programs."""

#: Process-lifetime count of *real* program builds (cache misses). The
#: batch runner's shared-image grouping is judged by this number: a
#: grouped worker builds each (workload, scale) image once however many
#: jobs it runs, and ships its delta back to the parent.
_BUILD_COUNT = 0


def build_count():
    """Number of program images actually compiled by this process."""
    return _BUILD_COUNT


class Workload:
    """A named, parameterised benchmark.

    ``builder(scale)`` returns a ready :class:`~repro.compiler.Module`
    with ``build()`` already called (so ``run_native`` works); the
    registry caches the compiled program per (name, scale).
    """

    def __init__(self, name, suite, builder, description=""):
        self.name = name
        self.suite = suite
        self.builder = builder
        self.description = description
        self._cache = {}

    def build(self, scale=1.0):
        """Returns ``(module, program)`` for the given scale factor.

        ``scale`` must be a positive number; it is rounded to 6 decimal
        places before both caching and building, so two scales that
        round to the same key always return the identical program (and
        hash to the same :class:`~repro.harness.SimJob` point).
        """
        try:
            scale = float(scale)
        except (TypeError, ValueError):
            raise ValueError("scale must be a number, got %r"
                             % (scale,)) from None
        if not scale > 0.0:
            raise ValueError(
                "scale must be positive, got %r (workload %s)"
                % (scale, self.name))
        key = round(scale, 6)
        if key not in self._cache:
            global _BUILD_COUNT
            _BUILD_COUNT += 1
            module, program = self.builder(key)
            self._cache[key] = (module, program)
        return self._cache[key]

    def clear_cache(self):
        """Drop cached builds (tests / benchmarks that must measure a
        cold build)."""
        self._cache.clear()

    def __repr__(self):
        return "<Workload %s/%s>" % (self.suite, self.name)


_REGISTRY = {}

#: Suite name -> ordered workload names (populated by register()).
SUITES = {"micro": [], "gap": [], "spec2006": [], "spec2017": []}


def register(name, suite, description=""):
    """Decorator registering a builder function as a workload.

    Names must be globally unique; suites are created on first use, and
    ``suite_names`` preserves registration order within each suite.
    """
    def wrap(builder):
        if name in _REGISTRY:
            raise ValueError("duplicate workload %r" % name)
        _REGISTRY[name] = Workload(name, suite, builder, description)
        SUITES.setdefault(suite, []).append(name)
        return builder
    return wrap


def unregister(name):
    """Remove a workload (for tests and interactive experimentation)."""
    workload = _REGISTRY.pop(name, None)
    if workload is None:
        raise KeyError("unknown workload %r" % name)
    SUITES.get(workload.suite, []).remove(name)


def _ensure_loaded():
    # Import side effects populate the registry.
    from repro.workloads import (brchar, gap, microbench,  # noqa
                                 spec2006, spec2017)


def get_workload(name):
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown workload %r (have: %s)"
                       % (name, ", ".join(sorted(_REGISTRY)))) from None


def workload_names():
    _ensure_loaded()
    return sorted(_REGISTRY)


def suite_workloads(suite):
    _ensure_loaded()
    return [_REGISTRY[name] for name in SUITES[suite]]


def suite_names(suite):
    """Workload names in a suite (loads the registry if needed)."""
    _ensure_loaded()
    return list(SUITES[suite])
