"""GAP bc: Brandes betweenness centrality (fixed-point dependencies).

A BFS forward pass counts shortest paths (sigma), then the backward pass
accumulates dependencies with 2^12 fixed-point scaling. The scratch
arrays share one allocation ``work`` addressed with pointer arithmetic
(dist / sigma / queue / delta planes) to stay within the 8-argument
calling convention.
"""

from repro.compiler import array_ref
from repro.workloads.gap.common import graph_for_scale, module_with_graph, \
    graph_args
from repro.workloads.registry import register


def bc_kernel(offsets, neighbors, n, work, centrality, source):
    dist = work
    sigma = work + n * 8
    queue = work + n * 16
    delta = work + n * 24
    for i in range(n):
        dist[i] = -1
        sigma[i] = 0
        delta[i] = 0
    dist[source] = 0
    sigma[source] = 1
    queue[0] = source
    head = 0
    tail = 1
    while head < tail:
        u = queue[head]
        head += 1
        du = dist[u]
        start = offsets[u]
        end = offsets[u + 1]
        for e in range(start, end):
            v = neighbors[e]
            if dist[v] < 0:
                dist[v] = du + 1
                queue[tail] = v
                tail += 1
            if dist[v] == du + 1:
                sigma[v] = sigma[v] + sigma[u]
    # Backward pass in reverse BFS order.
    for qi in range(tail - 1, -1, -1):
        u = queue[qi]
        du = dist[u]
        start = offsets[u]
        end = offsets[u + 1]
        acc = 0
        for e in range(start, end):
            v = neighbors[e]
            if dist[v] == du + 1:
                if sigma[v] > 0:
                    acc += sigma[u] * (4096 + delta[v]) // sigma[v]
        delta[u] = acc
        if u != source:
            centrality[u] = centrality[u] + acc
    checksum = 0
    for i in range(n):
        checksum += centrality[i]
    return checksum + tail


def bc_multi(offsets, neighbors, n, work, centrality, num_sources):
    total = 0
    for s in range(num_sources):
        total = bc_kernel(offsets, neighbors, n, work, centrality, s * 7)
    return total


@register("bc", "gap", "Brandes betweenness centrality, 2 sources")
def build_bc(scale=1.0):
    graph = graph_for_scale(scale * 0.6, seed=23, skewed=True)
    mod = module_with_graph(graph, bc_kernel, bc_multi)
    mod.array("work", graph.num_nodes * 4)
    mod.array("centrality", graph.num_nodes)
    prog = mod.build("bc_multi", graph_args() + [
        graph.num_nodes, array_ref("work"), array_ref("centrality"), 2])
    return mod, prog
