"""GAP benchmark suite kernels (bfs, bc, cc, pr, sssp, tc).

Faithful ports of the GAP reference algorithms to the restricted-Python
DSL, run on small synthetic graphs (substituting for ``-g 12 -n 128``).
All arithmetic is integer (PageRank and betweenness centrality use
fixed-point scaling) so the native-Python oracle matches the ISA exactly.
"""

from repro.workloads.gap import bfs, pr, cc, sssp, bc, tc  # noqa: F401
