"""GAP cc: connected components via min-label propagation."""

from repro.compiler import array_ref
from repro.workloads.gap.common import graph_for_scale, module_with_graph, \
    graph_args
from repro.workloads.registry import register


def cc_kernel(offsets, neighbors, n, comp, max_sweeps):
    for i in range(n):
        comp[i] = i
    changed = 1
    sweeps = 0
    while changed and sweeps < max_sweeps:
        changed = 0
        sweeps += 1
        for u in range(n):
            start = offsets[u]
            end = offsets[u + 1]
            cu = comp[u]
            for e in range(start, end):
                cv = comp[neighbors[e]]
                if cv < cu:
                    cu = cv
                    changed = 1
            comp[u] = cu
    checksum = 0
    for i in range(n):
        checksum += comp[i]
    return checksum + sweeps


@register("cc", "gap", "connected components, label propagation")
def build_cc(scale=1.0):
    graph = graph_for_scale(scale * 0.8, seed=17)
    mod = module_with_graph(graph, cc_kernel)
    mod.array("comp", graph.num_nodes)
    prog = mod.build("cc_kernel", graph_args() + [
        graph.num_nodes, array_ref("comp"), 3])
    return mod, prog
