"""GAP bfs: top-down breadth-first search building a parent array."""

from repro.compiler import array_ref
from repro.workloads.gap.common import graph_for_scale, module_with_graph, \
    graph_args
from repro.workloads.registry import register


def bfs_kernel(offsets, neighbors, n, parent, queue, source):
    for i in range(n):
        parent[i] = -1
    parent[source] = source
    queue[0] = source
    head = 0
    tail = 1
    while head < tail:
        u = queue[head]
        head += 1
        start = offsets[u]
        end = offsets[u + 1]
        for e in range(start, end):
            v = neighbors[e]
            if parent[v] < 0:
                parent[v] = u
                queue[tail] = v
                tail += 1
    checksum = 0
    for i in range(n):
        checksum += parent[i]
    return checksum + tail


@register("bfs", "gap", "top-down BFS, frontier queue")
def build_bfs(scale=1.0):
    graph = graph_for_scale(scale, seed=11)
    mod = module_with_graph(graph, bfs_kernel)
    mod.array("parent", graph.num_nodes)
    mod.array("queue", graph.num_nodes + 1)
    prog = mod.build("bfs_kernel", graph_args() + [
        graph.num_nodes, array_ref("parent"), array_ref("queue"), 0])
    return mod, prog
