"""Shared setup for the GAP kernels."""

from repro.compiler import Module, array_ref
from repro.workloads.graphs import uniform_random_graph, skewed_graph


def graph_for_scale(scale, seed, avg_degree=8, skewed=False):
    """A deterministic test graph sized by the benchmark scale factor."""
    num_nodes = max(32, int(192 * scale))
    maker = skewed_graph if skewed else uniform_random_graph
    return maker(num_nodes, avg_degree, seed=seed)


def module_with_graph(graph, *kernels):
    """Module preloaded with the CSR arrays of ``graph``."""
    mod = Module()
    for kernel in kernels:
        mod.add_function(kernel)
    mod.array("offsets", graph.offsets)
    mod.array("neighbors", graph.neighbors)
    mod.array("weights", graph.weights)
    return mod


def graph_args():
    """The standard (offsets, neighbors) argument prefix."""
    return [array_ref("offsets"), array_ref("neighbors")]
