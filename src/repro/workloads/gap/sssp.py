"""GAP sssp: queue-based Bellman-Ford (delta-stepping substitute)."""

from repro.compiler import array_ref
from repro.workloads.gap.common import graph_for_scale, module_with_graph
from repro.workloads.registry import register
from repro.compiler import Module  # noqa: F401  (documentation reference)

_QMASK = (1 << 12) - 1  # ring-buffer capacity 4096


def sssp_kernel(offsets, neighbors, weights, n, dist, queue, inq, source):
    inf = 1 << 40
    for i in range(n):
        dist[i] = inf
        inq[i] = 0
    dist[source] = 0
    queue[0] = source
    inq[source] = 1
    head = 0
    tail = 1
    relaxed = 0
    while head != tail:
        u = queue[head & 4095]
        head += 1
        inq[u] = 0
        du = dist[u]
        start = offsets[u]
        end = offsets[u + 1]
        for e in range(start, end):
            v = neighbors[e]
            nd = du + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                relaxed += 1
                if inq[v] == 0:
                    inq[v] = 1
                    queue[tail & 4095] = v
                    tail += 1
    checksum = 0
    for i in range(n):
        checksum += dist[i] & 1048575
    return checksum + relaxed


@register("sssp", "gap", "single-source shortest paths, queue relaxation")
def build_sssp(scale=1.0):
    graph = graph_for_scale(scale, seed=19)
    mod = module_with_graph(graph, sssp_kernel)
    mod.array("dist", graph.num_nodes)
    mod.array("queue", 4096)
    mod.array("inq", graph.num_nodes)
    prog = mod.build("sssp_kernel", [
        array_ref("offsets"), array_ref("neighbors"), array_ref("weights"),
        graph.num_nodes, array_ref("dist"), array_ref("queue"),
        array_ref("inq"), 0])
    return mod, prog
