"""GAP tc: triangle counting via sorted adjacency-list intersection.

The merge-style intersection is a branch-misprediction magnet: each
comparison outcome depends on graph data.
"""

from repro.workloads.gap.common import graph_for_scale, module_with_graph, \
    graph_args
from repro.workloads.registry import register


def tc_kernel(offsets, neighbors, n):
    count = 0
    for u in range(n):
        ustart = offsets[u]
        uend = offsets[u + 1]
        for e in range(ustart, uend):
            v = neighbors[e]
            if v > u:
                a = ustart
                b = offsets[v]
                eb = offsets[v + 1]
                while a < uend and b < eb:
                    x = neighbors[a]
                    y = neighbors[b]
                    if x == y:
                        if x > v:
                            count += 1
                        a += 1
                        b += 1
                    elif x < y:
                        a += 1
                    else:
                        b += 1
    return count


@register("tc", "gap", "triangle counting, sorted-list intersection")
def build_tc(scale=1.0):
    graph = graph_for_scale(max(0.4, scale * 0.55), seed=29, avg_degree=6)
    mod = module_with_graph(graph, tc_kernel)
    prog = mod.build("tc_kernel", graph_args() + [graph.num_nodes])
    return mod, prog
