"""GAP pr: PageRank with fixed-point (2^20) arithmetic."""

from repro.compiler import array_ref
from repro.workloads.gap.common import graph_for_scale, module_with_graph, \
    graph_args
from repro.workloads.registry import register

_SCALE = 1 << 20


def pagerank_kernel(offsets, neighbors, n, scores, contrib, iters):
    init = 1048576 // n
    for i in range(n):
        scores[i] = init
    for it in range(iters):
        for u in range(n):
            deg = offsets[u + 1] - offsets[u]
            if deg > 0:
                contrib[u] = scores[u] // deg
            else:
                contrib[u] = 0
        base = (1048576 // n) * 15 // 100
        for u in range(n):
            total = 0
            start = offsets[u]
            end = offsets[u + 1]
            for e in range(start, end):
                total += contrib[neighbors[e]]
            scores[u] = base + total * 85 // 100
    checksum = 0
    for i in range(n):
        checksum += scores[i]
    return checksum


@register("pr", "gap", "PageRank, 3 pull iterations, fixed point")
def build_pr(scale=1.0):
    graph = graph_for_scale(scale, seed=13)
    mod = module_with_graph(graph, pagerank_kernel)
    mod.array("scores", graph.num_nodes)
    mod.array("contrib", graph.num_nodes)
    prog = mod.build("pagerank_kernel", graph_args() + [
        graph.num_nodes, array_ref("scores"), array_ref("contrib"), 2])
    return mod, prog
