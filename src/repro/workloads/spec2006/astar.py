"""astar-like: grid path search with a binary-heap open list.

astar's hard branches come from data-dependent priority-queue sifts and
per-neighbour cost comparisons; both are reproduced here with
hash-perturbed terrain costs on a small grid. This is the paper's
biggest SPECint2006 winner (8.9% IPC), driven by short reconvergent
regions after each mispredicted comparison.
"""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register

_GRID = 32  # 32x32 grid


def astar_kernel(heap, cost, closed, n, searches):
    found = 0
    for s in range(searches):
        start = hash64(s) & 1023
        goal = hash64(s + 77) & 1023
        for i in range(n):
            cost[i] = 1 << 30
            closed[i] = 0
        cost[start] = 0
        heap[0] = start
        size = 1
        steps = 0
        while size > 0 and steps < 120:
            steps += 1
            # Pop the min-cost node (heap keyed indirectly through cost[]).
            node = heap[0]
            size -= 1
            heap[0] = heap[size]
            pos = 0
            while 1:
                child = pos * 2 + 1
                if child >= size:
                    break
                if child + 1 < size:
                    if cost[heap[child + 1]] < cost[heap[child]]:
                        child += 1
                if cost[heap[child]] < cost[heap[pos]]:
                    tmp = heap[pos]
                    heap[pos] = heap[child]
                    heap[child] = tmp
                    pos = child
                else:
                    break
            if node == goal:
                found += 1
                size = 0
            elif closed[node] == 0:
                closed[node] = 1
                base = cost[node]
                # Four grid neighbours with hash-perturbed step costs.
                for d in range(4):
                    if d == 0:
                        nxt = node - 32
                    elif d == 1:
                        nxt = node + 32
                    elif d == 2:
                        nxt = node - 1
                    else:
                        nxt = node + 1
                    nxt = nxt & 1023
                    step = (hash64(node * 4 + d) & 7) + 1
                    nc = base + step
                    if nc < cost[nxt]:
                        cost[nxt] = nc
                        # Heap push with sift-up.
                        heap[size] = nxt
                        pos = size
                        size += 1
                        while pos > 0:
                            parent = (pos - 1) // 2
                            if cost[heap[pos]] < cost[heap[parent]]:
                                tmp = heap[pos]
                                heap[pos] = heap[parent]
                                heap[parent] = tmp
                                pos = parent
                            else:
                                break
    return found


@register("astar", "spec2006", "grid path search, heap open list")
def build_astar(scale=1.0):
    n = _GRID * _GRID
    mod = Module()
    mod.add_function(astar_kernel)
    mod.array("heap", 4096)
    mod.array("cost", n)
    mod.array("closed", n)
    searches = max(1, int(1.2 * scale))
    prog = mod.build("astar_kernel", [
        array_ref("heap"), array_ref("cost"), array_ref("closed"),
        n, searches])
    return mod, prog
