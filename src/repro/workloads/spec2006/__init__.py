"""SPECint2006-like kernels.

Each kernel is a behavioural stand-in for the benchmark the paper
evaluates (those with >3% branch misprediction): the same *kind* of
hard-to-predict control flow, not the same program. See each module's
docstring for what is being mimicked.
"""

from repro.workloads.spec2006 import astar, gobmk, mcf, omnetpp, \
    perlbench, bzip2  # noqa: F401
