"""gobmk-like: Go board pattern evaluation.

gobmk's branch behaviour is dominated by cascaded data-dependent pattern
tests over board positions. We fill a 19x19 board with hash-random
stones and run a liberty/pattern scorer whose nested conditionals are
all data-dependent.
"""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register

_DIM = 19
_CELLS = _DIM * _DIM


def gobmk_kernel(board, n, rounds):
    score = 0
    for r in range(rounds):
        # Mutate a slice of the board pseudo-randomly.
        for k in range(32):
            pos = (hash64(r * 32 + k) & 65535) % n
            board[pos] = (hash64(pos + r) & 255) % 3  # empty/black/white
        # Evaluate every interior point with branchy pattern checks.
        for y in range(1, 18):
            for x in range(1, 18):
                p = y * 19 + x
                me = board[p]
                if me != 0:
                    up = board[p - 19]
                    down = board[p + 19]
                    left = board[p - 1]
                    right = board[p + 1]
                    liberties = 0
                    if up == 0:
                        liberties += 1
                    if down == 0:
                        liberties += 1
                    if left == 0:
                        liberties += 1
                    if right == 0:
                        liberties += 1
                    if liberties == 0:
                        score += 8
                    elif liberties == 1:
                        if up == me or down == me:
                            score += 4
                        else:
                            score += 2
                    elif liberties >= 3:
                        score -= 1
                    if up == me and down == me:
                        score += 3
                    if left == me and right == me:
                        score += 3
                    if up != me and down != me and left != me \
                            and right != me:
                        score -= 2
    return score


@register("gobmk", "spec2006", "Go board pattern/liberty evaluation")
def build_gobmk(scale=1.0):
    mod = Module()
    mod.add_function(gobmk_kernel)
    mod.array("board", _CELLS)
    rounds = max(1, int(4 * scale))
    prog = mod.build("gobmk_kernel",
                     [array_ref("board"), _CELLS, rounds])
    return mod, prog
