"""bzip2-like: run-length encoding + move-to-front transform.

Compression kernels branch on every input byte (run detection, MTF
search position) with data-dependent outcomes."""

from repro.compiler import Module, array_ref
from repro.workloads.registry import register


def bzip2_kernel(data, mtf, out, length):
    for i in range(64):
        mtf[i] = i
    run = 0
    prev = -1
    out_pos = 0
    checksum = 0
    for i in range(length):
        ch = data[i]
        if ch == prev:
            run += 1
            if run == 4:
                out[out_pos & 1023] = 255
                out_pos += 1
                run = 0
        else:
            run = 0
            prev = ch
            # Move-to-front: find ch's position, shift, emit position.
            pos = 0
            while mtf[pos] != ch:
                pos += 1
            j = pos
            while j > 0:
                mtf[j] = mtf[j - 1]
                j -= 1
            mtf[0] = ch
            out[out_pos & 1023] = pos
            out_pos += 1
            checksum = (checksum * 31 + pos) & 1048575
    return checksum + out_pos


@register("bzip2", "spec2006", "RLE + move-to-front transform")
def build_bzip2(scale=1.0):
    length = max(256, int(600 * scale))
    from repro.utils.rng import mix_hash
    # Skewed byte distribution (realistic text-ish) with runs; mostly
    # small symbols so move-to-front scans stay short, as on real text.
    data = []
    i = 0
    while len(data) < length:
        draw = mix_hash(i)
        byte = draw % 8 if draw % 4 else draw // 5 % 64
        repeat = 1 + (mix_hash(i + 1) % 4)
        for _ in range(repeat):
            if len(data) < length:
                data.append(byte)
        i += 2
    mod = Module()
    mod.add_function(bzip2_kernel)
    mod.array("data", data)
    mod.array("mtf", 64)
    mod.array("out", 1024)
    prog = mod.build("bzip2_kernel", [
        array_ref("data"), array_ref("mtf"), array_ref("out"), length])
    return mod, prog
