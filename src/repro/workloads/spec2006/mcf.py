"""mcf-like: cost-comparison pointer chasing over a large arc array.

mcf is memory-latency-bound: its network-simplex pricing walks large arc
arrays with data-dependent cost branches. We chase hash-scattered
indices across an array sized well past the L1 so most loads hit L2 (the
paper observes mcf barely benefits from squash reuse because cache
misses dominate)."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def mcf_kernel(arcs, n, steps, seed):
    node = seed & (n - 1)
    total = 0
    basis = 0
    for i in range(steps):
        value = arcs[node]
        reduced = value - basis
        if reduced < 0:
            basis = basis - (reduced >> 3)
            total += 1
            arcs[node] = value + 3
        elif reduced > 100:
            basis += 2
            arcs[node] = value - 1
        nxt = (node * 1103515245 + 12345) & (n - 1)
        if value & 1:
            nxt = (nxt + hash64(i) ) & (n - 1)
        node = nxt
    return total + basis


@register("mcf", "spec2006", "pointer-chasing arc pricing, L2-resident")
def build_mcf(scale=1.0):
    n = 1 << 14  # 16k words = 128KB > L1
    mod = Module()
    mod.add_function(mcf_kernel)
    mod.array("arcs", [((i * 2654435761) % 199) - 60 for i in range(n)])
    steps = max(200, int(1800 * scale))
    prog = mod.build("mcf_kernel", [array_ref("arcs"), n, steps, 7])
    return mod, prog
