"""omnetpp-like: discrete event simulation on a binary heap.

omnetpp's future-event-set heap produces deep chains of data-dependent
comparisons; each event processed here schedules 0-2 hash-random future
events. The paper finds omnetpp memory-bound with limited reuse benefit
and a large share of multi-stream reconvergence (Figure 4)."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def omnetpp_kernel(heap, events, cap):
    # heap holds event times; process `events` events.
    heap[0] = 10
    size = 1
    clock = 0
    processed = 0
    seed = 0
    while size > 0 and processed < events:
        processed += 1
        clock = heap[0]
        size -= 1
        heap[0] = heap[size]
        pos = 0
        while 1:
            child = pos * 2 + 1
            if child >= size:
                break
            if child + 1 < size:
                if heap[child + 1] < heap[child]:
                    child += 1
            if heap[child] < heap[pos]:
                tmp = heap[pos]
                heap[pos] = heap[child]
                heap[child] = tmp
                pos = child
            else:
                break
        # Schedule follow-up events depending on random event kind.
        seed = hash64(clock + processed)
        kind = seed & 3
        if kind != 0 and size < cap - 2:
            delay = (seed >> 4) & 63
            heap[size] = clock + delay + 1
            pos = size
            size += 1
            while pos > 0:
                parent = (pos - 1) // 2
                if heap[pos] < heap[parent]:
                    tmp = heap[pos]
                    heap[pos] = heap[parent]
                    heap[parent] = tmp
                    pos = parent
                else:
                    break
            if kind >= 2:
                heap[size] = clock + ((seed >> 12) & 127) + 2
                pos = size
                size += 1
                while pos > 0:
                    parent = (pos - 1) // 2
                    if heap[pos] < heap[parent]:
                        tmp = heap[pos]
                        heap[pos] = heap[parent]
                        heap[parent] = tmp
                        pos = parent
                    else:
                        break
    return clock + processed


@register("omnetpp", "spec2006", "discrete-event simulation heap")
def build_omnetpp(scale=1.0):
    cap = 4096
    mod = Module()
    mod.add_function(omnetpp_kernel)
    mod.array("heap", cap)
    events = max(50, int(250 * scale))
    prog = mod.build("omnetpp_kernel", [array_ref("heap"), events, cap])
    return mod, prog
