"""perlbench-like: byte-stream tokeniser with a branchy dispatch ladder.

Interpreter-style workloads spend their time in unpredictable dispatch
over input characters; we scan a hash-random byte stream classifying
characters through an if-ladder and maintaining tokeniser state."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def perlbench_kernel(text, counts, length):
    state = 0
    tokens = 0
    depth = 0
    for i in range(length):
        ch = text[i]
        if ch < 26:            # letter
            if state == 0:
                state = 1
                tokens += 1
            counts[0] = counts[0] + 1
        elif ch < 36:          # digit
            if state == 1:
                state = 2
            elif state == 0:
                state = 3
                tokens += 1
            counts[1] = counts[1] + 1
        elif ch < 40:          # quote-ish
            if state == 4:
                state = 0
                tokens += 1
            else:
                state = 4
            counts[2] = counts[2] + 1
        elif ch < 44:          # open bracket
            depth += 1
            counts[3] = counts[3] + 1
        elif ch < 48:          # close bracket
            if depth > 0:
                depth -= 1
            else:
                tokens -= 1
            counts[4] = counts[4] + 1
        elif ch < 52:          # operator
            if state == 2 or state == 3:
                tokens += 1
            state = 0
            counts[5] = counts[5] + 1
        else:                  # whitespace / other
            if state != 0 and state != 4:
                state = 0
            counts[6] = counts[6] + 1
    return tokens * 100 + depth + state


@register("perlbench", "spec2006", "tokeniser dispatch ladder")
def build_perlbench(scale=1.0):
    length = max(256, int(3000 * scale))
    from repro.utils.rng import mix_hash
    text = [mix_hash(i) % 64 for i in range(length)]
    mod = Module()
    mod.add_function(perlbench_kernel)
    mod.array("text", text)
    mod.array("counts", 8)
    prog = mod.build("perlbench_kernel",
                     [array_ref("text"), array_ref("counts"), length])
    return mod, prog
