"""Benchmark workloads.

Every workload is a restricted-Python kernel compiled to the simulator
ISA. Suites mirror the paper's evaluation:

* ``micro``    — the Listing-1 microbenchmarks (nested-/linear-mispred);
* ``gap``      — bfs, bc, cc, pr, sssp, tc on synthetic graphs
  (substituting for GAP ``-g 12 -n 128``);
* ``spec2006`` — astar/gobmk/mcf/omnetpp/perlbench/bzip2-like kernels;
* ``spec2017`` — leela/xz/deepsjeng/exchange2/omnetpp/mcf-like kernels.

The SPEC-like kernels are *behavioural* stand-ins: each reproduces the
branch/memory character the paper attributes to its namesake (hash-driven
hard-to-predict branches, pointer chasing, store-heavy LZ matching, ...),
not the program itself.
"""

from repro.workloads.registry import (
    Workload,
    get_workload,
    workload_names,
    suite_workloads,
    SUITES,
)

__all__ = [
    "Workload",
    "get_workload",
    "workload_names",
    "suite_workloads",
    "SUITES",
]
