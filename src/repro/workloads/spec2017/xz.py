"""xz-like: LZ77 match finding with hash heads and window stores.

The defining behaviour the paper observes on xz: squash reuse of *loads*
is punished because stores to recently-read window locations create
memory-order violations, triggering verification flushes. This kernel
reproduces that store/load interleaving: every position stores into the
hash-head table and the window that subsequent (reusable) loads read."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def xz_kernel(data, heads, window, length):
    matched = 0
    literals = 0
    pos = 0
    while pos < length - 4:
        a = data[pos]
        b = data[pos + 1]
        c = data[pos + 2]
        h = ((a * 33 + b) * 33 + c) & 511
        cand = heads[h]
        heads[h] = pos
        window[pos & 1023] = a
        best = 0
        if cand >= 0 and pos - cand < 1024:
            # Try to extend the match through the window.
            k = 0
            while k < 16 and pos + k < length:
                if window[(cand + k) & 1023] != data[pos + k]:
                    break
                k += 1
            best = k
        if best >= 3:
            matched += best
            pos += best
        else:
            literals += 1
            pos += 1
    return matched * 1000 + literals


@register("xz", "spec2017", "LZ77 match finder, store-heavy window")
def build_xz(scale=1.0):
    length = max(256, int(1200 * scale))
    from repro.utils.rng import mix_hash
    # Compressible-ish data: repeated motifs with noise.
    data = []
    i = 0
    while len(data) < length:
        if mix_hash(i) % 3 == 0:
            for k in range(6):
                if len(data) < length:
                    data.append((i + k) % 17)
        else:
            data.append(mix_hash(i) % 251)
        i += 1
    mod = Module()
    mod.add_function(xz_kernel)
    mod.array("data", data)
    mod.array("heads", [-1] * 512)
    mod.array("window", 1024)
    prog = mod.build("xz_kernel", [
        array_ref("data"), array_ref("heads"), array_ref("window"), length])
    return mod, prog
