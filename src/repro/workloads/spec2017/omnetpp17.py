"""omnetpp (2017)-like: event-simulation variant with message queues.

Same future-event-set structure as the 2006 kernel but with per-module
message counters and a different scheduling mix, standing in for the
larger 2017 input."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def omnetpp17_kernel(heap, modules, events, cap, nmods):
    heap[0] = 1
    size = 1
    clock = 0
    processed = 0
    while size > 0 and processed < events:
        processed += 1
        item = heap[0]
        clock = item >> 8
        module = item & 255
        size -= 1
        heap[0] = heap[size]
        pos = 0
        while 1:
            child = pos * 2 + 1
            if child >= size:
                break
            if child + 1 < size:
                if heap[child + 1] < heap[child]:
                    child += 1
            if heap[child] < heap[pos]:
                tmp = heap[pos]
                heap[pos] = heap[child]
                heap[child] = tmp
                pos = child
            else:
                break
        modules[module % nmods] = modules[module % nmods] + 1
        r = hash64(item + processed)
        fanout = r & 3
        for f in range(fanout):
            if size < cap - 1:
                delay = ((r >> (8 + f * 6)) & 63) + 1
                target = (module + f + 1) % nmods
                heap[size] = ((clock + delay) << 8) | target
                pos = size
                size += 1
                while pos > 0:
                    parent = (pos - 1) // 2
                    if heap[pos] < heap[parent]:
                        tmp = heap[pos]
                        heap[pos] = heap[parent]
                        heap[parent] = tmp
                        pos = parent
                    else:
                        break
    checksum = 0
    for i in range(nmods):
        checksum += modules[i] * (i + 1)
    return checksum + clock


@register("omnetpp17", "spec2017", "event simulation with module queues")
def build_omnetpp17(scale=1.0):
    cap = 4096
    nmods = 32
    mod = Module()
    mod.add_function(omnetpp17_kernel)
    mod.array("heap", cap)
    mod.array("modules", nmods)
    events = max(40, int(160 * scale))
    prog = mod.build("omnetpp17_kernel", [
        array_ref("heap"), array_ref("modules"), events, cap, nmods])
    return mod, prog
