"""deepsjeng-like: recursive alpha-beta search on a hash game tree.

Chess search branches on move ordering and cutoffs, both data-dependent.
The kernel is a genuine recursive negamax (exercising the call stack,
RAS and deep speculation) over a deterministic hash-generated tree."""

from repro.compiler import Module, hash64
from repro.workloads.registry import register


def negamax(node, depth, alpha, beta):
    if depth == 0:
        return (hash64(node) & 255) - 128
    h = hash64(node * 31 + depth)
    num_moves = 2 + (h & 3)
    best = -100000
    for m in range(num_moves):
        child = node * 8 + m + 1
        score = 0 - negamax(child, depth - 1, 0 - beta, 0 - alpha)
        if score > best:
            best = score
        if best > alpha:
            alpha = best
        if alpha >= beta:
            break
    return best


def deepsjeng_kernel(positions, depth):
    total = 0
    for p in range(positions):
        total += negamax(hash64(p) & 4095, depth, -100000, 100000)
    return total


@register("deepsjeng", "spec2017", "recursive alpha-beta tree search")
def build_deepsjeng(scale=1.0):
    mod = Module()
    mod.add_function(negamax)
    mod.add_function(deepsjeng_kernel)
    positions = max(1, int(2 * scale))
    prog = mod.build("deepsjeng_kernel", [positions, 5])
    return mod, prog
