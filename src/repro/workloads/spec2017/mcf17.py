"""mcf (2017)-like: pointer chasing with augmenting-path bookkeeping.

Variant of the 2006 kernel with a second dependent walk (simulating
mcf_r's larger working set and dual-array access pattern)."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def mcf17_kernel(arcs, costs, n, steps, seed):
    node = seed & (n - 1)
    flow = 0
    potential = 0
    for i in range(steps):
        arc = arcs[node]
        cost = costs[arc & (n - 1)]
        reduced = cost - potential
        if reduced < 0:
            flow += 1
            potential -= reduced >> 2
            costs[arc & (n - 1)] = cost + 2
        elif reduced > 64:
            potential += 3
        if arc & 1:
            node = (node + (arc >> 1)) & (n - 1)
        else:
            node = hash64(node + i) & (n - 1)
    return flow * 1000 + (potential & 4095)


@register("mcf17", "spec2017", "dual-array pointer chasing")
def build_mcf17(scale=1.0):
    n = 1 << 14
    mod = Module()
    mod.add_function(mcf17_kernel)
    mod.array("arcs", [(i * 2654435761) % (1 << 15) for i in range(n)])
    mod.array("costs", [((i * 40503) % 211) - 70 for i in range(n)])
    steps = max(200, int(1500 * scale))
    prog = mod.build("mcf17_kernel", [
        array_ref("arcs"), array_ref("costs"), n, steps, 3])
    return mod, prog
