"""leela-like: Monte-Carlo playout move selection.

leela (Go engine) interleaves pseudo-random move generation with
legality and capture checks — branchy and hash-driven. The paper's
largest SPECint2017 gain is on leela."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register

_DIM = 13
_CELLS = _DIM * _DIM


def leela_kernel(board, n, playouts, moves_per_playout):
    wins = 0
    for p in range(playouts):
        for i in range(n):
            board[i] = 0
        color = 1
        score = 0
        for m in range(moves_per_playout):
            r = hash64(p * 1024 + m) & ((1 << 60) - 1)
            pos = r % n
            tries = 0
            while board[pos] != 0 and tries < 4:
                pos = (pos + (r & 15) + 1) % n
                tries += 1
            if board[pos] == 0:
                board[pos] = color
                # Capture-ish check on the four neighbours.
                gained = 0
                if pos >= 13:
                    if board[pos - 13] == 0 - color:
                        if (r >> 8) & 3 == 0:
                            board[pos - 13] = 0
                            gained += 1
                if pos < n - 13:
                    if board[pos + 13] == 0 - color:
                        if (r >> 10) & 3 == 0:
                            board[pos + 13] = 0
                            gained += 1
                if pos % 13 != 0:
                    if board[pos - 1] == 0 - color:
                        if (r >> 12) & 3 == 0:
                            board[pos - 1] = 0
                            gained += 1
                if pos % 13 != 12:
                    if board[pos + 1] == 0 - color:
                        if (r >> 14) & 3 == 0:
                            board[pos + 1] = 0
                            gained += 1
                score += gained * color
            color = 0 - color
        if score > 0:
            wins += 1
    return wins * 1000 + (score & 255)


@register("leela", "spec2017", "Monte-Carlo Go playouts")
def build_leela(scale=1.0):
    mod = Module()
    mod.add_function(leela_kernel)
    mod.array("board", _CELLS)
    playouts = max(2, int(6 * scale))
    prog = mod.build("leela_kernel",
                     [array_ref("board"), _CELLS, playouts, 90])
    return mod, prog
