"""exchange2-like: backtracking constraint solver (mini-sudoku flavour).

exchange2 generates sudoku puzzles by recursive backtracking; its
branches (constraint checks, dead-end detection) are data-dependent. We
solve a row/column-constraint placement puzzle on a 6x6 board by
recursive backtracking with hash-randomised value order."""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register

_N = 6


def place(board, used_row, used_col, cell, salt):
    if cell == 36:
        return 1
    row = cell // 6
    col = cell % 6
    solutions = 0
    start = (hash64(cell + salt) & 255) % 6
    for k in range(6):
        value = (start + k) % 6
        bit = 1 << value
        if (used_row[row] & bit) == 0 and (used_col[col] & bit) == 0:
            board[cell] = value
            used_row[row] = used_row[row] | bit
            used_col[col] = used_col[col] | bit
            solutions += place(board, used_row, used_col, cell + 1, salt)
            used_row[row] = used_row[row] & ~bit
            used_col[col] = used_col[col] & ~bit
            if solutions >= 2:
                break
    return solutions


def exchange2_kernel(board, used_row, used_col, puzzles):
    total = 0
    for p in range(puzzles):
        for i in range(6):
            used_row[i] = 0
            used_col[i] = 0
        total += place(board, used_row, used_col, 0, p * 97)
    return total


@register("exchange2", "spec2017", "backtracking constraint solver")
def build_exchange2(scale=1.0):
    mod = Module()
    mod.add_function(place)
    mod.add_function(exchange2_kernel)
    mod.array("board", _N * _N)
    mod.array("used_row", _N)
    mod.array("used_col", _N)
    puzzles = max(1, int(3 * scale))
    prog = mod.build("exchange2_kernel", [
        array_ref("board"), array_ref("used_row"), array_ref("used_col"),
        puzzles])
    return mod, prog
