"""SPECint2017-like kernels (see :mod:`repro.workloads.spec2006`)."""

from repro.workloads.spec2017 import leela, xz, deepsjeng, exchange2, \
    omnetpp17, mcf17  # noqa: F401
