"""Direct predictor-characterization driver.

Feeds deterministic synthetic branch traces straight into a predictor
instance, mimicking the core's prediction discipline (speculative
predict, history repair on a wrong prediction, training at commit) —
but without a pipeline in the way. That makes probe sweeps cheap and
lets the aliasing probes use scaled-down table geometries, where
destructive interference is visible at trace lengths a unit test can
afford.

A probe is a deterministic generator of ``(pc, taken)`` pairs;
:func:`characterize` returns the misprediction signature of one
predictor on one probe. The signatures asserted by the benchmark suite
(``benchmarks/test_brchar_signatures.py``) and the ``harness brchar``
CLI both come from here.
"""

from repro.frontend.predictors import build_predictor
from repro.frontend.tage_scl import TageSCL
from repro.utils.rng import XorShift64

#: Base address for synthetic branch PCs (arbitrary, word-aligned).
_PC_BASE = 0x10000


class Probe:
    """A named deterministic branch-trace generator."""

    def __init__(self, name, description, gen):
        self.name = name
        self.description = description
        self._gen = gen

    def trace(self, n):
        """Yield ``n`` ``(pc, taken)`` pairs."""
        return self._gen(n)

    def __repr__(self):
        return "<Probe %s>" % self.name


def trip_probe(trip):
    """A single loop-closing branch: ``trip - 1`` taken then one
    not-taken, repeated. Predicting the exit needs either ``trip``
    outcomes of history or an iteration counter."""
    def gen(n):
        pc = _PC_BASE
        for i in range(n):
            yield pc, (i % trip) != (trip - 1)
    return Probe("trip%d" % trip,
                 "loop-closing branch with trip count %d" % trip, gen)


def pattern_probe(period, seed=0x5EED):
    """A pseudo-random ``period``-periodic direction pattern on one
    branch: pure history correlation with no countable structure."""
    rng = XorShift64(seed)
    pattern = [bool(rng.randint(0, 1)) for _ in range(period)]

    def gen(n):
        pc = _PC_BASE
        for i in range(n):
            yield pc, pattern[i % period]
    return Probe("pattern%d" % period,
                 "pseudo-random period-%d direction pattern" % period, gen)


def biased_probe(permille=900, seed=0xB1A5):
    """A single branch taken ``permille``/1000 of the time, with the
    outcome stream statistically independent of the history — tagged
    history entries are pure noise, bias tracking is everything."""
    def gen(n):
        pc = _PC_BASE
        rng = XorShift64(seed)
        for _ in range(n):
            yield pc, rng.randint(0, 999) < permille
    return Probe("bias%d" % permille,
                 "history-uncorrelated branch, %.0f%% taken"
                 % (permille / 10.0), gen)


def alias_probe(num_pcs=256, permille=950, seed=0xA11A5):
    """``num_pcs`` distinct branches visited round-robin with
    alternating strong biases: adjacent PCs index adjacent entries of
    untagged tables, so scaled-down geometries alias oppositely-biased
    branches onto shared counters."""
    def gen(n):
        rng = XorShift64(seed)
        i = 0
        while i < n:
            for k in range(num_pcs):
                if i >= n:
                    return
                biased_taken = rng.randint(0, 999) < permille
                yield _PC_BASE + 4 * k, \
                    biased_taken if k % 2 == 0 else not biased_taken
                i += 1
    return Probe("alias%d" % num_pcs,
                 "%d round-robin branches with alternating bias"
                 % num_pcs, gen)


def characterize(kind, probe, n=20000, warmup_frac=0.5, **kwargs):
    """Misprediction signature of predictor ``kind`` on ``probe``.

    The first ``warmup_frac`` of the trace trains without being scored,
    so signatures reflect steady state, not table warmup. Returns a
    dict with ``branches``, ``mispredicts`` and ``mpb`` (mispredicts
    per scored branch).
    """
    predictor = build_predictor(kind, **kwargs)
    warmup = int(n * warmup_frac)
    scored = mispredicts = 0
    is_scl = isinstance(predictor, TageSCL)
    for i, (pc, taken) in enumerate(probe.trace(n)):
        pred_taken, meta = predictor.predict(pc)
        if pred_taken != taken:
            # Same repair the core applies when the branch resolves.
            if is_scl:
                predictor.recover_branch(pc, taken, meta)
            else:
                predictor.recover(taken, meta)
        predictor.update(pc, taken, meta)
        if i >= warmup:
            scored += 1
            mispredicts += (pred_taken != taken)
    return {
        "predictor": kind,
        "probe": probe.name,
        "branches": scored,
        "mispredicts": mispredicts,
        "mpb": mispredicts / scored if scored else 0.0,
    }


#: The standard characterization matrix: (probe, predictor kinds,
#: predictor kwargs per kind). Signature assertions and the CLI table
#: both iterate this.
def standard_probes():
    return [
        trip_probe(8),
        trip_probe(48),
        trip_probe(160),
        pattern_probe(6),
        biased_probe(900),
        alias_probe(256),
    ]


#: Scaled-down geometries for the aliasing probe: small enough that
#: 256 branches collide hard in untagged tables, while TAGE's tags
#: still discriminate.
ALIAS_KWARGS = {
    "bimodal": {"num_entries": 64},
    "gshare": {"num_entries": 64, "history_bits": 4},
    "tage": {"base_entries": 64, "table_entries": 64},
}


def characterization_table(n=20000, kinds=("gshare", "tage", "tage-scl")):
    """The full signature matrix as a list of result dicts."""
    rows = []
    for probe in standard_probes():
        for kind in kinds:
            kwargs = {}
            if probe.name.startswith("alias"):
                kwargs = ALIAS_KWARGS.get(kind, {})
            rows.append(characterize(kind, probe, n=n, **kwargs))
    return rows


def signature_checks(rows):
    """Evaluate the headline predictor signatures over a matrix from
    :func:`characterization_table`.

    Returns ``[(name, passed, detail), ...]`` — one entry per
    signature, with the measured numbers in ``detail`` for diagnosis.
    Used by ``harness brchar --check`` (the CI smoke gate) and usable
    interactively.
    """
    mpb = {(r["probe"], r["predictor"]): r["mpb"] for r in rows}

    def fmt(probe):
        return ", ".join("%s=%.4f" % (k, v)
                         for (p, k), v in sorted(mpb.items()) if p == probe)

    checks = [
        ("tage-history-length",
         mpb[("trip48", "gshare")] > 0.015
         and mpb[("trip48", "tage")] == 0.0,
         "trip48: %s" % fmt("trip48")),
        ("loop-exit",
         mpb[("trip160", "tage")] > 0.004
         and mpb[("trip160", "tage-scl")] == 0.0,
         "trip160: %s" % fmt("trip160")),
        ("sc-bias-recovery",
         mpb[("bias900", "tage-scl")] <= mpb[("bias900", "tage")]
         < mpb[("bias900", "gshare")],
         "bias900: %s" % fmt("bias900")),
        ("tag-aliasing",
         mpb[("alias256", "gshare")] > 0.3
         and mpb[("alias256", "tage")] < 0.1,
         "alias256: %s" % fmt("alias256")),
    ]
    return checks
