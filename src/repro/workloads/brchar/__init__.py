"""Branch-predictor characterization pack (``brchar`` suite).

Generated microbenchmarks that probe one predictor mechanism each, in
the style of black-box branch-predictor dissections (Chen et al.): the
probe's control behaviour is constructed so that exactly one component
of the frontend can (or cannot) capture it, and the misprediction
signature identifies which predictor the core is really running.

Two layers share the probe definitions:

* **Compiled workloads** (this module): real programs registered in the
  ``brchar`` suite, run through the full core — these are what the CI
  smoke step and ``harness sweep`` consume.
* **Direct driver** (:mod:`repro.workloads.brchar.driver`): feeds
  synthetic branch traces straight into a predictor instance — fast
  enough to sweep probe parameters and scaled-down table geometries
  (aliasing probes) without simulating a pipeline.

The probes:

``brchar-hist8``
    Inner loop with trip count 8: its closing branch needs only 8 bits
    of history, in reach of every history-based predictor (control).
``brchar-hist48``
    Trip count 48: beyond gshare's 12-bit history, comfortably inside
    TAGE's geometric table reach (max_history 128). gshare mispredicts
    every exit; TAGE eliminates them — the history-length signature.
``brchar-loop160``
    Trip count 160: beyond even TAGE's longest history table, but a
    trivially countable loop. Only the loop predictor (the L in
    TAGE-SC-L) eliminates the exit mispredict — the loop signature.
``brchar-scbias``
    A hash-driven, history-uncorrelated branch taken ~90% of the time:
    tagged history entries are pure noise here, and the statistical
    corrector's bias-tracking veto is what recovers the base rate.
``brchar-alias``
    Many statically distinct, oppositely-biased branches: destructive
    aliasing in untagged counter tables, which TAGE's tags avoid (the
    table-aliasing signature; sharpest via the driver's scaled-down
    geometries).
"""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register


def brchar_hist8_kernel(arr, n):
    acc = 0
    for i in range(n):
        s = 0
        for j in range(8):
            s = s + j
        arr[i & 7] = s
        acc = acc + s
    return acc & 0xFFFFFF


def brchar_hist48_kernel(arr, n):
    acc = 0
    for i in range(n):
        s = 0
        for j in range(48):
            s = s + j
        arr[i & 7] = s
        acc = acc + s
    return acc & 0xFFFFFF


def brchar_loop160_kernel(arr, n):
    acc = 0
    for i in range(n):
        s = 0
        for j in range(160):
            s = s + j
        arr[i & 7] = s
        acc = acc + s
    return acc & 0xFFFFFF


def brchar_scbias_kernel(arr, n):
    acc = 0
    for i in range(n):
        h = hash64(i)
        if (h & 1023) < 921:
            acc = acc + 3
        else:
            acc = acc + 1
        arr[i & 15] = acc
    return acc & 0xFFFFFF


def brchar_alias_kernel(arr, n):
    acc = 0
    for i in range(n):
        h = hash64(i)
        # Eight statically distinct branch sites with alternating
        # strong biases (~94% taken vs ~6% taken) — opposite biases
        # that collide destructively in untagged counter tables.
        if (h >> 0) & 15:
            acc = acc + 1
        if ((h >> 4) & 15) == 0:
            acc = acc + 2
        if (h >> 8) & 15:
            acc = acc + 3
        if ((h >> 12) & 15) == 0:
            acc = acc + 4
        if (h >> 16) & 15:
            acc = acc + 5
        if ((h >> 20) & 15) == 0:
            acc = acc + 6
        if (h >> 24) & 15:
            acc = acc + 7
        if ((h >> 28) & 15) == 0:
            acc = acc + 8
        arr[i & 7] = acc
    return acc & 0xFFFFFF


def _build(kernel, scale, iterations):
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", 16)
    n = max(8, int(iterations * scale))
    prog = mod.build(kernel.__name__, [array_ref("arr"), n])
    return mod, prog


@register("brchar-hist8", "brchar",
          "trip-8 loop: in reach of every history predictor (control)")
def build_hist8(scale=1.0):
    return _build(brchar_hist8_kernel, scale, 400)


@register("brchar-hist48", "brchar",
          "trip-48 loop: beyond gshare's history, within TAGE's")
def build_hist48(scale=1.0):
    return _build(brchar_hist48_kernel, scale, 120)


@register("brchar-loop160", "brchar",
          "trip-160 loop: beyond TAGE history, loop-predictor territory")
def build_loop160(scale=1.0):
    return _build(brchar_loop160_kernel, scale, 48)


@register("brchar-scbias", "brchar",
          "history-uncorrelated 90%-taken branch (SC probe)")
def build_scbias(scale=1.0):
    return _build(brchar_scbias_kernel, scale, 1500)


@register("brchar-alias", "brchar",
          "oppositely-biased static branches (table-aliasing probe)")
def build_alias(scale=1.0):
    return _build(brchar_alias_kernel, scale, 400)
