"""The paper's Listing-1 microbenchmarks.

Two hash-driven nested branches ``Br1``/``Br2`` guard short
control-dependent bodies; the loop tail computes three compute-intensive
CIDI temporaries (the paper's ``calc2`` chains) from the induction
variable and the branch data, and feeds a few bits back into the next
iteration's hash (``seed``), which keeps the reusable results on the
loop's critical path. The two variations differ only in which data value
each branch tests:

* **nested-mispred** — Br1 tests ``data1 = hash(data2)`` (late), Br2
  tests ``data2 = hash(i)`` (early), so the inner branch resolves first
  and mispredictions nest out of order (multi-stream reconvergence).
* **linear-mispred** — the conditions are swapped, so Br1 resolves
  first and mispredictions occur in order.

The loop body spans ~160 static instructions, more than the RI baseline's
64 reuse-table sets — low-associativity RI measurably thrashes here
(Figure 3's conflict behaviour).
"""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register

_ARR = 64


def nested_mispred_kernel(arr, n):
    acc = 0
    seed = 0
    for i in range(n):
        data2 = hash64(i + (seed & 7))
        data1 = hash64(data2)
        if data1 & 1:
            if data2 & 2:
                data2 = (data2 >> 3) * 5 + 1
                data2 = (data2 >> 2) * 9 + 3
            data1 = (data1 >> 2) * 3 + 7
            data1 = (data1 >> 4) * 11 + 9
        t0 = (i & 65535) * 214013 + 2531011
        t0 = (t0 >> 7) * 63689 + 1
        t0 = (t0 >> 5) * 378551 + 7
        t0 = (t0 >> 3) * 69069 + 5
        t0 = (t0 >> 6) * 30893 + 11
        t0 = t0 & 4095
        t2 = (data2 & 65535) * 134775813 + 1
        t2 = (t2 >> 8) * 214013 + 13849
        t2 = (t2 >> 5) * 65793 + 42663
        t2 = (t2 >> 6) * 30893 + 7222
        t2 = (t2 >> 4) * 17405 + 43
        t2 = t2 & 4095
        seed = t0 + t2
        t1 = (data1 & 65535) * 17405 + 10395331
        t1 = (t1 >> 4) * 91019 + 3
        t1 = (t1 >> 6) * 22695477 + 1
        t1 = (t1 >> 5) * 214013 + 29
        t1 = (t1 >> 3) * 63689 + 31
        t1 = t1 & 4095
        arr[i & 63] = t0 + t1 + t2
        acc = acc + t0 + t1 + t2
    return acc & 0xFFFFFF

def linear_mispred_kernel(arr, n):
    acc = 0
    seed = 0
    for i in range(n):
        data2 = hash64(i + (seed & 7))
        data1 = hash64(data2)
        if data2 & 1:
            if data1 & 2:
                data2 = (data2 >> 3) * 5 + 1
                data2 = (data2 >> 2) * 9 + 3
            data1 = (data1 >> 2) * 3 + 7
            data1 = (data1 >> 4) * 11 + 9
        t0 = (i & 65535) * 214013 + 2531011
        t0 = (t0 >> 7) * 63689 + 1
        t0 = (t0 >> 5) * 378551 + 7
        t0 = (t0 >> 3) * 69069 + 5
        t0 = (t0 >> 6) * 30893 + 11
        t0 = t0 & 4095
        t2 = (data2 & 65535) * 134775813 + 1
        t2 = (t2 >> 8) * 214013 + 13849
        t2 = (t2 >> 5) * 65793 + 42663
        t2 = (t2 >> 6) * 30893 + 7222
        t2 = (t2 >> 4) * 17405 + 43
        t2 = t2 & 4095
        seed = t0 + t2
        t1 = (data1 & 65535) * 17405 + 10395331
        t1 = (t1 >> 4) * 91019 + 3
        t1 = (t1 >> 6) * 22695477 + 1
        t1 = (t1 >> 5) * 214013 + 29
        t1 = (t1 >> 3) * 63689 + 31
        t1 = t1 & 4095
        arr[i & 63] = t0 + t1 + t2
        acc = acc + t0 + t1 + t2
    return acc & 0xFFFFFF

def _build(kernel, scale):
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", _ARR)
    iterations = max(16, int(450 * scale))
    prog = mod.build(kernel.__name__, [array_ref("arr"), iterations])
    return mod, prog


@register("nested-mispred", "micro",
          "Listing 1 with out-of-order (nested) branch resolution")
def build_nested(scale=1.0):
    return _build(nested_mispred_kernel, scale)


@register("linear-mispred", "micro",
          "Listing 1 with in-order branch resolution")
def build_linear(scale=1.0):
    return _build(linear_mispred_kernel, scale)


# ---------------------------------------------------------------------------
# Pointer-chase micros (the "mem" suite): memory-level-parallelism
# probes for the ported memory system. ``ptr-chase`` walks four
# *independent* permutation chains per iteration — four misses can be
# outstanding at once, so MSHR occupancy > 1 is the expected signature;
# ``ptr-chase-dep`` chases one chain serially four times per iteration
# (each load's address depends on the previous load's value), the
# classic latency-bound anti-pattern the MLP probe is contrasted with.
# ---------------------------------------------------------------------------

#: Chain slots: 16384 8-byte words = 128KB, twice the default 64KB L1D,
#: so the chase keeps missing L1 after warmup.
_CHASE_WORDS = 16384


def _chase_permutation(words):
    """One full cycle over ``range(words)`` (Sattolo's algorithm, fixed
    LCG so the image is deterministic), giving line-crossing jumps."""
    perm = list(range(words))
    seed = 0xC0FFEE
    for i in range(words - 1, 0, -1):
        seed = (seed * 6364136223846793005 + 1442695040888963407) \
            % (1 << 64)
        j = seed % i
        perm[i], perm[j] = perm[j], perm[i]
    return perm


def ptr_chase_kernel(chain, n):
    acc = 0
    p0 = 0
    p1 = 4096
    p2 = 8192
    p3 = 12288
    for i in range(n):
        p0 = chain[p0]
        p1 = chain[p1]
        p2 = chain[p2]
        p3 = chain[p3]
        acc = acc + p0 + p1 + p2 + p3
    return acc & 0xFFFFFF


def ptr_chase_dep_kernel(chain, n):
    acc = 0
    p = 0
    for i in range(n):
        p = chain[p]
        p = chain[p]
        p = chain[p]
        p = chain[p]
        acc = acc + p
    return acc & 0xFFFFFF


def _build_chase(kernel, scale):
    mod = Module()
    mod.add_function(kernel)
    mod.array("chain", _chase_permutation(_CHASE_WORDS))
    iterations = max(16, int(350 * scale))
    prog = mod.build(kernel.__name__, [array_ref("chain"), iterations])
    return mod, prog


@register("ptr-chase", "mem",
          "Four independent permutation chains per iteration (MLP probe)")
def build_ptr_chase(scale=1.0):
    return _build_chase(ptr_chase_kernel, scale)


@register("ptr-chase-dep", "mem",
          "One serially dependent permutation chain (latency-bound)")
def build_ptr_chase_dep(scale=1.0):
    return _build_chase(ptr_chase_dep_kernel, scale)
