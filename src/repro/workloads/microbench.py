"""The paper's Listing-1 microbenchmarks.

Two hash-driven nested branches ``Br1``/``Br2`` guard short
control-dependent bodies; the loop tail computes three compute-intensive
CIDI temporaries (the paper's ``calc2`` chains) from the induction
variable and the branch data, and feeds a few bits back into the next
iteration's hash (``seed``), which keeps the reusable results on the
loop's critical path. The two variations differ only in which data value
each branch tests:

* **nested-mispred** — Br1 tests ``data1 = hash(data2)`` (late), Br2
  tests ``data2 = hash(i)`` (early), so the inner branch resolves first
  and mispredictions nest out of order (multi-stream reconvergence).
* **linear-mispred** — the conditions are swapped, so Br1 resolves
  first and mispredictions occur in order.

The loop body spans ~160 static instructions, more than the RI baseline's
64 reuse-table sets — low-associativity RI measurably thrashes here
(Figure 3's conflict behaviour).
"""

from repro.compiler import Module, array_ref, hash64
from repro.workloads.registry import register

_ARR = 64


def nested_mispred_kernel(arr, n):
    acc = 0
    seed = 0
    for i in range(n):
        data2 = hash64(i + (seed & 7))
        data1 = hash64(data2)
        if data1 & 1:
            if data2 & 2:
                data2 = (data2 >> 3) * 5 + 1
                data2 = (data2 >> 2) * 9 + 3
            data1 = (data1 >> 2) * 3 + 7
            data1 = (data1 >> 4) * 11 + 9
        t0 = (i & 65535) * 214013 + 2531011
        t0 = (t0 >> 7) * 63689 + 1
        t0 = (t0 >> 5) * 378551 + 7
        t0 = (t0 >> 3) * 69069 + 5
        t0 = (t0 >> 6) * 30893 + 11
        t0 = t0 & 4095
        t2 = (data2 & 65535) * 134775813 + 1
        t2 = (t2 >> 8) * 214013 + 13849
        t2 = (t2 >> 5) * 65793 + 42663
        t2 = (t2 >> 6) * 30893 + 7222
        t2 = (t2 >> 4) * 17405 + 43
        t2 = t2 & 4095
        seed = t0 + t2
        t1 = (data1 & 65535) * 17405 + 10395331
        t1 = (t1 >> 4) * 91019 + 3
        t1 = (t1 >> 6) * 22695477 + 1
        t1 = (t1 >> 5) * 214013 + 29
        t1 = (t1 >> 3) * 63689 + 31
        t1 = t1 & 4095
        arr[i & 63] = t0 + t1 + t2
        acc = acc + t0 + t1 + t2
    return acc & 0xFFFFFF

def linear_mispred_kernel(arr, n):
    acc = 0
    seed = 0
    for i in range(n):
        data2 = hash64(i + (seed & 7))
        data1 = hash64(data2)
        if data2 & 1:
            if data1 & 2:
                data2 = (data2 >> 3) * 5 + 1
                data2 = (data2 >> 2) * 9 + 3
            data1 = (data1 >> 2) * 3 + 7
            data1 = (data1 >> 4) * 11 + 9
        t0 = (i & 65535) * 214013 + 2531011
        t0 = (t0 >> 7) * 63689 + 1
        t0 = (t0 >> 5) * 378551 + 7
        t0 = (t0 >> 3) * 69069 + 5
        t0 = (t0 >> 6) * 30893 + 11
        t0 = t0 & 4095
        t2 = (data2 & 65535) * 134775813 + 1
        t2 = (t2 >> 8) * 214013 + 13849
        t2 = (t2 >> 5) * 65793 + 42663
        t2 = (t2 >> 6) * 30893 + 7222
        t2 = (t2 >> 4) * 17405 + 43
        t2 = t2 & 4095
        seed = t0 + t2
        t1 = (data1 & 65535) * 17405 + 10395331
        t1 = (t1 >> 4) * 91019 + 3
        t1 = (t1 >> 6) * 22695477 + 1
        t1 = (t1 >> 5) * 214013 + 29
        t1 = (t1 >> 3) * 63689 + 31
        t1 = t1 & 4095
        arr[i & 63] = t0 + t1 + t2
        acc = acc + t0 + t1 + t2
    return acc & 0xFFFFFF

def _build(kernel, scale):
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", _ARR)
    iterations = max(16, int(450 * scale))
    prog = mod.build(kernel.__name__, [array_ref("arr"), iterations])
    return mod, prog


@register("nested-mispred", "micro",
          "Listing 1 with out-of-order (nested) branch resolution")
def build_nested(scale=1.0):
    return _build(nested_mispred_kernel, scale)


@register("linear-mispred", "micro",
          "Listing 1 with in-order branch resolution")
def build_linear(scale=1.0):
    return _build(linear_mispred_kernel, scale)
