"""Synthetic graph generation in CSR form for the GAP-like kernels.

The GAP suite runs Kronecker graphs (``-g 12``); we generate small
uniform-random or skewed graphs deterministically with the project PRNG
and hand the kernels flat CSR arrays (offsets / column indices / weights),
matching GAP's in-memory layout.
"""

from repro.utils.rng import XorShift64


class CSRGraph:
    """Compressed-sparse-row directed graph."""

    def __init__(self, num_nodes, offsets, neighbors, weights=None):
        self.num_nodes = num_nodes
        self.offsets = offsets          # length num_nodes + 1
        self.neighbors = neighbors
        self.weights = weights or [1] * len(neighbors)

    @property
    def num_edges(self):
        return len(self.neighbors)

    def out_degree(self, node):
        return self.offsets[node + 1] - self.offsets[node]


def uniform_random_graph(num_nodes, avg_degree, seed=1, symmetric=True,
                         max_weight=15):
    """Erdos-Renyi-style graph; symmetric graphs add reverse edges.

    Adjacency lists are sorted and deduplicated (GAP does the same),
    which the triangle-counting kernel relies on.
    """
    rng = XorShift64(seed)
    adjacency = [set() for _ in range(num_nodes)]
    num_edges = num_nodes * avg_degree // (2 if symmetric else 1)
    for _ in range(num_edges):
        u = rng.randint(0, num_nodes - 1)
        v = rng.randint(0, num_nodes - 1)
        if u == v:
            continue
        adjacency[u].add(v)
        if symmetric:
            adjacency[v].add(u)
    return _to_csr(adjacency, rng, max_weight)


def skewed_graph(num_nodes, avg_degree, seed=1, symmetric=True,
                 max_weight=15):
    """Preferential-attachment-flavoured graph (Kronecker substitute):
    endpoint choice is biased toward low node ids, giving a heavy-tailed
    degree distribution like GAP's Kronecker inputs."""
    rng = XorShift64(seed)
    adjacency = [set() for _ in range(num_nodes)]
    num_edges = num_nodes * avg_degree // (2 if symmetric else 1)
    for _ in range(num_edges):
        u = _skewed_pick(rng, num_nodes)
        v = rng.randint(0, num_nodes - 1)
        if u == v:
            continue
        adjacency[u].add(v)
        if symmetric:
            adjacency[v].add(u)
    return _to_csr(adjacency, rng, max_weight)


def _skewed_pick(rng, num_nodes):
    # Min of two uniform draws skews mass toward small ids.
    a = rng.randint(0, num_nodes - 1)
    b = rng.randint(0, num_nodes - 1)
    return min(a, b)


def _to_csr(adjacency, rng, max_weight):
    offsets = [0]
    neighbors = []
    weights = []
    for node_adj in adjacency:
        for dst in sorted(node_adj):
            neighbors.append(dst)
            weights.append(rng.randint(1, max_weight))
        offsets.append(len(neighbors))
    return CSRGraph(len(adjacency), offsets, neighbors, weights)
