"""repro — reproduction of *Multi-Stream Squash Reuse for
Control-Independent Processors* (MICRO 2025).

Public API quick tour::

    from repro import Module, array_ref, O3Core, mssr_config, run_program

    mod = Module()
    mod.add_function(my_kernel)          # restricted-Python kernel
    prog = mod.build("my_kernel", [...])

    result = O3Core(prog, mssr_config()).run()
    print(result.stats.ipc, result.stats.reuse_successes)

See :mod:`repro.workloads` for the paper's benchmark suites and
:mod:`repro.analysis` for the experiment harness behind every table and
figure.
"""

from repro.isa import Assembler, assemble_text, Program, Instruction, Op
from repro.emu import Emulator, SparseMemory
from repro.emu.emulator import run_program
from repro.compiler import Module, array_ref, hash64, min64, max64
from repro.pipeline import (
    CoreConfig,
    MSSRConfig,
    RIConfig,
    O3Core,
    SimResult,
    SimulationError,
    baseline_config,
    mssr_config,
    dci_config,
    ri_config,
)
from repro.obs import (
    JsonlTraceSink,
    KonataSink,
    MetricsSink,
    Observability,
    RingBufferSink,
    run_lockstep,
)

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "assemble_text",
    "Program",
    "Instruction",
    "Op",
    "Emulator",
    "SparseMemory",
    "run_program",
    "Module",
    "array_ref",
    "hash64",
    "min64",
    "max64",
    "CoreConfig",
    "MSSRConfig",
    "RIConfig",
    "O3Core",
    "SimResult",
    "SimulationError",
    "baseline_config",
    "mssr_config",
    "dci_config",
    "ri_config",
    "Observability",
    "RingBufferSink",
    "JsonlTraceSink",
    "KonataSink",
    "MetricsSink",
    "run_lockstep",
    "__version__",
]
