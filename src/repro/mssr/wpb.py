"""Wrong-Path Buffers: fetch-side squashed-stream tracking (Section 3.4).

Each of the N streams holds up to M *fetch block ranges* — (start_pc,
end_pc) pairs copied from the squashed FTQ entries. Because every block
is a contiguous instruction run, reconvergence detection is a pure range
overlap test (the paper's left/right aligner logic), never an
instruction-by-instruction comparison:

    start_pc_head <= end_pc_wpb  and  end_pc_head >= start_pc_wpb

The exact reconvergence PC is ``max(start_pc_head, start_pc_wpb)`` of the
first (priority-encoded) overlapping entry.
"""

from repro.isa.instruction import INST_BYTES

#: Page size for the optional single-page restriction (sv48, 4KiB pages).
PAGE_SHIFT = 12


class WPBStream:
    """One squashed stream at fetch-block granularity."""

    __slots__ = ("blocks", "valid", "event_id", "trigger_seq", "age",
                 "generation", "num_insts", "vpn")

    def __init__(self):
        self.blocks = []       # list of (start_pc, end_pc) inclusive
        self.valid = False
        self.event_id = -1     # squash event that created this stream
        self.trigger_seq = -1  # seq of the mispredicting branch
        self.age = 0           # fetched instructions since creation
        self.generation = 0    # bumped on every (in)validation
        self.num_insts = 0
        self.vpn = None

    def fill(self, block_ranges, event_id, trigger_seq, max_blocks,
             single_page=False):
        """(Re)populate from squashed block ranges (oldest first)."""
        self.generation += 1
        self.blocks = []
        self.vpn = None
        for start_pc, end_pc in block_ranges:
            if len(self.blocks) >= max_blocks:
                break
            if single_page:
                vpn = start_pc >> PAGE_SHIFT
                if self.vpn is None:
                    self.vpn = vpn
                if vpn != self.vpn or (end_pc >> PAGE_SHIFT) != self.vpn:
                    break  # stream restricted to one physical page
            self.blocks.append((start_pc, end_pc))
        self.valid = bool(self.blocks)
        self.event_id = event_id
        self.trigger_seq = trigger_seq
        self.age = 0
        self.num_insts = sum((end - start) // INST_BYTES + 1
                             for start, end in self.blocks)

    def invalidate(self):
        self.generation += 1
        self.valid = False
        self.blocks = []
        self.num_insts = 0

    # ------------------------------------------------------------------
    def find_overlap(self, start_head, end_head):
        """First overlapping entry: returns (inst_offset, reconv_pc) or None.

        ``inst_offset`` counts instructions from the start of the stream
        (the first wrong-path instruction after the mispredicted branch).
        """
        offset = 0
        for start_wpb, end_wpb in self.blocks:
            if start_head <= end_wpb and end_head >= start_wpb:
                reconv_pc = max(start_head, start_wpb)
                offset += (reconv_pc - start_wpb) // INST_BYTES
                return offset, reconv_pc
            offset += (end_wpb - start_wpb) // INST_BYTES + 1
        return None

    def pcs(self):
        """The full squashed PC sequence (used for lockstep monitoring)."""
        out = []
        for start_pc, end_pc in self.blocks:
            pc = start_pc
            while pc <= end_pc:
                out.append(pc)
                pc += INST_BYTES
        return out


class WrongPathBuffers:
    """N-stream WPB with round-robin allocation."""

    def __init__(self, num_streams, entries_per_stream, single_page=False):
        self.num_streams = num_streams
        self.entries_per_stream = entries_per_stream
        self.single_page = single_page
        self.streams = [WPBStream() for _ in range(num_streams)]
        self._write_ptr = 0

    def allocate(self, block_ranges, event_id, trigger_seq):
        """Fill the next stream (round robin); returns its index.

        The caller must clean up the previous occupant (reserved physical
        registers) *before* calling this.
        """
        idx = self._write_ptr
        self._write_ptr = (self._write_ptr + 1) % self.num_streams
        self.streams[idx].fill(block_ranges, event_id, trigger_seq,
                               self.entries_per_stream,
                               single_page=self.single_page)
        return idx

    def next_victim(self):
        """Stream index the next allocation will overwrite."""
        return self._write_ptr

    def find_reconvergence(self, start_head, end_head, exclude=()):
        """Search all streams; returns (stream_idx, offset, reconv_pc).

        Among overlapping streams the most recently updated one wins, and
        within it the overlap closest to the mispredicted branch
        (Section 3.3.1 selection policy). ``exclude`` skips streams (e.g.
        the one currently driving an active lockstep).
        """
        best = None
        for idx, stream in enumerate(self.streams):
            if not stream.valid or idx in exclude:
                continue
            hit = stream.find_overlap(start_head, end_head)
            if hit is None:
                continue
            offset, reconv_pc = hit
            if best is None or stream.event_id > best[3]:
                best = (idx, offset, reconv_pc, stream.event_id)
        if best is None:
            return None
        return best[0], best[1], best[2]

    def any_valid(self):
        return any(s.valid for s in self.streams)

    def valid_count(self):
        return sum(1 for s in self.streams if s.valid)
