"""Multi-Stream Squash Reuse (the paper's contribution).

Components map one-to-one onto Section 3 of the paper:

* :mod:`repro.mssr.wpb` — Wrong-Path Buffers in the fetch stage, with the
  aligner-based block-range reconvergence search (Section 3.4).
* :mod:`repro.mssr.squash_log` — the Squash Log in the rename stage
  holding per-instruction RGIDs and destination registers (Section 3.3.2).
* :mod:`repro.mssr.bloom` — the Bloom-filter memory-hazard option
  (Section 3.8.3).
* :mod:`repro.mssr.controller` — the glue implementing reconvergence
  lockstep, the RGID reuse test, physical-register retention policy
  (conditions 1-5) and RGID overflow/reset handling.
"""

from repro.mssr.wpb import WrongPathBuffers, WPBStream
from repro.mssr.squash_log import SquashLog, LogStream, LogEntry
from repro.mssr.bloom import BloomFilter
from repro.mssr.controller import MSSRController

__all__ = [
    "WrongPathBuffers",
    "WPBStream",
    "SquashLog",
    "LogStream",
    "LogEntry",
    "BloomFilter",
    "MSSRController",
]
