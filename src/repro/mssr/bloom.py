"""Counting-free Bloom filter over memory addresses (Section 3.8.3).

Used by the optional "bloom" memory-hazard scheme: every executed store
address (and, in a multicore, every snooped address) is inserted; a
squashed load whose address hits the filter is denied reuse. The filter
is cleared whenever all squash logs are invalidated, bounding staleness.
"""


class BloomFilter:
    """k-hash Bloom filter over 8-byte address granules."""

    GRANULE = 8

    def __init__(self, num_bits=1024, num_hashes=2):
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = 0
        self.insertions = 0

    def _positions(self, granule):
        positions = []
        h = granule * 0x9E3779B97F4A7C15 & ((1 << 64) - 1)
        for i in range(self.num_hashes):
            positions.append((h >> (i * 16)) % self.num_bits)
        return positions

    def _granules(self, addr, size):
        first = addr // self.GRANULE
        last = (addr + max(size, 1) - 1) // self.GRANULE
        return range(first, last + 1)

    def insert(self, addr, size):
        for granule in self._granules(addr, size):
            for pos in self._positions(granule):
                self.bits |= (1 << pos)
        self.insertions += 1

    def maybe_contains(self, addr, size):
        """True if any granule of [addr, addr+size) may have been inserted."""
        for granule in self._granules(addr, size):
            if all(self.bits >> pos & 1 for pos in self._positions(granule)):
                return True
        return False

    def clear(self):
        self.bits = 0
        self.insertions = 0
