"""Squash Log: rename-side squashed-instruction state (Section 3.3.2).

Each stream mirrors the instruction sequence of its WPB twin but at
instruction granularity, recording exactly what the paper's Table 2
entry lists: source RGIDs, destination RGID, destination physical
register, plus execution status. (We additionally keep the PC and opcode
purely as simulator cross-checks — the hardware derives alignment from
the IFU's offset signal and never stores PCs.)
"""

from repro.isa.opcodes import OpClass
from repro.pipeline.rename import NULL_RGID


class LogEntry:
    """One squashed instruction's reuse metadata."""

    __slots__ = ("pc", "op", "executed", "src_rgids", "dest_rgid",
                 "dest_preg", "is_load", "load_addr", "load_size",
                 "reusable", "reserved", "consumed", "failed")

    def __init__(self, dyn):
        inst = dyn.inst
        self.pc = dyn.pc
        self.op = inst.op
        self.executed = dyn.executed
        self.src_rgids = dyn.src_rgids
        self.dest_rgid = dyn.dest_rgid
        self.dest_preg = dyn.dest_preg
        self.is_load = inst.is_load
        self.load_addr = dyn.mem_addr if inst.is_load else None
        self.load_size = dyn.mem_size if inst.is_load else 0
        # Reuse candidates: executed, register-writing, non-control,
        # non-store instructions with a valid destination RGID. Stores
        # have no register consumers and must re-execute for hazard
        # detection (Section 3.1); control instructions must re-resolve.
        op_class = inst.info.op_class
        self.reusable = (
            dyn.executed
            and inst.writes_reg
            and not dyn.verify_load
            and op_class not in (OpClass.BRANCH, OpClass.STORE,
                                 OpClass.NOP, OpClass.HALT)
            and self.dest_rgid is not None
            and self.dest_rgid != NULL_RGID
            and NULL_RGID not in self.src_rgids
            # A load reused under the Bloom scheme never computed an
            # address this time around; without one, the memory-hazard
            # check cannot run, so it may not be reused again.
            and not (self.is_load and self.load_addr is None)
        )
        self.reserved = False   # core granted us the dest preg
        self.consumed = False   # preg transferred to a reusing instruction
        self.failed = False     # reuse test failed; preg already released


class LogStream:
    """One squashed stream in the Squash Log."""

    __slots__ = ("entries", "valid", "event_id", "generation")

    def __init__(self):
        self.entries = []
        self.valid = False
        self.event_id = -1
        self.generation = 0

    def fill(self, entries, event_id):
        self.generation += 1
        self.entries = entries
        self.valid = bool(entries)
        self.event_id = event_id

    def invalidate(self):
        self.generation += 1
        self.entries = []
        self.valid = False

    def reserved_pregs(self):
        """Registers still held by this stream (not consumed/failed)."""
        return [e.dest_preg for e in self.entries
                if e.reserved and not e.consumed and not e.failed]


class SquashLog:
    """N-stream squash log; indices track the WPB one-to-one."""

    def __init__(self, num_streams, entries_per_stream):
        self.num_streams = num_streams
        self.entries_per_stream = entries_per_stream
        self.streams = [LogStream() for _ in range(num_streams)]

    def fill(self, idx, squashed_dyns, event_id):
        """Populate stream ``idx`` from squashed instructions (oldest
        first); younger instructions beyond capacity are discarded."""
        entries = [LogEntry(dyn)
                   for dyn in squashed_dyns[:self.entries_per_stream]]
        self.streams[idx].fill(entries, event_id)
        return self.streams[idx]

    def any_valid(self):
        return any(s.valid for s in self.streams)
