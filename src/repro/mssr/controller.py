"""The Multi-Stream Squash Reuse controller.

Orchestrates the paper's mechanism end-to-end:

* On a branch-misprediction squash, moves the squashed FTQ blocks into a
  Wrong-Path Buffer stream and the squashed (renamed) instructions'
  rename metadata into the matching Squash Log stream, reserving the
  physical registers of executed, reusable instructions (Section 3.3).
* On every fetched prediction block, ages streams (1024-instruction
  reconvergence timeout), searches all WPB streams for a range overlap
  (Section 3.4) and, once reconverged, walks the squashed stream in
  lockstep with fetch, annotating each incoming instruction with its
  Squash Log entry.
* At rename, performs the RGID reuse test (Section 3.5) and hands the
  squashed destination register to the reusing instruction; failed tests
  release the entry's register (retention condition 3) and divergence
  releases the stream (condition 4).
* Tracks RGID overflow and performs the global reset + new-stream
  suspension protocol (Section 3.3.2), and implements the paper's two
  memory-hazard schemes for reused loads (Section 3.8).
"""

from repro.baselines.base import ReuseScheme, ReuseResult
from repro.mssr.bloom import BloomFilter
from repro.mssr.squash_log import SquashLog
from repro.mssr.wpb import WrongPathBuffers


class _Lockstep:
    """State of an in-progress reconvergence (one at a time)."""

    __slots__ = ("stream_idx", "generation", "pcs", "pos", "entry_idx")

    def __init__(self, stream_idx, generation, pcs, pos, entry_idx):
        self.stream_idx = stream_idx
        self.generation = generation
        self.pcs = pcs
        self.pos = pos            # index into pcs (next expected PC)
        self.entry_idx = entry_idx  # matching Squash Log position


class MSSRController(ReuseScheme):
    """ReuseScheme implementation of the paper's mechanism."""

    name = "mssr"
    needs_rgids = True

    def __init__(self, config):
        super().__init__()
        self.config = config
        self.wpb = WrongPathBuffers(config.num_streams, config.wpb_entries,
                                    single_page=config.single_page_wpb)
        self.log = SquashLog(config.num_streams, config.squash_log_entries)
        self.bloom = BloomFilter(config.bloom_bits, config.bloom_hashes) \
            if config.memory_hazard_scheme == "bloom" else None
        #: Capture WPB ranges at the FTQ (squash-time, incl. undelivered
        #: blocks) instead of from the delivered blocks alone. The core
        #: wires the fetch unit's wrong_path_sink to us when set.
        self.ftq_capture = config.ftq_capture
        self._ftq_blocks = []       # pc ranges pushed by the fetch unit

        self._squash_events = 0
        self._lockstep = None
        self._pending = {}          # seq -> (stream_idx, entry_idx) to claim
        self._last_trigger_seq = -1
        self._suspended_until_commits = 0
        self._alloc_order = []      # stream indices, oldest allocation first

    # ------------------------------------------------------------------
    # Squash-time population
    # ------------------------------------------------------------------
    def on_wrong_path_block(self, block):
        # FTQ-sourced capture: the fetch unit pushes every squashed
        # block (delivered suffix first, then flushed pending blocks)
        # during squash_ftq_after, which runs just before
        # on_branch_squash consumes the buffer.
        self._ftq_blocks.append(block.pc_range())

    def on_branch_squash(self, trigger, squashed, squashed_blocks):
        captured_ranges = self._ftq_blocks
        self._ftq_blocks = []
        self._end_lockstep(diverged=False)
        self._squash_events += 1
        self._last_trigger_seq = trigger.seq
        self._pending = {}

        if self._suspended():
            return
        renamed = [dyn for dyn in squashed if dyn.renamed]
        if not renamed:
            return

        # Clean up the round-robin victim before overwriting it.
        victim = self.wpb.next_victim()
        self._invalidate_stream(victim)

        if self.ftq_capture:
            # Delivered blocks lead the list, so the WPB fill (capped at
            # M entries, oldest first) covers at least what decode-time
            # capture would have seen; pending blocks use spare capacity.
            block_ranges = captured_ranges
        else:
            block_ranges = [blk.pc_range() for blk in squashed_blocks
                            if blk.num_insts]
        idx = self.wpb.allocate(block_ranges, self._squash_events,
                                trigger.seq)
        stream = self.log.fill(idx, renamed, self._squash_events)
        self._alloc_order.append(idx)

        # Remember which squashed instructions' registers to claim; the
        # core asks via wants_preg immediately after this call.
        for entry_idx, (entry, dyn) in enumerate(
                zip(stream.entries, renamed)):
            if entry.reusable:
                self._pending[dyn.seq] = (idx, entry_idx)

    def wants_preg(self, dyn):
        location = self._pending.get(dyn.seq)
        if location is None:
            return False
        stream_idx, entry_idx = location
        entry = self.log.streams[stream_idx].entries[entry_idx]
        entry.reserved = True
        return True

    def on_replay_squash(self, trigger):
        # Memory-order replays refetch the same path; the redirect still
        # terminates any in-flight lockstep.
        self._ftq_blocks = []
        self._end_lockstep(diverged=False)

    # ------------------------------------------------------------------
    # Fetch-side reconvergence detection and lockstep monitoring
    # ------------------------------------------------------------------
    def on_fetch_block(self, block):
        if not block.num_insts:
            return
        self._age_streams(block.num_insts)

        start = 0
        if self._lockstep is not None:
            start = self._follow_lockstep(block)
            if start is None:
                return  # whole block consumed by the active lockstep

        if self._lockstep is None and self.wpb.any_valid():
            self._try_reconverge(block, start)

    def _age_streams(self, num_insts):
        active = self._lockstep.stream_idx if self._lockstep else -1
        for idx, stream in enumerate(self.wpb.streams):
            if not stream.valid or idx == active:
                continue
            stream.age += num_insts
            if stream.age >= self.config.reconvergence_timeout:
                self.core.obs.wpb_timeout(idx)
                self._invalidate_stream(idx)

    def _try_reconverge(self, block, start):
        insts = block.insts[start:]
        if not insts:
            return
        tried = set()
        while True:
            hit = self.wpb.find_reconvergence(insts[0].pc, insts[-1].pc,
                                              exclude=tried)
            if hit is None:
                return
            stream_idx, offset, reconv_pc = hit
            log_stream = self.log.streams[stream_idx]
            if log_stream.valid and offset < len(log_stream.entries):
                break
            # Overlap lies beyond the logged (renamed) portion — nothing
            # to reuse *here*, but a later corrected path may reconverge
            # earlier into this stream, so keep it and look at others.
            tried.add(stream_idx)
        wpb_stream = self.wpb.streams[stream_idx]

        distance = self._squash_events - wpb_stream.event_id + 1
        self.core.obs.reconverge(stream_idx, reconv_pc, distance,
                                 self._classify(wpb_stream),
                                 wpb_stream.trigger_seq)

        self._lockstep = _Lockstep(
            stream_idx, log_stream.generation, wpb_stream.pcs(),
            pos=offset, entry_idx=offset)
        # Annotate the tail of this block starting at the reconvergence PC.
        skip = 0
        for dyn in insts:
            if dyn.pc == reconv_pc:
                break
            skip += 1
        self._annotate(insts[skip:])

    def _classify(self, stream):
        """The paper's reconvergence taxonomy, as a kind string."""
        if stream.trigger_seq == self._last_trigger_seq:
            return "simple"
        if stream.trigger_seq < self._last_trigger_seq:
            return "software"
        return "hardware"

    def _follow_lockstep(self, block):
        """Continue matching a block against the active stream.

        Returns the index into ``block.insts`` where lockstep ended (for a
        fresh reconvergence scan) or None if the block was fully consumed.
        """
        lock = self._lockstep
        log_stream = self.log.streams[lock.stream_idx]
        if log_stream.generation != lock.generation:
            self._lockstep = None
            return 0
        consumed = self._annotate(block.insts)
        if self._lockstep is None:
            return consumed
        return None

    def _annotate(self, dyns):
        """Tag instructions with squash-log entries while PCs match.

        Returns how many instructions were consumed before divergence or
        stream exhaustion (at which point the lockstep is torn down).
        """
        lock = self._lockstep
        log_stream = self.log.streams[lock.stream_idx]
        consumed = 0
        for dyn in dyns:
            if lock.entry_idx >= len(log_stream.entries) \
                    or lock.pos >= len(lock.pcs):
                self._end_lockstep(diverged=True)
                return consumed
            if dyn.pc != lock.pcs[lock.pos]:
                self._end_lockstep(diverged=True)
                return consumed
            dyn.reuse_candidate = (lock.stream_idx, lock.entry_idx,
                                   lock.generation)
            lock.pos += 1
            lock.entry_idx += 1
            consumed += 1
        return consumed

    def _end_lockstep(self, diverged):
        if self._lockstep is None:
            return
        stream_idx = self._lockstep.stream_idx
        self._lockstep = None
        if diverged:
            # Condition (4): the reconvergence stream diverged — release
            # everything the stream still holds.
            self._invalidate_stream(stream_idx)

    # ------------------------------------------------------------------
    # Rename-side reuse test
    # ------------------------------------------------------------------
    def try_reuse(self, dyn):
        candidate = dyn.reuse_candidate
        if candidate is None:
            return None
        stream_idx, entry_idx, generation = candidate
        log_stream = self.log.streams[stream_idx]
        if not log_stream.valid or log_stream.generation != generation:
            return None
        entry = log_stream.entries[entry_idx]
        if entry.pc != dyn.pc or entry.op is not dyn.inst.op:
            raise AssertionError(
                "squash log misalignment at %#x (logged %#x %s)"
                % (dyn.pc, entry.pc, entry.op))
        self.core.obs.reuse_test(dyn, stream_idx, entry_idx,
                                 entry.src_rgids)
        if (not entry.reusable or not entry.reserved or entry.consumed
                or entry.failed):
            return None

        # The RGID reuse test: every source's current RGID must equal the
        # squashed execution's RGID.
        if dyn.src_rgids != entry.src_rgids:
            self._fail_entry(entry)
            return None

        verify_addr = None
        if entry.is_load:
            if self.bloom is not None:
                if self.bloom.maybe_contains(entry.load_addr,
                                             entry.load_size):
                    self._fail_entry(entry)
                    return None
            else:
                verify_addr = entry.load_addr

        entry.consumed = True
        return ReuseResult(entry.dest_preg, entry.dest_rgid,
                           verify_addr=verify_addr,
                           tag=(stream_idx, entry_idx))

    def _fail_entry(self, entry):
        """Condition (3): failed reuse test — release the register now."""
        entry.failed = True
        if entry.reserved:
            self.core.free_reserved_preg(entry.dest_preg)

    # ------------------------------------------------------------------
    # Lifecycle / maintenance
    # ------------------------------------------------------------------
    def _invalidate_stream(self, idx):
        log_stream = self.log.streams[idx]
        for preg in log_stream.reserved_pregs():
            self.core.free_reserved_preg(preg)
        log_stream.invalidate()
        self.wpb.streams[idx].invalidate()
        if idx in self._alloc_order:
            self._alloc_order.remove(idx)
        if self.bloom is not None and not self.log.any_valid():
            self.bloom.clear()

    def invalidate_all(self):
        self._end_lockstep(diverged=False)
        for idx in range(self.config.num_streams):
            self._invalidate_stream(idx)

    def on_verify_fail(self, dyn):
        # Paper: value-verification failure flushes the pipeline and
        # invalidates the squash logs.
        self.invalidate_all()

    def on_store_executed(self, addr, size):
        if self.bloom is not None and addr is not None:
            self.bloom.insert(addr, size)

    def emergency_release(self):
        """Condition (5): free-list pressure — release the least recent
        stream that still holds registers."""
        for idx in list(self._alloc_order):
            if self.log.streams[idx].reserved_pregs():
                self.core.obs.pressure_free()
                self._invalidate_stream(idx)
                return True
        return False

    def on_cycle(self, cycle):
        rat = self.core.rat
        if rat.overflow_events >= self.config.rgid_overflow_limit:
            self._global_reset(suspend=True)
        elif rat.overflow_events and not self.log.any_valid():
            self._global_reset(suspend=False)
        self.core.stats.rgid_overflows = max(
            self.core.stats.rgid_overflows, rat.overflow_events)

    def _global_reset(self, suspend):
        self.core.obs.rgid_reset()
        self.invalidate_all()
        self.core.rat.reset_rgids()
        if suspend:
            self._suspended_until_commits = (
                self.core.stats.committed_insts
                + self.core.config.rob_entries)

    def _suspended(self):
        return self.core.stats.committed_insts < \
            self._suspended_until_commits
