"""Native-execution semantics matching the ISA.

Compiled code computes on wrapping 64-bit two's-complement integers with
truncating division. To let the *same* kernel source serve as its own
oracle, :class:`I64` reimplements Python's arithmetic operators with those
semantics, and :func:`native_call` invokes a kernel with all integer
arguments wrapped.
"""

from repro.utils.bits import (
    to_signed,
    to_unsigned,
    div_trunc,
    rem_trunc,
    sll64,
    sra64,
)


class I64(int):
    """Signed 64-bit wrapping integer.

    Instances always hold the *signed* canonical value. All binary
    operators wrap; ``//`` and ``%`` truncate toward zero (RISC-V DIV/REM);
    ``>>`` is arithmetic; ``<<`` wraps.
    """

    __slots__ = ()

    def __new__(cls, value):
        return super().__new__(cls, to_signed(to_unsigned(int(value))))

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _wrap(value):
        return I64(value)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other):
        return self._wrap(int(self) + int(other))

    __radd__ = __add__

    def __sub__(self, other):
        return self._wrap(int(self) - int(other))

    def __rsub__(self, other):
        return self._wrap(int(other) - int(self))

    def __mul__(self, other):
        return self._wrap(int(self) * int(other))

    __rmul__ = __mul__

    def __floordiv__(self, other):
        return self._wrap(to_signed(div_trunc(to_unsigned(int(self)),
                                              to_unsigned(int(other)))))

    def __rfloordiv__(self, other):
        return I64(other).__floordiv__(self)

    def __mod__(self, other):
        return self._wrap(to_signed(rem_trunc(to_unsigned(int(self)),
                                              to_unsigned(int(other)))))

    def __rmod__(self, other):
        return I64(other).__mod__(self)

    def __neg__(self):
        return self._wrap(-int(self))

    def __invert__(self):
        return self._wrap(~int(self))

    # -- bitwise --------------------------------------------------------
    def __and__(self, other):
        return self._wrap(to_unsigned(int(self)) & to_unsigned(int(other)))

    __rand__ = __and__

    def __or__(self, other):
        return self._wrap(to_unsigned(int(self)) | to_unsigned(int(other)))

    __ror__ = __or__

    def __xor__(self, other):
        return self._wrap(to_unsigned(int(self)) ^ to_unsigned(int(other)))

    __rxor__ = __xor__

    def __lshift__(self, other):
        return self._wrap(sll64(to_unsigned(int(self)), int(other)))

    def __rshift__(self, other):
        return self._wrap(sra64(to_unsigned(int(self)), int(other)))

    def __rlshift__(self, other):
        return I64(other).__lshift__(self)

    def __rrshift__(self, other):
        return I64(other).__rshift__(self)


class I64Array(list):
    """List whose element reads return :class:`I64` values.

    Adding a byte offset yields an :class:`ArrayView`, mirroring the
    compiled semantics where arrays are base addresses and ``base + k*8``
    addresses element ``k`` (kernels use this to carve scratch planes out
    of one allocation).
    """

    def __getitem__(self, index):
        if int(index) < 0:
            raise IndexError(
                "negative array index %d: compiled code would address "
                "memory before the array (mask/clamp the index)"
                % int(index))
        return I64(list.__getitem__(self, int(index)))

    def __setitem__(self, index, value):
        if int(index) < 0:
            raise IndexError(
                "negative array index %d: compiled code would address "
                "memory before the array (mask/clamp the index)"
                % int(index))
        list.__setitem__(self, int(index), I64(value))

    def __add__(self, byte_offset):
        return ArrayView(self, int(byte_offset))

    def __radd__(self, byte_offset):
        return ArrayView(self, int(byte_offset))


class ArrayView:
    """Byte-offset view over an :class:`I64Array` (native pointer math)."""

    __slots__ = ("base", "byte_offset")

    def __init__(self, base, byte_offset):
        if byte_offset % 8:
            raise ValueError("array views must be 8-byte aligned")
        if isinstance(base, ArrayView):
            byte_offset += base.byte_offset
            base = base.base
        self.base = base
        self.byte_offset = byte_offset

    def _index(self, index):
        resolved = self.byte_offset // 8 + int(index)
        if resolved < 0:
            raise IndexError("negative effective array index %d" % resolved)
        return resolved

    def __getitem__(self, index):
        return I64(list.__getitem__(self.base, self._index(index)))

    def __setitem__(self, index, value):
        list.__setitem__(self.base, self._index(index), I64(value))

    def __add__(self, byte_offset):
        return ArrayView(self, int(byte_offset))


def native_call(func, *args):
    """Call ``func`` natively with ISA integer semantics.

    Integer args are wrapped in :class:`I64`; list args are converted to
    :class:`I64Array` *in place semantics* (a new array is created; mutated
    contents can be read back from the returned ``arrays`` mapping by
    positional index).

    Returns ``(result, arrays)`` where ``arrays[i]`` is the (possibly
    mutated) array passed at positional index ``i`` (or None for ints).
    """
    call_args = []
    arrays = {}
    for i, arg in enumerate(args):
        if isinstance(arg, list):
            arr = I64Array(I64(v) for v in arg)
            arrays[i] = arr
            call_args.append(arr)
        else:
            call_args.append(I64(arg))
            arrays[i] = None
    result = func(*call_args)
    if result is None:
        result = 0
    return int(I64(result)), arrays
