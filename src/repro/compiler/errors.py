"""Compiler error type."""


class CompileError(Exception):
    """Raised when a kernel uses Python constructs outside the subset."""

    def __init__(self, message, node=None, function=None):
        location = ""
        if function:
            location += " in %s()" % function
        if node is not None and hasattr(node, "lineno"):
            location += " at line %d" % node.lineno
        super().__init__(message + location)
        self.node = node
        self.function = function
