"""Compiler intrinsics.

These functions are recognised *by name* inside kernels and expanded
inline by the code generator; the Python definitions below give them
identical semantics for native (oracle) execution. They return
:class:`~repro.compiler.runtime.I64` so that follow-on Python arithmetic
keeps ISA semantics (wrapping, truncating division).
"""

from repro.utils.bits import to_unsigned
from repro.utils.rng import mix_hash
from repro.compiler.runtime import I64

#: Names the code generator expands inline.
INTRINSIC_NAMES = ("hash64", "min64", "max64")


def hash64(value):
    """Stateless 64-bit mixing hash (splitmix64 finalizer).

    This is the ``hash`` function from Listing 1 of the paper: its output
    is effectively random in every bit, so branching on it produces
    hard-to-predict branches.
    """
    return I64(mix_hash(to_unsigned(int(value))))


def min64(a, b):
    """Signed minimum (compiles to a single MIN instruction)."""
    a, b = I64(a), I64(b)
    return a if int(a) <= int(b) else b


def max64(a, b):
    """Signed maximum (compiles to a single MAX instruction)."""
    a, b = I64(a), I64(b)
    return a if int(a) >= int(b) else b
