"""AST -> ISA code generation for one function.

Calling convention (RISC-V flavoured):

* arguments in ``a0``-``a7``, result in ``a0``, link register ``ra``;
* locals live in callee-saved ``s0``-``s11``, overflowing to stack slots;
* expression evaluation uses the caller-saved temporaries ``t0``-``t6``
  as an operand stack, spilled around calls;
* every frame reserves a temp-save area so nested calls inside
  expressions cannot clobber live temporaries.

The generated control flow intentionally mirrors the source: each ``if``
becomes one conditional branch, loops end in a backward branch, and
short-circuit ``and``/``or`` become branch ladders — this is what gives
the synthetic workloads realistic branch behaviour.
"""

import ast

from repro.compiler.errors import CompileError
from repro.compiler.intrinsics import INTRINSIC_NAMES
from repro.isa.opcodes import Op, IMM_FORM
from repro.isa.registers import CALLEE_SAVED, CALLER_SAVED_TEMPS, ARG_REGS

_BINOP_OPS = {
    ast.Add: Op.ADD,
    ast.Sub: Op.SUB,
    ast.Mult: Op.MUL,
    ast.FloorDiv: Op.DIV,
    ast.Mod: Op.REM,
    ast.BitAnd: Op.AND,
    ast.BitOr: Op.OR,
    ast.BitXor: Op.XOR,
    ast.LShift: Op.SLL,
    ast.RShift: Op.SRA,
}

# branch-if-true: (opcode, swap_operands)
_CMP_TRUE = {
    ast.Lt: (Op.BLT, False),
    ast.Gt: (Op.BLT, True),
    ast.GtE: (Op.BGE, False),
    ast.LtE: (Op.BGE, True),
    ast.Eq: (Op.BEQ, False),
    ast.NotEq: (Op.BNE, False),
}

# branch-if-false: (opcode, swap_operands)
_CMP_FALSE = {
    ast.Lt: (Op.BGE, False),
    ast.Gt: (Op.BGE, True),
    ast.GtE: (Op.BLT, False),
    ast.LtE: (Op.BLT, True),
    ast.Eq: (Op.BNE, False),
    ast.NotEq: (Op.BEQ, False),
}

_WORD = 8
_NUM_TEMPS = len(CALLER_SAVED_TEMPS)
_NUM_ARG_SLOTS = len(ARG_REGS)


def function_label(name):
    """Assembler label of a compiled function."""
    return "fn_%s" % name


class _LocalsCollector(ast.NodeVisitor):
    """Find every name assigned in a function body (in first-use order)."""

    def __init__(self):
        self.names = []
        self.seen = set()
        self.has_call = False
        self.for_nodes = []

    def add(self, name):
        if name not in self.seen:
            self.seen.add(name)
            self.names.append(name)

    def visit_Assign(self, node):
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        if isinstance(node.target, ast.Name):
            self.add(node.target.id)
        self.generic_visit(node)

    def visit_For(self, node):
        if isinstance(node.target, ast.Name):
            self.add(node.target.id)
        self.for_nodes.append(node)
        self.generic_visit(node)

    def visit_Call(self, node):
        if isinstance(node.func, ast.Name) and node.func.id not in (
                INTRINSIC_NAMES + ("range",)):
            self.has_call = True
        self.generic_visit(node)


class FunctionCompiler:
    """Compile a single ``ast.FunctionDef`` into the shared assembler."""

    def __init__(self, module, func_def, asm):
        self.module = module
        self.func = func_def
        self.name = func_def.name
        self.asm = asm
        self._label_counter = 0
        self._loop_stack = []  # (continue_label, break_label)
        self._active_temps = []
        self._analyse()
        self._free_temps = list(self._temp_pool)

    # ------------------------------------------------------------------
    # Frame layout
    # ------------------------------------------------------------------
    def _analyse(self):
        params = [a.arg for a in self.func.args.args]
        if len(params) > _NUM_ARG_SLOTS:
            raise CompileError("more than %d parameters" % _NUM_ARG_SLOTS,
                               self.func, self.name)
        collector = _LocalsCollector()
        for stmt in self.func.body:
            collector.visit(stmt)
        local_names = params + [n for n in collector.names
                                if n not in params]
        # Each `for` loop gets a hidden local caching its range() bound
        # (evaluated once, matching Python semantics).
        self.for_stop_names = {}
        for i, for_node in enumerate(collector.for_nodes):
            name = "$stop%d" % i
            self.for_stop_names[id(for_node)] = name
            local_names.append(name)
        self.params = params
        self.is_leaf = not collector.has_call

        # Register allocation. Leaf functions keep locals in caller-saved
        # registers (params stay in their argument registers), giving a
        # frameless body with no stack traffic — like any -O2 compiler.
        # Non-leaf functions place locals in callee-saved s-registers,
        # overflowing to stack slots.
        self.reg_locals = {}
        self.stack_locals = {}
        self._temp_pool = list(CALLER_SAVED_TEMPS)
        leaf_pool = (["t4", "t5", "t6"]
                     + [reg for reg in reversed(ARG_REGS)
                        if reg not in (ARG_REGS[:len(params)])])
        others = [n for n in local_names if n not in params]
        if self.is_leaf and len(others) <= len(leaf_pool):
            for i, name in enumerate(params):
                self.reg_locals[name] = ARG_REGS[i]
            for i, name in enumerate(others):
                self.reg_locals[name] = leaf_pool[i]
            self._temp_pool = ["t0", "t1", "t2", "t3"]
        else:
            for i, name in enumerate(local_names):
                if i < len(CALLEE_SAVED):
                    self.reg_locals[name] = CALLEE_SAVED[i]
                else:
                    self.stack_locals[name] = None  # offset assigned below

        # Frame: [temp save][spill slots][saved s-regs][saved ra]
        # (leaf functions never spill temps around calls, so they skip
        # the temp-save area; fully register-allocated leaves end up
        # frameless.)
        offset = 0
        self.temp_save_base = offset
        if not self.is_leaf:
            offset += _NUM_TEMPS * _WORD
        for name in self.stack_locals:
            self.stack_locals[name] = offset
            offset += _WORD
        self.saved_sregs = [reg for reg in self.reg_locals.values()
                            if reg in CALLEE_SAVED]
        self.sreg_save = {}
        for sreg in self.saved_sregs:
            self.sreg_save[sreg] = offset
            offset += _WORD
        self.ra_offset = None
        if not self.is_leaf:
            self.ra_offset = offset
            offset += _WORD
        self.frame_size = (offset + 15) & ~15

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _new_label(self, kind):
        self._label_counter += 1
        return "%s$%s%d" % (self.name, kind, self._label_counter)

    def _alloc_temp(self, node=None):
        if not self._free_temps:
            raise CompileError(
                "expression too complex (out of temporaries)", node,
                self.name)
        reg = self._free_temps.pop(0)
        self._active_temps.append(reg)
        return reg

    def _release(self, reg):
        if reg in self._active_temps:
            self._active_temps.remove(reg)
            self._free_temps.insert(0, reg)

    def _is_temp(self, reg):
        return reg in self._active_temps

    def _err(self, message, node):
        raise CompileError(message, node, self.name)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def compile(self):
        asm = self.asm
        asm.label(function_label(self.name))
        if self.frame_size:
            asm.addi("sp", "sp", -self.frame_size)
        if self.ra_offset is not None:
            asm.sd("ra", "sp", self.ra_offset)
        for sreg, off in self.sreg_save.items():
            asm.sd(sreg, "sp", off)
        for i, name in enumerate(self.params):
            self._store_local(name, ARG_REGS[i])
        self._epilogue_label = self._new_label("epilogue")

        for stmt in self.func.body:
            self._stmt(stmt)
        # Implicit `return 0`.
        asm.li("a0", 0)
        asm.label(self._epilogue_label)
        for sreg, off in self.sreg_save.items():
            asm.ld(sreg, "sp", off)
        if self.ra_offset is not None:
            asm.ld("ra", "sp", self.ra_offset)
        if self.frame_size:
            asm.addi("sp", "sp", self.frame_size)
        asm.ret()

    # ------------------------------------------------------------------
    # Locals access
    # ------------------------------------------------------------------
    def _load_local(self, name, node=None):
        """Return a register holding local ``name`` (may be its s-reg)."""
        if name in self.reg_locals:
            return self.reg_locals[name]
        if name in self.stack_locals:
            reg = self._alloc_temp(node)
            self.asm.ld(reg, "sp", self.stack_locals[name])
            return reg
        self._err("unknown variable %r" % name, node)

    def _store_local(self, name, reg):
        if name in self.reg_locals:
            if self.reg_locals[name] != reg:
                self.asm.mv(self.reg_locals[name], reg)
        elif name in self.stack_locals:
            self.asm.sd(reg, "sp", self.stack_locals[name])
        else:
            raise CompileError("unknown variable %r" % name,
                               function=self.name)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmt(self, node):
        if isinstance(node, ast.Assign):
            self._stmt_assign(node)
        elif isinstance(node, ast.AugAssign):
            self._stmt_augassign(node)
        elif isinstance(node, ast.If):
            self._stmt_if(node)
        elif isinstance(node, ast.While):
            self._stmt_while(node)
        elif isinstance(node, ast.For):
            self._stmt_for(node)
        elif isinstance(node, ast.Return):
            self._stmt_return(node)
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                self._err("break outside loop", node)
            self.asm.j(self._loop_stack[-1][1])
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                self._err("continue outside loop", node)
            self.asm.j(self._loop_stack[-1][0])
        elif isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):  # docstring
                return
            reg = self._eval(node.value)
            self._release(reg)
        elif isinstance(node, ast.Pass):
            pass
        else:
            self._err("unsupported statement %s" % type(node).__name__, node)

    def _stmt_assign(self, node):
        if len(node.targets) != 1:
            self._err("chained assignment not supported", node)
        target = node.targets[0]
        if isinstance(target, ast.Name):
            reg = self._eval(node.value)
            self._store_local(target.id, reg)
            self._release(reg)
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, node.value)
        else:
            self._err("unsupported assignment target", node)

    def _stmt_augassign(self, node):
        op = type(node.op)
        if op not in _BINOP_OPS:
            self._err("unsupported augmented op", node)
        binop = ast.BinOp(left=self._target_as_expr(node.target),
                          op=node.op, right=node.value)
        ast.copy_location(binop, node)
        ast.fix_missing_locations(binop)
        if isinstance(node.target, ast.Name):
            reg = self._eval(binop)
            self._store_local(node.target.id, reg)
            self._release(reg)
        elif isinstance(node.target, ast.Subscript):
            self._store_subscript(node.target, binop)
        else:
            self._err("unsupported augmented target", node)

    @staticmethod
    def _target_as_expr(target):
        expr = ast.copy_location(
            ast.Subscript(value=target.value, slice=target.slice,
                          ctx=ast.Load())
            if isinstance(target, ast.Subscript)
            else ast.Name(id=target.id, ctx=ast.Load()),
            target)
        ast.fix_missing_locations(expr)
        return expr

    def _stmt_if(self, node):
        else_label = self._new_label("else")
        self._branch_if_false(node.test, else_label)
        for stmt in node.body:
            self._stmt(stmt)
        if node.orelse:
            end_label = self._new_label("endif")
            self.asm.j(end_label)
            self.asm.label(else_label)
            for stmt in node.orelse:
                self._stmt(stmt)
            self.asm.label(end_label)
        else:
            self.asm.label(else_label)

    def _stmt_while(self, node):
        if node.orelse:
            self._err("while/else not supported", node)
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self.asm.label(head)
        self._branch_if_false(node.test, end)
        self._loop_stack.append((head, end))
        for stmt in node.body:
            self._stmt(stmt)
        self._loop_stack.pop()
        self.asm.j(head)
        self.asm.label(end)

    def _stmt_for(self, node):
        if node.orelse:
            self._err("for/else not supported", node)
        if not isinstance(node.target, ast.Name):
            self._err("for target must be a name", node)
        call = node.iter
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
                and call.func.id == "range"):
            self._err("only `for x in range(...)` is supported", node)
        args = call.args
        if len(args) == 1:
            start, stop, step = ast.Constant(value=0), args[0], 1
        elif len(args) == 2:
            start, stop, step = args[0], args[1], 1
        elif len(args) == 3:
            step = self._constant_int(args[2])
            if step is None:
                self._err("range() step must be a constant", node)
            start, stop = args[0], args[1]
        else:
            self._err("bad range() arity", node)
        if step == 0:
            self._err("range() step must be nonzero", node)
        ast.copy_location(start, node)
        ast.fix_missing_locations(start)

        var = node.target.id
        # i = start
        reg = self._eval(start)
        self._store_local(var, reg)
        self._release(reg)
        # stop bound: evaluated once into a dedicated slot to match Python.
        stop_reg = self._eval(stop)
        stop_local = self.for_stop_names[id(node)]
        self._store_local(stop_local, stop_reg)
        self._release(stop_reg)

        head = self._new_label("for")
        cont = self._new_label("forcont")
        end = self._new_label("endfor")
        asm = self.asm
        asm.label(head)
        ivar = self._load_local(var, node)
        bound = self._load_local(stop_local, node)
        if step > 0:
            asm.branch(Op.BGE, ivar, bound, end)
        else:
            asm.branch(Op.BGE, bound, ivar, end)
        self._release(ivar)
        self._release(bound)
        self._loop_stack.append((cont, end))
        for stmt in node.body:
            self._stmt(stmt)
        self._loop_stack.pop()
        asm.label(cont)
        ivar = self._load_local(var, node)
        if ivar in self.reg_locals.values():
            asm.addi(ivar, ivar, step)
        else:
            asm.addi(ivar, ivar, step)
            self._store_local(var, ivar)
        self._release(ivar)
        asm.j(head)
        asm.label(end)

    @staticmethod
    def _constant_int(node):
        """Fold a literal (possibly negated) integer; None otherwise."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = FunctionCompiler._constant_int(node.operand)
            if inner is not None:
                return -inner
        return None

    def _stmt_return(self, node):
        if node.value is not None:
            reg = self._eval(node.value)
            if reg != "a0":
                self.asm.mv("a0", reg)
            self._release(reg)
        else:
            self.asm.li("a0", 0)
        self.asm.j(self._epilogue_label)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _branch_if_false(self, test, label):
        if isinstance(test, ast.Compare):
            self._branch_compare(test, label, when_true=False)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                self._branch_if_false(value, label)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            true_label = self._new_label("ortrue")
            for value in test.values[:-1]:
                self._branch_if_true(value, true_label)
            self._branch_if_false(test.values[-1], label)
            self.asm.label(true_label)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._branch_if_true(test.operand, label)
        elif isinstance(test, ast.Constant):
            if not test.value:
                self.asm.j(label)
        else:
            reg = self._eval(test)
            self.asm.beqz(reg, label)
            self._release(reg)

    def _branch_if_true(self, test, label):
        if isinstance(test, ast.Compare):
            self._branch_compare(test, label, when_true=True)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            for value in test.values:
                self._branch_if_true(value, label)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            false_label = self._new_label("andfalse")
            for value in test.values[:-1]:
                self._branch_if_false(value, false_label)
            self._branch_if_true(test.values[-1], label)
            self.asm.label(false_label)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._branch_if_false(test.operand, label)
        elif isinstance(test, ast.Constant):
            if test.value:
                self.asm.j(label)
        else:
            reg = self._eval(test)
            self.asm.bnez(reg, label)
            self._release(reg)

    def _branch_compare(self, node, label, when_true):
        if len(node.ops) != 1:
            self._err("chained comparisons not supported", node)
        table = _CMP_TRUE if when_true else _CMP_FALSE
        op_type = type(node.ops[0])
        if op_type not in table:
            self._err("unsupported comparison", node)
        opcode, swap = table[op_type]
        left = self._eval(node.left)
        right = self._eval(node.comparators[0])
        if swap:
            left, right = right, left
        self.asm.branch(opcode, left, right, label)
        self._release(left)
        self._release(right)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, node):
        """Evaluate an expression; returns a register holding the value."""
        if isinstance(node, ast.Constant):
            return self._eval_constant(node)
        if isinstance(node, ast.Name):
            return self._load_local(node.id, node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BoolOp):
            return self._eval_boolop(node)
        self._err("unsupported expression %s" % type(node).__name__, node)

    def _eval_constant(self, node):
        value = node.value
        if value is True:
            value = 1
        elif value is False:
            value = 0
        if not isinstance(value, int):
            self._err("only integer constants are supported", node)
        if value == 0:
            return "zero"
        reg = self._alloc_temp(node)
        self.asm.li(reg, value)
        return reg

    def _dest_for(self, *operands):
        """Pick a destination: reuse an operand temp or allocate."""
        for reg in operands:
            if self._is_temp(reg):
                return reg
        return self._alloc_temp()

    def _eval_binop(self, node):
        op_type = type(node.op)
        if op_type not in _BINOP_OPS:
            self._err("unsupported binary operator", node)
        opcode = _BINOP_OPS[op_type]
        left = self._eval(node.left)
        # Immediate folding for the common `x op const` shape.
        if (isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
                and opcode in IMM_FORM):
            dest = self._dest_for(left)
            self.asm.ri(IMM_FORM[opcode], dest, left, node.right.value)
            if dest != left:
                self._release(left)
            return dest
        right = self._eval(node.right)
        dest = self._dest_for(left, right)
        self.asm.rr(opcode, dest, left, right)
        for reg in (left, right):
            if reg != dest:
                self._release(reg)
        return dest

    def _eval_unary(self, node):
        if isinstance(node.op, ast.USub):
            operand = self._eval(node.operand)
            dest = self._dest_for(operand)
            self.asm.rr(Op.SUB, dest, "zero", operand)
            if dest != operand:
                self._release(operand)
            return dest
        if isinstance(node.op, ast.Invert):
            operand = self._eval(node.operand)
            dest = self._dest_for(operand)
            self.asm.ri(Op.XORI, dest, operand, -1)
            if dest != operand:
                self._release(operand)
            return dest
        if isinstance(node.op, ast.Not):
            operand = self._eval(node.operand)
            dest = self._dest_for(operand)
            self.asm.ri(Op.SLTIU, dest, operand, 1)
            if dest != operand:
                self._release(operand)
            return dest
        if isinstance(node.op, ast.UAdd):
            return self._eval(node.operand)
        self._err("unsupported unary operator", node)

    def _eval_compare(self, node):
        """Comparison in value context: materialise 0/1."""
        if len(node.ops) != 1:
            self._err("chained comparisons not supported", node)
        left = self._eval(node.left)
        right = self._eval(node.comparators[0])
        dest = self._dest_for(left, right)
        op_type = type(node.ops[0])
        asm = self.asm
        if op_type is ast.Lt:
            asm.rr(Op.SLT, dest, left, right)
        elif op_type is ast.Gt:
            asm.rr(Op.SLT, dest, right, left)
        elif op_type is ast.GtE:
            asm.rr(Op.SLT, dest, left, right)
            asm.ri(Op.XORI, dest, dest, 1)
        elif op_type is ast.LtE:
            asm.rr(Op.SLT, dest, right, left)
            asm.ri(Op.XORI, dest, dest, 1)
        elif op_type is ast.Eq:
            asm.rr(Op.SUB, dest, left, right)
            asm.ri(Op.SLTIU, dest, dest, 1)
        elif op_type is ast.NotEq:
            asm.rr(Op.SUB, dest, left, right)
            asm.rr(Op.SLTU, dest, "zero", dest)
        else:
            self._err("unsupported comparison", node)
        for reg in (left, right):
            if reg != dest:
                self._release(reg)
        return dest

    def _eval_boolop(self, node):
        """Short-circuit and/or in value context (result is 0/1)."""
        dest = self._alloc_temp(node)
        done = self._new_label("bool")
        if isinstance(node.op, ast.And):
            fail = self._new_label("boolf")
            for value in node.values:
                self._branch_if_false(value, fail)
            self.asm.li(dest, 1)
            self.asm.j(done)
            self.asm.label(fail)
            self.asm.li(dest, 0)
        else:
            ok = self._new_label("boolt")
            for value in node.values:
                self._branch_if_true(value, ok)
            self.asm.li(dest, 0)
            self.asm.j(done)
            self.asm.label(ok)
            self.asm.li(dest, 1)
        self.asm.label(done)
        return dest

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _subscript_addr(self, node):
        """Compute the address of ``base[index]``; returns (reg, const_off).

        Elements are 64-bit words. If the index is constant the offset is
        folded into the load/store immediate.
        """
        base = self._eval(node.value)
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, int):
            return base, index.value * _WORD
        idx = self._eval(index)
        scaled = self._dest_for(idx)
        self.asm.slli(scaled, idx, 3)
        if scaled != idx:
            self._release(idx)
        addr = self._dest_for(scaled)
        self.asm.add(addr, base, scaled)
        if addr != scaled:
            self._release(scaled)
        if addr != base:
            self._release(base)
        return addr, 0

    def _eval_subscript(self, node):
        addr, offset = self._subscript_addr(node)
        dest = self._dest_for(addr)
        self.asm.ld(dest, addr, offset)
        if dest != addr:
            self._release(addr)
        return dest

    def _store_subscript(self, target, value_expr):
        value = self._eval(value_expr)
        addr, offset = self._subscript_addr(target)
        self.asm.sd(value, addr, offset)
        self._release(addr)
        self._release(value)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _eval_call(self, node):
        if not isinstance(node.func, ast.Name):
            self._err("only direct calls are supported", node)
        name = node.func.id
        if name == "hash64":
            return self._inline_hash64(node)
        if name in ("min64", "max64"):
            return self._inline_minmax(node)
        if name not in self.module.function_names():
            self._err("call to unknown function %r" % name, node)
        return self._call_function(node, name)

    def _inline_hash64(self, node):
        if len(node.args) != 1:
            self._err("hash64() takes one argument", node)
        src = self._eval(node.args[0])
        z = self._dest_for(src)
        tmp = self._alloc_temp(node)
        asm = self.asm
        asm.addi(z, src, 0x9E3779B97F4A7C15)
        if z != src:
            self._release(src)
        asm.srli(tmp, z, 30)
        asm.xor(z, z, tmp)
        asm.li(tmp, 0xBF58476D1CE4E5B9)
        asm.mul(z, z, tmp)
        asm.srli(tmp, z, 27)
        asm.xor(z, z, tmp)
        asm.li(tmp, 0x94D049BB133111EB)
        asm.mul(z, z, tmp)
        asm.srli(tmp, z, 31)
        asm.xor(z, z, tmp)
        self._release(tmp)
        return z

    def _inline_minmax(self, node):
        if len(node.args) != 2:
            self._err("%s() takes two arguments" % node.func.id, node)
        opcode = Op.MIN if node.func.id == "min64" else Op.MAX
        left = self._eval(node.args[0])
        right = self._eval(node.args[1])
        dest = self._dest_for(left, right)
        self.asm.rr(opcode, dest, left, right)
        for reg in (left, right):
            if reg != dest:
                self._release(reg)
        return dest

    def _call_function(self, node, name):
        if self.is_leaf:
            self._err("internal: call in leaf function", node)
        if len(node.args) > _NUM_ARG_SLOTS:
            self._err("too many call arguments", node)
        asm = self.asm
        # Evaluate arguments into temporaries.
        arg_regs = []
        for arg in node.args:
            reg = self._eval(arg)
            if not self._is_temp(reg):
                # Copy s-regs so a later argument's nested call cannot
                # observe a stale temp list (and to simplify the move).
                copy = self._alloc_temp(node)
                asm.mv(copy, reg)
                reg = copy
            arg_regs.append(reg)
        # Move into the argument registers.
        for i, reg in enumerate(arg_regs):
            asm.mv(ARG_REGS[i], reg)
        for reg in arg_regs:
            self._release(reg)
        # Spill any live temporaries around the call.
        live = list(self._active_temps)
        for reg in live:
            slot = CALLER_SAVED_TEMPS.index(reg)
            asm.sd(reg, "sp", self.temp_save_base + _WORD * slot)
        asm.call(function_label(name))
        for reg in live:
            slot = CALLER_SAVED_TEMPS.index(reg)
            asm.ld(reg, "sp", self.temp_save_base + _WORD * slot)
        dest = self._alloc_temp(node)
        asm.mv(dest, "a0")
        return dest
