"""Mini-compiler from a restricted Python subset to the simulator ISA.

Workload kernels are ordinary Python functions written in a constrained
style (64-bit integer locals, 1-D array parameters indexed with ``a[i]``,
``if``/``while``/``for range`` control flow, calls between kernels, and the
``hash64``/``min64``/``max64`` intrinsics). :class:`Module` compiles them
to ISA code and can also *run them natively* under wrapping 64-bit
semantics, giving every workload a built-in oracle.
"""

from repro.compiler.errors import CompileError
from repro.compiler.module import Module, array_ref
from repro.compiler.intrinsics import hash64, min64, max64
from repro.compiler.runtime import I64, native_call

__all__ = [
    "CompileError",
    "Module",
    "array_ref",
    "hash64",
    "min64",
    "max64",
    "I64",
    "native_call",
]
