"""Compilation unit: functions + static arrays -> executable Program."""

import ast
import inspect
import textwrap

from repro.compiler.codegen import FunctionCompiler, function_label
from repro.compiler.errors import CompileError
from repro.compiler.runtime import native_call
from repro.isa.assembler import Assembler
from repro.isa.program import DataSegment


class ArrayRef:
    """Symbolic reference to a module array, usable as a build argument."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "array_ref(%r)" % self.name


def array_ref(name):
    """Reference a module array by name in :meth:`Module.build` args."""
    return ArrayRef(name)


def _parse_function(pyfunc):
    source = textwrap.dedent(inspect.getsource(pyfunc))
    tree = ast.parse(source)
    func_def = tree.body[0]
    if not isinstance(func_def, ast.FunctionDef):
        raise CompileError("expected a function definition",
                           function=getattr(pyfunc, "__name__", "?"))
    return func_def


class Module:
    """A set of kernels plus static data, compiled together.

    Typical use::

        mod = Module()
        mod.add_function(my_kernel)           # a restricted-Python function
        mod.array("data", [1, 2, 3])
        prog = mod.build("my_kernel", [array_ref("data"), 3])
        # ... simulate prog ...
        expected, _ = mod.run_native()        # Python oracle
    """

    RESULT_SYMBOL = "$result"

    def __init__(self):
        self._functions = {}   # name -> (ast.FunctionDef, pyfunc)
        self._arrays = {}      # name -> list of initial values
        self._build_args = None
        self._main = None

    # ------------------------------------------------------------------
    def add_function(self, pyfunc):
        """Register a kernel (and return it, so it can be used as a decorator)."""
        func_def = _parse_function(pyfunc)
        name = func_def.name
        if name in self._functions:
            raise CompileError("duplicate function %r" % name)
        self._functions[name] = (func_def, pyfunc)
        return pyfunc

    def add_functions(self, *pyfuncs):
        for pyfunc in pyfuncs:
            self.add_function(pyfunc)

    def array(self, name, values_or_size):
        """Declare a static array (list of initial values, or a zero size)."""
        if name in self._arrays:
            raise CompileError("duplicate array %r" % name)
        if isinstance(values_or_size, int):
            values = [0] * values_or_size
        else:
            values = [int(v) for v in values_or_size]
        self._arrays[name] = values
        return ArrayRef(name)

    def function_names(self):
        return self._functions.keys()

    # ------------------------------------------------------------------
    def build(self, main, args=(), code_base=None):
        """Compile everything; returns a :class:`~repro.isa.program.Program`.

        ``args`` are the arguments passed to ``main`` at startup: plain
        ints or :class:`ArrayRef`. The return value of ``main`` is stored
        to the ``$result`` data word before ``halt``.
        """
        if main not in self._functions:
            raise CompileError("unknown main function %r" % main)
        self._main = main
        self._build_args = list(args)
        if len(args) > 8:
            raise CompileError("too many main() arguments")

        data = DataSegment()
        for name, values in self._arrays.items():
            data.word_array(name, values)
        data.word(self.RESULT_SYMBOL, 0)

        kwargs = {"data": data}
        if code_base is not None:
            kwargs["code_base"] = code_base
        asm = Assembler(**kwargs)

        # _start: marshal arguments, call main, store result, halt.
        for i, arg in enumerate(self._build_args):
            if isinstance(arg, ArrayRef):
                if arg.name not in self._arrays:
                    raise CompileError("unknown array %r" % arg.name)
                asm.li("a%d" % i, data.addr_of(arg.name))
            else:
                asm.li("a%d" % i, int(arg))
        asm.call(function_label(main))
        asm.li("t0", data.addr_of(self.RESULT_SYMBOL))
        asm.sd("a0", "t0", 0)
        asm.halt()

        for name, (func_def, _pyfunc) in self._functions.items():
            FunctionCompiler(self, func_def, asm).compile()
        return asm.finish()

    # ------------------------------------------------------------------
    def run_native(self):
        """Run ``main`` natively under ISA integer semantics (the oracle).

        Returns ``(result, arrays)`` where ``arrays`` maps each array name
        passed to main to its final contents. Arrays not passed to main
        are returned with their initial contents.
        """
        if self._main is None:
            raise CompileError("build() must be called before run_native()")
        _func_def, pyfunc = self._functions[self._main]
        native_args = []
        array_names = []
        for arg in self._build_args:
            if isinstance(arg, ArrayRef):
                native_args.append(list(self._arrays[arg.name]))
                array_names.append(arg.name)
            else:
                native_args.append(int(arg))
                array_names.append(None)
        result, mutated = native_call(pyfunc, *native_args)
        final_arrays = {name: list(values)
                        for name, values in self._arrays.items()}
        for i, name in enumerate(array_names):
            if name is not None:
                final_arrays[name] = [int(v) for v in mutated[i]]
        return result, final_arrays

    # ------------------------------------------------------------------
    @staticmethod
    def read_result(program, memory):
        """Read back the stored main() result from simulated memory."""
        return memory.read(program.data.addr_of(Module.RESULT_SYMBOL), 8)

    @staticmethod
    def read_array(program, memory, name, length):
        """Read an array's final contents from simulated memory."""
        base = program.data.addr_of(name)
        return memory.read_word_array(base, length)
