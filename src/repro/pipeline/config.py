"""Core configuration (defaults follow the paper's Table 3)."""

import dataclasses
from typing import Optional

#: Closed value sets for the enum-like string knobs. A typo here used
#: to fall through silently (e.g. ``memory_hazard_scheme="blooom"``
#: built no Bloom filter and quietly ran verify-mode), so both are now
#: validated at construction with did-you-mean suggestions.
MEMORY_HAZARD_SCHEMES = ("verify", "bloom")
PREDICTOR_KINDS = ("always-taken", "bimodal", "gshare", "tage",
                   "tage-scl")
MEM_MODELS = ("flat", "ported")


def _check_choice(what, value, choices):
    if value not in choices:
        from repro.config.schema import suggestion
        raise ValueError("invalid %s %r%s (choose from: %s)"
                         % (what, value, suggestion(value, choices),
                            ", ".join(choices)))


def _check_positive(config, *names):
    for name in names:
        if getattr(config, name) < 1:
            raise ValueError("%s must be >= 1, got %r"
                             % (name, getattr(config, name)))


@dataclasses.dataclass
class MSSRConfig:
    """Multi-Stream Squash Reuse parameters (Sections 3.3-3.8).

    ``num_streams`` = N wrong-path streams tracked (DCI == 1),
    ``wpb_entries`` = M fetch blocks per Wrong-Path Buffer stream,
    ``squash_log_entries`` = P instructions per Squash Log stream.
    """

    num_streams: int = 4
    wpb_entries: int = 16
    squash_log_entries: int = 64
    rgid_bits: int = 6
    reconvergence_timeout: int = 1024
    rgid_overflow_limit: int = 8
    #: "verify" re-executes reused loads and flushes on mismatch (NoSQ
    #: style, the paper's evaluated scheme); "bloom" filters reuse of
    #: loads whose address may have been stored to (Section 3.8.3).
    memory_hazard_scheme: str = "verify"
    bloom_bits: int = 1024
    bloom_hashes: int = 2
    #: Restrict each WPB stream to one virtual page (Section 3.4 timing
    #: optimisation). Reconvergence beyond the page is then not detected.
    single_page_wpb: bool = False
    #: Capture wrong-path blocks for the WPBs at the FTQ on squash
    #: (decoupled frontend), instead of at decode time. Also captures
    #: predicted-but-undelivered blocks, so coverage is a superset of
    #: decode-time capture. Requires ``frontend.decoupled``.
    ftq_capture: bool = False

    def __post_init__(self):
        _check_choice("memory_hazard_scheme", self.memory_hazard_scheme,
                      MEMORY_HAZARD_SCHEMES)
        _check_positive(self, "num_streams", "wpb_entries",
                        "squash_log_entries", "rgid_bits",
                        "reconvergence_timeout", "rgid_overflow_limit",
                        "bloom_bits", "bloom_hashes")


@dataclasses.dataclass
class RIConfig:
    """Register Integration reuse-table parameters (Section 2.2.3/4.1.2)."""

    num_sets: int = 64
    assoc: int = 4

    def __post_init__(self):
        _check_positive(self, "num_sets", "assoc")


@dataclasses.dataclass
class FrontendConfig:
    """Decoupled-frontend parameters (the ``frontend.*`` config section).

    With ``decoupled=False`` (the default) the branch-prediction unit
    and the fetch stage run fused in one cycle, exactly reproducing the
    original single-stage fetch path. With ``decoupled=True`` the BPU
    runs ahead filling a bounded FTQ and the fetch stage drains it with
    a ``fetch_latency``-cycle fetch-to-decode delay, so FTQ occupancy,
    redirect bubbles and frontend starvation become visible effects.
    """

    #: Run the branch-prediction unit decoupled from the fetch stage.
    decoupled: bool = False
    #: Bounded FTQ capacity (prediction blocks the BPU may run ahead).
    ftq_depth: int = 16
    #: Cycles between a block's FTQ enqueue and its earliest delivery
    #: to decode (models the icache access of the fetch pipeline).
    fetch_latency: int = 2
    #: Prediction blocks the BPU appends to the FTQ per cycle.
    bpu_blocks_per_cycle: int = 1
    #: Instruction-cache lines (64B each; direct-mapped). 0 disables
    #: the icache model entirely. Requires ``decoupled``.
    icache_lines: int = 0
    #: Extra delivery delay (cycles) charged on an icache miss.
    icache_latency: int = 8

    def __post_init__(self):
        _check_positive(self, "ftq_depth", "bpu_blocks_per_cycle")
        if self.fetch_latency < 0:
            raise ValueError("fetch_latency must be >= 0, got %r"
                             % self.fetch_latency)
        if self.icache_lines < 0:
            raise ValueError("icache_lines must be >= 0, got %r"
                             % self.icache_lines)
        if self.icache_lines and self.icache_lines \
                & (self.icache_lines - 1):
            raise ValueError("icache_lines must be a power of two, got %d"
                             % self.icache_lines)
        if self.icache_latency < 0:
            raise ValueError("icache_latency must be >= 0, got %r"
                             % self.icache_latency)
        if self.icache_lines and not self.decoupled:
            raise ValueError("frontend.icache_lines requires "
                             "frontend.decoupled (the icache models the "
                             "fetch pipeline the fused frontend elides)")


@dataclasses.dataclass
class MemConfig:
    """Memory-system parameters (the ``mem.*`` config section).

    ``model="flat"`` (default) keeps the synchronous two-level
    ``MemoryHierarchy`` — driven by the ``core.l1_*``/``core.l2_*``
    knobs for stat-parity with pinned snapshots; the ``mem.*`` cache
    geometry below is ignored. ``model="ported"`` switches to the
    port-based system: L1I + L1D (one ``Cache`` class) behind one
    shared L2, bounded MSHRs with same-line miss merging, and
    completion-cycle requests from execute and fetch. The L1I has no
    latency knob because its hit latency is already modeled by
    ``frontend.fetch_latency``.
    """

    model: str = "flat"
    line_bytes: int = 64
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 4
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    l1d_latency: int = 3
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 12
    dram_latency: int = 120
    #: Outstanding line misses per L1 port (same-line misses merge).
    mshrs: int = 8
    #: Requests each port accepts per cycle.
    ports: int = 2

    def __post_init__(self):
        _check_choice("mem.model", self.model, MEM_MODELS)
        _check_positive(self, "line_bytes", "l1i_size", "l1i_assoc",
                        "l1d_size", "l1d_assoc", "l1d_latency",
                        "l2_size", "l2_assoc", "l2_latency",
                        "dram_latency", "mshrs", "ports")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two, got %d"
                             % self.line_bytes)


@dataclasses.dataclass
class CoreConfig:
    """Out-of-order core parameters."""

    # Frontend
    fetch_block_insts: int = 8        # 32B fetch blocks
    #: Prediction blocks fetched per cycle. 2 models the paper's
    #: Section 3.9.1 multiple-block fetching extension (reconvergence
    #: detection is simply applied to every fetched block).
    fetch_blocks_per_cycle: int = 1
    frontend_stages: int = 5          # fetch-to-rename depth
    decode_queue: int = 32
    predictor: str = "tage-scl"
    btb_sets: int = 512
    btb_assoc: int = 4
    ras_depth: int = 32
    #: Decoupled-frontend section (the ``frontend.*`` config keys).
    frontend: FrontendConfig = dataclasses.field(
        default_factory=FrontendConfig)

    # Backend
    width: int = 8                    # decode/rename/commit width
    rob_entries: int = 256
    int_iq_entries: int = 64
    mem_iq_entries: int = 64
    num_alu: int = 4
    num_bru: int = 2
    num_lsu: int = 2
    num_phys_regs: int = 256
    lq_entries: int = 96
    sq_entries: int = 96

    # Latencies
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    branch_latency: int = 1
    store_latency: int = 1

    # Memory hierarchy
    l1_size: int = 64 * 1024
    l1_assoc: int = 4
    l1_latency: int = 3
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 12
    dram_latency: int = 120
    #: Memory-system section (the ``mem.*`` config keys).
    mem: MemConfig = dataclasses.field(default_factory=MemConfig)

    # Reuse scheme: None (baseline), an MSSRConfig, or an RIConfig.
    mssr: Optional[MSSRConfig] = None
    ri: Optional[RIConfig] = None

    # Safety limits
    max_cycles: int = 50_000_000

    def __post_init__(self):
        if self.mssr is not None and self.ri is not None:
            raise ValueError("enable at most one reuse scheme")
        if isinstance(self.frontend, dict):
            self.frontend = FrontendConfig(**self.frontend)
        if isinstance(self.mem, dict):
            self.mem = MemConfig(**self.mem)
        if self.num_phys_regs < 32 + self.width:
            raise ValueError("too few physical registers")
        _check_choice("predictor", self.predictor, PREDICTOR_KINDS)
        _check_positive(self, "fetch_block_insts",
                        "fetch_blocks_per_cycle", "frontend_stages",
                        "decode_queue", "btb_sets", "btb_assoc",
                        "ras_depth", "width", "rob_entries",
                        "int_iq_entries", "mem_iq_entries", "num_alu",
                        "num_bru", "num_lsu", "lq_entries", "sq_entries",
                        "l1_size", "l1_assoc", "l1_latency", "l2_size",
                        "l2_assoc", "l2_latency", "dram_latency",
                        "max_cycles")
        if self.btb_sets & (self.btb_sets - 1):
            raise ValueError("btb_sets must be a power of two, got %d"
                             % self.btb_sets)
        if self.mssr is not None and self.mssr.ftq_capture \
                and not self.frontend.decoupled:
            raise ValueError("mssr.ftq_capture requires "
                             "frontend.decoupled (the fused frontend has "
                             "no FTQ to capture from; decode-time capture "
                             "is its fallback)")
        if self.mem.model == "ported" and self.frontend.icache_lines:
            raise ValueError("frontend.icache_lines conflicts with "
                             "mem.model=ported (the ported system brings "
                             "its own L1I behind the shared L2; drop the "
                             "flat icache knobs)")


def baseline_config(**overrides):
    """Table 3 baseline (no squash reuse)."""
    return CoreConfig(**overrides)


def mssr_config(num_streams=4, wpb_entries=16, squash_log_entries=64,
                **overrides):
    """Baseline + Multi-Stream Squash Reuse."""
    mssr = MSSRConfig(num_streams=num_streams, wpb_entries=wpb_entries,
                      squash_log_entries=squash_log_entries)
    return CoreConfig(mssr=mssr, **overrides)


def dci_config(**overrides):
    """Dynamic Control Independence modelled as single-stream MSSR
    (exactly how the paper evaluates DCI, Section 4.1.2)."""
    return mssr_config(num_streams=1, **overrides)


def ri_config(num_sets=64, assoc=4, **overrides):
    """Baseline + Register Integration reuse table."""
    return CoreConfig(ri=RIConfig(num_sets=num_sets, assoc=assoc),
                      **overrides)
