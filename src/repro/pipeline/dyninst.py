"""Dynamic instruction: one fetched instance of a static instruction.

A single object flows through fetch -> rename -> issue -> execute ->
commit, accumulating state. Squash reuse and the RI baseline read and
write the rename-related fields (physical registers, RGIDs, reuse flags).
"""

from repro.isa.predecode import predecode_inst


class DynInst:
    """One in-flight dynamic instruction."""

    __slots__ = (
        # identity
        "seq", "pc", "inst", "pd", "block_id", "fetch_cycle",
        # control prediction state (branches only)
        "pred_npc", "bp_meta", "ras_snap", "actual_npc", "mispredicted",
        # rename state
        "srcs_preg", "dest_preg", "dest_areg", "old_preg",
        "src_rgids", "dest_rgid", "old_rgid", "renamed",
        # execution state
        "issued", "issue_cycle", "executed", "completed", "committed",
        "squashed", "result", "done_cycle", "wait_count",
        # memory state
        "mem_addr", "mem_size", "store_data", "lsq_index", "replayed",
        # squash-reuse state
        "reuse_candidate", "reused", "verify_load", "reuse_scheme_tag",
        # cached classification (hot paths)
        "is_branch", "is_load", "is_store",
    )

    def __init__(self, seq, pc, inst, block_id, fetch_cycle, pd=None):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        # Predecoded record: the fetch unit passes the program's cached
        # one; direct constructions (unit tests) derive it on the fly.
        self.pd = pd if pd is not None else predecode_inst(inst)
        self.block_id = block_id
        self.fetch_cycle = fetch_cycle

        self.pred_npc = None
        self.bp_meta = None
        self.ras_snap = None
        self.actual_npc = None
        self.mispredicted = False

        self.srcs_preg = ()
        self.dest_preg = None
        self.dest_areg = None
        self.old_preg = None
        self.src_rgids = ()
        self.dest_rgid = None
        self.old_rgid = None
        self.renamed = False

        self.issued = False
        self.issue_cycle = -1
        self.executed = False
        self.completed = False
        self.committed = False
        self.squashed = False
        self.result = None
        self.done_cycle = -1
        self.wait_count = 0

        self.mem_addr = None
        self.mem_size = 0
        self.store_data = None
        self.lsq_index = -1
        self.replayed = False

        self.reuse_candidate = None
        self.reused = False
        self.verify_load = False
        self.reuse_scheme_tag = None

        self.is_branch = inst.is_branch
        self.is_load = inst.is_load
        self.is_store = inst.is_store

    def __repr__(self):
        flags = "".join(flag for flag, present in (
            ("R", self.renamed), ("X", self.executed), ("C", self.completed),
            ("Q", self.squashed), ("U", self.reused)) if present)
        return "<DynInst #%d %r %s>" % (self.seq, self.inst, flags)
