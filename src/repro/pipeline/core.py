"""Execution-driven out-of-order core (gem5-O3-style).

The model really executes down predicted paths: values live in the
physical register file, branches resolve out of order in the backend, and
mispredictions squash and roll the RAT back — which is exactly the
environment squash reuse needs (wrong-path results parked in physical
registers, multiple outstanding squashed streams, out-of-order branch
resolution producing the paper's *hardware-induced* multi-stream
reconvergence).

:class:`O3Core` is a facade: the per-stage policy lives in the stage
objects of :mod:`repro.pipeline.stages`, which communicate only through
the typed latches in :mod:`repro.pipeline.latches` and the shared
:class:`~repro.pipeline.latches.CoreState`. ``step()`` walks the stages
in reverse pipeline order (commit -> writeback -> execute ->
rename/dispatch -> fetch) so a single-cycle producer wakes its consumer
back-to-back, then drains the squash arbiter at cycle end.
"""

import collections

from repro.baselines.base import NullScheme
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchUnit
from repro.frontend.icache import InstructionCache
from repro.frontend.predictors import build_predictor
from repro.frontend.ras import ReturnAddressStack
from repro.isa.program import STACK_TOP
from repro.isa.registers import NUM_ARCH_REGS, reg_num
from repro.emu.memory import SparseMemory
from repro.log import get_logger
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.ports import PortedMemorySystem
from repro.obs.bus import Observability
from repro.pipeline.config import CoreConfig
from repro.pipeline.latches import (CompletionQueue, CoreState, DecodeQueue,
                                    SquashArbiter)
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.regfile import PhysRegFile
from repro.pipeline.rename import RenameTable
from repro.pipeline.scheduler import IssueQueue, FunctionUnits
from repro.pipeline.stages import (CommitStage, ExecuteStage, FetchStage,
                                   RenameDispatchStage, SquashUnit,
                                   WritebackStage)

_log = get_logger("pipeline.core")


class SimulationError(Exception):
    """Raised on deadlock or budget exhaustion.

    When the core's event bus has a ring-buffer sink attached,
    ``event_dump`` carries the formatted last-N-events history leading
    up to the failure (empty tuple otherwise).
    """

    event_dump = ()


class SimResult:
    """Final architectural state plus statistics."""

    def __init__(self, regs, memory, stats):
        self.regs = regs
        self.memory = memory
        self.stats = stats

    def reg(self, name_or_num):
        return self.regs[reg_num(name_or_num)]


class InitialState:
    """Architectural state injected into a core before cycle 0.

    Lets the detailed pipeline start mid-program (sampled simulation):
    ``pc`` steers the first fetch, ``regs`` seeds the architectural
    register file through the RAT, and ``mem_words`` (aligned word
    address -> value) is applied on top of the program's initial memory
    image. Produced by :meth:`repro.sampling.checkpoint.Checkpoint.
    initial_state`; any object with these three attributes works.
    """

    __slots__ = ("pc", "regs", "mem_words")

    def __init__(self, pc, regs, mem_words=None):
        self.pc = pc
        self.regs = list(regs)
        self.mem_words = dict(mem_words or {})


class O3Core:
    """Out-of-order core simulator.

    ``obs`` is the run's :class:`~repro.obs.bus.Observability` bus —
    pass one with sinks attached to trace the run; by default a disabled
    bus is created and the simulator only maintains its ``SimStats``
    metrics view.
    """

    def __init__(self, program, config=None, reuse_scheme=None, obs=None,
                 init_state=None):
        state = CoreState()
        self.state = state
        state.program = program
        state.config = config or CoreConfig()
        cfg = state.config

        state.obs = obs if obs is not None else Observability()
        state.stats = state.obs.stats

        state.memory = SparseMemory(program.initial_memory())
        if cfg.mem.model == "ported":
            mc = cfg.mem
            state.memsys = PortedMemorySystem(
                line_bytes=mc.line_bytes,
                l1i_size=mc.l1i_size, l1i_assoc=mc.l1i_assoc,
                l1d_size=mc.l1d_size, l1d_assoc=mc.l1d_assoc,
                l1d_latency=mc.l1d_latency, l2_size=mc.l2_size,
                l2_assoc=mc.l2_assoc, l2_latency=mc.l2_latency,
                dram_latency=mc.dram_latency, mshrs=mc.mshrs,
                ports=mc.ports, obs=state.obs)
            state.hierarchy = state.memsys
        else:
            state.hierarchy = MemoryHierarchy(
                l1_size=cfg.l1_size, l1_assoc=cfg.l1_assoc,
                l1_latency=cfg.l1_latency, l2_size=cfg.l2_size,
                l2_assoc=cfg.l2_assoc, l2_latency=cfg.l2_latency,
                dram_latency=cfg.dram_latency)
        state.regfile = PhysRegFile(cfg.num_phys_regs, NUM_ARCH_REGS)

        scheme = reuse_scheme
        if scheme is None:
            scheme = self._build_scheme(cfg)
        state.scheme = scheme

        track_rgids = getattr(scheme, "needs_rgids", False)
        rgid_bits = cfg.mssr.rgid_bits if cfg.mssr else 6
        state.rat = RenameTable(state.regfile, rgid_bits=rgid_bits,
                                track_rgids=track_rgids)
        # Initialise the stack pointer.
        state.regfile.set_value(state.rat.lookup(2), STACK_TOP)

        state.predictor = build_predictor(cfg.predictor)
        state.btb = BranchTargetBuffer(cfg.btb_sets, cfg.btb_assoc)
        state.ras = ReturnAddressStack(cfg.ras_depth)
        icache = None
        if state.memsys is not None:
            icache = state.memsys.icache
        elif cfg.frontend is not None and cfg.frontend.icache_lines:
            icache = InstructionCache(cfg.frontend.icache_lines,
                                      cfg.frontend.icache_latency,
                                      obs=state.obs)
        state.fetch = FetchUnit(program, state.predictor, state.btb,
                                state.ras, block_insts=cfg.fetch_block_insts,
                                frontend=cfg.frontend, obs=state.obs,
                                icache=icache)

        state.int_iq = IssueQueue("int", cfg.int_iq_entries)
        state.mem_iq = IssueQueue("mem", cfg.mem_iq_entries)
        state.iqs = (state.int_iq, state.mem_iq)
        state.fus = FunctionUnits(cfg)
        state.lsq = LoadStoreQueue(state.memory, cfg.lq_entries,
                                   cfg.sq_entries)

        state.rob = collections.deque()
        state.decode_queue = DecodeQueue(cfg.decode_queue)
        state.completions = CompletionQueue()
        state.squash_arbiter = SquashArbiter()

        # Facade: re-expose the shared state under the historical names
        # (reuse schemes and tests address the core, not CoreState).
        self.program = program
        self.config = cfg
        self.obs = state.obs
        self.stats = state.stats
        self.memory = state.memory
        self.hierarchy = state.hierarchy
        self.regfile = state.regfile
        self.scheme = scheme
        self.rat = state.rat
        self.predictor = state.predictor
        self.btb = state.btb
        self.ras = state.ras
        self.fetch = state.fetch
        self.int_iq = state.int_iq
        self.mem_iq = state.mem_iq
        self.fus = state.fus
        self.lsq = state.lsq
        self.rob = state.rob
        self.decode_queue = state.decode_queue

        if init_state is not None:
            self._inject_state(init_state)

        scheme.attach(self)

        # FTQ-sourced wrong-path capture: once the scheme is attached,
        # point the fetch unit's capture sink at its hook. Decode-time
        # capture (the fused-mode fallback) needs no wiring — the squash
        # unit already hands delivered blocks to on_branch_squash.
        if getattr(scheme, "ftq_capture", False):
            state.fetch.wrong_path_sink = scheme.on_wrong_path_block

        self.commit_stage = CommitStage(state)
        self.writeback_stage = WritebackStage(state)
        self.execute_stage = ExecuteStage(state)
        self.rename_stage = RenameDispatchStage(state)
        self.fetch_stage = FetchStage(state)
        self._stages = (self.commit_stage, self.writeback_stage,
                        self.execute_stage, self.rename_stage,
                        self.fetch_stage)
        self._squash_unit = SquashUnit(state)

    # ------------------------------------------------------------------
    # Shared-state delegation
    # ------------------------------------------------------------------
    @property
    def cycle(self):
        return self.state.cycle

    @cycle.setter
    def cycle(self, value):
        self.state.cycle = value

    @property
    def halted(self):
        return self.state.halted

    @halted.setter
    def halted(self, value):
        self.state.halted = value

    def arch_regs(self):
        """Current architectural register values via the RAT."""
        return self.state.arch_regs()

    def free_preg(self, preg):
        """Release a physical register and notify the reuse scheme."""
        self.state.free_preg(preg)

    def free_reserved_preg(self, preg):
        """Release a register previously reserved for a reuse scheme."""
        self.state.free_preg(preg)

    def _inject_state(self, init_state):
        """Seed architectural state before cycle 0 (sampled simulation)."""
        for addr, value in init_state.mem_words.items():
            self.memory.write_word(addr, value)
        for arch, value in enumerate(init_state.regs):
            if arch == 0:
                continue
            self.regfile.set_value(self.rat.lookup(arch), value)
        self.fetch.redirect(init_state.pc)
        if self.fetch.stalled:
            raise ValueError("initial state pc %#x is outside the program"
                             % init_state.pc)

    @staticmethod
    def _build_scheme(cfg):
        if cfg.mssr is not None:
            from repro.mssr.controller import MSSRController
            return MSSRController(cfg.mssr)
        if cfg.ri is not None:
            from repro.baselines.register_integration import \
                RegisterIntegration
            return RegisterIntegration(cfg.ri)
        return NullScheme()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles=None, max_insts=None):
        """Simulate to ``halt``; returns a :class:`SimResult`.

        ``max_insts`` is a committed-instruction budget: the run stops
        cleanly (not an error) once that many instructions have retired,
        which is how sampled simulation bounds one interval. A budget-
        stopped core can be resumed with another ``run(max_insts=...)``
        call — the pipeline keeps all its in-flight state, so a sampler
        can run a discarded detailed-warmup slice and the measured
        interval back to back.
        """
        state = self.state
        state.commit_limit = self.stats.committed_insts + max_insts \
            if max_insts is not None else None
        if state.budget_stop:
            state.budget_stop = False
            state.halted = False
        limit = max_cycles or self.config.max_cycles
        while not state.halted:
            if state.cycle >= limit:
                raise self._sim_error(
                    "cycle budget exhausted (%d)" % limit)
            if state.cycle - state.last_commit_cycle > 100_000:
                raise self._sim_error(
                    "deadlock: no commit since cycle %d"
                    % state.last_commit_cycle)
            self.step()
        self.scheme.finalize()
        return SimResult(self.arch_regs(), self.memory, self.stats)

    def _sim_error(self, message):
        """Build a :class:`SimulationError`, auto-dumping any ring-buffer
        sink so the post-mortem shows the last events before the hang."""
        error = SimulationError(message)
        dump = self.obs.dump_recent()
        if dump:
            error.event_dump = tuple(dump)
            _log.error("%s; last %d events:\n%s", message, len(dump),
                       "\n".join(dump))
        return error

    def step(self):
        """Advance one cycle: reverse-order stage walk, then squash."""
        state = self.state
        state.cycle += 1
        cycle = state.cycle
        state.stats.cycles = cycle
        state.obs.cycle = cycle
        state.fus.new_cycle(cycle)
        for stage in self._stages:
            stage.tick()
            if state.halted:
                return
        request = state.squash_arbiter.take()
        if request is not None:
            self._squash_unit.apply(request)
        self.scheme.on_cycle(cycle)
        if state.budget_stop:
            state.halted = True
