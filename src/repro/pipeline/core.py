"""Execution-driven out-of-order core (gem5-O3-style).

The model really executes down predicted paths: values live in the
physical register file, branches resolve out of order in the backend, and
mispredictions squash and roll the RAT back — which is exactly the
environment squash reuse needs (wrong-path results parked in physical
registers, multiple outstanding squashed streams, out-of-order branch
resolution producing the paper's *hardware-induced* multi-stream
reconvergence).

Stage processing order within a cycle is commit -> writeback -> issue ->
rename/dispatch -> fetch, with squashes applied at cycle end; a
single-cycle producer wakes its consumer back-to-back.
"""

import collections

from repro.baselines.base import NullScheme
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchUnit
from repro.frontend.predictors import build_predictor
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage_scl import TageSCL
from repro.isa.instruction import INST_BYTES
from repro.isa.opcodes import Op, OpClass
from repro.isa.predecode import (KIND_ALU, KIND_BRANCH, KIND_DIV,
                                 KIND_LOAD, KIND_NOP, KIND_STORE,
                                 slowpath_enabled)
from repro.isa.program import STACK_TOP
from repro.isa.registers import NUM_ARCH_REGS, reg_num
from repro.emu.memory import SparseMemory
from repro.log import get_logger
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.bus import Observability
from repro.pipeline.config import CoreConfig
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.regfile import PhysRegFile
from repro.pipeline.rename import RenameTable
from repro.pipeline.scheduler import IssueQueue, FunctionUnits
from repro.utils.bits import MASK64, sext32, wrap64, to_unsigned

_log = get_logger("pipeline.core")


class SimulationError(Exception):
    """Raised on deadlock or budget exhaustion.

    When the core's event bus has a ring-buffer sink attached,
    ``event_dump`` carries the formatted last-N-events history leading
    up to the failure (empty tuple otherwise).
    """

    event_dump = ()


class SimResult:
    """Final architectural state plus statistics."""

    def __init__(self, regs, memory, stats):
        self.regs = regs
        self.memory = memory
        self.stats = stats

    def reg(self, name_or_num):
        return self.regs[reg_num(name_or_num)]


class InitialState:
    """Architectural state injected into a core before cycle 0.

    Lets the detailed pipeline start mid-program (sampled simulation):
    ``pc`` steers the first fetch, ``regs`` seeds the architectural
    register file through the RAT, and ``mem_words`` (aligned word
    address -> value) is applied on top of the program's initial memory
    image. Produced by :meth:`repro.sampling.checkpoint.Checkpoint.
    initial_state`; any object with these three attributes works.
    """

    __slots__ = ("pc", "regs", "mem_words")

    def __init__(self, pc, regs, mem_words=None):
        self.pc = pc
        self.regs = list(regs)
        self.mem_words = dict(mem_words or {})


class _SquashRequest:
    __slots__ = ("boundary_seq", "trigger", "kind", "redirect_pc")

    def __init__(self, boundary_seq, trigger, kind, redirect_pc):
        self.boundary_seq = boundary_seq
        self.trigger = trigger
        self.kind = kind           # "branch" | "replay" | "verify"
        self.redirect_pc = redirect_pc


def _sext32(value):
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= ~0xFFFFFFFF & MASK64
    return value


class O3Core:
    """Out-of-order core simulator.

    ``obs`` is the run's :class:`~repro.obs.bus.Observability` bus —
    pass one with sinks attached to trace the run; by default a disabled
    bus is created and the simulator only maintains its ``SimStats``
    metrics view.
    """

    def __init__(self, program, config=None, reuse_scheme=None, obs=None,
                 init_state=None):
        self.program = program
        self.config = config or CoreConfig()
        cfg = self.config

        self.obs = obs if obs is not None else Observability()
        self.stats = self.obs.stats

        self.memory = SparseMemory(program.initial_memory())
        self.hierarchy = MemoryHierarchy(
            l1_size=cfg.l1_size, l1_assoc=cfg.l1_assoc,
            l1_latency=cfg.l1_latency, l2_size=cfg.l2_size,
            l2_assoc=cfg.l2_assoc, l2_latency=cfg.l2_latency,
            dram_latency=cfg.dram_latency)
        self.regfile = PhysRegFile(cfg.num_phys_regs, NUM_ARCH_REGS)

        scheme = reuse_scheme
        if scheme is None:
            scheme = self._build_scheme(cfg)
        self.scheme = scheme

        track_rgids = getattr(scheme, "needs_rgids", False)
        rgid_bits = cfg.mssr.rgid_bits if cfg.mssr else 6
        self.rat = RenameTable(self.regfile, rgid_bits=rgid_bits,
                               track_rgids=track_rgids)
        # Initialise the stack pointer.
        self.regfile.set_value(self.rat.lookup(2), STACK_TOP)

        self.predictor = build_predictor(cfg.predictor)
        self.btb = BranchTargetBuffer(cfg.btb_sets, cfg.btb_assoc)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        self.fetch = FetchUnit(program, self.predictor, self.btb, self.ras,
                               block_insts=cfg.fetch_block_insts,
                               frontend=cfg.frontend, obs=self.obs)

        self.int_iq = IssueQueue("int", cfg.int_iq_entries)
        self.mem_iq = IssueQueue("mem", cfg.mem_iq_entries)
        self.fus = FunctionUnits(cfg)
        self.lsq = LoadStoreQueue(self.memory, cfg.lq_entries,
                                  cfg.sq_entries)

        self.rob = collections.deque()
        self.decode_queue = collections.deque()
        self._events = {}            # cycle -> [DynInst]
        self._squash_request = None
        self.cycle = 0
        self.halted = False
        self._last_commit_cycle = 0
        self._last_retired_block = -1
        self._commit_limit = None    # committed-inst budget (run(max_insts=))
        self._budget_stop = False    # halted by the budget, not `halt`

        # Hot-path constants hoisted out of the per-cycle stages.
        self._iqs = (self.int_iq, self.mem_iq)
        self._width = cfg.width
        self._rob_entries = cfg.rob_entries
        self._frontend_stages = cfg.frontend_stages
        # Execute latency indexed by PDInst.kind (branch/load handlers
        # compute their own).
        self._kind_latency = (
            cfg.alu_latency, cfg.mul_latency, cfg.div_latency,
            cfg.branch_latency, 0, cfg.store_latency,
            cfg.alu_latency, cfg.alu_latency)
        self._slow = slowpath_enabled()
        if self._slow:
            # Differential-testing escape hatch: dispatch execute through
            # the original interpretive path.
            self._execute_inst = self._execute_inst_slow

        if init_state is not None:
            self._inject_state(init_state)

        self.scheme.attach(self)

    def _inject_state(self, init_state):
        """Seed architectural state before cycle 0 (sampled simulation)."""
        for addr, value in init_state.mem_words.items():
            self.memory.write_word(addr, value)
        for arch, value in enumerate(init_state.regs):
            if arch == 0:
                continue
            self.regfile.set_value(self.rat.lookup(arch), value)
        self.fetch.redirect(init_state.pc)
        if self.fetch.stalled:
            raise ValueError("initial state pc %#x is outside the program"
                             % init_state.pc)

    @staticmethod
    def _build_scheme(cfg):
        if cfg.mssr is not None:
            from repro.mssr.controller import MSSRController
            return MSSRController(cfg.mssr)
        if cfg.ri is not None:
            from repro.baselines.register_integration import \
                RegisterIntegration
            return RegisterIntegration(cfg.ri)
        return NullScheme()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles=None, max_insts=None):
        """Simulate to ``halt``; returns a :class:`SimResult`.

        ``max_insts`` is a committed-instruction budget: the run stops
        cleanly (not an error) once that many instructions have retired,
        which is how sampled simulation bounds one interval. A budget-
        stopped core can be resumed with another ``run(max_insts=...)``
        call — the pipeline keeps all its in-flight state, so a sampler
        can run a discarded detailed-warmup slice and the measured
        interval back to back.
        """
        self._commit_limit = self.stats.committed_insts + max_insts \
            if max_insts is not None else None
        if self._budget_stop:
            self._budget_stop = False
            self.halted = False
        limit = max_cycles or self.config.max_cycles
        while not self.halted:
            if self.cycle >= limit:
                raise self._sim_error(
                    "cycle budget exhausted (%d)" % limit)
            if self.cycle - self._last_commit_cycle > 100_000:
                raise self._sim_error(
                    "deadlock: no commit since cycle %d"
                    % self._last_commit_cycle)
            self.step()
        self.scheme.finalize()
        return SimResult(self.arch_regs(), self.memory, self.stats)

    def _sim_error(self, message):
        """Build a :class:`SimulationError`, auto-dumping any ring-buffer
        sink so the post-mortem shows the last events before the hang."""
        error = SimulationError(message)
        dump = self.obs.dump_recent()
        if dump:
            error.event_dump = tuple(dump)
            _log.error("%s; last %d events:\n%s", message, len(dump),
                       "\n".join(dump))
        return error

    def step(self):
        """Advance one cycle."""
        self.cycle += 1
        self.stats.cycles = self.cycle
        self.obs.cycle = self.cycle
        self.fus.new_cycle(self.cycle)
        self._commit_stage()
        if self.halted:
            return
        self._writeback_stage()
        self._execute_stage()
        self._rename_stage()
        self._fetch_stage()
        if self._squash_request is not None:
            self._apply_squash(self._squash_request)
            self._squash_request = None
        self.scheme.on_cycle(self.cycle)
        if self._budget_stop:
            self.halted = True

    def arch_regs(self):
        """Current architectural register values via the RAT."""
        return [self.regfile.values[self.rat.lookup(a)] if a else 0
                for a in range(NUM_ARCH_REGS)]

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _commit_stage(self):
        rob = self.rob
        for _ in range(self._width):
            if not rob:
                return
            head = rob[0]
            if not head.completed or (head.verify_load and not head.executed):
                return
            rob.popleft()
            head.committed = True
            self._commit_inst(head)
            self.obs.commit(head)
            self._last_commit_cycle = self.cycle
            if head.pd.is_halt:
                self.halted = True
                return
            if self._commit_limit is not None \
                    and self.stats.committed_insts >= self._commit_limit:
                # Stop committing, but let the rest of this cycle's
                # stages run before halting (step() raises the halt):
                # completion events already scheduled for this cycle
                # must drain, or a resumed run would deadlock on them.
                self._budget_stop = True
                return

    def _commit_inst(self, head):
        if head.is_store:
            self.lsq.commit_store(head)
        elif head.is_load:
            self.lsq.commit_load(head)

        if head.dest_preg is not None:
            self.regfile.mark_arch(head.dest_preg)
            if head.old_preg is not None:
                self.free_preg(head.old_preg)

        if head.is_branch:
            self._train_branch(head)

        if head.block_id - 1 > self._last_retired_block:
            self.fetch.retire_block(head.block_id - 1)
            self._last_retired_block = head.block_id - 1

        self.scheme.on_commit(head)

    def _train_branch(self, head):
        pd = head.pd
        taken = head.actual_npc != pd.next_pc
        if pd.is_cond_branch:
            self.obs.cond_branch(head.mispredicted)
            if head.bp_meta is not None:
                self.predictor.update(pd.pc, taken, head.bp_meta)
        elif pd.is_indirect:
            self.obs.indirect_branch(head.mispredicted)
            self.btb.install(pd.pc, head.actual_npc)

    def free_preg(self, preg):
        """Release a physical register and notify the reuse scheme."""
        self.regfile.free(preg)
        self.scheme.on_preg_freed(preg)

    def free_reserved_preg(self, preg):
        """Release a register previously reserved for a reuse scheme."""
        self.free_preg(preg)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------
    def _writeback_stage(self):
        done = self._events.pop(self.cycle, None)
        if not done:
            return
        for dyn in done:
            if dyn.squashed:
                continue
            self._writeback_inst(dyn)

    def _writeback_inst(self, dyn):
        dyn.executed = True
        if self.obs.enabled:
            self.obs.emit_writeback(dyn)
        if dyn.verify_load:
            # Value was already delivered at rename; this is verification.
            if dyn.result != dyn.store_data:
                # store_data caches the verification re-read (see
                # _execute_load_verify); mismatch -> flush from this load.
                self.obs.verify_flush(dyn)
                self.scheme.on_verify_fail(dyn)
                self._request_squash(_SquashRequest(
                    dyn.seq - 1, dyn, "verify", dyn.pc))
            return

        dyn.completed = True
        if dyn.dest_preg is not None:
            self.regfile.set_value(dyn.dest_preg, dyn.result)
            self.int_iq.wakeup(dyn.dest_preg)
            self.mem_iq.wakeup(dyn.dest_preg)

        if dyn.is_branch:
            self._resolve_branch(dyn)
        elif dyn.is_store:
            self.scheme.on_store_executed(dyn.mem_addr, dyn.mem_size)
            violators = self.lsq.find_violations(dyn)
            if violators:
                victim = violators[0]
                self.obs.replay_violation(victim)
                self._request_squash(_SquashRequest(
                    victim.seq - 1, victim, "replay", victim.pc))

    def _resolve_branch(self, dyn):
        if dyn.pred_npc == dyn.actual_npc:
            return
        dyn.mispredicted = dyn.pred_npc is not None
        self._request_squash(_SquashRequest(
            dyn.seq, dyn, "branch", dyn.actual_npc))

    def _request_squash(self, request):
        current = self._squash_request
        if current is None or request.boundary_seq < current.boundary_seq:
            self._squash_request = request

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------
    def _execute_stage(self):
        width = self._width
        try_take = self.fus.try_take
        execute = self._execute_inst
        for iq in self._iqs:
            for dyn in iq.take_ready(width, try_take):
                execute(dyn)

    def _execute_inst(self, dyn):
        pd = dyn.pd
        dyn.issued = True
        dyn.issue_cycle = self.cycle
        if self.obs.enabled:
            self.obs.emit_issue(dyn)
        values = self.regfile.values
        sp = dyn.srcs_preg
        kind = pd.kind

        if kind <= KIND_DIV:           # alu / mul / div
            latency = self._kind_latency[kind]
            if pd.has_imm:
                dyn.result = pd.alu_fn(values[sp[0]], pd.imm_u) \
                    if pd.num_srcs else pd.imm_u
            else:
                dyn.result = pd.alu_fn(values[sp[0]], values[sp[1]])
        elif kind == KIND_BRANCH:
            latency = self._execute_branch(dyn, values, sp)
        elif kind == KIND_LOAD:
            latency = self._execute_load(dyn, values, sp)
        elif kind == KIND_STORE:
            addr = wrap64(values[sp[1]] + pd.imm)
            dyn.mem_addr = addr
            dyn.mem_size = pd.mem_size
            dyn.store_data = values[sp[0]] & pd.store_mask
            latency = self._kind_latency[KIND_STORE] \
                + self.hierarchy.access(addr, is_write=True)
        else:                          # nop / halt (never issued; parity)
            latency = self._kind_latency[kind]
        events = self._events
        when = self.cycle + latency
        pending = events.get(when)
        if pending is None:
            events[when] = [dyn]
        else:
            pending.append(dyn)

    def _execute_branch(self, dyn, values, sp):
        pd = dyn.pd
        fallthrough = pd.next_pc
        op = pd.op
        if op is Op.JAL:
            dyn.actual_npc = pd.target
            dyn.result = fallthrough
        elif op is Op.JALR:
            dyn.actual_npc = wrap64(values[sp[0]] + pd.imm) & ~1
            dyn.result = fallthrough
        else:
            taken = pd.branch_fn(values[sp[0]], values[sp[1]])
            dyn.actual_npc = pd.target if taken else fallthrough
        return self._kind_latency[KIND_BRANCH]

    def _execute_load(self, dyn, values, sp):
        pd = dyn.pd
        if dyn.verify_load:
            addr = dyn.mem_addr  # logged by the reuse scheme
        else:
            addr = wrap64(values[sp[0]] + pd.imm)
            dyn.mem_addr = addr
            dyn.mem_size = pd.mem_size
        value, forwarded = self.lsq.speculative_read(addr, pd.mem_size,
                                                     dyn.seq)
        if pd.is_lw:
            value = sext32(value)
        if dyn.verify_load:
            # Stash the re-read value for comparison at writeback.
            dyn.store_data = value
        else:
            dyn.result = value
        if forwarded:
            return self.config.l1_latency
        return 1 + self.hierarchy.access(addr)

    # Original interpretive execute (REPRO_SLOWPATH=1): kept verbatim as
    # the differential-testing reference for the predecoded fast path.
    def _execute_inst_slow(self, dyn):
        inst = dyn.inst
        info = inst.info
        dyn.issued = True
        dyn.issue_cycle = self.cycle
        if self.obs.enabled:
            self.obs.emit_issue(dyn)
        values = self.regfile.values
        srcs = [values[p] for p in dyn.srcs_preg]
        latency = self.fus.latency_of(dyn)
        op_class = info.op_class

        if op_class is OpClass.BRANCH:
            latency = self._execute_branch_slow(dyn, srcs)
        elif op_class is OpClass.LOAD:
            latency = self._execute_load_slow(dyn, srcs)
        elif op_class is OpClass.STORE:
            addr = wrap64(srcs[1] + inst.imm)
            dyn.mem_addr = addr
            dyn.mem_size = info.mem_size
            dyn.store_data = srcs[0] & ((1 << (info.mem_size * 8)) - 1)
            latency += self.hierarchy.access(addr, is_write=True)
        else:
            if info.has_imm:
                a = srcs[0] if info.num_srcs else 0
                dyn.result = info.alu_fn(a, to_unsigned(inst.imm)) \
                    if info.alu_fn else to_unsigned(inst.imm)
            else:
                dyn.result = info.alu_fn(srcs[0], srcs[1])
        self._events.setdefault(self.cycle + latency, []).append(dyn)

    def _execute_branch_slow(self, dyn, srcs):
        inst = dyn.inst
        fallthrough = inst.pc + INST_BYTES
        if inst.op is Op.JAL:
            dyn.actual_npc = inst.imm
            dyn.result = fallthrough
        elif inst.op is Op.JALR:
            dyn.actual_npc = wrap64(srcs[0] + inst.imm) & ~1
            dyn.result = fallthrough
        else:
            taken = inst.info.branch_fn(srcs[0], srcs[1])
            dyn.actual_npc = inst.imm if taken else fallthrough
        return self.config.branch_latency

    def _execute_load_slow(self, dyn, srcs):
        inst = dyn.inst
        info = inst.info
        if dyn.verify_load:
            addr = dyn.mem_addr  # logged by the reuse scheme
        else:
            addr = wrap64(srcs[0] + inst.imm)
            dyn.mem_addr = addr
            dyn.mem_size = info.mem_size
        value, forwarded = self.lsq.speculative_read(addr, info.mem_size,
                                                     dyn.seq)
        if inst.op is Op.LW:
            value = _sext32(value)
        if dyn.verify_load:
            # Stash the re-read value for comparison at writeback.
            dyn.store_data = value
        else:
            dyn.result = value
        if forwarded:
            return self.config.l1_latency
        return 1 + self.hierarchy.access(addr)

    # ------------------------------------------------------------------
    # Rename / dispatch
    # ------------------------------------------------------------------
    def _rename_stage(self):
        dq = self.decode_queue
        if not dq:
            return
        width = self._width
        frontier = self.cycle - self._frontend_stages
        renamed = 0
        while renamed < width and dq:
            dyn = dq[0]
            if dyn.fetch_cycle > frontier:
                break
            if not self._has_dispatch_resources(dyn):
                break
            dq.popleft()
            self._rename_inst(dyn)
            self._dispatch_inst(dyn)
            renamed += 1

    def _has_dispatch_resources(self, dyn):
        if len(self.rob) >= self._rob_entries:
            return False
        pd = dyn.pd
        kind = pd.kind
        if kind == KIND_LOAD:
            iq = self.mem_iq
            if iq.size >= iq.capacity or self.lsq.lq_free == 0:
                return False
        elif kind == KIND_STORE:
            iq = self.mem_iq
            if iq.size >= iq.capacity or self.lsq.sq_free == 0:
                return False
        elif kind < KIND_NOP:
            iq = self.int_iq
            if iq.size >= iq.capacity:
                return False
        if pd.writes_reg and self.regfile.num_free == 0:
            # Condition (5): reclaim squash-log registers under pressure.
            if not self.scheme.emergency_release():
                return False
            if self.regfile.num_free == 0:
                return False
        return True

    def _rename_inst(self, dyn):
        pd = dyn.pd
        rat = self.rat
        num_srcs = pd.num_srcs
        rmap = rat.map
        if num_srcs == 0:
            dyn.srcs_preg = ()
        elif num_srcs == 1:
            dyn.srcs_preg = (rmap[pd.src0],)
        else:
            dyn.srcs_preg = (rmap[pd.src0], rmap[pd.src1])
        if rat.track_rgids:
            rgid = rat.rgid
            if num_srcs == 0:
                dyn.src_rgids = ()
            elif num_srcs == 1:
                dyn.src_rgids = (rgid[pd.src0],)
            else:
                dyn.src_rgids = (rgid[pd.src0], rgid[pd.src1])

        writes_reg = pd.writes_reg
        reused = False
        if writes_reg and not pd.is_branch and not pd.is_store:
            result = self.scheme.try_reuse(dyn)
            if result is not None:
                self._apply_reuse(dyn, result)
                reused = True
        if not reused and writes_reg:
            if not rat.rename_dest(dyn):
                raise AssertionError("rename without a free preg")
        dyn.renamed = True
        if self.obs.enabled:
            self.obs.emit_rename(dyn, reused)
        self.scheme.on_rename(dyn, reused)

    def _apply_reuse(self, dyn, result):
        if result.preg is not None:
            # Integration-style: adopt the squashed destination register.
            self.rat.apply_reuse(dyn, result.preg, result.rgid)
            self.regfile.mark_in_flight(result.preg)
            dyn.result = self.regfile.values[result.preg]
        else:
            # Value-style (DIR): fresh register, stored value.
            if not self.rat.rename_dest(dyn):
                raise AssertionError("reuse without a free preg")
            self.regfile.set_value(dyn.dest_preg, result.value)
            dyn.result = result.value
        dyn.reused = True
        dyn.completed = True
        dyn.reuse_scheme_tag = result.tag
        self.obs.reuse_applied(dyn)
        if dyn.is_load and result.verify_addr is not None:
            dyn.verify_load = True
            dyn.mem_addr = result.verify_addr
            dyn.mem_size = dyn.pd.mem_size

    def _dispatch_inst(self, dyn):
        self.rob.append(dyn)
        kind = dyn.pd.kind
        if kind >= KIND_NOP:           # nop / halt
            dyn.completed = True
            dyn.executed = True
            return
        if dyn.reused and not dyn.verify_load:
            dyn.executed = True
            return
        if kind == KIND_LOAD or kind == KIND_STORE:
            self.lsq.allocate(dyn)
            iq = self.mem_iq
        else:
            iq = self.int_iq
        # Unrolled "unready deduped sources" (the set()+listcomp here was
        # a top allocation site; instructions have at most two sources).
        sp = dyn.srcs_preg
        ready = self.regfile.ready
        if not sp:
            not_ready = ()
        elif len(sp) == 1 or sp[0] == sp[1]:
            p0 = sp[0]
            not_ready = () if ready[p0] else (p0,)
        else:
            p0, p1 = sp
            if ready[p0]:
                not_ready = () if ready[p1] else (p1,)
            else:
                not_ready = (p0,) if ready[p1] else (p0, p1)
        iq.insert(dyn, not_ready)

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def _fetch_stage(self):
        cfg = self.config
        # Decoupled mode: the BPU runs ahead into the FTQ regardless of
        # decode backpressure (no-op when fused).
        self.fetch.tick(self.cycle)
        for _ in range(cfg.fetch_blocks_per_cycle):
            if len(self.decode_queue) + cfg.fetch_block_insts \
                    > cfg.decode_queue:
                return
            block = self.fetch.fetch_block(self.cycle)
            if block is None:
                return
            self.obs.fetch_block(block)
            self.scheme.on_fetch_block(block)
            for dyn in block.insts:
                self.decode_queue.append(dyn)

    # ------------------------------------------------------------------
    # Squash
    # ------------------------------------------------------------------
    def _apply_squash(self, request):
        boundary = request.boundary_seq
        if request.trigger.squashed:
            return  # stale request (should not happen; safety)

        # 1. Pop squashed instructions from the ROB (tail first).
        squashed = []
        while self.rob and self.rob[-1].seq > boundary:
            squashed.append(self.rob.pop())
        # 2. Drop not-yet-renamed instructions from the decode queue
        #    (kept for frontend repair: their speculative predictor
        #    advances still need unwinding).
        dropped_dyns = []
        while self.decode_queue and self.decode_queue[-1].seq > boundary:
            dropped = self.decode_queue.pop()
            dropped.squashed = True
            dropped_dyns.append(dropped)
        dropped_seqs = [dyn.seq for dyn in dropped_dyns] \
            if self.obs.enabled else []
        # 3. Roll the RAT back, youngest first.
        for dyn in squashed:
            dyn.squashed = True
            self.rat.rollback(dyn)
        self.obs.squash(request.kind, request.trigger, boundary,
                        request.redirect_pc, squashed, dropped_seqs)

        # 4. FTQ: carve out the squashed blocks (for the WPBs). The
        #    boundary block is split so instructions at or before the
        #    boundary survive (for replay squashes the trigger itself is
        #    squashed and refetched).
        squashed_blocks = self.fetch.squash_ftq_after(
            request.trigger.block_id, keep_partial_seq=boundary)

        # 5. Reuse-scheme notification *before* registers are freed, so it
        #    can claim them.
        squashed_oldest_first = list(reversed(squashed))
        if request.kind == "branch":
            self.scheme.on_branch_squash(request.trigger,
                                         squashed_oldest_first,
                                         squashed_blocks)
        else:
            self.scheme.on_replay_squash(request.trigger)

        # 6. Free or reserve destination registers; drain LSQ/IQ entries.
        for dyn in squashed:
            self.lsq.remove(dyn)
            if dyn.dest_preg is not None:
                if (request.kind == "branch" and dyn.executed
                        and not dyn.verify_load
                        and self.scheme.wants_preg(dyn)):
                    self.regfile.mark_reserved(dyn.dest_preg)
                else:
                    self.free_preg(dyn.dest_preg)
        self.int_iq.remove_squashed()
        self.mem_iq.remove_squashed()

        # 7. Repair predictor history and RAS.
        self._repair_frontend(request, squashed_oldest_first, dropped_dyns)

        # 8. Redirect fetch.
        self.fetch.redirect(request.redirect_pc, cycle=self.cycle)

    def _repair_frontend(self, request, squashed_oldest_first,
                         dropped_newest_first=()):
        # Unwind per-prediction speculative state (loop iteration
        # counts) of every squashed prediction, youngest first:
        # decode-queue drops are younger than ROB-squashed instructions
        # (the fetch unit has already unwound flushed FTQ entries,
        # which are younger still).
        unwind = getattr(self.predictor, "unwind", None)
        if unwind is not None:
            for dyn in dropped_newest_first:
                if dyn.bp_meta is not None:
                    unwind(dyn.bp_meta)
            for dyn in reversed(squashed_oldest_first):
                if dyn.bp_meta is not None:
                    unwind(dyn.bp_meta)
        trigger = request.trigger
        if request.kind == "branch" and trigger.inst.is_cond_branch \
                and trigger.bp_meta is not None:
            taken = trigger.actual_npc != trigger.pc + INST_BYTES
            if isinstance(self.predictor, TageSCL):
                self.predictor.recover_branch(trigger.pc, taken,
                                              trigger.bp_meta)
            else:
                self.predictor.recover(taken, trigger.bp_meta)
        else:
            # Replay/verify squash (or jalr): rewind history to the oldest
            # squashed conditional branch's pre-prediction state.
            for dyn in squashed_oldest_first:
                if dyn.bp_meta is not None:
                    self.predictor.restore_history(dyn.bp_meta.history)
                    break
        for dyn in squashed_oldest_first:
            if dyn.ras_snap is not None:
                self.ras.restore(dyn.ras_snap)
                break
