"""Physical register file and free list with ownership accounting.

Squash reuse keeps squashed instructions' physical registers alive past
the squash, so register lifetime bugs (leaks, double frees, reuse of a
live register) are the main correctness hazard of the whole design. The
free list therefore tracks every register's state and asserts on every
transition; :meth:`check_conservation` is used by tests and can be run
periodically in debug mode.
"""

_FREE = 0
_IN_FLIGHT = 1   # allocated by a renamed instruction
_ARCH = 2        # holds a committed architectural value
_RESERVED = 3    # held by a squash-reuse scheme after its writer squashed


class PhysRegFile:
    """Values + readiness + ownership state for all physical registers."""

    STATE_NAMES = {_FREE: "free", _IN_FLIGHT: "in-flight",
                   _ARCH: "arch", _RESERVED: "reserved"}

    def __init__(self, num_regs, num_arch_regs):
        if num_regs <= num_arch_regs:
            raise ValueError("need more physical than architectural regs")
        self.num_regs = num_regs
        self.values = [0] * num_regs
        self.ready = [False] * num_regs
        self._state = [_FREE] * num_regs
        # p0..p(A-1) initially hold the architectural registers.
        for preg in range(num_arch_regs):
            self._state[preg] = _ARCH
            self.ready[preg] = True
        self._free = list(range(num_arch_regs, num_regs))

    # ------------------------------------------------------------------
    @property
    def num_free(self):
        return len(self._free)

    def allocate(self):
        """Take a register for a renaming instruction (None if exhausted)."""
        if not self._free:
            return None
        preg = self._free.pop()
        self._state[preg] = _IN_FLIGHT
        self.ready[preg] = False
        return preg

    def free(self, preg):
        """Return a register to the free list."""
        if self._state[preg] == _FREE:
            raise AssertionError("double free of p%d" % preg)
        self._state[preg] = _FREE
        self.ready[preg] = False
        self._free.append(preg)

    # -- state transitions used by rename/commit/squash ------------------
    def mark_arch(self, preg):
        """In-flight register becomes architectural (writer committed)."""
        self._state[preg] = _ARCH

    def mark_in_flight(self, preg):
        """Reserved register is adopted by a reusing instruction."""
        self._state[preg] = _IN_FLIGHT

    def mark_reserved(self, preg):
        """Squashed writer's register is retained by a reuse scheme."""
        self._state[preg] = _RESERVED

    def state_of(self, preg):
        return self.STATE_NAMES[self._state[preg]]

    # ------------------------------------------------------------------
    def set_value(self, preg, value):
        self.values[preg] = value
        self.ready[preg] = True

    def check_conservation(self):
        """Every register is in exactly one state; free list consistent."""
        free_set = set(self._free)
        if len(free_set) != len(self._free):
            raise AssertionError("duplicate entries in free list")
        for preg in range(self.num_regs):
            in_list = preg in free_set
            is_free = self._state[preg] == _FREE
            if in_list != is_free:
                raise AssertionError(
                    "p%d state %s but free-list membership %s"
                    % (preg, self.state_of(preg), in_list))
        return True

    def count_states(self):
        counts = {name: 0 for name in self.STATE_NAMES.values()}
        for state in self._state:
            counts[self.STATE_NAMES[state]] += 1
        return counts
