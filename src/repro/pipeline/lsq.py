"""Load/store queues with speculative forwarding and violation detection.

Loads execute speculatively: a load may issue before an older store's
address is known. The store, when it finally executes, searches the load
queue for younger already-executed loads on an overlapping address
(XiangShan-style store-to-load check, Section 3.8.1) and triggers a
replay squash from the oldest violator. This is the mechanism that also
punishes over-eager squash reuse of loads (the paper's xz anomaly).
"""


def _overlap(addr_a, size_a, addr_b, size_b):
    return addr_a < addr_b + size_b and addr_b < addr_a + size_a


class LoadStoreQueue:
    """Combined LQ/SQ keyed by instruction age (seq)."""

    def __init__(self, memory, lq_entries=96, sq_entries=96):
        self.memory = memory           # committed architectural memory
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self.loads = {}                # seq -> DynInst (allocated at dispatch)
        self.stores = {}               # seq -> DynInst

    # ------------------------------------------------------------------
    @property
    def lq_free(self):
        return self.lq_entries - len(self.loads)

    @property
    def sq_free(self):
        return self.sq_entries - len(self.stores)

    def allocate(self, dyn):
        if dyn.is_load:
            self.loads[dyn.seq] = dyn
        elif dyn.is_store:
            self.stores[dyn.seq] = dyn

    def remove(self, dyn):
        self.loads.pop(dyn.seq, None)
        self.stores.pop(dyn.seq, None)

    # ------------------------------------------------------------------
    def speculative_read(self, addr, size, seq):
        """Load value as seen by instruction ``seq``: committed memory
        patched with all older, already-executed stores (oldest first).

        Stores whose addresses are still unknown are simply skipped —
        that is the speculation that store-to-load checks later police.
        """
        base = addr & ~7
        word0 = self.memory.read_word(base)
        word1 = self.memory.read_word(base + 8)
        # "Issued" is the forwarding horizon: stores latch address and
        # data the cycle they issue, which is when their bytes become
        # visible to younger speculative loads.
        older = [s for s in self.stores.values()
                 if s.seq < seq and s.issued and s.mem_addr is not None
                 and not s.squashed
                 and _overlap(s.mem_addr, s.mem_size, addr, size)]
        older.sort(key=lambda s: s.seq)
        forwarded = bool(older)
        for store in older:
            word0 = self._patch(word0, base, store)
            word1 = self._patch(word1, base + 8, store)
        combined = word0 | (word1 << 64)
        offset = addr - base
        value = (combined >> (offset * 8)) & ((1 << (size * 8)) - 1)
        return value, forwarded

    @staticmethod
    def _patch(word, word_base, store):
        lo = max(store.mem_addr, word_base)
        hi = min(store.mem_addr + store.mem_size, word_base + 8)
        if lo >= hi:
            return word
        for byte_addr in range(lo, hi):
            byte = (store.store_data >> ((byte_addr - store.mem_addr) * 8)) \
                & 0xFF
            shift = (byte_addr - word_base) * 8
            word = (word & ~(0xFF << shift)) | (byte << shift)
        return word

    # ------------------------------------------------------------------
    def find_violations(self, store):
        """Younger executed loads overlapping a just-executed store.

        Returns them oldest-first; the core replays from the first.
        """
        violators = [
            load for load in self.loads.values()
            if load.seq > store.seq and load.issued
            and load.issue_cycle < store.issue_cycle
            and load.mem_addr is not None
            and _overlap(load.mem_addr, load.mem_size,
                         store.mem_addr, store.mem_size)
            and not load.squashed
        ]
        violators.sort(key=lambda d: d.seq)
        return violators

    def commit_store(self, dyn):
        """Retire a store: write architectural memory."""
        self.memory.write(dyn.mem_addr, dyn.store_data, dyn.mem_size)
        self.stores.pop(dyn.seq, None)

    def commit_load(self, dyn):
        self.loads.pop(dyn.seq, None)
