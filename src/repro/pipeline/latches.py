"""Typed latches, queues and shared state between pipeline stages.

The stage objects in :mod:`repro.pipeline.stages` do not reach into each
other: everything that crosses a stage boundary flows through one of the
``__slots__`` records in this module —

* :class:`DecodeQueue` — the fetch → rename/dispatch latch (bounded
  queue of fetched :class:`~repro.pipeline.dyninst.DynInst`);
* :class:`CompletionQueue` — the execute → writeback latch (completion
  events keyed by the cycle they become visible);
* :class:`SquashRequest` / :class:`SquashArbiter` — the single funnel
  for all squash requests raised during a cycle (branch mispredictions,
  memory-order replays, reuse-verification flushes). The arbiter keeps
  only the oldest-boundary request, which is exactly the priority rule
  the scattered ``_request_squash`` calls used to implement in-line;
* :class:`CoreState` — the architectural machinery every stage shares
  (ROB, RAT, physical register file, LSQ, issue queues, the frontend,
  the reuse scheme and the observability bus) plus the per-cycle control
  scalars (``cycle``, ``halted``, commit bookkeeping).

Nothing here decides anything; policy lives in the stages. This module
is the wiring.
"""

import collections


class SquashRequest:
    """One squash demand raised by a backend stage.

    ``boundary_seq`` is the youngest surviving sequence number: every
    instruction with ``seq > boundary_seq`` is squashed. ``kind`` is
    ``"branch"`` (misprediction), ``"replay"`` (memory-order violation)
    or ``"verify"`` (reused-load verification failure).
    """

    __slots__ = ("boundary_seq", "trigger", "kind", "redirect_pc")

    def __init__(self, boundary_seq, trigger, kind, redirect_pc):
        self.boundary_seq = boundary_seq
        self.trigger = trigger
        self.kind = kind
        self.redirect_pc = redirect_pc

    def __repr__(self):
        return "<SquashRequest %s boundary=%d redirect=%#x>" % (
            self.kind, self.boundary_seq, self.redirect_pc)


class SquashArbiter:
    """Single arbitration point for all in-cycle squash requests.

    Stages raise requests as they discover them (branch resolution at
    writeback, store-to-load violations, verification failures); the
    arbiter keeps only the oldest-boundary one — squashing at the older
    boundary subsumes any younger request — and the core drains it at
    cycle end via :meth:`take`.
    """

    __slots__ = ("pending",)

    def __init__(self):
        self.pending = None

    def request(self, boundary_seq, trigger, kind, redirect_pc):
        """Raise a squash request; older boundaries win arbitration."""
        current = self.pending
        if current is None or boundary_seq < current.boundary_seq:
            self.pending = SquashRequest(boundary_seq, trigger, kind,
                                         redirect_pc)

    def take(self):
        """Remove and return the winning request (None if quiet)."""
        request = self.pending
        self.pending = None
        return request


class DecodeQueue:
    """Fetch → rename/dispatch latch: fetched, not-yet-renamed insts.

    ``entries`` is the backing deque; the rename stage drains from the
    left, squashes pop from the right (youngest first). ``capacity`` is
    the configured decode-queue size — the fetch stage checks
    :meth:`has_room` before delivering another block.
    """

    __slots__ = ("entries", "capacity")

    def __init__(self, capacity):
        self.entries = collections.deque()
        self.capacity = capacity

    def __len__(self):
        return len(self.entries)

    def __bool__(self):
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def has_room(self, count):
        """Can ``count`` more instructions be accepted?"""
        return len(self.entries) + count <= self.capacity

    def push_block(self, insts):
        """Append one fetched block's instructions (program order)."""
        self.entries.extend(insts)

    def drop_younger_than(self, boundary_seq):
        """Squash: pop instructions with ``seq > boundary_seq`` from the
        tail; returns them newest first, each marked squashed."""
        entries = self.entries
        dropped = []
        while entries and entries[-1].seq > boundary_seq:
            dyn = entries.pop()
            dyn.squashed = True
            dropped.append(dyn)
        return dropped


class CompletionQueue:
    """Execute → writeback latch: completion events by visible cycle."""

    __slots__ = ("by_cycle",)

    def __init__(self):
        self.by_cycle = {}

    def schedule(self, when, dyn):
        """Deliver ``dyn`` to writeback at cycle ``when``."""
        pending = self.by_cycle.get(when)
        if pending is None:
            self.by_cycle[when] = [dyn]
        else:
            pending.append(dyn)

    def pop(self, cycle):
        """Completions due this cycle (None if quiet)."""
        return self.by_cycle.pop(cycle, None)

    def __bool__(self):
        return bool(self.by_cycle)


class CoreState:
    """Shared architectural machinery and per-cycle control scalars.

    Every stage object holds a reference to the one ``CoreState`` of its
    core; stage-to-stage communication goes through the latch objects it
    carries (``decode_queue``, ``completions``, ``squash_arbiter``) and
    the architectural structures (ROB, RAT, register file, LSQ, issue
    queues). The :class:`~repro.pipeline.core.O3Core` facade re-exposes
    these fields under their historical names.
    """

    __slots__ = (
        # configuration & observability
        "config", "obs", "stats",
        # architectural machinery
        "memory", "hierarchy", "memsys", "regfile", "rat", "rob", "lsq",
        # frontend
        "program", "predictor", "btb", "ras", "fetch",
        # backend structures
        "int_iq", "mem_iq", "iqs", "fus",
        # latches
        "decode_queue", "completions", "squash_arbiter",
        # reuse scheme
        "scheme",
        # per-cycle control scalars
        "cycle", "halted", "last_commit_cycle", "last_retired_block",
        "commit_limit", "budget_stop",
    )

    def __init__(self):
        self.cycle = 0
        self.halted = False
        self.memsys = None           # PortedMemorySystem (ported mode only)
        self.last_commit_cycle = 0
        self.last_retired_block = -1
        self.commit_limit = None     # committed-inst budget (run(max_insts=))
        self.budget_stop = False     # halted by the budget, not `halt`

    # ------------------------------------------------------------------
    # Register-lifetime helpers shared by commit, squash and the reuse
    # schemes (the scheme is notified of every release).
    # ------------------------------------------------------------------
    def free_preg(self, preg):
        """Release a physical register and notify the reuse scheme."""
        self.regfile.free(preg)
        self.scheme.on_preg_freed(preg)

    def free_reserved_preg(self, preg):
        """Release a register previously reserved for a reuse scheme."""
        self.free_preg(preg)

    def arch_regs(self):
        """Current architectural register values via the RAT."""
        from repro.isa.registers import NUM_ARCH_REGS
        return [self.regfile.values[self.rat.lookup(a)] if a else 0
                for a in range(NUM_ARCH_REGS)]
