"""Writeback stage: completion, wakeup, branch resolution, hazards.

Drains the :class:`~repro.pipeline.latches.CompletionQueue` latch for
the current cycle. Every squash condition discovered here — branch
misprediction, store-to-load ordering violation, reused-load
verification failure — is raised on the shared
:class:`~repro.pipeline.latches.SquashArbiter`; this stage never applies
recovery itself.
"""


class WritebackStage:
    """Complete executed instructions and wake their consumers."""

    __slots__ = ("state", "regfile", "int_iq", "mem_iq", "lsq", "obs",
                 "scheme", "completions", "arbiter")

    def __init__(self, state):
        self.state = state
        self.regfile = state.regfile
        self.int_iq = state.int_iq
        self.mem_iq = state.mem_iq
        self.lsq = state.lsq
        self.obs = state.obs
        self.scheme = state.scheme
        self.completions = state.completions
        self.arbiter = state.squash_arbiter

    def tick(self):
        done = self.completions.pop(self.state.cycle)
        if not done:
            return
        for dyn in done:
            if dyn.squashed:
                continue
            self._writeback_inst(dyn)

    def _writeback_inst(self, dyn):
        dyn.executed = True
        obs = self.obs
        if obs.enabled:
            obs.emit_writeback(dyn)
        if dyn.verify_load:
            # Value was already delivered at rename; this is verification.
            if dyn.result != dyn.store_data:
                # store_data caches the verification re-read (see
                # ExecuteStage._execute_load); mismatch -> flush from
                # this load.
                obs.verify_flush(dyn)
                self.scheme.on_verify_fail(dyn)
                self.arbiter.request(dyn.seq - 1, dyn, "verify", dyn.pc)
            return

        dyn.completed = True
        if dyn.dest_preg is not None:
            self.regfile.set_value(dyn.dest_preg, dyn.result)
            self.int_iq.wakeup(dyn.dest_preg)
            self.mem_iq.wakeup(dyn.dest_preg)

        if dyn.is_branch:
            self._resolve_branch(dyn)
        elif dyn.is_store:
            self.scheme.on_store_executed(dyn.mem_addr, dyn.mem_size)
            violators = self.lsq.find_violations(dyn)
            if violators:
                victim = violators[0]
                self.obs.replay_violation(victim)
                self.arbiter.request(victim.seq - 1, victim, "replay",
                                     victim.pc)

    def _resolve_branch(self, dyn):
        if dyn.pred_npc == dyn.actual_npc:
            return
        dyn.mispredicted = dyn.pred_npc is not None
        self.arbiter.request(dyn.seq, dyn, "branch", dyn.actual_npc)
