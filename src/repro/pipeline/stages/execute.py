"""Execute stage: issue-queue selection and functional execution.

Wraps the scheduler (issue queues + function units) and the LSQ's
speculative datapath. Completions are scheduled into the
:class:`~repro.pipeline.latches.CompletionQueue` latch at
``cycle + latency``; the writeback stage picks them up.

``REPRO_SLOWPATH=1`` swaps in the original interpretive execute path,
kept verbatim as the differential-testing reference for the predecoded
fast path.
"""

from repro.isa.instruction import INST_BYTES
from repro.isa.opcodes import Op, OpClass
from repro.isa.predecode import (KIND_BRANCH, KIND_DIV, KIND_LOAD,
                                 KIND_STORE, slowpath_enabled)
from repro.utils.bits import MASK64, sext32, to_unsigned, wrap64


def _sext32(value):
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= ~0xFFFFFFFF & MASK64
    return value


class ExecuteStage:
    """Select ready instructions from the issue queues and execute them."""

    __slots__ = ("state", "width", "iqs", "fus", "regfile", "lsq",
                 "hierarchy", "dport", "fwd_latency", "completions",
                 "obs", "config", "kind_latency", "execute_inst")

    def __init__(self, state):
        cfg = state.config
        self.state = state
        self.width = cfg.width
        self.iqs = state.iqs
        self.fus = state.fus
        self.regfile = state.regfile
        self.lsq = state.lsq
        self.hierarchy = state.hierarchy
        # Ported mode: loads/stores issue completion-cycle requests on
        # the L1D port (overlapping misses) instead of the synchronous
        # hierarchy probe; store-to-load forwards cost an L1 hit.
        self.dport = state.memsys.dport if state.memsys is not None \
            else None
        self.fwd_latency = cfg.mem.l1d_latency \
            if state.memsys is not None else cfg.l1_latency
        self.completions = state.completions
        self.obs = state.obs
        self.config = cfg
        # Execute latency indexed by PDInst.kind (branch/load handlers
        # compute their own).
        self.kind_latency = (
            cfg.alu_latency, cfg.mul_latency, cfg.div_latency,
            cfg.branch_latency, 0, cfg.store_latency,
            cfg.alu_latency, cfg.alu_latency)
        # Differential-testing escape hatch: dispatch execute through
        # the original interpretive path.
        self.execute_inst = self._execute_inst_slow if slowpath_enabled() \
            else self._execute_inst

    def tick(self):
        width = self.width
        try_take = self.fus.try_take
        execute = self.execute_inst
        for iq in self.iqs:
            for dyn in iq.take_ready(width, try_take):
                execute(dyn)

    def _execute_inst(self, dyn):
        pd = dyn.pd
        dyn.issued = True
        cycle = self.state.cycle
        dyn.issue_cycle = cycle
        obs = self.obs
        if obs.enabled:
            obs.emit_issue(dyn)
        values = self.regfile.values
        sp = dyn.srcs_preg
        kind = pd.kind

        if kind <= KIND_DIV:           # alu / mul / div
            latency = self.kind_latency[kind]
            if pd.has_imm:
                dyn.result = pd.alu_fn(values[sp[0]], pd.imm_u) \
                    if pd.num_srcs else pd.imm_u
            else:
                dyn.result = pd.alu_fn(values[sp[0]], values[sp[1]])
        elif kind == KIND_BRANCH:
            latency = self._execute_branch(dyn, values, sp)
        elif kind == KIND_LOAD:
            latency = self._execute_load(dyn, values, sp)
        elif kind == KIND_STORE:
            addr = wrap64(values[sp[1]] + pd.imm)
            dyn.mem_addr = addr
            dyn.mem_size = pd.mem_size
            dyn.store_data = values[sp[0]] & pd.store_mask
            if self.dport is not None:
                latency = self.kind_latency[KIND_STORE] \
                    + self.dport.request(cycle, addr, is_write=True,
                                         seq=dyn.seq) - cycle
            else:
                latency = self.kind_latency[KIND_STORE] \
                    + self.hierarchy.access(addr, is_write=True)
        else:                          # nop / halt (never issued; parity)
            latency = self.kind_latency[kind]
        events = self.completions.by_cycle
        when = cycle + latency
        pending = events.get(when)
        if pending is None:
            events[when] = [dyn]
        else:
            pending.append(dyn)

    def _execute_branch(self, dyn, values, sp):
        pd = dyn.pd
        fallthrough = pd.next_pc
        op = pd.op
        if op is Op.JAL:
            dyn.actual_npc = pd.target
            dyn.result = fallthrough
        elif op is Op.JALR:
            dyn.actual_npc = wrap64(values[sp[0]] + pd.imm) & ~1
            dyn.result = fallthrough
        else:
            taken = pd.branch_fn(values[sp[0]], values[sp[1]])
            dyn.actual_npc = pd.target if taken else fallthrough
        return self.kind_latency[KIND_BRANCH]

    def _execute_load(self, dyn, values, sp):
        pd = dyn.pd
        if dyn.verify_load:
            addr = dyn.mem_addr  # logged by the reuse scheme
        else:
            addr = wrap64(values[sp[0]] + pd.imm)
            dyn.mem_addr = addr
            dyn.mem_size = pd.mem_size
        value, forwarded = self.lsq.speculative_read(addr, pd.mem_size,
                                                     dyn.seq)
        if pd.is_lw:
            value = sext32(value)
        if dyn.verify_load:
            # Stash the re-read value for comparison at writeback.
            dyn.store_data = value
        else:
            dyn.result = value
        if forwarded:
            return self.fwd_latency
        if self.dport is not None:
            cycle = dyn.issue_cycle
            return 1 + self.dport.request(cycle, addr,
                                          seq=dyn.seq) - cycle
        return 1 + self.hierarchy.access(addr)

    # ------------------------------------------------------------------
    # Original interpretive execute (REPRO_SLOWPATH=1): kept verbatim as
    # the differential-testing reference for the predecoded fast path.
    # ------------------------------------------------------------------
    def _execute_inst_slow(self, dyn):
        inst = dyn.inst
        info = inst.info
        dyn.issued = True
        cycle = self.state.cycle
        dyn.issue_cycle = cycle
        obs = self.obs
        if obs.enabled:
            obs.emit_issue(dyn)
        values = self.regfile.values
        srcs = [values[p] for p in dyn.srcs_preg]
        latency = self.fus.latency_of(dyn)
        op_class = info.op_class

        if op_class is OpClass.BRANCH:
            latency = self._execute_branch_slow(dyn, srcs)
        elif op_class is OpClass.LOAD:
            latency = self._execute_load_slow(dyn, srcs)
        elif op_class is OpClass.STORE:
            addr = wrap64(srcs[1] + inst.imm)
            dyn.mem_addr = addr
            dyn.mem_size = info.mem_size
            dyn.store_data = srcs[0] & ((1 << (info.mem_size * 8)) - 1)
            if self.dport is not None:
                latency += self.dport.request(cycle, addr, is_write=True,
                                              seq=dyn.seq) - cycle
            else:
                latency += self.hierarchy.access(addr, is_write=True)
        else:
            if info.has_imm:
                a = srcs[0] if info.num_srcs else 0
                dyn.result = info.alu_fn(a, to_unsigned(inst.imm)) \
                    if info.alu_fn else to_unsigned(inst.imm)
            else:
                dyn.result = info.alu_fn(srcs[0], srcs[1])
        self.completions.by_cycle.setdefault(cycle + latency,
                                             []).append(dyn)

    def _execute_branch_slow(self, dyn, srcs):
        inst = dyn.inst
        fallthrough = inst.pc + INST_BYTES
        if inst.op is Op.JAL:
            dyn.actual_npc = inst.imm
            dyn.result = fallthrough
        elif inst.op is Op.JALR:
            dyn.actual_npc = wrap64(srcs[0] + inst.imm) & ~1
            dyn.result = fallthrough
        else:
            taken = inst.info.branch_fn(srcs[0], srcs[1])
            dyn.actual_npc = inst.imm if taken else fallthrough
        return self.config.branch_latency

    def _execute_load_slow(self, dyn, srcs):
        inst = dyn.inst
        info = inst.info
        if dyn.verify_load:
            addr = dyn.mem_addr  # logged by the reuse scheme
        else:
            addr = wrap64(srcs[0] + inst.imm)
            dyn.mem_addr = addr
            dyn.mem_size = info.mem_size
        value, forwarded = self.lsq.speculative_read(addr, info.mem_size,
                                                     dyn.seq)
        if inst.op is Op.LW:
            value = _sext32(value)
        if dyn.verify_load:
            # Stash the re-read value for comparison at writeback.
            dyn.store_data = value
        else:
            dyn.result = value
        if forwarded:
            return self.fwd_latency
        if self.dport is not None:
            cycle = dyn.issue_cycle
            return 1 + self.dport.request(cycle, addr,
                                          seq=dyn.seq) - cycle
        return 1 + self.hierarchy.access(addr)
