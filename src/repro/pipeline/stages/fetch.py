"""Fetch stage: drive the frontend and fill the decode queue.

The pipeline-side fetch stage owns only delivery policy (how many
blocks per cycle, decode-queue backpressure); prediction, the FTQ and
the icache live in the frontend (:mod:`repro.frontend.fetch`,
:mod:`repro.frontend.icache`) behind the
:class:`~repro.frontend.fetch.FetchUnit` interface.
"""


class FetchStage:
    """Deliver predicted blocks from the frontend into the decode queue."""

    __slots__ = ("state", "fetch", "decode_queue", "obs", "scheme",
                 "blocks_per_cycle", "block_insts")

    def __init__(self, state):
        cfg = state.config
        self.state = state
        self.fetch = state.fetch
        self.decode_queue = state.decode_queue
        self.obs = state.obs
        self.scheme = state.scheme
        self.blocks_per_cycle = cfg.fetch_blocks_per_cycle
        self.block_insts = cfg.fetch_block_insts

    def tick(self):
        cycle = self.state.cycle
        fetch = self.fetch
        # Decoupled mode: the BPU runs ahead into the FTQ regardless of
        # decode backpressure (no-op when fused).
        fetch.tick(cycle)
        dq = self.decode_queue
        for _ in range(self.blocks_per_cycle):
            if not dq.has_room(self.block_insts):
                return
            block = fetch.fetch_block(cycle)
            if block is None:
                return
            self.obs.fetch_block(block)
            self.scheme.on_fetch_block(block)
            dq.push_block(block.insts)
