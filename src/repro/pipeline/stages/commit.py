"""Commit stage: in-order retirement from the ROB head."""


class CommitStage:
    """Retire up to ``width`` completed instructions per cycle.

    Owns commit-side policy: store/load retirement into the LSQ,
    architectural register promotion (and the freeing of the previous
    mapping), branch predictor training, and FTQ deallocation once every
    instruction of a block has retired. Reuse-verification loads block
    retirement until their re-execution has actually run
    (``verify_load and not executed``).
    """

    __slots__ = ("state", "width", "rob", "lsq", "obs", "scheme",
                 "regfile", "predictor", "btb", "fetch")

    def __init__(self, state):
        self.state = state
        self.width = state.config.width
        self.rob = state.rob
        self.lsq = state.lsq
        self.obs = state.obs
        self.scheme = state.scheme
        self.regfile = state.regfile
        self.predictor = state.predictor
        self.btb = state.btb
        self.fetch = state.fetch

    def tick(self):
        state = self.state
        rob = self.rob
        obs = self.obs
        for _ in range(self.width):
            if not rob:
                return
            head = rob[0]
            if not head.completed or (head.verify_load and not head.executed):
                return
            rob.popleft()
            head.committed = True
            self._commit_inst(head)
            obs.commit(head)
            state.last_commit_cycle = state.cycle
            if head.pd.is_halt:
                state.halted = True
                return
            if state.commit_limit is not None \
                    and state.stats.committed_insts >= state.commit_limit:
                # Stop committing, but let the rest of this cycle's
                # stages run before halting (step() raises the halt):
                # completion events already scheduled for this cycle
                # must drain, or a resumed run would deadlock on them.
                state.budget_stop = True
                return

    def _commit_inst(self, head):
        state = self.state
        if head.is_store:
            self.lsq.commit_store(head)
        elif head.is_load:
            self.lsq.commit_load(head)

        if head.dest_preg is not None:
            self.regfile.mark_arch(head.dest_preg)
            if head.old_preg is not None:
                state.free_preg(head.old_preg)

        if head.is_branch:
            self._train_branch(head)

        if head.block_id - 1 > state.last_retired_block:
            self.fetch.retire_block(head.block_id - 1)
            state.last_retired_block = head.block_id - 1

        self.scheme.on_commit(head)

    def _train_branch(self, head):
        pd = head.pd
        taken = head.actual_npc != pd.next_pc
        if pd.is_cond_branch:
            self.obs.cond_branch(head.mispredicted)
            if head.bp_meta is not None:
                self.predictor.update(pd.pc, taken, head.bp_meta)
        elif pd.is_indirect:
            self.obs.indirect_branch(head.mispredicted)
            self.btb.install(pd.pc, head.actual_npc)
