"""Squash unit: apply the arbitrated squash at cycle end.

All squash *requests* go through the
:class:`~repro.pipeline.latches.SquashArbiter`; this unit applies the
winning one — rolling the ROB, decode queue and RAT back, carving the
squashed FTQ suffix out for the reuse scheme, releasing or reserving
physical registers, repairing speculative predictor/RAS state and
redirecting fetch.
"""

from repro.frontend.tage_scl import TageSCL
from repro.isa.instruction import INST_BYTES


class SquashUnit:
    """Apply one arbitrated squash request across the whole machine."""

    __slots__ = ("state", "rob", "decode_queue", "rat", "obs", "fetch",
                 "scheme", "lsq", "int_iq", "mem_iq", "regfile",
                 "predictor", "ras")

    def __init__(self, state):
        self.state = state
        self.rob = state.rob
        self.decode_queue = state.decode_queue
        self.rat = state.rat
        self.obs = state.obs
        self.fetch = state.fetch
        self.scheme = state.scheme
        self.lsq = state.lsq
        self.int_iq = state.int_iq
        self.mem_iq = state.mem_iq
        self.regfile = state.regfile
        self.predictor = state.predictor
        self.ras = state.ras

    def apply(self, request):
        boundary = request.boundary_seq
        if request.trigger.squashed:
            return  # stale request (should not happen; safety)

        # 1. Pop squashed instructions from the ROB (tail first).
        squashed = []
        rob = self.rob
        while rob and rob[-1].seq > boundary:
            squashed.append(rob.pop())
        # 2. Drop not-yet-renamed instructions from the decode queue
        #    (kept for frontend repair: their speculative predictor
        #    advances still need unwinding).
        dropped_dyns = self.decode_queue.drop_younger_than(boundary)
        dropped_seqs = [dyn.seq for dyn in dropped_dyns] \
            if self.obs.enabled else []
        # 3. Roll the RAT back, youngest first.
        for dyn in squashed:
            dyn.squashed = True
            self.rat.rollback(dyn)
        self.obs.squash(request.kind, request.trigger, boundary,
                        request.redirect_pc, squashed, dropped_seqs)
        if self.state.memsys is not None:
            # Wrong-path memory footprint: squashed instructions whose
            # access already probed (and filled) the ported hierarchy.
            wrong_path_mem = sum(1 for dyn in squashed
                                 if dyn.issued and dyn.mem_addr is not None)
            if wrong_path_mem:
                self.obs.mem_wrong_path(wrong_path_mem)

        # 4. FTQ: carve out the squashed blocks (for the WPBs). The
        #    boundary block is split so instructions at or before the
        #    boundary survive (for replay squashes the trigger itself is
        #    squashed and refetched). With FTQ-sourced capture enabled,
        #    the fetch unit feeds every squashed block — delivered and
        #    still-pending — to the reuse scheme here, branch squashes
        #    only.
        squashed_blocks = self.fetch.squash_ftq_after(
            request.trigger.block_id, keep_partial_seq=boundary,
            capture=request.kind == "branch")

        # 5. Reuse-scheme notification *before* registers are freed, so it
        #    can claim them.
        squashed_oldest_first = list(reversed(squashed))
        if request.kind == "branch":
            self.scheme.on_branch_squash(request.trigger,
                                         squashed_oldest_first,
                                         squashed_blocks)
        else:
            self.scheme.on_replay_squash(request.trigger)

        # 6. Free or reserve destination registers; drain LSQ/IQ entries.
        state = self.state
        for dyn in squashed:
            self.lsq.remove(dyn)
            if dyn.dest_preg is not None:
                if (request.kind == "branch" and dyn.executed
                        and not dyn.verify_load
                        and self.scheme.wants_preg(dyn)):
                    self.regfile.mark_reserved(dyn.dest_preg)
                else:
                    state.free_preg(dyn.dest_preg)
        self.int_iq.remove_squashed()
        self.mem_iq.remove_squashed()

        # 7. Repair predictor history and RAS.
        self._repair_frontend(request, squashed_oldest_first, dropped_dyns)

        # 8. Redirect fetch.
        self.fetch.redirect(request.redirect_pc, cycle=state.cycle)

    def _repair_frontend(self, request, squashed_oldest_first,
                         dropped_newest_first=()):
        # Unwind per-prediction speculative state (loop iteration
        # counts) of every squashed prediction, youngest first:
        # decode-queue drops are younger than ROB-squashed instructions
        # (the fetch unit has already unwound flushed FTQ entries,
        # which are younger still).
        unwind = getattr(self.predictor, "unwind", None)
        if unwind is not None:
            for dyn in dropped_newest_first:
                if dyn.bp_meta is not None:
                    unwind(dyn.bp_meta)
            for dyn in reversed(squashed_oldest_first):
                if dyn.bp_meta is not None:
                    unwind(dyn.bp_meta)
        trigger = request.trigger
        if request.kind == "branch" and trigger.inst.is_cond_branch \
                and trigger.bp_meta is not None:
            taken = trigger.actual_npc != trigger.pc + INST_BYTES
            if isinstance(self.predictor, TageSCL):
                self.predictor.recover_branch(trigger.pc, taken,
                                              trigger.bp_meta)
            else:
                self.predictor.recover(taken, trigger.bp_meta)
        else:
            # Replay/verify squash (or jalr): rewind history to the oldest
            # squashed conditional branch's pre-prediction state.
            for dyn in squashed_oldest_first:
                if dyn.bp_meta is not None:
                    self.predictor.restore_history(dyn.bp_meta.history)
                    break
        for dyn in squashed_oldest_first:
            if dyn.ras_snap is not None:
                self.ras.restore(dyn.ras_snap)
                break
