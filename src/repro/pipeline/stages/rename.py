"""Rename/dispatch stage: RAT lookup, reuse test, resource allocation.

Drains the :class:`~repro.pipeline.latches.DecodeQueue` latch in program
order, offering every register-writing instruction to the reuse scheme
before allocating a fresh destination, then inserts it into the ROB and
the appropriate issue queue (or the LSQ for memory operations).
"""

from repro.isa.predecode import KIND_LOAD, KIND_NOP, KIND_STORE


class RenameDispatchStage:
    """Rename up to ``width`` instructions per cycle and dispatch them."""

    __slots__ = ("state", "width", "frontend_stages", "rob_entries",
                 "decode_queue", "rob", "rat", "regfile", "lsq",
                 "int_iq", "mem_iq", "scheme", "obs")

    def __init__(self, state):
        cfg = state.config
        self.state = state
        self.width = cfg.width
        self.frontend_stages = cfg.frontend_stages
        self.rob_entries = cfg.rob_entries
        self.decode_queue = state.decode_queue
        self.rob = state.rob
        self.rat = state.rat
        self.regfile = state.regfile
        self.lsq = state.lsq
        self.int_iq = state.int_iq
        self.mem_iq = state.mem_iq
        self.scheme = state.scheme
        self.obs = state.obs

    def tick(self):
        dq = self.decode_queue.entries
        if not dq:
            return
        width = self.width
        frontier = self.state.cycle - self.frontend_stages
        renamed = 0
        while renamed < width and dq:
            dyn = dq[0]
            if dyn.fetch_cycle > frontier:
                break
            if not self._has_dispatch_resources(dyn):
                break
            dq.popleft()
            self._rename_inst(dyn)
            self._dispatch_inst(dyn)
            renamed += 1

    def _has_dispatch_resources(self, dyn):
        if len(self.rob) >= self.rob_entries:
            return False
        pd = dyn.pd
        kind = pd.kind
        if kind == KIND_LOAD:
            iq = self.mem_iq
            if iq.size >= iq.capacity or self.lsq.lq_free == 0:
                return False
        elif kind == KIND_STORE:
            iq = self.mem_iq
            if iq.size >= iq.capacity or self.lsq.sq_free == 0:
                return False
        elif kind < KIND_NOP:
            iq = self.int_iq
            if iq.size >= iq.capacity:
                return False
        if pd.writes_reg and self.regfile.num_free == 0:
            # Condition (5): reclaim squash-log registers under pressure.
            if not self.scheme.emergency_release():
                return False
            if self.regfile.num_free == 0:
                return False
        return True

    def _rename_inst(self, dyn):
        pd = dyn.pd
        rat = self.rat
        num_srcs = pd.num_srcs
        rmap = rat.map
        if num_srcs == 0:
            dyn.srcs_preg = ()
        elif num_srcs == 1:
            dyn.srcs_preg = (rmap[pd.src0],)
        else:
            dyn.srcs_preg = (rmap[pd.src0], rmap[pd.src1])
        if rat.track_rgids:
            rgid = rat.rgid
            if num_srcs == 0:
                dyn.src_rgids = ()
            elif num_srcs == 1:
                dyn.src_rgids = (rgid[pd.src0],)
            else:
                dyn.src_rgids = (rgid[pd.src0], rgid[pd.src1])

        writes_reg = pd.writes_reg
        reused = False
        if writes_reg and not pd.is_branch and not pd.is_store:
            result = self.scheme.try_reuse(dyn)
            if result is not None:
                self._apply_reuse(dyn, result)
                reused = True
        if not reused and writes_reg:
            if not rat.rename_dest(dyn):
                raise AssertionError("rename without a free preg")
        dyn.renamed = True
        if self.obs.enabled:
            self.obs.emit_rename(dyn, reused)
        self.scheme.on_rename(dyn, reused)

    def _apply_reuse(self, dyn, result):
        if result.preg is not None:
            # Integration-style: adopt the squashed destination register.
            self.rat.apply_reuse(dyn, result.preg, result.rgid)
            self.regfile.mark_in_flight(result.preg)
            dyn.result = self.regfile.values[result.preg]
        else:
            # Value-style (DIR): fresh register, stored value.
            if not self.rat.rename_dest(dyn):
                raise AssertionError("reuse without a free preg")
            self.regfile.set_value(dyn.dest_preg, result.value)
            dyn.result = result.value
        dyn.reused = True
        dyn.completed = True
        dyn.reuse_scheme_tag = result.tag
        self.obs.reuse_applied(dyn)
        if dyn.is_load and result.verify_addr is not None:
            dyn.verify_load = True
            dyn.mem_addr = result.verify_addr
            dyn.mem_size = dyn.pd.mem_size

    def _dispatch_inst(self, dyn):
        self.rob.append(dyn)
        kind = dyn.pd.kind
        if kind >= KIND_NOP:           # nop / halt
            dyn.completed = True
            dyn.executed = True
            return
        if dyn.reused and not dyn.verify_load:
            dyn.executed = True
            return
        if kind == KIND_LOAD or kind == KIND_STORE:
            self.lsq.allocate(dyn)
            iq = self.mem_iq
        else:
            iq = self.int_iq
        # Unrolled "unready deduped sources" (the set()+listcomp here was
        # a top allocation site; instructions have at most two sources).
        sp = dyn.srcs_preg
        ready = self.regfile.ready
        if not sp:
            not_ready = ()
        elif len(sp) == 1 or sp[0] == sp[1]:
            p0 = sp[0]
            not_ready = () if ready[p0] else (p0,)
        else:
            p0, p1 = sp
            if ready[p0]:
                not_ready = () if ready[p1] else (p1,)
            else:
                not_ready = (p0,) if ready[p1] else (p0, p1)
        iq.insert(dyn, not_ready)
