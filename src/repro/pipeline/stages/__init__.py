"""Pipeline stage objects.

Each stage is one object owning the policy of one pipeline segment and
nothing else; everything a stage shares with its neighbours flows
through the typed latches in :mod:`repro.pipeline.latches` and the
shared :class:`~repro.pipeline.latches.CoreState`. The core's ``step()``
walks them in reverse pipeline order (commit → writeback → execute →
rename/dispatch → fetch) so a single-cycle producer wakes its consumer
back-to-back, then drains the squash arbiter.
"""

from repro.pipeline.stages.commit import CommitStage
from repro.pipeline.stages.execute import ExecuteStage
from repro.pipeline.stages.fetch import FetchStage
from repro.pipeline.stages.rename import RenameDispatchStage
from repro.pipeline.stages.squash import SquashUnit
from repro.pipeline.stages.writeback import WritebackStage

__all__ = [
    "CommitStage",
    "ExecuteStage",
    "FetchStage",
    "RenameDispatchStage",
    "SquashUnit",
    "WritebackStage",
]
