"""Issue queues, wakeup network and functional-unit ports.

Two reservation-station pools (integer and memory, per Table 3) hold
dispatched instructions until their source physical registers are ready.
Wakeup is event-driven: completing instructions broadcast their dest preg
and dependents' wait counts drop; zero-wait instructions enter the ready
pool and issue oldest-first subject to per-class port limits.
"""

from operator import attrgetter

from repro.isa.opcodes import OpClass
from repro.isa.predecode import (KIND_ALU, KIND_BRANCH, KIND_LOAD,
                                 KIND_MUL, KIND_NOP, KIND_STORE)

_SEQ_KEY = attrgetter("seq")


class IssueQueue:
    """One reservation-station pool."""

    def __init__(self, name, capacity):
        self.name = name
        self.capacity = capacity
        self.size = 0
        self._waiting = {}    # preg -> [DynInst]
        self._ready = []      # DynInst with all operands ready

    @property
    def has_space(self):
        return self.size < self.capacity

    def insert(self, dyn, not_ready_pregs):
        """Dispatch ``dyn`` waiting on the given source pregs."""
        if not self.has_space:
            raise AssertionError("%s IQ overflow" % self.name)
        self.size += 1
        dyn.wait_count = len(not_ready_pregs)
        if dyn.wait_count == 0:
            self._ready.append(dyn)
        else:
            for preg in not_ready_pregs:
                self._waiting.setdefault(preg, []).append(dyn)

    def wakeup(self, preg):
        """Broadcast readiness of ``preg``."""
        waiters = self._waiting.pop(preg, None)
        if not waiters:
            return
        for dyn in waiters:
            if dyn.squashed:
                continue
            dyn.wait_count -= 1
            if dyn.wait_count == 0:
                self._ready.append(dyn)

    def take_ready(self, limit, accept):
        """Pop up to ``limit`` ready instructions (oldest first) for which
        ``accept(dyn)`` grants an FU port."""
        ready = self._ready
        if not ready:
            return []
        # Squashed entries only exist in the cycles right after a squash;
        # scan before paying for the filtering list allocation.
        for dyn in ready:
            if dyn.squashed:
                ready = [d for d in ready if not d.squashed]
                if not ready:
                    self._ready = ready
                    return []
                break
        ready.sort(key=_SEQ_KEY)
        issued = []
        remaining = []
        take = limit
        for dyn in ready:
            if take and accept(dyn):
                issued.append(dyn)
                take -= 1
                self.size -= 1
            else:
                remaining.append(dyn)
        self._ready = remaining
        return issued

    def remove_squashed(self):
        """Reclaim capacity held by squashed instructions (lazy lists are
        cleaned on their next touch)."""
        self._ready = [d for d in self._ready if not d.squashed]
        alive = self._ready_count() + sum(
            1 for waiters in self._waiting.values()
            for d in waiters if not d.squashed and d.wait_count > 0)
        # Waiting lists may hold duplicates of multi-source instructions;
        # recount precisely via a set.
        seen = set()
        count = 0
        for dyn in self._ready:
            if dyn.seq not in seen:
                seen.add(dyn.seq)
                count += 1
        for waiters in self._waiting.values():
            for dyn in waiters:
                if not dyn.squashed and dyn.seq not in seen:
                    seen.add(dyn.seq)
                    count += 1
        self.size = count

    def _ready_count(self):
        return len(self._ready)


class FunctionUnits:
    """Per-cycle port accounting for ALU / BRU / LSU plus the unpipelined
    divider."""

    def __init__(self, config):
        self.config = config
        self.div_busy_until = 0
        self._alu_used = 0
        self._bru_used = 0
        self._lsu_used = 0
        self._cycle = -1
        # Port limits as plain attributes (try_take is called for every
        # ready instruction every cycle).
        self._num_alu = config.num_alu
        self._num_bru = config.num_bru
        self._num_lsu = config.num_lsu
        self._div_latency = config.div_latency

    def new_cycle(self, cycle):
        self._cycle = cycle
        self._alu_used = 0
        self._bru_used = 0
        self._lsu_used = 0

    def try_take(self, dyn):
        """Claim a port for ``dyn``; returns False when saturated."""
        kind = dyn.pd.kind
        if kind == KIND_ALU or kind == KIND_MUL or kind >= KIND_NOP:
            if self._alu_used < self._num_alu:
                self._alu_used += 1
                return True
            return False
        if kind == KIND_LOAD or kind == KIND_STORE:
            if self._lsu_used < self._num_lsu:
                self._lsu_used += 1
                return True
            return False
        if kind == KIND_BRANCH:
            if self._bru_used < self._num_bru:
                self._bru_used += 1
                return True
            return False
        # KIND_DIV: unpipelined divider sharing the ALU ports.
        if self._alu_used < self._num_alu and \
                self.div_busy_until <= self._cycle:
            self._alu_used += 1
            self.div_busy_until = self._cycle + self._div_latency
            return True
        return False

    def latency_of(self, dyn):
        op_class = dyn.inst.info.op_class
        cfg = self.config
        if op_class is OpClass.MUL:
            return cfg.mul_latency
        if op_class is OpClass.DIV:
            return cfg.div_latency
        if op_class is OpClass.BRANCH:
            return cfg.branch_latency
        if op_class is OpClass.STORE:
            return cfg.store_latency
        return cfg.alu_latency
