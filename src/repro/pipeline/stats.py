"""Simulation statistics: the metrics view of the observability layer.

``SimStats`` is a flat counter bag, but call sites no longer poke it
directly: every counter is maintained by the typed helpers on
:class:`~repro.obs.bus.Observability`, which also emit the matching
event records when sinks are attached. The invariant — counters are a
pure view over the event stream — is checked by
:class:`~repro.obs.sinks.MetricsSink`, which recomputes the
event-derived counters independently.
"""


#: Derived properties included in :meth:`SimStats.as_dict` for human
#: consumption but recomputed (never loaded) by :meth:`SimStats.from_dict`.
DERIVED_STATS = ("ipc", "branch_mpki", "cond_mispredict_rate")


class SimStats:
    """Flat counter bag with derived metrics."""

    def __init__(self):
        self.cycles = 0
        self.committed_insts = 0
        self.fetched_insts = 0
        self.squashed_insts = 0

        # Decoupled frontend (zero when frontend.decoupled is off)
        self.ftq_enqueues = 0
        self.fetch_stalls = 0
        self.fetch_stall_reasons = {}

        # Instruction cache (zero when frontend.icache_lines is 0)
        self.icache_accesses = 0
        self.icache_misses = 0

        # Ported memory system (all zero when mem.model is "flat")
        self.mem_accesses = 0
        self.mem_l1d_hits = 0
        self.mem_l1d_misses = 0
        self.mem_l2_hits = 0
        self.mem_l2_misses = 0
        self.mem_dram_accesses = 0
        self.mem_mshr_merges = 0
        self.mem_mshr_stalls = 0
        self.mem_mshr_peak = 0       # max MSHR occupancy seen (>1 = MLP)
        self.mem_wrong_path_insts = 0

        self.cond_branches = 0
        self.cond_mispredicts = 0
        self.indirect_branches = 0
        self.indirect_mispredicts = 0
        self.branch_squashes = 0
        self.replay_squashes = 0
        self.verify_flushes = 0

        # Squash reuse
        self.reuse_tests = 0
        self.reuse_successes = 0
        self.reused_loads = 0
        self.wpb_captures_ftq = 0  # blocks captured via FTQ-sourced path
        self.reconvergences = 0
        self.reconv_simple = 0
        self.reconv_software = 0
        self.reconv_hardware = 0
        self.stream_distance_hist = {}
        self.rgid_overflows = 0
        self.rgid_resets = 0
        self.wpb_timeouts = 0
        self.squash_log_pressure_frees = 0

        # Register Integration
        self.ri_insertions = 0
        self.ri_replacements = 0
        self.ri_invalidations = 0
        self.ri_set_replacements = None  # filled by the RI scheme

    # ------------------------------------------------------------------
    @property
    def ipc(self):
        return self.committed_insts / self.cycles if self.cycles else 0.0

    @property
    def branch_mpki(self):
        if not self.committed_insts:
            return 0.0
        total = self.cond_mispredicts + self.indirect_mispredicts
        return 1000.0 * total / self.committed_insts

    @property
    def cond_mispredict_rate(self):
        if not self.cond_branches:
            return 0.0
        return self.cond_mispredicts / self.cond_branches

    def record_stream_distance(self, distance):
        self.stream_distance_hist[distance] = \
            self.stream_distance_hist.get(distance, 0) + 1

    def as_dict(self):
        """Plain-data snapshot, safe for JSON and worker transport.

        Every value is a JSON-native scalar, list or dict. Note that
        JSON encoding stringifies the ``stream_distance_hist`` keys;
        :meth:`from_dict` converts them back to ints.
        """
        data = {}
        for name, value in vars(self).items():
            if name == "stream_distance_hist":
                value = {int(k): int(v) for k, v in value.items()}
            elif name == "fetch_stall_reasons":
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            data[name] = value
        for name in DERIVED_STATS:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild stats from :meth:`as_dict` output (possibly after a
        JSON round-trip). Derived properties are recomputed, not loaded;
        histogram keys are restored to ints."""
        stats = cls()
        for name, value in data.items():
            if name in DERIVED_STATS:
                continue
            if name == "stream_distance_hist":
                value = {int(k): int(v) for k, v in value.items()}
            setattr(stats, name, value)
        return stats

    def summary(self):
        return ("cycles=%d insts=%d IPC=%.3f mpki=%.2f "
                "mispred=%d reuse=%d/%d reconv=%d"
                % (self.cycles, self.committed_insts, self.ipc,
                   self.branch_mpki, self.cond_mispredicts,
                   self.reuse_successes, self.reuse_tests,
                   self.reconvergences))
