"""Out-of-order core model."""

from repro.pipeline.config import (
    CoreConfig,
    MSSRConfig,
    RIConfig,
    baseline_config,
    mssr_config,
    dci_config,
    ri_config,
)
from repro.pipeline.core import O3Core, SimResult, SimulationError
from repro.pipeline.dyninst import DynInst
from repro.pipeline.stats import SimStats
from repro.pipeline.regfile import PhysRegFile
from repro.pipeline.rename import RenameTable, NULL_RGID

__all__ = [
    "CoreConfig",
    "MSSRConfig",
    "RIConfig",
    "baseline_config",
    "mssr_config",
    "dci_config",
    "ri_config",
    "O3Core",
    "SimResult",
    "SimulationError",
    "DynInst",
    "SimStats",
    "PhysRegFile",
    "RenameTable",
    "NULL_RGID",
]
