"""Register Alias Table with RGID extension.

The RAT maps each architectural register to its youngest physical
register. Following Section 3.1 of the paper, every mapping additionally
carries a *Rename Mapping Generation ID* (RGID): a per-architectural-
register version number drawn from a global counter that is bumped on
every rename. Two execution contexts observed the same value of register
``a`` iff their recorded RGIDs for ``a`` are equal — this is the entire
reuse test.

Recovery is rollback-based: each squashed instruction undoes its own
mapping (the paper uses interval checkpoints + rollback; pure rollback is
timing-equivalent in a functional model and always exact). The global
RGID counters are deliberately *not* rolled back: they identify mappings
on both correct and wrong paths (Section 3.1).
"""

from repro.isa.registers import NUM_ARCH_REGS

#: Reserved RGID meaning "not reusable" (non-renameable or overflowed).
NULL_RGID = -1


class RenameTable:
    """RAT + RGIDs + global RGID counters."""

    def __init__(self, regfile, rgid_bits=6, track_rgids=True):
        self.regfile = regfile
        self.track_rgids = track_rgids
        self.rgid_limit = (1 << rgid_bits)
        self.map = list(range(NUM_ARCH_REGS))   # areg -> preg
        self.rgid = [0] * NUM_ARCH_REGS          # areg -> current RGID
        self.global_rgid = [0] * NUM_ARCH_REGS   # areg -> last issued RGID
        self.overflow_events = 0
        # RGIDs are modelled as unbounded ints partitioned into epochs of
        # ``rgid_limit`` values. The hardware value is ``rgid % limit``;
        # the epoch encodes the paper's post-reset suspension guarantee
        # (no stale pre-reset RGID can ever compare equal to a post-reset
        # one), making the mechanism exactly sound in simulation.
        self._epoch_base = 0

    # ------------------------------------------------------------------
    def lookup(self, areg):
        return self.map[areg]

    def lookup_rgid(self, areg):
        return self.rgid[areg]

    def hardware_rgid(self, rgid):
        """The 6-bit value the hardware would store for an RGID."""
        if rgid == NULL_RGID:
            return NULL_RGID
        return rgid % self.rgid_limit

    def next_rgid(self, areg):
        """Draw a fresh RGID from the global counter (may return NULL)."""
        value = self.global_rgid[areg] + 1
        if value - self._epoch_base >= self.rgid_limit:
            self.overflow_events += 1
            return NULL_RGID
        self.global_rgid[areg] = value
        return value

    def rename_dest(self, dyn):
        """Allocate a new physical register + RGID for ``dyn``'s dest.

        Returns False when no physical register is available (stall).
        The DynInst records the old mapping for rollback.
        """
        preg = self.regfile.allocate()
        if preg is None:
            return False
        areg = dyn.inst.dest
        dyn.dest_areg = areg
        dyn.old_preg = self.map[areg]
        dyn.old_rgid = self.rgid[areg]
        dyn.dest_preg = preg
        self.map[areg] = preg
        if self.track_rgids:
            dyn.dest_rgid = self.next_rgid(areg)
            self.rgid[areg] = dyn.dest_rgid
        return True

    def apply_reuse(self, dyn, reuse_preg, reuse_rgid):
        """Point ``dyn``'s dest at a reused physical register.

        No new RGID is allocated: the squashed instruction's RGID is
        forwarded so downstream reuse tests keep matching (Section 3.1).
        """
        areg = dyn.inst.dest
        dyn.dest_areg = areg
        dyn.old_preg = self.map[areg]
        dyn.old_rgid = self.rgid[areg]
        dyn.dest_preg = reuse_preg
        dyn.dest_rgid = reuse_rgid
        self.map[areg] = reuse_preg
        self.rgid[areg] = reuse_rgid

    def rollback(self, dyn):
        """Undo one instruction's mapping (called youngest-first)."""
        if dyn.dest_areg is None:
            return
        self.map[dyn.dest_areg] = dyn.old_preg
        self.rgid[dyn.dest_areg] = dyn.old_rgid

    # ------------------------------------------------------------------
    def reset_rgids(self):
        """Global RGID reset (Section 3.3.2): start a fresh epoch.

        Existing RAT entries keep their (now stale) RGIDs; because fresh
        RGIDs come from the new epoch, a stale value can never compare
        equal to a new one — the property the paper's post-reset stream
        suspension exists to guarantee. The caller (MSSR controller) also
        models the performance side: new squashed streams are refused
        until a ROB's worth of instructions has committed.
        """
        self._epoch_base += self.rgid_limit
        self.global_rgid = [self._epoch_base] * NUM_ARCH_REGS
        self.overflow_events = 0

    def snapshot(self):
        """(map, rgid) copy — used by tests only."""
        return list(self.map), list(self.rgid)
