"""Functional instruction-set emulator.

This is the golden model: the out-of-order core (with or without squash
reuse) must produce exactly the same final architectural registers and
memory for every program. It can also record the committed dynamic trace,
which the analysis tools use for branch statistics.
"""

from repro.isa.instruction import INST_BYTES
from repro.isa.opcodes import Op, OpClass
from repro.isa.predecode import slowpath_enabled, superblock_enabled
from repro.isa.program import STACK_TOP
from repro.isa.registers import NUM_ARCH_REGS, reg_num
from repro.emu.memory import SparseMemory
from repro.utils.bits import MASK64, wrap64, to_unsigned


class EmulationError(Exception):
    """Raised when execution leaves the program or exceeds its budget."""


class EmulationResult:
    """Final state and summary statistics of a functional run."""

    def __init__(self, regs, memory, inst_count, halted, pc):
        self.regs = regs
        self.memory = memory
        self.inst_count = inst_count
        self.halted = halted
        self.pc = pc

    def reg(self, name_or_num):
        return self.regs[reg_num(name_or_num)]


def _sext32(value):
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= ~0xFFFFFFFF & MASK64
    return value


class Emulator:
    """Sequential interpreter over a :class:`~repro.isa.program.Program`."""

    def __init__(self, program, init_regs=None, sp=STACK_TOP,
                 superblock=None):
        self.program = program
        self.memory = SparseMemory(program.initial_memory())
        self.regs = [0] * NUM_ARCH_REGS
        if init_regs:
            for idx, value in init_regs.items():
                self.regs[idx] = to_unsigned(value)
        self.regs[2] = sp  # stack pointer
        self.pc = program.entry
        self.inst_count = 0
        self.halted = False
        # Set by _execute for the most recent branch / memory access, so
        # observers (trace recording, the sampling profiler's warmup
        # capture) see the executed instruction's semantics rather than
        # re-deriving them from pc deltas.
        self.last_branch_taken = None
        self.last_mem_addr = None
        self.last_mem_size = None
        # Fast path: predecoded semantic closures, one dict.get per
        # instruction (bounds check + decode collapsed). REPRO_SLOWPATH=1
        # keeps the original interpretive _execute for differential runs.
        self._slow = slowpath_enabled()
        self._pd_by_pc = program.predecode().by_pc
        # Faster still: superblock dispatch, one call per straight-line
        # block (REPRO_SUPERBLOCK / emu.superblock, or the explicit
        # ``superblock=`` override). Slowpath wins when both are set.
        if superblock is None:
            superblock = superblock_enabled()
        self._sb_by_pc = None
        if superblock and not self._slow:
            self._sb_by_pc = program.superblocks().by_pc
        # Instructions fully retired by the current superblock before it
        # raised (see the guard in repro.isa.superblock.compile_block).
        self._sb_progress = 0

    # ------------------------------------------------------------------
    def step(self):
        """Execute one instruction; returns the executed Instruction."""
        if self.halted:
            raise EmulationError("program already halted")
        if self._slow:
            if not self.program.has_pc(self.pc):
                raise EmulationError("pc %#x leaves the program" % self.pc)
            inst = self.program.inst_at(self.pc)
            self._execute(inst)
            self.inst_count += 1
            return inst
        rec = self._pd_by_pc.get(self.pc)
        if rec is None:
            raise EmulationError("pc %#x leaves the program" % self.pc)
        self.pc = rec.exec_fn(self, self.regs)
        self.inst_count += 1
        return rec.inst

    def _execute(self, inst):
        regs = self.regs
        info = inst.info
        op_class = info.op_class
        next_pc = inst.pc + INST_BYTES
        if op_class is OpClass.BRANCH:
            if inst.op is Op.JAL:
                if inst.writes_reg:
                    regs[inst.dest] = next_pc
                next_pc = inst.imm
                self.last_branch_taken = True
            elif inst.op is Op.JALR:
                target = wrap64(regs[inst.srcs[0]] + inst.imm) & ~1
                if inst.writes_reg:
                    regs[inst.dest] = inst.pc + INST_BYTES
                next_pc = target
                self.last_branch_taken = True
            else:
                taken = info.branch_fn(regs[inst.srcs[0]], regs[inst.srcs[1]])
                if taken:
                    next_pc = inst.imm
                self.last_branch_taken = taken
        elif op_class is OpClass.LOAD:
            addr = wrap64(regs[inst.srcs[0]] + inst.imm)
            value = self.memory.read(addr, info.mem_size)
            if inst.op is Op.LW:
                value = _sext32(value)
            if inst.writes_reg:
                regs[inst.dest] = value
            self.last_mem_addr = addr
            self.last_mem_size = info.mem_size
        elif op_class is OpClass.STORE:
            addr = wrap64(regs[inst.srcs[1]] + inst.imm)
            self.memory.write(addr, regs[inst.srcs[0]], info.mem_size)
            self.last_mem_addr = addr
            self.last_mem_size = info.mem_size
        elif op_class is OpClass.HALT:
            self.halted = True
        elif op_class is OpClass.NOP:
            pass
        else:  # ALU / MUL / DIV
            if info.has_imm:
                a = regs[inst.srcs[0]] if info.num_srcs else 0
                result = (info.alu_fn(a, to_unsigned(inst.imm))
                          if info.num_srcs else to_unsigned(inst.imm))
            else:
                result = info.alu_fn(regs[inst.srcs[0]], regs[inst.srcs[1]])
            if inst.writes_reg:
                regs[inst.dest] = result
        regs[0] = 0
        self.pc = next_pc

    # ------------------------------------------------------------------
    def run_until(self, max_insts, on_inst=None):
        """Step until ``halt`` or the instruction budget is reached.

        The single budgeted stepper behind :meth:`run`, :meth:`run_trace`
        and the sampling profiler. ``on_inst(pc, inst)`` is invoked after
        every executed instruction (``pc`` is the instruction's own
        address); the callback may inspect ``last_branch_taken`` /
        ``last_mem_addr`` / ``pc`` for the executed semantics. Returns
        True when the program halted, False when the budget ran out
        first (callers decide whether that is an error).
        """
        if self._slow:
            step = self.step
            if on_inst is None:
                while not self.halted and self.inst_count < max_insts:
                    step()
            else:
                while not self.halted and self.inst_count < max_insts:
                    pc_before = self.pc
                    inst = step()
                    on_inst(pc_before, inst)
            return self.halted

        # Fast path: dispatch through the predecoded closures with the
        # per-instruction state in locals; inst_count is committed back
        # even when a closure (or the bounds check) raises.
        get = self._pd_by_pc.get
        regs = self.regs
        count = self.inst_count
        try:
            if on_inst is None:
                if self._sb_by_pc is not None:
                    # Block-granular dispatch: one call per superblock.
                    # Per-inst stepping covers the residue — pcs off the
                    # leader set (e.g. an indirect jump into a block's
                    # middle) and blocks that would overrun the budget.
                    sb_get = self._sb_by_pc.get
                    while not self.halted and count < max_insts:
                        blk = sb_get(self.pc)
                        if blk is not None \
                                and count + blk.length <= max_insts:
                            try:
                                self.pc = blk.fn(self, regs)
                            except BaseException:
                                # The guard already restored self.pc to
                                # the raising instruction; commit only
                                # the instructions that fully retired.
                                count += self._sb_progress
                                self._sb_progress = 0
                                raise
                            count += blk.length
                        else:
                            rec = get(self.pc)
                            if rec is None:
                                raise EmulationError(
                                    "pc %#x leaves the program"
                                    % self.pc)
                            self.pc = rec.exec_fn(self, regs)
                            count += 1
                    self.inst_count = count
                    return self.halted
                while not self.halted and count < max_insts:
                    rec = get(self.pc)
                    if rec is None:
                        raise EmulationError(
                            "pc %#x leaves the program" % self.pc)
                    self.pc = rec.exec_fn(self, regs)
                    count += 1
            else:
                while not self.halted and count < max_insts:
                    pc_before = self.pc
                    rec = get(pc_before)
                    if rec is None:
                        raise EmulationError(
                            "pc %#x leaves the program" % pc_before)
                    self.pc = rec.exec_fn(self, regs)
                    count += 1
                    on_inst(pc_before, rec.inst)
        finally:
            self.inst_count = count
        return self.halted

    def result(self):
        """Snapshot the current state as an :class:`EmulationResult`."""
        return EmulationResult(list(self.regs), self.memory,
                               self.inst_count, self.halted, self.pc)

    def run(self, max_insts=50_000_000):
        """Run to ``halt``; returns an :class:`EmulationResult`."""
        if not self.run_until(max_insts):
            raise EmulationError(
                "instruction budget exhausted (%d)" % max_insts)
        return self.result()

    def run_trace(self, max_insts=50_000_000):
        """Run to ``halt`` recording (pc, taken, target) per control inst.

        Used by branch-predictor characterisation tests; the full dynamic
        trace would be too large to keep for big runs. Taken-ness comes
        from the executed instruction's semantics (``last_branch_taken``),
        so a taken branch whose target happens to be the fall-through pc
        is still recorded as taken.
        """
        trace = []

        def record(pc_before, inst):
            if inst.is_branch:
                trace.append((pc_before, self.last_branch_taken, self.pc))

        if not self.run_until(max_insts, on_inst=record):
            raise EmulationError(
                "instruction budget exhausted (%d)" % max_insts)
        return self.result(), trace


def run_program(program, max_insts=50_000_000, init_regs=None):
    """Convenience wrapper: emulate ``program`` to completion."""
    return Emulator(program, init_regs=init_regs).run(max_insts=max_insts)
