"""Functional (golden-model) execution: sparse memory and an emulator."""

from repro.emu.memory import SparseMemory
from repro.emu.emulator import Emulator, EmulationError, EmulationResult

__all__ = ["SparseMemory", "Emulator", "EmulationError", "EmulationResult"]
