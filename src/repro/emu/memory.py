"""Sparse byte-addressable memory built on aligned 64-bit words.

Untouched memory reads as zero, which makes wrong-path loads (which may
compute arbitrary addresses) well defined without any fault model.
"""

from repro.utils.bits import MASK64


class SparseMemory:
    """Word-granular sparse memory with 1/4/8-byte accessors."""

    def __init__(self, image=None):
        # aligned word address -> unsigned 64-bit value
        self._words = {}
        # Last-word cache: the common sequential access pattern (sub-word
        # reads/writes of the word just touched, read-after-write) skips
        # the word-dict hash. The cache always mirrors ``_words`` — every
        # write refreshes it — so it can never serve a stale value.
        self._last_addr = -1
        self._last_word = 0
        if image:
            for addr, value in image.items():
                if addr % 8:
                    raise ValueError("image addresses must be 8-byte aligned")
                self._words[addr] = value & MASK64

    def copy(self):
        clone = SparseMemory()
        clone._words = dict(self._words)
        return clone

    # ------------------------------------------------------------------
    # Raw word access
    # ------------------------------------------------------------------
    def read_word(self, addr):
        addr &= ~7
        if addr == self._last_addr:
            return self._last_word
        value = self._words.get(addr, 0)
        self._last_addr = addr
        self._last_word = value
        return value

    def write_word(self, addr, value):
        addr &= ~7
        value &= MASK64
        self._words[addr] = value
        self._last_addr = addr
        self._last_word = value

    # ------------------------------------------------------------------
    # Sized access (no alignment requirement across word boundaries is
    # needed: the ISA only issues naturally-aligned 1/4/8-byte accesses,
    # which never straddle an 8-byte word).
    # ------------------------------------------------------------------
    def read(self, addr, size):
        """Read ``size`` bytes (1, 4 or 8), zero-extended."""
        if size == 8:
            if addr % 8:
                raise ValueError("misaligned 8-byte read at %#x" % addr)
            return self.read_word(addr)
        if size == 4:
            if addr % 4:
                raise ValueError("misaligned 4-byte read at %#x" % addr)
            word = self.read_word(addr)
            shift = (addr & 4) * 8
            return (word >> shift) & 0xFFFFFFFF
        if size == 1:
            word = self.read_word(addr)
            shift = (addr & 7) * 8
            return (word >> shift) & 0xFF
        raise ValueError("unsupported access size %d" % size)

    def write(self, addr, value, size):
        """Write ``size`` bytes (1, 4 or 8)."""
        if size == 8:
            if addr % 8:
                raise ValueError("misaligned 8-byte write at %#x" % addr)
            self.write_word(addr, value)
            return
        if size == 4:
            if addr % 4:
                raise ValueError("misaligned 4-byte write at %#x" % addr)
            shift = (addr & 4) * 8
            mask = 0xFFFFFFFF << shift
        elif size == 1:
            shift = (addr & 7) * 8
            mask = 0xFF << shift
        else:
            raise ValueError("unsupported access size %d" % size)
        word = self.read_word(addr)
        word = (word & ~mask) | ((value << shift) & mask)
        self.write_word(addr, word)

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    def nonzero_words(self):
        """Mapping of word address -> value for all nonzero words."""
        return {a: v for a, v in self._words.items() if v}

    def read_word_array(self, addr, count):
        """Read ``count`` consecutive 64-bit words starting at ``addr``."""
        return [self.read(addr + 8 * i, 8) for i in range(count)]

    def __eq__(self, other):
        if not isinstance(other, SparseMemory):
            return NotImplemented
        return self.nonzero_words() == other.nonzero_words()

    def __ne__(self, other):
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq
