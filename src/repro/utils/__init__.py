"""Shared low-level helpers: 64-bit integer arithmetic and deterministic RNG."""

from repro.utils.bits import (
    MASK64,
    to_signed,
    to_unsigned,
    wrap64,
    sra64,
    srl64,
    sll64,
    div_trunc,
    rem_trunc,
    mulh64,
)
from repro.utils.rng import XorShift64

__all__ = [
    "MASK64",
    "to_signed",
    "to_unsigned",
    "wrap64",
    "sra64",
    "srl64",
    "sll64",
    "div_trunc",
    "rem_trunc",
    "mulh64",
    "XorShift64",
]
