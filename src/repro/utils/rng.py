"""Deterministic pseudo-random number generation.

Workload generation must be reproducible across machines and Python
versions, so we avoid :mod:`random` and use a fixed xorshift64* generator.
The same algorithm is also exposed to compiled workloads as the ``hash``
primitive from Listing 1 of the paper (a cheap pseudo-random hash whose
output drives hard-to-predict branches).
"""

from repro.utils.bits import MASK64


class XorShift64:
    """xorshift64* PRNG with a 64-bit state.

    The zero state is invalid for xorshift, so seeds are remapped away
    from zero deterministically.
    """

    MULT = 0x2545F4914F6CDD1D

    def __init__(self, seed=0x9E3779B97F4A7C15):
        seed &= MASK64
        if seed == 0:
            seed = 0x9E3779B97F4A7C15
        self.state = seed

    def next(self):
        """Advance the state and return the next 64-bit value."""
        x = self.state
        x ^= (x >> 12)
        x ^= (x << 25) & MASK64
        x ^= (x >> 27)
        self.state = x
        return (x * self.MULT) & MASK64

    def randint(self, lo, hi):
        """Uniform integer in ``[lo, hi]`` (inclusive)."""
        if hi < lo:
            raise ValueError("empty range")
        span = hi - lo + 1
        return lo + self.next() % span

    def random(self):
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next() >> 11) / float(1 << 53)

    def shuffle(self, items):
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def sample_indices(self, n, k):
        """Return ``k`` distinct indices from ``range(n)`` (k <= n)."""
        if k > n:
            raise ValueError("sample larger than population")
        chosen = set()
        out = []
        while len(out) < k:
            idx = self.randint(0, n - 1)
            if idx not in chosen:
                chosen.add(idx)
                out.append(idx)
        return out


def mix_hash(value):
    """Stateless 64-bit mixing hash (splitmix64 finalizer).

    This is the ``hash`` function of Listing 1: fast, stateless, and
    effectively random in its low bits — ideal for constructing
    hard-to-predict branch conditions.
    """
    value &= MASK64
    value = (value + 0x9E3779B97F4A7C15) & MASK64
    z = value
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)
