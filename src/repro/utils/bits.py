"""64-bit two's-complement arithmetic helpers.

All architectural values in the simulator are stored as *unsigned* Python
ints in ``[0, 2**64)``. These helpers implement the RISC-V-style semantics
(wrapping arithmetic, truncating division, arithmetic/logical shifts) on
that representation.
"""

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def wrap64(value):
    """Reduce an arbitrary Python int to an unsigned 64-bit value."""
    return value & MASK64


def to_signed(value):
    """Interpret an unsigned 64-bit value as a signed two's-complement int."""
    value &= MASK64
    if value & SIGN_BIT:
        return value - (1 << 64)
    return value


def to_unsigned(value):
    """Map a signed Python int onto its unsigned 64-bit representation."""
    return value & MASK64


def sext32(value):
    """Sign-extend the low 32 bits of ``value`` to unsigned 64-bit."""
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= ~0xFFFFFFFF & MASK64
    return value


def sll64(value, shamt):
    """Logical left shift; shift amount uses the low 6 bits (RISC-V SLL)."""
    return (value << (shamt & 63)) & MASK64


def srl64(value, shamt):
    """Logical right shift on the unsigned representation."""
    return (value & MASK64) >> (shamt & 63)


def sra64(value, shamt):
    """Arithmetic right shift (sign-extending)."""
    return to_unsigned(to_signed(value) >> (shamt & 63))


def div_trunc(a, b):
    """Signed division truncating toward zero.

    Follows RISC-V M-extension semantics: division by zero yields -1 and
    the overflow case INT_MIN / -1 yields INT_MIN.
    """
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return MASK64  # all ones == -1
    if sa == -(1 << 63) and sb == -1:
        return to_unsigned(sa)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return to_unsigned(q)


def rem_trunc(a, b):
    """Signed remainder matching :func:`div_trunc` (sign of the dividend).

    Division by zero yields the dividend, per RISC-V.
    """
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return to_unsigned(sa)
    if sa == -(1 << 63) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return to_unsigned(r)


def mulh64(a, b):
    """High 64 bits of the signed 128-bit product."""
    prod = to_signed(a) * to_signed(b)
    return to_unsigned(prod >> 64)
