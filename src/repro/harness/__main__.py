"""``python -m repro.harness`` entry point."""

import sys

from repro.harness.cli import main

sys.exit(main())
