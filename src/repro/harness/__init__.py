"""Parallel, disk-persistent simulation harness.

The experiment stack (``repro.analysis``, ``benchmarks/``, the
``examples/`` scripts and ``python -m repro.harness``) expresses every
simulated point as a declarative :class:`SimJob` and resolves whole
batches at once through :func:`submit` / :func:`run_batch`:

* identical jobs are deduplicated within a batch and memoised for the
  process lifetime (shared baseline runs simulate once per process);
* results persist to a JSON on-disk cache keyed by job hash + code
  fingerprint (``REPRO_CACHE_DIR``), so repeat invocations of the
  benchmark suite re-simulate nothing;
* cache-miss jobs fan out over a ``multiprocessing`` pool
  (``REPRO_JOBS``), with per-job error capture and cycle/wall-clock
  guards.
"""

from repro.harness.cache import ResultCache, code_fingerprint, \
    default_cache_dir
from repro.harness.jobs import JobTimeout, SimJob, build_config, \
    build_scheme, execute
from repro.harness.runner import BatchReport, JobFailure, clear_memo, \
    default_jobs, last_report, run_batch, submit

__all__ = [
    "SimJob",
    "execute",
    "build_config",
    "build_scheme",
    "run_batch",
    "submit",
    "last_report",
    "clear_memo",
    "default_jobs",
    "BatchReport",
    "JobFailure",
    "JobTimeout",
    "ResultCache",
    "code_fingerprint",
    "default_cache_dir",
]
