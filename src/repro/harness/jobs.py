"""Declarative simulation jobs.

A :class:`SimJob` names everything needed to reproduce one simulated
point — workload, configuration kind, scale and scheme parameters — as
plain picklable data. Jobs have a canonical stable hash, so identical
points are deduplicated within a batch, memoised across experiments in
one process, and persisted across processes by the on-disk result cache
(:mod:`repro.harness.cache`).

Workers rebuild the program and configuration from the job spec and
return :class:`~repro.pipeline.stats.SimStats` as a plain dict, so a
job's full lifecycle (submit, transport, persist) never relies on
process-local state.
"""

import dataclasses
import hashlib
import json
import os
import signal
import threading
from typing import Optional, Tuple

#: Scheme parameters accepted per configuration kind.
KIND_PARAMS = {
    "baseline": (),
    "mssr": ("streams", "wpb", "log"),
    "ri": ("sets", "ways"),
    "dir": ("sets", "ways"),
}


class JobTimeout(Exception):
    """A job exceeded its wall-clock guard."""


@dataclasses.dataclass(frozen=True)
class SimJob:
    """One (workload, configuration) simulation point.

    ``params`` may be given as a dict; it is canonicalised to a sorted
    tuple of pairs so equal jobs compare and hash equal regardless of
    keyword order. ``max_cycles`` and ``wall_seconds`` are safety guards
    only — a guarded run either produces the exact same stats or fails —
    so they are excluded from the job hash.

    ``sampling`` switches the job to SimPoint-sampled execution
    (:mod:`repro.sampling`): ``True`` for the default
    :class:`~repro.sampling.sampler.SamplingSpec`, or a dict /
    ``SamplingSpec`` of knobs. It is canonicalised to a sorted tuple of
    pairs and only enters the job hash when set, so the hashes of all
    full-run jobs (and any results already on disk) are unchanged.
    """

    workload: str
    kind: str = "baseline"
    scale: float = 0.15
    params: Tuple = ()
    max_cycles: Optional[int] = None
    wall_seconds: Optional[float] = None
    sampling: Optional[Tuple] = None

    def __post_init__(self):
        if self.kind not in KIND_PARAMS:
            raise ValueError("unknown config kind %r (have: %s)"
                             % (self.kind, ", ".join(sorted(KIND_PARAMS))))
        params = self.params
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted(tuple(pair) for pair in params))
        allowed = KIND_PARAMS[self.kind]
        for key, _value in params:
            if key not in allowed:
                raise ValueError(
                    "parameter %r not valid for kind %r (allowed: %s)"
                    % (key, self.kind, ", ".join(allowed) or "none"))
        object.__setattr__(self, "params", params)
        object.__setattr__(self, "scale", round(float(self.scale), 6))
        if self.sampling is not None:
            from repro.sampling.sampler import SamplingSpec
            spec = SamplingSpec() if self.sampling is True \
                else SamplingSpec.from_any(self.sampling)
            object.__setattr__(self, "sampling",
                               tuple(sorted(spec.spec().items())))

    # ------------------------------------------------------------------
    @property
    def param_dict(self):
        return dict(self.params)

    @property
    def sampling_spec(self):
        """The :class:`~repro.sampling.sampler.SamplingSpec`, or None."""
        if self.sampling is None:
            return None
        from repro.sampling.sampler import SamplingSpec
        return SamplingSpec.from_any(self.sampling)

    def spec(self):
        """Canonical JSON-able description (hash input).

        Includes the predecode schema version: bumping
        ``PREDECODE_VERSION`` changes every job hash, so results
        simulated before a semantics-affecting predecode change are
        never silently reused.
        """
        from repro.isa.predecode import PREDECODE_VERSION
        out = {
            "workload": self.workload,
            "kind": self.kind,
            "scale": self.scale,
            "params": [[k, v] for k, v in self.params],
            "predecode": PREDECODE_VERSION,
        }
        if self.sampling is not None:
            out["sampling"] = [[k, v] for k, v in self.sampling]
        return out

    def job_hash(self):
        blob = json.dumps(self.spec(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def label(self):
        params = " ".join("%s=%s" % kv for kv in self.params)
        sampled = " [sampled]" if self.sampling is not None else ""
        return "%s/%s%s%s%s" % (self.workload, self.kind,
                                " " if params else "", params, sampled)

    def __repr__(self):
        return "<SimJob %s scale=%s>" % (self.label(), self.scale)


# ---------------------------------------------------------------------------
# Config / scheme construction (the single source of truth; the legacy
# ``repro.analysis.config_for`` delegates here).
# ---------------------------------------------------------------------------
def build_config(kind, **params):
    """Build a named core configuration.

    ``kind``: ``baseline``, ``mssr`` (params: streams, wpb, log),
    ``ri`` (params: sets, ways) or ``dir`` (scheme object on a baseline
    core, params: sets, ways).
    """
    from repro.pipeline.config import baseline_config, mssr_config, \
        ri_config
    if kind == "baseline":
        return baseline_config()
    if kind == "mssr":
        return mssr_config(num_streams=params.get("streams", 4),
                           wpb_entries=params.get("wpb", 16),
                           squash_log_entries=params.get("log", 64))
    if kind == "ri":
        return ri_config(num_sets=params.get("sets", 64),
                         assoc=params.get("ways", 4))
    if kind == "dir":
        # DIR plugs in as an explicit scheme object (value-based reuse
        # needs no core configuration beyond the baseline).
        return baseline_config()
    raise ValueError("unknown config kind %r" % kind)


def build_scheme(kind, **params):
    """Explicit reuse-scheme object for kinds the config can't express."""
    if kind != "dir":
        return None
    from repro.baselines.dir_reuse import DynamicInstructionReuse, DIRConfig
    return DynamicInstructionReuse(DIRConfig(
        num_sets=params.get("sets", 64), assoc=params.get("ways", 4)))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
class _WallClock:
    """SIGALRM-based wall-clock guard (no-op off the main thread or on
    platforms without SIGALRM)."""

    def __init__(self, seconds):
        self.seconds = seconds
        self._armed = False
        self._old = None

    def __enter__(self):
        if (not self.seconds or not hasattr(signal, "SIGALRM")
                or threading.current_thread()
                is not threading.main_thread()):
            return self

        def _expired(_signum, _frame):
            raise JobTimeout("wall clock guard (%.1fs) expired"
                             % self.seconds)

        self._old = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, float(self.seconds))
        self._armed = True
        return self

    def __exit__(self, *_exc):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old)
        return False


def trace_path_for(job, directory):
    """Canonical per-job JSONL trace path under ``directory``."""
    return os.path.join(directory,
                        "%s-%s-%s.jsonl" % (job.workload, job.kind,
                                            job.job_hash()[:12]))


def _env_trace_obs(job):
    """Observability for ``REPRO_TRACE=<dir>``: every executed job writes
    a JSONL event trace into the directory (workers included)."""
    directory = os.environ.get("REPRO_TRACE", "").strip()
    if not directory:
        return None
    from repro.obs import JsonlTraceSink, Observability
    os.makedirs(directory, exist_ok=True)
    return Observability(sinks=[JsonlTraceSink(trace_path_for(job,
                                                             directory))])


def execute(job, obs=None):
    """Run one job in this process; returns a fresh ``SimStats``.

    Workers (and the serial fallback) both come through here, so the
    parallel and serial paths are the same code modulo transport.
    ``obs`` attaches an observability bus to the simulated core; when
    omitted and ``REPRO_TRACE`` names a directory, a per-job JSONL
    trace sink is attached automatically.

    Jobs with a ``sampling`` spec route through
    :func:`repro.sampling.sampler.run_sampled` instead of a full
    detailed run; their checkpoints persist in the
    :class:`~repro.sampling.checkpoint.CheckpointStore`
    (``REPRO_CKPT_DIR``), keyed by (workload, scale, sampling spec)
    only, so every configuration kind of the same program shares them.
    """
    from repro.pipeline.core import O3Core
    from repro.workloads import get_workload

    owned_obs = None
    if obs is None:
        obs = owned_obs = _env_trace_obs(job)
    try:
        with _WallClock(job.wall_seconds):
            workload = get_workload(job.workload)
            _mod, prog = workload.build(job.scale)
            params = job.param_dict
            config = build_config(job.kind, **params)
            if job.sampling is not None:
                from repro.sampling.checkpoint import CheckpointStore
                from repro.sampling.sampler import run_sampled
                result = run_sampled(
                    prog, config,
                    scheme_factory=lambda: build_scheme(job.kind,
                                                        **params),
                    spec=job.sampling_spec, obs=obs,
                    max_cycles=job.max_cycles,
                    store=CheckpointStore.from_env(),
                    key_spec={"workload": job.workload,
                              "scale": job.scale})
                return result.stats
            scheme = build_scheme(job.kind, **params)
            core = O3Core(prog, config, reuse_scheme=scheme, obs=obs)
            result = core.run(max_cycles=job.max_cycles)
    finally:
        if owned_obs is not None:
            owned_obs.close()
    return result.stats
