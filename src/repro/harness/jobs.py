"""Declarative simulation jobs.

A :class:`SimJob` names everything needed to reproduce one simulated
point — workload, configuration kind, scale and scheme parameters — as
plain picklable data. Jobs have a canonical stable hash, so identical
points are deduplicated within a batch, memoised across experiments in
one process, and persisted across processes by the on-disk result cache
(:mod:`repro.harness.cache`).

Job hashes are computed over the *fully resolved* configuration
snapshot (:func:`repro.config.tree.job_snapshot`): the spec embeds
every model key of the active sections at its resolved value, so a
persisted result is reproducible from its file alone and a changed
default is a changed hash. The short scheme parameters (``streams``,
``wpb``, ...) and arbitrary dotted ``config`` overrides
(``mssr.rgid_bits=8``) both land in the same snapshot, so two jobs
that describe the same point hash identically regardless of how they
were declared.

Workers rebuild the program and configuration from the job spec and
return :class:`~repro.pipeline.stats.SimStats` as a plain dict, so a
job's full lifecycle (submit, transport, persist) never relies on
process-local state.
"""

import dataclasses
import hashlib
import json
import os
import signal
import threading
from typing import Optional, Tuple

#: Short scheme parameter -> configuration-tree key, per kind.
KIND_PARAM_KEYS = {
    "baseline": {},
    "mssr": {"streams": "mssr.num_streams", "wpb": "mssr.wpb_entries",
             "log": "mssr.squash_log_entries"},
    "ri": {"sets": "ri.num_sets", "ways": "ri.assoc"},
    "dir": {"sets": "dir.num_sets", "ways": "dir.assoc"},
}

#: Scheme parameters accepted per configuration kind.
KIND_PARAMS = {kind: tuple(mapping)
               for kind, mapping in KIND_PARAM_KEYS.items()}


class JobTimeout(Exception):
    """A job exceeded its wall-clock guard."""


@dataclasses.dataclass(frozen=True)
class SimJob:
    """One (workload, configuration) simulation point.

    ``params`` may be given as a dict; it is canonicalised to a sorted
    tuple of pairs so equal jobs compare and hash equal regardless of
    keyword order. ``max_cycles`` and ``wall_seconds`` are safety guards
    only — a guarded run either produces the exact same stats or fails —
    so they are excluded from the job hash.

    ``config`` holds extra overrides as dotted configuration-tree keys
    (``{"mssr.rgid_bits": 8}`` or a tuple of pairs) — any model key of
    the sections active for ``kind`` is sweepable. Overrides are
    validated against the schema, canonicalised to a sorted tuple of
    pairs and folded into the resolved snapshot; a short parameter and
    a dotted override naming the same field resolve with the short
    parameter winning.

    ``sampling`` switches the job to SimPoint-sampled execution
    (:mod:`repro.sampling`): ``True`` for the default
    :class:`~repro.sampling.sampler.SamplingSpec`, or a dict /
    ``SamplingSpec`` of knobs. It is canonicalised to a sorted tuple of
    pairs and only enters the job hash when set.
    """

    workload: str
    kind: str = "baseline"
    scale: float = 0.15
    params: Tuple = ()
    max_cycles: Optional[int] = None
    wall_seconds: Optional[float] = None
    sampling: Optional[Tuple] = None
    config: Tuple = ()

    def __post_init__(self):
        if self.kind not in KIND_PARAMS:
            raise ValueError("unknown config kind %r (have: %s)"
                             % (self.kind, ", ".join(sorted(KIND_PARAMS))))
        params = self.params
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted(tuple(pair) for pair in params))
        allowed = KIND_PARAMS[self.kind]
        for key, _value in params:
            if key not in allowed:
                raise ValueError(
                    "parameter %r not valid for kind %r (allowed: %s)"
                    % (key, self.kind, ", ".join(allowed) or "none"))
        object.__setattr__(self, "params", params)
        config = self.config
        if isinstance(config, dict):
            config = tuple(sorted(config.items()))
        else:
            config = tuple(sorted(tuple(pair) for pair in config))
        object.__setattr__(self, "config", config)
        object.__setattr__(self, "scale", round(float(self.scale), 6))
        if self.sampling is not None:
            from repro.sampling.sampler import SamplingSpec
            spec = SamplingSpec() if self.sampling is True \
                else SamplingSpec.from_any(self.sampling)
            object.__setattr__(self, "sampling",
                               tuple(sorted(spec.spec().items())))
        if config:
            # Eagerly validate keys, values and section/kind fit, so a
            # bad sweep axis fails at declaration, not mid-batch.
            self.resolved_config()

    # ------------------------------------------------------------------
    @property
    def param_dict(self):
        return dict(self.params)

    def overrides(self):
        """Merged dotted-key overrides: ``config`` plus the short
        scheme parameters mapped onto their tree keys."""
        merged = dict(self.config)
        mapping = KIND_PARAM_KEYS[self.kind]
        for key, value in self.params:
            merged[mapping[key]] = value
        return merged

    def resolved_config(self):
        """The fully resolved model snapshot for this job: every model
        key of the active sections at its resolved value."""
        from repro.config.tree import job_snapshot
        return job_snapshot(self.kind, self.overrides())

    def config_hash(self):
        """Stable hash of the resolved configuration snapshot alone
        (shared by every workload simulated under this configuration)."""
        from repro.config.tree import snapshot_hash
        return snapshot_hash(self.resolved_config())

    def build_config(self):
        """The :class:`~repro.pipeline.config.CoreConfig` this job
        simulates (scheme sub-config included)."""
        from repro.config.tree import build_core_config
        return build_core_config(self.kind, self.overrides())

    def build_scheme(self):
        """Explicit reuse-scheme object (DIR), or None."""
        from repro.config.tree import build_reuse_scheme
        return build_reuse_scheme(self.kind, self.overrides())

    @property
    def sampling_spec(self):
        """The :class:`~repro.sampling.sampler.SamplingSpec`, or None."""
        if self.sampling is None:
            return None
        from repro.sampling.sampler import SamplingSpec
        return SamplingSpec.from_any(self.sampling)

    def spec(self):
        """Canonical JSON-able description (hash input).

        The ``config`` entry is the fully resolved model snapshot, so
        the hash covers every knob that can affect the run — changed
        defaults change hashes, and a persisted result is reproducible
        from its spec alone. The predecode and config-schema versions
        are folded in as well: bumping either changes every job hash,
        so results computed under older semantics or an older hashing
        scheme are never silently reused.
        """
        from repro.config.schema import CONFIG_SCHEMA_VERSION
        from repro.isa.predecode import PREDECODE_VERSION
        out = {
            "workload": self.workload,
            "kind": self.kind,
            "scale": self.scale,
            "config": self.resolved_config(),
            "schema": CONFIG_SCHEMA_VERSION,
            "predecode": PREDECODE_VERSION,
        }
        if self.sampling is not None:
            out["sampling"] = [[k, v] for k, v in self.sampling]
        return out

    def job_hash(self):
        cached = self.__dict__.get("_job_hash")
        if cached is None:
            blob = json.dumps(self.spec(), sort_keys=True,
                              separators=(",", ":"))
            cached = hashlib.sha256(blob.encode("utf-8")) \
                .hexdigest()[:24]
            object.__setattr__(self, "_job_hash", cached)
        return cached

    def decl(self):
        """JSON-able *declaration*: the constructor arguments, not the
        resolved snapshot. ``from_decl(decl())`` rebuilds an equal job
        (same ``job_hash``), which is how the service ships jobs over
        HTTP and rebuilds them inside worker processes."""
        out = {"workload": self.workload, "kind": self.kind,
               "scale": self.scale,
               "params": [[k, v] for k, v in self.params],
               "config": [[k, v] for k, v in self.config]}
        if self.sampling is not None:
            out["sampling"] = [[k, v] for k, v in self.sampling]
        if self.max_cycles is not None:
            out["max_cycles"] = self.max_cycles
        if self.wall_seconds is not None:
            out["wall_seconds"] = self.wall_seconds
        return out

    @classmethod
    def from_decl(cls, decl):
        """Rebuild a job from :meth:`decl` output (hash-preserving)."""
        sampling = decl.get("sampling")
        if sampling is not None:
            sampling = dict((k, v) for k, v in sampling)
        return cls(decl["workload"], decl.get("kind", "baseline"),
                   decl.get("scale", 0.15),
                   params=tuple((k, v) for k, v
                                in decl.get("params", ())),
                   max_cycles=decl.get("max_cycles"),
                   wall_seconds=decl.get("wall_seconds"),
                   sampling=sampling,
                   config=tuple((k, v) for k, v
                                in decl.get("config", ())))

    def label(self):
        pairs = list(self.params) + list(self.config)
        params = " ".join("%s=%s" % kv for kv in pairs)
        sampled = " [sampled]" if self.sampling is not None else ""
        return "%s/%s%s%s%s" % (self.workload, self.kind,
                                " " if params else "", params, sampled)

    def __repr__(self):
        return "<SimJob %s scale=%s>" % (self.label(), self.scale)


# ---------------------------------------------------------------------------
# Config / scheme construction (the single source of truth; the legacy
# ``repro.analysis.config_for`` delegates here). Both resolve through
# the configuration tree, so a config built here is byte-for-byte the
# one a SimJob with the same parameters would hash and persist.
# ---------------------------------------------------------------------------
def _merged_overrides(kind, config_overrides, params):
    if kind not in KIND_PARAM_KEYS:
        raise ValueError("unknown config kind %r (have: %s)"
                         % (kind, ", ".join(sorted(KIND_PARAM_KEYS))))
    merged = dict(config_overrides or {})
    mapping = KIND_PARAM_KEYS[kind]
    for key, value in params.items():
        if key not in mapping:
            raise ValueError(
                "parameter %r not valid for kind %r (allowed: %s)"
                % (key, kind, ", ".join(mapping) or "none"))
        merged[mapping[key]] = value
    return merged


def build_config(kind, config_overrides=None, **params):
    """Build a named core configuration.

    ``kind``: ``baseline``, ``mssr`` (params: streams, wpb, log),
    ``ri`` (params: sets, ways) or ``dir`` (scheme object on a baseline
    core, params: sets, ways). ``config_overrides`` takes arbitrary
    dotted configuration-tree keys (``{"mssr.rgid_bits": 8}``).
    """
    from repro.config.tree import build_core_config
    return build_core_config(kind,
                             _merged_overrides(kind, config_overrides,
                                               params))


def build_scheme(kind, config_overrides=None, **params):
    """Explicit reuse-scheme object for kinds the config can't express."""
    from repro.config.tree import build_reuse_scheme
    return build_reuse_scheme(kind,
                              _merged_overrides(kind, config_overrides,
                                                params))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
class _WallClock:
    """SIGALRM-based wall-clock guard (no-op off the main thread or on
    platforms without SIGALRM)."""

    def __init__(self, seconds):
        self.seconds = seconds
        self._armed = False
        self._old = None

    def __enter__(self):
        if (not self.seconds or not hasattr(signal, "SIGALRM")
                or threading.current_thread()
                is not threading.main_thread()):
            return self

        def _expired(_signum, _frame):
            raise JobTimeout("wall clock guard (%.1fs) expired"
                             % self.seconds)

        self._old = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, float(self.seconds))
        self._armed = True
        return self

    def __exit__(self, *_exc):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old)
        return False


def trace_path_for(job, directory):
    """Canonical per-job JSONL trace path under ``directory``."""
    return os.path.join(directory,
                        "%s-%s-%s.jsonl" % (job.workload, job.kind,
                                            job.job_hash()[:12]))


def _env_trace_obs(job):
    """Observability for ``REPRO_TRACE=<dir>``: every executed job writes
    a JSONL event trace into the directory (workers included)."""
    from repro.config import envreg
    directory = envreg.get("REPRO_TRACE")
    if not directory:
        return None
    from repro.obs import JsonlTraceSink, Observability
    os.makedirs(directory, exist_ok=True)
    return Observability(sinks=[JsonlTraceSink(trace_path_for(job,
                                                             directory))])


def execute(job, obs=None):
    """Run one job in this process; returns a fresh ``SimStats``.

    Workers (and the serial fallback) both come through here, so the
    parallel and serial paths are the same code modulo transport.
    ``obs`` attaches an observability bus to the simulated core; when
    omitted and ``REPRO_TRACE`` names a directory, a per-job JSONL
    trace sink is attached automatically.

    Jobs with a ``sampling`` spec route through
    :func:`repro.sampling.sampler.run_sampled` instead of a full
    detailed run; their checkpoints persist in the
    :class:`~repro.sampling.checkpoint.CheckpointStore`
    (``REPRO_CKPT_DIR``), keyed by (workload, scale, sampling spec)
    only, so every configuration kind of the same program shares them.
    """
    from repro.pipeline.core import O3Core
    from repro.workloads import get_workload

    owned_obs = None
    if obs is None:
        obs = owned_obs = _env_trace_obs(job)
    try:
        with _WallClock(job.wall_seconds):
            workload = get_workload(job.workload)
            _mod, prog = workload.build(job.scale)
            config = job.build_config()
            if job.sampling is not None:
                from repro.sampling.checkpoint import CheckpointStore
                from repro.sampling.sampler import run_sampled
                result = run_sampled(
                    prog, config,
                    scheme_factory=job.build_scheme,
                    spec=job.sampling_spec, obs=obs,
                    max_cycles=job.max_cycles,
                    store=CheckpointStore.from_env(),
                    key_spec={"workload": job.workload,
                              "scale": job.scale})
                return result.stats
            scheme = job.build_scheme()
            core = O3Core(prog, config, reuse_scheme=scheme, obs=obs)
            result = core.run(max_cycles=job.max_cycles)
    finally:
        if owned_obs is not None:
            owned_obs.close()
    return result.stats
