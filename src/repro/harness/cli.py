"""Command-line front end for the simulation harness.

Reproduce single points (or small sweeps) without pytest::

    python -m repro.harness run --workload bfs --kind mssr --streams 4
    python -m repro.harness run --workload bfs --set mssr.rgid_bits=8
    python -m repro.harness run --workload bfs --workload cc --jobs 8 --json
    python -m repro.harness run --workload bfs --sampled --interval 2000
    python -m repro.harness sweep examples/sweeps/fig10_small.toml
    python -m repro.harness sweep examples/sweeps/smoke.toml --dry-run
    python -m repro.harness config show --provenance
    python -m repro.harness config hash --kind mssr --set mssr.wpb_entries=32
    python -m repro.harness config docs --check
    python -m repro.harness trace --workload bfs --kind mssr --out bfs.jsonl
    python -m repro.harness profile --workload bfs --interval 2000
    python -m repro.harness simpoints --workload bfs --interval 2000
    python -m repro.harness perf --out BENCH_PIPELINE.json
    python -m repro.harness perf --quick --check BENCH_PIPELINE.json
    python -m repro.harness brchar --check
    python -m repro.harness list
    python -m repro.harness cache --clear
    python -m repro.harness cache prune --max-age-days 30
    python -m repro.harness cache migrate
    python -m repro.harness serve --dir /shared/service --workers 8
    python -m repro.harness submit examples/sweeps/smoke.toml --wait
"""

import argparse
import json
import sys

from repro.harness.cache import ResultCache, code_fingerprint
from repro.harness.jobs import KIND_PARAMS, SimJob
from repro.harness.runner import run_batch
from repro.log import configure as configure_logging, get_logger

_log = get_logger("harness.cli")


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run paper-reproduction simulations as declarative "
                    "jobs with parallel execution and disk caching.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one or more jobs")
    run.add_argument("--workload", action="append", required=True,
                     help="workload name (repeatable), or suite:<name> "
                          "to expand a whole suite")
    _add_job_args(run)
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default: REPRO_JOBS or 1)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="emit full stats as JSON instead of summaries")
    run.add_argument("--sampled", action="store_true",
                     help="SimPoint-sampled execution instead of a full "
                          "detailed run")
    _add_sampling_args(run)

    sweep = sub.add_parser(
        "sweep", help="expand a declared scenario sweep into a "
                      "deduplicated job batch and run it")
    sweep.add_argument("file", help="TOML/JSON sweep declaration")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: the sweep "
                            "file's, else REPRO_JOBS)")
    sweep.add_argument("--dry-run", action="store_true",
                       help="print the expanded plan without simulating")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    sweep.add_argument("--json", action="store_true", dest="as_json",
                       help="emit full per-entry results as JSON")

    config = sub.add_parser(
        "config", help="inspect the layered configuration tree")
    config.add_argument("action", nargs="?", default="show",
                        choices=("show", "hash", "docs"),
                        help="show the resolved tree, print the model "
                             "config hash, or (re)generate the "
                             "configuration reference docs")
    config.add_argument("--file", default=None,
                        help="TOML/JSON config file for the file layer "
                             "(default: REPRO_CONFIG)")
    config.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="overrides",
                        help="override layer entries (repeatable)")
    config.add_argument("--provenance", action="store_true",
                        help="show: annotate every value with the layer "
                             "that set it")
    config.add_argument("--kind", default=None,
                        choices=sorted(KIND_PARAMS),
                        help="hash: restrict to the sections active "
                             "for this job kind")
    config.add_argument("--check", action="store_true",
                        help="docs: fail if the generated reference is "
                             "stale instead of rewriting it")
    config.add_argument("--target", default=None,
                        help="docs: file holding the generated block "
                             "(default: README.md next to the package)")

    profile = sub.add_parser(
        "profile", help="profile a workload into per-interval BBVs")
    profile.add_argument("--workload", required=True, help="workload name")
    profile.add_argument("--scale", type=float, default=0.15,
                         help="workload scale factor (default: 0.15)")
    profile.add_argument("--interval", type=int, default=None,
                         help="interval length in instructions")
    profile.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the full profile as JSON")

    simpoints = sub.add_parser(
        "simpoints", help="profile + pick representative intervals")
    simpoints.add_argument("--workload", required=True,
                           help="workload name")
    simpoints.add_argument("--scale", type=float, default=0.15,
                           help="workload scale factor (default: 0.15)")
    simpoints.add_argument("--json", action="store_true", dest="as_json",
                           help="emit the selection as JSON")
    _add_sampling_args(simpoints)

    trace = sub.add_parser(
        "trace", help="simulate one job with the event bus enabled")
    trace.add_argument("--workload", required=True, help="workload name")
    _add_job_args(trace)
    trace.add_argument("--out", default=None,
                       help="JSONL event-trace path (default: "
                            "<workload>-<kind>.trace.jsonl)")
    trace.add_argument("--konata", default=None,
                       help="also write a Konata pipeline-view log here")
    trace.add_argument("--lockstep", action="store_true",
                       help="check every commit against the golden-model "
                            "emulator and report the first divergence")

    perf = sub.add_parser(
        "perf", help="measure simulator throughput on the pinned "
                     "benchmark matrix")
    perf.add_argument("--out", default="BENCH_PIPELINE.json",
                      help="report path (default: BENCH_PIPELINE.json)")
    perf.add_argument("--repeats", type=int, default=3,
                      help="timing repeats per point, best-of "
                           "(default: 3)")
    perf.add_argument("--quick", action="store_true",
                      help="measure only the small CI smoke subset")
    perf.add_argument("--check", default=None, metavar="BASELINE",
                      help="also gate the fresh numbers against this "
                           "baseline report; non-zero exit on "
                           "regression")
    perf.add_argument("--threshold", type=float, default=0.15,
                      help="allowed normalised-throughput drop for "
                           "--check (default: 0.15)")
    perf.add_argument("--profile-out", default=None, metavar="DIR",
                      help="also cProfile each point into "
                           "DIR/<point>.pstats")
    perf.add_argument("--history", default=None, metavar="JSONL",
                      help="append-only perf history file (default: "
                           "BENCH_HISTORY.jsonl beside --out)")
    perf.add_argument("--no-history", action="store_true",
                      help="skip the history append")

    brchar = sub.add_parser(
        "brchar", help="characterize the branch predictors against the "
                       "synthetic probe matrix")
    brchar.add_argument("--trace-len", type=int, default=20000,
                        help="branches per probe trace (default: 20000)")
    brchar.add_argument("--check", action="store_true",
                        help="assert the predictor signatures (TAGE "
                             "history length, loop exit, SC bias, tag "
                             "aliasing); non-zero exit on failure")
    brchar.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the matrix (and check results) as "
                             "JSON")

    lst = sub.add_parser("list", help="list registered workloads")
    lst.add_argument("--suite", help="restrict to one suite")

    cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk stores (results + "
                      "checkpoints)")
    cache.add_argument("action", nargs="?", choices=("prune", "migrate"),
                       help="'prune' removes aged / excess entries from "
                            "both stores; 'migrate' moves flat-layout "
                            "result entries into hash-prefix shards")
    cache.add_argument("--clear", action="store_true",
                       help="drop cached results for the current code "
                            "fingerprint")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="prune: drop entries older than this")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="prune: drop oldest entries beyond this "
                            "total size")

    serve = sub.add_parser(
        "serve", help="run the simulation service (job broker + "
                      "HTTP results API) against a shared store")
    serve.add_argument("--dir", dest="directory", default=None,
                       help="service store directory (default: "
                            "REPRO_SERVICE_DIR or <cache>/service)")
    serve.add_argument("--host", default=None,
                       help="bind address (default: REPRO_SERVICE_HOST)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port; 0 picks an ephemeral one "
                            "(default: REPRO_SERVICE_PORT)")
    serve.add_argument("--workers", type=int, default=None,
                       help="local worker processes (default: "
                            "REPRO_SERVICE_WORKERS; 0 = one per CPU)")
    serve.add_argument("--lease-ttl", type=float, default=None,
                       help="seconds without a heartbeat before a "
                            "running job is requeued (default: "
                            "REPRO_SERVICE_LEASE_TTL)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock guard in seconds "
                            "(default: REPRO_JOB_TIMEOUT)")
    serve.add_argument("--no-api", action="store_true", default=None,
                       help="worker-only mode: run the broker against "
                            "the shared store without the HTTP listener "
                            "(default: REPRO_SERVICE_NO_API)")

    submit = sub.add_parser(
        "submit", help="submit a sweep file to a running simulation "
                       "service")
    submit.add_argument("file", help="TOML/JSON sweep declaration")
    submit.add_argument("--url", default=None,
                        help="service URL (default: discover from the "
                             "store directory's endpoint.json)")
    submit.add_argument("--dir", dest="directory", default=None,
                        help="service store directory for endpoint "
                             "discovery (default: REPRO_SERVICE_DIR)")
    submit.add_argument("--wait", action="store_true",
                        help="block until every job is terminal and "
                             "print the results")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        help="--wait limit in seconds (default: 3600)")
    submit.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the raw service responses as JSON")
    return parser


def _add_sampling_args(parser):
    """SimPoint knobs shared by ``run --sampled`` and ``simpoints``."""
    parser.add_argument("--interval", type=int, default=None,
                        help="interval length in instructions "
                             "(default: 100000)")
    parser.add_argument("--max-k", type=int, default=None,
                        help="maximum number of clusters (default: 8)")
    parser.add_argument("--warmup-branches", type=int, default=None,
                        help="branches replayed into the predictors "
                             "before each interval (default: 2048)")
    parser.add_argument("--warmup-mem", type=int, default=None,
                        help="memory accesses replayed into the caches "
                             "before each interval (default: 4096)")
    parser.add_argument("--detail-warmup", type=int, default=None,
                        help="instructions simulated in detail (stats "
                             "discarded) before each interval "
                             "(default: 1000)")


def _collect_sampling(args):
    """A SamplingSpec kwargs dict from CLI flags (only set flags)."""
    spec = {}
    for attr, key in (("interval", "interval_insts"), ("max_k", "max_k"),
                      ("warmup_branches", "warmup_branches"),
                      ("warmup_mem", "warmup_mem"),
                      ("detail_warmup", "detail_warmup_insts")):
        value = getattr(args, attr, None)
        if value is not None:
            spec[key] = value
    return spec


def _add_job_args(parser):
    """Job-shape flags shared by ``run`` and ``trace``."""
    parser.add_argument("--kind", default="baseline",
                        choices=sorted(KIND_PARAMS),
                        help="configuration kind (default: baseline)")
    parser.add_argument("--scale", type=float, default=0.15,
                        help="workload scale factor (default: 0.15)")
    parser.add_argument("--streams", type=int, help="MSSR stream count")
    parser.add_argument("--wpb", type=int, help="MSSR WPB entries/stream")
    parser.add_argument("--log", type=int, help="MSSR squash-log entries")
    parser.add_argument("--sets", type=int, help="RI/DIR table sets")
    parser.add_argument("--ways", type=int, help="RI/DIR associativity")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="overrides",
                        help="dotted configuration-tree override, e.g. "
                             "mssr.rgid_bits=8 (repeatable)")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="per-job simulated-cycle guard")
    parser.add_argument("--wall-timeout", type=float, default=None,
                        help="per-job wall-clock guard in seconds")


def _collect_params(args):
    params = {}
    for key in ("streams", "wpb", "log", "sets", "ways"):
        value = getattr(args, key, None)
        if value is not None:
            params[key] = value
    return params


def _collect_overrides(args):
    from repro.config.tree import parse_overrides
    return parse_overrides(getattr(args, "overrides", []) or [])


def _expand_workloads(names):
    from repro.workloads.registry import get_workload, suite_names
    out = []
    for name in names:
        if name.startswith("suite:"):
            out.extend(suite_names(name[len("suite:"):]))
        else:
            get_workload(name)   # fail fast on unknown names
            out.append(name)
    return out


def _cmd_run(args, out):
    try:
        sampling = None
        if args.sampled:
            sampling = _collect_sampling(args) or True
        workloads = _expand_workloads(args.workload)
        jobset = [SimJob(name, args.kind, args.scale,
                         _collect_params(args),
                         max_cycles=args.max_cycles,
                         wall_seconds=args.wall_timeout,
                         sampling=sampling,
                         config=_collect_overrides(args))
                  for name in workloads]
    except (KeyError, ValueError) as exc:
        _log.error("%s", exc)
        return 2

    from repro.harness.runner import JobFailure
    try:
        report = run_batch(jobset, n_jobs=args.jobs,
                           cache=False if args.no_cache else None)
    except JobFailure as exc:
        _log.error("%s", exc)
        return 1

    if args.as_json:
        payload = [{"job": job.spec(),
                    "job_hash": job.job_hash(),
                    "config_hash": job.config_hash(),
                    "stats": report.results[job].as_dict()}
                   for job in jobset]
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        for job in jobset:
            out.write("%-40s %s\n" % (job.label(),
                                      report.results[job].summary()))
    out.write("# %s\n" % report.summary())
    return 0


def _cmd_trace(args, out):
    from repro.harness.jobs import _WallClock
    from repro.obs import JsonlTraceSink, KonataSink, Observability, \
        run_lockstep
    from repro.pipeline.core import O3Core
    from repro.workloads import get_workload

    try:
        job = SimJob(args.workload, args.kind, args.scale,
                     _collect_params(args), max_cycles=args.max_cycles,
                     wall_seconds=args.wall_timeout,
                     config=_collect_overrides(args))
        workload = get_workload(job.workload)
    except (KeyError, ValueError) as exc:
        _log.error("%s", exc)
        return 2

    out_path = args.out or "%s-%s.trace.jsonl" % (job.workload, job.kind)
    jsonl = JsonlTraceSink(out_path)
    sinks = [jsonl]
    if args.konata:
        sinks.append(KonataSink(args.konata))
    obs = Observability(sinks=sinks)

    _mod, prog = workload.build(job.scale)
    config = job.build_config()
    scheme = job.build_scheme()

    try:
        with _WallClock(job.wall_seconds):
            if args.lockstep:
                def _factory(program, cfg, reuse_scheme=None):
                    return O3Core(program, cfg, reuse_scheme=reuse_scheme,
                                  obs=obs)

                outcome = run_lockstep(prog, config, reuse_scheme=scheme,
                                       max_cycles=job.max_cycles,
                                       core_factory=_factory)
                if not outcome.ok:
                    _log.error("%s", outcome.divergence.format())
                    return 1
                stats = outcome.result.stats
                out.write("lockstep OK: %d commit(s) match the emulator\n"
                          % outcome.commits)
            else:
                core = O3Core(prog, config, reuse_scheme=scheme, obs=obs)
                stats = core.run(max_cycles=job.max_cycles).stats
    finally:
        obs.close()

    out.write("%-40s %s\n" % (job.label(), stats.summary()))
    out.write("trace  : %s (%d events)\n" % (out_path, jsonl.count))
    if args.konata:
        out.write("konata : %s\n" % args.konata)
    return 0


def _build_profile(args):
    """(program, BBVProfile) for the profile/simpoints subcommands."""
    from repro.sampling.bbv import DEFAULT_INTERVAL, profile_program
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    _mod, prog = workload.build(args.scale)
    interval = args.interval or DEFAULT_INTERVAL
    return prog, profile_program(prog, interval)


def _cmd_profile(args, out):
    try:
        _prog, profile = _build_profile(args)
    except (KeyError, ValueError) as exc:
        _log.error("%s", exc)
        return 2

    if args.as_json:
        json.dump(profile.as_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
        return 0
    out.write("%s scale=%s: %d insts, %d interval(s) x %d, "
              "%d block leader(s)\n"
              % (args.workload, args.scale, profile.total_insts,
                 profile.num_intervals, profile.interval_insts,
                 len(profile.block_leaders())))
    for iv in profile.intervals:
        out.write("  interval %-3d [%7d..%7d)  %d block(s)\n"
                  % (iv.index, iv.start_inst,
                     iv.start_inst + iv.num_insts, len(iv.bbv)))
    return 0


def _cmd_simpoints(args, out):
    from repro.sampling.simpoint import pick_simpoints

    try:
        _prog, profile = _build_profile(args)
        spec = _collect_sampling(args)
        selection = pick_simpoints(profile,
                                   max_k=spec.get("max_k", 8))
    except (KeyError, ValueError) as exc:
        _log.error("%s", exc)
        return 2

    if args.as_json:
        json.dump(selection.as_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
        return 0
    out.write("%s scale=%s: k=%d of %d interval(s), err<=%.3f, "
              "coverage=%.1f%%\n"
              % (args.workload, args.scale, selection.k,
                 selection.num_intervals, selection.error_bound,
                 100.0 * selection.coverage()))
    for point in selection.points:
        out.write("  interval %-3d start=%-7d insts=%-6d weight=%.3f "
                  "(%d member(s))\n"
                  % (point.index, point.start_inst, point.num_insts,
                     point.weight, point.cluster_size))
    return 0


def _cmd_perf(args, out):
    import os

    from repro.perf.bench import (DEFAULT_MATRIX, QUICK_NAMES,
                                  append_history, build_report,
                                  calibration_kops, compare_reports,
                                  load_report, profile_point, run_bench,
                                  select_points, write_report)

    points = select_points(QUICK_NAMES) if args.quick else DEFAULT_MATRIX
    out.write("calibrating...\n")
    calibration = calibration_kops()
    out.write("calibration: %.1f kops/s\n" % calibration)
    results = run_bench(points, repeats=args.repeats,
                        log=lambda line: out.write(line + "\n"))
    report = build_report(results, calibration=calibration)
    write_report(report, args.out)
    out.write("report : %s (commit %s)\n" % (args.out, report["commit"]))

    if not args.no_history:
        history = args.history or os.path.join(
            os.path.dirname(os.path.abspath(args.out)) or ".",
            "BENCH_HISTORY.jsonl")
        append_history(report, history)
        out.write("history: %s\n" % history)

    if args.profile_out:
        os.makedirs(args.profile_out, exist_ok=True)
        for point in points:
            path = os.path.join(args.profile_out,
                                "%s.pstats" % point.name)
            profile_point(point, path)
            out.write("profile: %s\n" % path)

    if args.check:
        try:
            baseline = load_report(args.check)
        except (OSError, ValueError) as exc:
            _log.error("cannot load baseline %s: %s", args.check, exc)
            return 2
        failures = compare_reports(report, baseline,
                                   threshold=args.threshold)
        if failures:
            for failure in failures:
                _log.error("perf regression: %s", failure)
            return 1
        out.write("gate   : OK (no point below %.0f%% of baseline)\n"
                  % ((1.0 - args.threshold) * 100.0))
    return 0


def _cmd_sweep(args, out):
    from repro.config.sweep import SweepError, load_sweep
    from repro.harness.runner import JobFailure

    try:
        sweep = load_sweep(args.file)
        plan = sweep.expand()
    except (SweepError, KeyError, ValueError) as exc:
        _log.error("%s", exc)
        return 2

    out.write("%s%s\n" % ("# " if args.as_json else "", plan.summary()))
    if args.dry_run:
        for entry in plan.entries:
            out.write("%-14s %-44s job=%s config=%s\n"
                      % (entry.scenario, entry.job.label(),
                         entry.job.job_hash()[:12],
                         entry.job.config_hash()[:12]))
        return 0

    n_jobs = args.jobs if args.jobs is not None else sweep.jobs
    try:
        report = run_batch(plan.jobs, n_jobs=n_jobs,
                           cache=False if args.no_cache else None)
    except JobFailure as exc:
        _log.error("%s", exc)
        return 1

    if args.as_json:
        payload = {
            "sweep": sweep.name,
            "declared": plan.declared,
            "unique": len(plan.jobs),
            "runner": {"executed": report.executed,
                       "memo_hits": report.memo_hits,
                       "disk_hits": report.disk_hits,
                       "groups": report.groups,
                       "program_loads": report.program_loads},
            "entries": [{"scenario": entry.scenario,
                         "job": entry.job.spec(),
                         "job_hash": entry.job.job_hash(),
                         "config_hash": entry.job.config_hash(),
                         "stats": report.results[entry.job].as_dict()}
                        for entry in plan.entries],
        }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        for entry in plan.entries:
            out.write("%-14s %-44s %s\n"
                      % (entry.scenario, entry.job.label(),
                         report.results[entry.job].summary()))
    out.write("# %s\n" % report.summary())
    return 0


def _cmd_config(args, out):
    from repro.config.tree import resolve

    if args.action == "docs":
        from repro.config.docs import update_file
        import os
        target = args.target
        if target is None:
            target = os.path.join(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))))), "README.md")
        try:
            fresh = update_file(target, check=args.check)
        except (OSError, ValueError) as exc:
            _log.error("%s", exc)
            return 2
        if args.check and not fresh:
            _log.error("%s is stale; regenerate with "
                       "`python -m repro.harness config docs`", target)
            return 1
        out.write("%s: %s\n" % (target,
                                "up to date" if fresh else "rewritten"))
        return 0

    try:
        tree = resolve(file=args.file, overrides=args.overrides)
    except (KeyError, ValueError) as exc:
        _log.error("%s", exc)
        return 2

    if args.action == "hash":
        out.write("%s\n" % tree.config_hash(kind=args.kind))
        return 0
    for line in tree.lines(provenance=args.provenance):
        out.write(line + "\n")
    out.write("\n# config hash: %s\n" % tree.config_hash())
    return 0


def _cmd_list(args, out):
    from repro.workloads.registry import SUITES, get_workload, \
        suite_names, workload_names
    if args.suite:
        try:
            names = suite_names(args.suite)
        except KeyError:
            _log.error("unknown suite %r (have: %s)",
                       args.suite, ", ".join(sorted(SUITES)))
            return 2
    else:
        names = workload_names()
    for name in names:
        workload = get_workload(name)
        out.write("%-18s %-10s %s\n" % (name, workload.suite,
                                        workload.description))
    return 0


def _cmd_brchar(args, out):
    from repro.workloads.brchar.driver import (characterization_table,
                                               signature_checks)
    rows = characterization_table(n=args.trace_len)
    checks = signature_checks(rows) if args.check else []
    if args.as_json:
        payload = {"trace_len": args.trace_len, "matrix": rows}
        if args.check:
            payload["checks"] = [
                {"name": name, "passed": passed, "detail": detail}
                for name, passed, detail in checks]
        json.dump(payload, out, indent=2)
        out.write("\n")
    else:
        out.write("%-10s %-9s %10s %10s %8s\n"
                  % ("probe", "predictor", "branches", "mispred", "mpb"))
        for row in rows:
            out.write("%-10s %-9s %10d %10d %8.4f\n"
                      % (row["probe"], row["predictor"], row["branches"],
                         row["mispredicts"], row["mpb"]))
        for name, passed, detail in checks:
            out.write("check %-20s %s  (%s)\n"
                      % (name, "PASS" if passed else "FAIL", detail))
    if any(not passed for _name, passed, _detail in checks):
        return 1
    return 0


def _cmd_cache(args, out):
    from repro.sampling.checkpoint import CheckpointStore

    cache = ResultCache.from_env() or ResultCache()
    store = CheckpointStore.from_env() or CheckpointStore()
    if args.clear:
        removed = cache.clear()
        out.write("removed %d cached result(s)\n" % removed)
    if args.action == "prune":
        if args.max_age_days is None and args.max_bytes is None:
            _log.error("prune needs --max-age-days and/or --max-bytes")
            return 2
        removed = cache.prune(max_age_days=args.max_age_days,
                              max_bytes=args.max_bytes)
        out.write("pruned %d cached result(s)\n" % removed)
        removed = store.prune(max_age_days=args.max_age_days,
                              max_bytes=args.max_bytes)
        out.write("pruned %d checkpoint entr(y/ies)\n" % removed)
    if args.action == "migrate":
        moved = cache.migrate()
        out.write("migrated %d flat-layout result(s) into shards\n"
                  % moved)
    out.write("cache dir   : %s\n" % cache.directory)
    out.write("fingerprint : %s\n" % code_fingerprint())
    out.write("entries     : %d (%d bytes)\n"
              % (cache.entries(), cache.total_bytes()))
    orphans, stale = cache.orphaned()
    out.write("orphaned    : %d entr(y/ies) under %d stale "
              "fingerprint(s)\n" % (orphans, stale))
    out.write("ckpt dir    : %s\n" % store.directory)
    out.write("ckpt entries: %d (%d bytes)\n"
              % (store.entries(), store.total_bytes()))
    return 0


def _cmd_serve(args, out):
    from repro.config import envreg
    from repro.service import serve as serve_service
    no_api = args.no_api if args.no_api is not None \
        else envreg.get("REPRO_SERVICE_NO_API")
    counters = serve_service(directory=args.directory, host=args.host,
                             port=args.port, workers=args.workers,
                             lease_ttl=args.lease_ttl,
                             job_timeout=args.job_timeout,
                             no_api=no_api)
    out.write("service stopped; counters: %s\n"
              % json.dumps(counters, sort_keys=True))
    return 0


def _cmd_submit(args, out):
    from repro.config.sweep import SweepError
    from repro.config.toml_compat import TomlError, load_file
    from repro.service import ServiceClient, ServiceError
    from repro.service.store import default_service_dir

    try:
        doc = load_file(args.file)
    except (OSError, TomlError) as exc:
        _log.error("cannot read sweep file: %s", exc)
        return 2
    directory = args.directory or (None if args.url
                                   else default_service_dir())
    try:
        client = ServiceClient(url=args.url, directory=directory)
        reply = client.submit(doc)
    except (ServiceError, ConnectionError, OSError, SweepError) as exc:
        _log.error("submit failed: %s", exc)
        return 1

    sweep_id = reply["sweep_id"]
    if not args.wait:
        if args.as_json:
            json.dump(reply, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            out.write("submitted %s: %d declared, %d unique job(s)\n"
                      % (sweep_id, reply["declared"], reply["unique"]))
            for row in reply["jobs"]:
                out.write("  %-16s %-24s %s (%s)\n"
                          % (row["scenario"], row["workload"],
                             row["job_hash"], row["state"]))
        return 0

    try:
        results = client.wait(sweep_id, timeout=args.timeout)
    except ServiceError as exc:
        _log.error("wait failed: %s", exc)
        return 1
    if args.as_json:
        json.dump(results, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write("sweep %s (%s): %d declared, states %s\n"
                  % (sweep_id, results["name"], results["declared"],
                     json.dumps(results["states"], sort_keys=True)))
        for entry in results["entries"]:
            stats = entry.get("stats") or {}
            ipc = stats.get("ipc")
            out.write("  %-16s %-24s %-9s %s\n"
                      % (entry["scenario"], entry["workload"],
                         entry["state"],
                         "ipc=%.4f" % ipc if isinstance(ipc, float)
                         else (entry.get("error") or "")))
    failed = sum(1 for entry in results["entries"]
                 if entry["state"] != "done")
    return 1 if failed else 0


def main(argv=None, out=None):
    configure_logging()
    args = _build_parser().parse_args(argv)
    out = out or sys.stdout
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "config":
        return _cmd_config(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "simpoints":
        return _cmd_simpoints(args, out)
    if args.command == "perf":
        return _cmd_perf(args, out)
    if args.command == "brchar":
        return _cmd_brchar(args, out)
    if args.command == "list":
        return _cmd_list(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "submit":
        return _cmd_submit(args, out)
    return _cmd_cache(args, out)


if __name__ == "__main__":
    sys.exit(main())
