"""On-disk result cache for simulation jobs.

Results are stored one JSON file per job under
``<cache dir>/<code fingerprint>/<shard>/<job hash>.json``, where the
shard is the first two hex digits of the job hash. Sharding keeps
directory listings bounded (256 buckets per fingerprint) so a store
holding millions of cached points stays fast to look up and to walk —
a flat directory with 10^6+ entries makes every ``os.listdir`` and
every cold ``open`` crawl. Entries written by older versions in the
flat ``<fingerprint>/<hash>.json`` layout are still *read* through
transparently; ``python -m repro.harness cache migrate`` moves them
into their shards in place. The fingerprint hashes every ``.py``
source file in the ``repro`` package, so editing the simulator (or a
workload) automatically invalidates all cached results without any
manual versioning.

The cache directory defaults to ``$XDG_CACHE_HOME/repro-sim`` (or
``~/.cache/repro-sim``) and is overridable via ``REPRO_CACHE_DIR``.
Setting ``REPRO_CACHE_DIR`` to ``0``, ``off`` or the empty string
disables disk caching entirely.

All I/O failures degrade to cache misses — a broken or read-only cache
never breaks an experiment, it only costs re-simulation.
"""

import hashlib
import json
import os
import tempfile

from repro.config import envreg

_DISABLE_VALUES = envreg.DISABLE_VALUES

_FINGERPRINT = None


def code_fingerprint():
    """Hash of every ``.py`` file in the repro package (cached per
    process).

    The predecode schema version, the configuration-schema version and
    the ``REPRO_SLOWPATH`` escape hatch are folded in as well: results
    simulated via the interpretive paths must never be served to (or
    poison the cache of) predecoded runs, and entries hashed under an
    older job-hashing scheme (pre configuration tree) must never be
    misattributed — bumping ``CONFIG_SCHEMA_VERSION`` strands them
    under a stale fingerprint, which ``harness cache`` reports as
    orphaned. The slowpath marker is applied per *call* (not baked into
    the cached digest) because tests toggle the environment variable
    mid-process.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro
        from repro.config.schema import CONFIG_SCHEMA_VERSION
        from repro.isa.predecode import PREDECODE_VERSION
        base = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        digest.update(("predecode-v%d" % PREDECODE_VERSION).encode("utf-8"))
        digest.update(("config-v%d" % CONFIG_SCHEMA_VERSION)
                      .encode("utf-8"))
        for dirpath, dirnames, filenames in sorted(os.walk(base)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, base).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _FINGERPRINT = digest.hexdigest()[:16]
    from repro.isa.predecode import slowpath_enabled, superblock_enabled
    if slowpath_enabled():
        # Slowpath disables superblock dispatch, so the markers are
        # mutually exclusive.
        return _FINGERPRINT + "-slow"
    if superblock_enabled():
        return _FINGERPRINT + "-sb"
    return _FINGERPRINT


def default_cache_dir():
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-sim")


#: Hex digits of the job hash used as the shard directory name.
SHARD_CHARS = 2


def shard_of(key):
    """Shard directory name for one entry key (2-hex hash prefix)."""
    return key[:SHARD_CHARS]


def _is_shard_dir(name):
    """True for 2-hex shard directory names (``a3``, ``0f``, ...)."""
    if len(name) != SHARD_CHARS:
        return False
    try:
        int(name, 16)
    except ValueError:
        return False
    return True


def iter_entries(sub):
    """Yield ``(name, path)`` for every JSON entry under one
    fingerprint directory: sharded entries plus any legacy flat ones.
    Unreadable paths are silently skipped, like every cache I/O."""
    try:
        names = sorted(os.listdir(sub))
    except OSError:
        return
    for name in names:
        path = os.path.join(sub, name)
        if name.endswith(".json"):
            yield name, path
        elif _is_shard_dir(name) and os.path.isdir(path):
            try:
                inner = sorted(os.listdir(path))
            except OSError:
                continue
            for entry in inner:
                if entry.endswith(".json"):
                    yield entry, os.path.join(path, entry)


def stale_fingerprints(directory, current):
    """Fingerprint subdirectories of ``directory`` other than
    ``current`` — entries under them were produced by older code or an
    older hashing scheme and can never be served again. Returns
    ``[(fingerprint, entries)]`` sorted by name."""
    out = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    for name in names:
        if name == current:
            continue
        sub = os.path.join(directory, name)
        if not os.path.isdir(sub):
            continue
        count = sum(1 for _name, _path in iter_entries(sub))
        out.append((name, count))
    return out


# ---------------------------------------------------------------------------
# Store walking / pruning, shared by every on-disk store with the
# ``<root>/<fingerprint>/<key>.json`` layout (the result cache here and
# the checkpoint store in :mod:`repro.sampling.checkpoint`).
# ---------------------------------------------------------------------------
def walk_store(directory):
    """Yield ``(path, size_bytes, mtime)`` for every JSON entry under
    every fingerprint subdirectory of ``directory`` — sharded and
    legacy flat entries alike (missing or unreadable paths are
    silently skipped, like every cache I/O)."""
    try:
        fingerprints = sorted(os.listdir(directory))
    except OSError:
        return
    for fingerprint in fingerprints:
        sub = os.path.join(directory, fingerprint)
        if not os.path.isdir(sub):
            continue
        for _name, path in iter_entries(sub):
            try:
                info = os.stat(path)
            except OSError:
                continue
            yield path, info.st_size, info.st_mtime


def prune_store(directory, max_age_days=None, max_bytes=None, now=None):
    """Prune a ``<root>/<fingerprint>/<key>.json`` store.

    Drops entries older than ``max_age_days`` first, then the oldest
    remaining entries until the store fits in ``max_bytes``. Either
    limit may be None (no limit). Returns the number of entries
    removed; failures degrade to keeping the entry.
    """
    import time
    now = time.time() if now is None else now
    entries = sorted(walk_store(directory), key=lambda e: e[2])
    removed = 0
    kept = []
    for path, size, mtime in entries:
        if max_age_days is not None \
                and now - mtime > max_age_days * 86400.0:
            try:
                os.unlink(path)
                removed += 1
                continue
            except OSError:
                pass
        kept.append((path, size, mtime))
    if max_bytes is not None:
        total = sum(size for _path, size, _mtime in kept)
        for path, size, _mtime in kept:  # oldest first
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
                removed += 1
                total -= size
            except OSError:
                pass
    return removed


class ResultCache:
    """JSON result store keyed by job hash + code fingerprint.

    Tracks ``hits`` / ``misses`` / ``stores`` counters so tests (and the
    batch runner's reports) can verify that a warm cache performs zero
    new simulations.
    """

    def __init__(self, directory=None, fingerprint=None):
        self.directory = directory or default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def from_env(cls):
        """Cache configured by ``REPRO_CACHE_DIR`` (None if disabled)."""
        enabled, directory = envreg.store_dir("REPRO_CACHE_DIR")
        if not enabled:
            return None
        return cls(directory=directory)

    # ------------------------------------------------------------------
    def _path(self, job):
        job_hash = job.job_hash()
        return os.path.join(self.directory, self.fingerprint,
                            shard_of(job_hash), job_hash + ".json")

    def _flat_path(self, job):
        """Pre-sharding layout: entries written by older versions live
        directly under the fingerprint directory."""
        return os.path.join(self.directory, self.fingerprint,
                            job.job_hash() + ".json")

    def _load(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)["stats"]

    def get(self, job):
        """Stats dict for ``job``, or None on a miss.

        Reads the sharded path first, then falls back to the legacy
        flat layout, so a cache populated before sharding keeps
        serving without a migration (``cache migrate`` merely speeds
        it up)."""
        try:
            stats = self._load(self._path(job))
        except (OSError, ValueError, KeyError, TypeError):
            try:
                stats = self._load(self._flat_path(job))
            except (OSError, ValueError, KeyError, TypeError):
                self.misses += 1
                return None
        self.hits += 1
        return stats

    def put(self, job, stats_dict):
        """Persist a result; failures are silently ignored.

        Every entry embeds the job's fully resolved configuration
        snapshot (inside ``job.config``) plus its stable configuration
        hash, so any row of any table is reproducible from the result
        file alone.
        """
        path = self._path(job)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            # Atomic publish: never leave a torn JSON file behind.
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump({"job": job.spec(),
                               "job_hash": job.job_hash(),
                               "config_hash": job.config_hash(),
                               "stats": stats_dict},
                              handle, sort_keys=True)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return
        self.stores += 1

    # ------------------------------------------------------------------
    def entries(self):
        """Number of results stored for the current fingerprint
        (sharded plus legacy flat entries)."""
        sub = os.path.join(self.directory, self.fingerprint)
        return sum(1 for _name, _path in iter_entries(sub))

    def flat_entries(self):
        """Legacy pre-sharding entries still sitting directly under
        the current fingerprint directory (``cache migrate`` moves
        them into their shards)."""
        sub = os.path.join(self.directory, self.fingerprint)
        try:
            names = os.listdir(sub)
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(".json"))

    def migrate(self, all_fingerprints=True):
        """Move legacy flat-layout entries into their shard
        directories. Returns the number of entries moved; each move is
        an ``os.replace`` within the fingerprint directory, so readers
        racing the migration see either layout, never a torn file."""
        if all_fingerprints:
            try:
                fingerprints = sorted(
                    name for name in os.listdir(self.directory)
                    if os.path.isdir(os.path.join(self.directory, name)))
            except OSError:
                return 0
        else:
            fingerprints = [self.fingerprint]
        moved = 0
        for fingerprint in fingerprints:
            sub = os.path.join(self.directory, fingerprint)
            try:
                names = sorted(os.listdir(sub))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                shard = os.path.join(sub, shard_of(name))
                try:
                    os.makedirs(shard, exist_ok=True)
                    os.replace(os.path.join(sub, name),
                               os.path.join(shard, name))
                    moved += 1
                except OSError:
                    continue
        return moved

    def prune(self, max_age_days=None, max_bytes=None):
        """Prune old / excess entries across *all* fingerprints (stale
        fingerprints are exactly what pruning should reclaim first).
        Returns the number of entries removed."""
        return prune_store(self.directory, max_age_days=max_age_days,
                           max_bytes=max_bytes)

    def total_bytes(self):
        """Total size of every entry across all fingerprints."""
        return sum(size for _path, size, _mtime
                   in walk_store(self.directory))

    def orphaned(self):
        """``(entries, fingerprints)`` stranded under fingerprints other
        than the current one — results from older code or an older
        hashing scheme that can never be served again (``harness
        cache`` reports them; ``--clear --all`` or pruning reclaims
        them)."""
        stale = stale_fingerprints(self.directory, self.fingerprint)
        return sum(count for _name, count in stale), len(stale)

    def clear(self, all_fingerprints=False):
        """Drop cached results (current fingerprint only by default).
        Returns the number of entries removed."""
        removed = 0
        if all_fingerprints:
            try:
                roots = [os.path.join(self.directory, d)
                         for d in os.listdir(self.directory)]
            except OSError:
                return 0
        else:
            roots = [os.path.join(self.directory, self.fingerprint)]
        for root in roots:
            for _name, path in list(iter_entries(root)):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed
