"""Batch execution of simulation jobs with layered caching.

Resolution order for each job in a batch:

1. **in-process memo** — SimStats objects already produced this process
   (shared across every experiment, so e.g. the baseline runs Figures
   10 and 12 both need are simulated once);
2. **disk cache** — results persisted by previous processes
   (:mod:`repro.harness.cache`), keyed by job hash + code fingerprint;
3. **simulation** — remaining jobs are deduplicated and fanned out over
   a ``multiprocessing`` pool (``REPRO_JOBS`` workers by default).
   Workers rebuild programs from the job spec and ship stats back as
   plain dicts; the serial path round-trips through the same dict
   representation so parallel and serial batches are byte-identical.

Per-job failures are captured, not propagated mid-batch: every job
either yields stats or an error entry, and ``strict`` batches raise a
single :class:`JobFailure` naming all failed jobs at the end.
"""

import os
import traceback

from repro.harness.cache import ResultCache
from repro.harness.jobs import SimJob  # noqa: F401  (re-export)
from repro.harness.jobs import execute
from repro.log import get_logger
from repro.pipeline.stats import SimStats

_log = get_logger("harness.runner")

#: job hash -> SimStats; process-lifetime memo (layer 1).
_MEMO = {}

_LAST_REPORT = None


class JobFailure(Exception):
    """One or more jobs in a strict batch failed."""

    def __init__(self, errors):
        self.errors = dict(errors)
        lines = ["%d job(s) failed:" % len(self.errors)]
        for job, message in self.errors.items():
            first = message.strip().splitlines()[-1] if message else "?"
            lines.append("  %s: %s" % (job.label(), first))
        super().__init__("\n".join(lines))


class BatchReport:
    """Outcome of one :func:`run_batch` call."""

    def __init__(self, jobs):
        self.jobs = list(jobs)
        self.results = {}        # SimJob -> SimStats (or None on error)
        self.errors = {}         # SimJob -> traceback string
        self.executed = 0        # simulations actually run
        self.memo_hits = 0
        self.disk_hits = 0

    @property
    def total(self):
        return len(self.jobs)

    def summary(self):
        return ("jobs=%d executed=%d memo_hits=%d disk_hits=%d errors=%d"
                % (self.total, self.executed, self.memo_hits,
                   self.disk_hits, len(self.errors)))


def default_jobs():
    """Worker count from ``REPRO_JOBS`` (0 means all CPUs; default 1)."""
    from repro.config import envreg
    value = envreg.get("REPRO_JOBS")
    if value <= 0:
        return os.cpu_count() or 1
    return value


def _run_one(job):
    """Execute one job; returns ``(job_hash, ok, payload)`` where the
    payload is a stats dict on success or a traceback string on error.
    Runs in pool workers and in the serial fallback alike."""
    try:
        stats = execute(job)
        return job.job_hash(), True, stats.as_dict()
    except Exception:
        return job.job_hash(), False, traceback.format_exc()


def _pool_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def run_batch(jobs, n_jobs=None, cache=None, progress=None, strict=True,
              memo=_MEMO):
    """Resolve a batch of :class:`SimJob`; returns a :class:`BatchReport`.

    ``n_jobs``: worker processes (defaults to ``REPRO_JOBS``, serial if
    unset). ``cache``: a :class:`ResultCache`, ``None`` for the
    environment default, or ``False`` to disable disk caching.
    ``progress``: optional callable ``(done, total, job, source)`` with
    source one of ``memo``/``disk``/``run``/``error``. ``strict``:
    raise :class:`JobFailure` if any job failed (otherwise failed jobs
    resolve to ``None`` stats).
    """
    global _LAST_REPORT
    jobs = list(jobs)
    if cache is None:
        cache = ResultCache.from_env()
    n_jobs = n_jobs if n_jobs is not None else default_jobs()
    n_jobs = max(1, int(n_jobs))

    report = BatchReport(jobs)
    _LAST_REPORT = report
    if memo is None:
        memo = {}

    unique = {}                   # job_hash -> first SimJob instance
    for job in jobs:
        unique.setdefault(job.job_hash(), job)
    resolved = {}                 # job_hash -> SimStats
    failed = {}                   # job_hash -> traceback string
    done = [0]

    def _note(job, source):
        done[0] += 1
        if source == "error":
            _log.warning("[%d/%d] %s failed", done[0], len(unique),
                         job.label())
        else:
            _log.debug("[%d/%d] %s (%s)", done[0], len(unique),
                       job.label(), source)
        if progress is not None:
            progress(done[0], len(unique), job, source)

    pending = []
    for job_hash, job in unique.items():
        if job_hash in memo:
            resolved[job_hash] = memo[job_hash]
            report.memo_hits += 1
            _note(job, "memo")
            continue
        if cache:
            stats_dict = cache.get(job)
            if stats_dict is not None:
                stats = SimStats.from_dict(stats_dict)
                memo[job_hash] = stats
                resolved[job_hash] = stats
                report.disk_hits += 1
                _note(job, "disk")
                continue
        pending.append(job)

    def _absorb(job, job_hash, ok, payload):
        if ok:
            stats = SimStats.from_dict(payload)
            memo[job_hash] = stats
            resolved[job_hash] = stats
            report.executed += 1
            if cache:
                cache.put(job, payload)
            _note(job, "run")
        else:
            failed[job_hash] = payload
            _note(job, "error")

    if pending:
        _log.info("batch: %d job(s), %d cached (%d memo, %d disk), "
                  "simulating %d on %d worker(s)",
                  len(unique), report.memo_hits + report.disk_hits,
                  report.memo_hits, report.disk_hits, len(pending),
                  min(n_jobs, len(pending)))
        if n_jobs > 1 and len(pending) > 1:
            by_hash = {job.job_hash(): job for job in pending}
            ctx = _pool_context()
            with ctx.Pool(min(n_jobs, len(pending))) as pool:
                for job_hash, ok, payload in pool.imap_unordered(
                        _run_one, pending):
                    _absorb(by_hash[job_hash], job_hash, ok, payload)
        else:
            for job in pending:
                job_hash, ok, payload = _run_one(job)
                _absorb(job, job_hash, ok, payload)

    for job in jobs:
        job_hash = job.job_hash()
        report.results[job] = resolved.get(job_hash)
        if job_hash in failed:
            report.errors[job] = failed[job_hash]
    if report.errors and strict:
        raise JobFailure(report.errors)
    return report


def submit(jobs, n_jobs=None, cache=None, progress=None, strict=True):
    """Run a batch and return ``{SimJob: SimStats}``.

    The convenience front door used by the experiment stack: layered
    caching included, duplicate jobs deduplicated, results keyed by the
    job objects so call sites index with the jobs they built.
    """
    return run_batch(jobs, n_jobs=n_jobs, cache=cache, progress=progress,
                     strict=strict).results


def last_report():
    """The :class:`BatchReport` of the most recent batch (or None)."""
    return _LAST_REPORT


def clear_memo():
    """Drop the in-process result memo (mainly for tests)."""
    _MEMO.clear()
