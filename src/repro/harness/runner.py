"""Batch execution of simulation jobs with layered caching.

Resolution order for each job in a batch:

1. **in-process memo** — SimStats objects already produced this process
   (shared across every experiment, so e.g. the baseline runs Figures
   10 and 12 both need are simulated once);
2. **disk cache** — results persisted by previous processes
   (:mod:`repro.harness.cache`), keyed by job hash + code fingerprint;
3. **simulation** — remaining jobs are deduplicated, grouped by
   program image (same ``(workload, scale)`` — the config tree makes
   such cells trivially identifiable) and fanned out over a supervised
   :class:`ProcessPool` (``REPRO_JOBS`` workers by default). Each
   worker process runs its whole group sequentially, so the program
   image and its predecode/superblock tables are built **once per
   group** instead of once per job (``REPRO_SHARED_IMAGES=0`` restores
   one process per job). Workers rebuild programs from the job spec
   and ship stats back as plain dicts; the serial path round-trips
   through the same dict representation so parallel and serial batches
   are byte-identical.

Per-job failures are captured, not propagated mid-batch: every job
either yields stats or an error entry, and ``strict`` batches raise a
single :class:`JobFailure` naming all failed jobs at the end. Unlike
``multiprocessing.Pool`` — which silently respawns a worker killed
mid-task and leaves the consumer waiting forever for the lost result —
the pool supervises one dedicated process per in-flight job, so a
killed worker resolves its job to an error carrying the captured exit
code, and a job past its wall-clock deadline (``wall_seconds`` or the
``REPRO_JOB_TIMEOUT`` default) is terminated instead of hanging the
batch. The service broker (:mod:`repro.service.broker`) leases jobs
onto the same pool.
"""

import os
import queue as queue_mod
import time
import traceback

from repro.harness.cache import ResultCache
from repro.harness.jobs import SimJob  # noqa: F401  (re-export)
from repro.harness.jobs import execute
from repro.log import get_logger
from repro.pipeline.stats import SimStats

_log = get_logger("harness.runner")

#: job hash -> SimStats; process-lifetime memo (layer 1).
_MEMO = {}

_LAST_REPORT = None


class JobFailure(Exception):
    """One or more jobs in a strict batch failed."""

    def __init__(self, errors):
        self.errors = dict(errors)
        lines = ["%d job(s) failed:" % len(self.errors)]
        for job, message in self.errors.items():
            first = message.strip().splitlines()[-1] if message else "?"
            lines.append("  %s: %s" % (job.label(), first))
        super().__init__("\n".join(lines))


class BatchReport:
    """Outcome of one :func:`run_batch` call."""

    def __init__(self, jobs):
        self.jobs = list(jobs)
        self.results = {}        # SimJob -> SimStats (or None on error)
        self.errors = {}         # SimJob -> traceback string
        self.executed = 0        # simulations actually run
        self.memo_hits = 0
        self.disk_hits = 0
        self.groups = 0          # worker groups the executed jobs used
        self.program_loads = 0   # real program builds those groups paid

    @property
    def total(self):
        return len(self.jobs)

    def summary(self):
        return ("jobs=%d executed=%d memo_hits=%d disk_hits=%d "
                "errors=%d groups=%d program_loads=%d"
                % (self.total, self.executed, self.memo_hits,
                   self.disk_hits, len(self.errors), self.groups,
                   self.program_loads))


def default_jobs():
    """Worker count from ``REPRO_JOBS`` (0 means all CPUs; default 1)."""
    from repro.config import envreg
    value = envreg.get("REPRO_JOBS")
    if value <= 0:
        return os.cpu_count() or 1
    return value


def default_job_timeout():
    """Wall-clock timeout from ``REPRO_JOB_TIMEOUT`` (None when off)."""
    from repro.config import envreg
    value = envreg.get("REPRO_JOB_TIMEOUT")
    return float(value) if value and value > 0 else None


def default_shared_images():
    """Shared-image grouping toggle from ``REPRO_SHARED_IMAGES``."""
    from repro.config import envreg
    return envreg.get("REPRO_SHARED_IMAGES")


def group_jobs(jobs, n_slots, shared=True):
    """Partition ``jobs`` into worker groups sharing a program image.

    Jobs with the same ``(workload, scale)`` build byte-identical
    programs (scales are rounded exactly like ``Workload.build``), so
    running them in one process amortises compilation, predecode and
    superblock construction across the group. Each image's jobs are
    split into at most ``n_slots // n_images`` contiguous chunks so a
    single-image batch still fans out across the pool rather than
    serialising on one worker. ``shared=False`` degrades to one
    singleton group per job (the pre-grouping behaviour).
    """
    jobs = list(jobs)
    if not shared:
        return [[job] for job in jobs]
    images = {}
    order = []
    for job in jobs:
        key = (job.workload, round(float(job.scale), 6))
        if key not in images:
            images[key] = []
            order.append(key)
        images[key].append(job)
    n_slots = max(1, int(n_slots))
    per_image = max(1, n_slots // len(order)) if order else 1
    groups = []
    for key in order:
        image_jobs = images[key]
        n_chunks = min(len(image_jobs), per_image)
        size = -(-len(image_jobs) // n_chunks)
        for start in range(0, len(image_jobs), size):
            groups.append(image_jobs[start:start + size])
    return groups


def _run_one(job, timeout=None):
    """Execute one job; returns ``(job_hash, ok, payload)`` where the
    payload is a stats dict on success or a traceback string on error.
    Runs in pool workers and in the serial fallback alike. ``timeout``
    arms a wall-clock guard for jobs without their own
    ``wall_seconds`` (which :func:`execute` already enforces)."""
    from repro.harness.jobs import _WallClock
    try:
        with _WallClock(None if job.wall_seconds else timeout):
            stats = execute(job)
        return job.job_hash(), True, stats.as_dict()
    except Exception:
        return job.job_hash(), False, traceback.format_exc()


def _group_worker(jobs, timeout, results, group_id):
    """Entry point of one worker process: run a whole job group.

    The group shares this process's workload build cache, so the
    program image (and its predecode/superblock tables) is built once
    however many same-image jobs follow. After the last job a *meta*
    record — keyed by the ``("meta", group_id)`` tuple, which can never
    collide with a job-hash string — ships the number of real program
    builds back to the parent, where it feeds
    ``BatchReport.program_loads``.
    """
    from repro.workloads.registry import build_count
    before = build_count()
    for job in jobs:
        results.put(_run_one(job, timeout))
    results.put((("meta", group_id), True,
                 {"program_builds": build_count() - before}))


def _pool_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


class _Slot:
    """One in-flight job group: its process and parent-side deadline.

    ``jobs`` maps job hash -> SimJob for every member; ``pending``
    holds the hashes still unresolved; ``meta_seen`` flips when the
    worker's trailing build-count record arrives (the slot is released
    only once both are done, so ``program_loads`` never loses a
    delta)."""

    __slots__ = ("proc", "jobs", "pending", "deadline", "timeout",
                 "group_id", "meta_seen")

    def __init__(self, proc, jobs, deadline, timeout, group_id):
        self.proc = proc
        self.jobs = jobs
        self.pending = set(jobs)
        self.deadline = deadline
        self.timeout = timeout
        self.group_id = group_id
        self.meta_seen = False


class ProcessPool:
    """Bounded fan-out of job groups over dedicated, supervised
    processes.

    Each submitted group runs sequentially in its own process (crash
    isolation: a worker that dies takes exactly one group with it, and
    its exit code is captured); single-job groups reproduce the old
    one-process-per-job behaviour exactly. :meth:`poll` resolves jobs
    three ways:

    * a result on the queue — success or a captured traceback;
    * a dead process without results for its unfinished jobs —
      ``worker died mid-job (exit code N)``, instead of the silent
      hang a ``multiprocessing.Pool`` exhibits when a worker is
      SIGKILLed;
    * a group past its deadline (the *sum* of its members' wall-clock
      budgets) — the process is terminated and the unfinished jobs
      resolve to timeout errors. The in-worker ``SIGALRM`` guard
      normally fires first (clean traceback); the parent-side kill is
      the backstop for workers too wedged to handle the signal.

    ``running`` still maps job hash -> slot for every in-flight job,
    so callers that enumerate leases (the service broker's heartbeat)
    are oblivious to grouping. ``program_loads`` accumulates the real
    program-build counts the workers report.
    """

    #: Parent-side slack on top of the in-worker SIGALRM guard.
    GRACE = 2.0

    def __init__(self, n_jobs, job_timeout=None, ctx=None):
        self.n_jobs = max(1, int(n_jobs))
        self.job_timeout = job_timeout
        self.ctx = ctx or _pool_context()
        self.results = self.ctx.Queue()
        self.running = {}             # job_hash -> _Slot
        self._slots = {}              # group_id -> _Slot
        self._next_group = 0
        self.program_loads = 0

    def free_slots(self):
        return self.n_jobs - len(self._slots)

    def active(self):
        """True while any group is still in flight."""
        return bool(self._slots)

    def submit(self, job):
        """Start one job on a dedicated process (caller checks slots)."""
        self.submit_group([job])

    def submit_group(self, jobs):
        """Start a job group on one dedicated process."""
        jobs = list(jobs)
        group_id = self._next_group
        self._next_group += 1
        budget = 0.0
        unbounded = False
        for job in jobs:
            timeout = job.wall_seconds or self.job_timeout
            if timeout:
                budget += timeout
            else:
                unbounded = True
        proc = self.ctx.Process(
            target=_group_worker,
            args=(jobs, self.job_timeout, self.results, group_id),
            daemon=True)
        proc.start()
        deadline = None if unbounded \
            else time.monotonic() + budget + self.GRACE
        slot = _Slot(proc, {job.job_hash(): job for job in jobs},
                     deadline, budget if not unbounded else None,
                     group_id)
        self._slots[group_id] = slot
        for job_hash in slot.jobs:
            self.running[job_hash] = slot

    def _release(self, slot):
        """Join and forget a group once its jobs *and* meta arrived."""
        if not slot.pending and slot.meta_seen \
                and slot.group_id in self._slots:
            del self._slots[slot.group_id]
            slot.proc.join()

    def _drop(self, slot, out, reason):
        """Resolve a dead/expired group's unfinished jobs to errors."""
        self._slots.pop(slot.group_id, None)
        for job_hash in sorted(slot.pending):
            self.running.pop(job_hash, None)
            job = slot.jobs[job_hash]
            out.append((job, False, reason % job.label()))
        slot.pending.clear()

    def _drain(self, out):
        while True:
            try:
                key, ok, payload = self.results.get_nowait()
            except queue_mod.Empty:
                return
            if isinstance(key, tuple):        # ("meta", group_id)
                slot = self._slots.get(key[1])
                self.program_loads += payload.get("program_builds", 0)
                if slot is not None:
                    slot.meta_seen = True
                    self._release(slot)
                continue
            slot = self.running.pop(key, None)
            if slot is None:          # already resolved (late result)
                continue
            slot.pending.discard(key)
            out.append((slot.jobs[key], ok, payload))
            self._release(slot)

    def _reap(self, out):
        now = time.monotonic()
        for group_id, slot in list(self._slots.items()):
            if not slot.proc.is_alive():
                # The process may have posted results between our last
                # drain and its exit; give the queue a moment to
                # deliver before declaring the worker dead.
                end = time.monotonic() + 0.25
                while time.monotonic() < end:
                    self._drain(out)
                    if group_id not in self._slots:
                        break
                    time.sleep(0.01)
                if group_id not in self._slots:
                    continue
                proc = slot.proc
                proc.join()
                self._drop(slot, out,
                           "worker died mid-job (exit code %s): %%s"
                           % proc.exitcode)
            elif slot.deadline is not None and now > slot.deadline:
                slot.proc.terminate()
                slot.proc.join(1.0)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join()
                self._drop(slot, out,
                           "job exceeded wall-clock timeout (%.1fs); "
                           "worker terminated: %%s" % slot.timeout)

    def poll(self, block=0.0):
        """Collect finished jobs; returns ``[(job, ok, payload)]``.

        ``block``: seconds to wait for at least one completion (0 =
        return immediately with whatever is ready)."""
        out = []
        deadline = time.monotonic() + block
        while True:
            self._drain(out)
            self._reap(out)
            if out or time.monotonic() >= deadline:
                return out
            time.sleep(0.01)

    def close(self):
        """Terminate anything still running and release the queue."""
        for slot in self._slots.values():
            slot.proc.terminate()
        for slot in self._slots.values():
            slot.proc.join(1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join()
        self._slots.clear()
        self.running.clear()
        self.results.close()


def run_batch(jobs, n_jobs=None, cache=None, progress=None, strict=True,
              memo=_MEMO, shared_images=None):
    """Resolve a batch of :class:`SimJob`; returns a :class:`BatchReport`.

    ``n_jobs``: worker processes (defaults to ``REPRO_JOBS``, serial if
    unset). ``cache``: a :class:`ResultCache`, ``None`` for the
    environment default, or ``False`` to disable disk caching.
    ``progress``: optional callable ``(done, total, job, source)`` with
    source one of ``memo``/``disk``/``run``/``error``. ``strict``:
    raise :class:`JobFailure` if any job failed (otherwise failed jobs
    resolve to ``None`` stats). ``shared_images``: group same-program
    jobs into shared workers (defaults to ``REPRO_SHARED_IMAGES``).
    """
    global _LAST_REPORT
    jobs = list(jobs)
    if cache is None:
        cache = ResultCache.from_env()
    n_jobs = n_jobs if n_jobs is not None else default_jobs()
    n_jobs = max(1, int(n_jobs))

    report = BatchReport(jobs)
    _LAST_REPORT = report
    if memo is None:
        memo = {}

    unique = {}                   # job_hash -> first SimJob instance
    for job in jobs:
        unique.setdefault(job.job_hash(), job)
    resolved = {}                 # job_hash -> SimStats
    failed = {}                   # job_hash -> traceback string
    done = [0]

    def _note(job, source):
        done[0] += 1
        if source == "error":
            _log.warning("[%d/%d] %s failed", done[0], len(unique),
                         job.label())
        else:
            _log.debug("[%d/%d] %s (%s)", done[0], len(unique),
                       job.label(), source)
        if progress is not None:
            progress(done[0], len(unique), job, source)

    pending = []
    for job_hash, job in unique.items():
        if job_hash in memo:
            resolved[job_hash] = memo[job_hash]
            report.memo_hits += 1
            _note(job, "memo")
            continue
        if cache:
            stats_dict = cache.get(job)
            if stats_dict is not None:
                stats = SimStats.from_dict(stats_dict)
                memo[job_hash] = stats
                resolved[job_hash] = stats
                report.disk_hits += 1
                _note(job, "disk")
                continue
        pending.append(job)

    def _absorb(job, job_hash, ok, payload):
        if ok:
            stats = SimStats.from_dict(payload)
            memo[job_hash] = stats
            resolved[job_hash] = stats
            report.executed += 1
            if cache:
                cache.put(job, payload)
            _note(job, "run")
        else:
            failed[job_hash] = payload
            _note(job, "error")

    if pending:
        if shared_images is None:
            shared_images = default_shared_images()
        groups = group_jobs(pending, n_jobs, shared=shared_images)
        report.groups = len(groups)
        _log.info("batch: %d job(s), %d cached (%d memo, %d disk), "
                  "simulating %d in %d group(s) on %d worker(s)",
                  len(unique), report.memo_hits + report.disk_hits,
                  report.memo_hits, report.disk_hits, len(pending),
                  len(groups), min(n_jobs, len(groups)))
        timeout = default_job_timeout()
        if n_jobs > 1 and len(pending) > 1:
            pool = ProcessPool(min(n_jobs, len(groups)),
                               job_timeout=timeout)
            try:
                backlog = iter(groups)
                next_group = next(backlog, None)
                while next_group is not None or pool.active():
                    while next_group is not None and pool.free_slots():
                        pool.submit_group(next_group)
                        next_group = next(backlog, None)
                    for job, ok, payload in pool.poll(block=0.1):
                        _absorb(job, job.job_hash(), ok, payload)
            finally:
                pool.close()
            report.program_loads = pool.program_loads
        else:
            from repro.workloads.registry import build_count
            before = build_count()
            for group in groups:
                for job in group:
                    job_hash, ok, payload = _run_one(job, timeout)
                    _absorb(job, job_hash, ok, payload)
            report.program_loads = build_count() - before

    for job in jobs:
        job_hash = job.job_hash()
        report.results[job] = resolved.get(job_hash)
        if job_hash in failed:
            report.errors[job] = failed[job_hash]
    if report.errors and strict:
        raise JobFailure(report.errors)
    return report


def submit(jobs, n_jobs=None, cache=None, progress=None, strict=True):
    """Run a batch and return ``{SimJob: SimStats}``.

    The convenience front door used by the experiment stack: layered
    caching included, duplicate jobs deduplicated, results keyed by the
    job objects so call sites index with the jobs they built.
    """
    return run_batch(jobs, n_jobs=n_jobs, cache=cache, progress=progress,
                     strict=strict).results


def last_report():
    """The :class:`BatchReport` of the most recent batch (or None)."""
    return _LAST_REPORT


def clear_memo():
    """Drop the in-process result memo (mainly for tests)."""
    _MEMO.clear()
