"""Batch execution of simulation jobs with layered caching.

Resolution order for each job in a batch:

1. **in-process memo** — SimStats objects already produced this process
   (shared across every experiment, so e.g. the baseline runs Figures
   10 and 12 both need are simulated once);
2. **disk cache** — results persisted by previous processes
   (:mod:`repro.harness.cache`), keyed by job hash + code fingerprint;
3. **simulation** — remaining jobs are deduplicated and fanned out over
   a supervised :class:`ProcessPool` (``REPRO_JOBS`` workers by
   default). Workers rebuild programs from the job spec and ship stats
   back as plain dicts; the serial path round-trips through the same
   dict representation so parallel and serial batches are
   byte-identical.

Per-job failures are captured, not propagated mid-batch: every job
either yields stats or an error entry, and ``strict`` batches raise a
single :class:`JobFailure` naming all failed jobs at the end. Unlike
``multiprocessing.Pool`` — which silently respawns a worker killed
mid-task and leaves the consumer waiting forever for the lost result —
the pool supervises one dedicated process per in-flight job, so a
killed worker resolves its job to an error carrying the captured exit
code, and a job past its wall-clock deadline (``wall_seconds`` or the
``REPRO_JOB_TIMEOUT`` default) is terminated instead of hanging the
batch. The service broker (:mod:`repro.service.broker`) leases jobs
onto the same pool.
"""

import os
import queue as queue_mod
import time
import traceback

from repro.harness.cache import ResultCache
from repro.harness.jobs import SimJob  # noqa: F401  (re-export)
from repro.harness.jobs import execute
from repro.log import get_logger
from repro.pipeline.stats import SimStats

_log = get_logger("harness.runner")

#: job hash -> SimStats; process-lifetime memo (layer 1).
_MEMO = {}

_LAST_REPORT = None


class JobFailure(Exception):
    """One or more jobs in a strict batch failed."""

    def __init__(self, errors):
        self.errors = dict(errors)
        lines = ["%d job(s) failed:" % len(self.errors)]
        for job, message in self.errors.items():
            first = message.strip().splitlines()[-1] if message else "?"
            lines.append("  %s: %s" % (job.label(), first))
        super().__init__("\n".join(lines))


class BatchReport:
    """Outcome of one :func:`run_batch` call."""

    def __init__(self, jobs):
        self.jobs = list(jobs)
        self.results = {}        # SimJob -> SimStats (or None on error)
        self.errors = {}         # SimJob -> traceback string
        self.executed = 0        # simulations actually run
        self.memo_hits = 0
        self.disk_hits = 0

    @property
    def total(self):
        return len(self.jobs)

    def summary(self):
        return ("jobs=%d executed=%d memo_hits=%d disk_hits=%d errors=%d"
                % (self.total, self.executed, self.memo_hits,
                   self.disk_hits, len(self.errors)))


def default_jobs():
    """Worker count from ``REPRO_JOBS`` (0 means all CPUs; default 1)."""
    from repro.config import envreg
    value = envreg.get("REPRO_JOBS")
    if value <= 0:
        return os.cpu_count() or 1
    return value


def default_job_timeout():
    """Wall-clock timeout from ``REPRO_JOB_TIMEOUT`` (None when off)."""
    from repro.config import envreg
    value = envreg.get("REPRO_JOB_TIMEOUT")
    return float(value) if value and value > 0 else None


def _run_one(job, timeout=None):
    """Execute one job; returns ``(job_hash, ok, payload)`` where the
    payload is a stats dict on success or a traceback string on error.
    Runs in pool workers and in the serial fallback alike. ``timeout``
    arms a wall-clock guard for jobs without their own
    ``wall_seconds`` (which :func:`execute` already enforces)."""
    from repro.harness.jobs import _WallClock
    try:
        with _WallClock(None if job.wall_seconds else timeout):
            stats = execute(job)
        return job.job_hash(), True, stats.as_dict()
    except Exception:
        return job.job_hash(), False, traceback.format_exc()


def _pool_worker(job, timeout, results):
    """Entry point of one dedicated worker process."""
    results.put(_run_one(job, timeout))


def _pool_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


class _Slot:
    """One in-flight job: its process and parent-side deadline."""

    __slots__ = ("proc", "job", "deadline", "timeout")

    def __init__(self, proc, job, deadline, timeout):
        self.proc = proc
        self.job = job
        self.deadline = deadline
        self.timeout = timeout


class ProcessPool:
    """Bounded fan-out of jobs over dedicated, supervised processes.

    Each submitted job runs in its own process (crash isolation: a
    worker that dies takes exactly one job with it, and its exit code
    is captured). :meth:`poll` resolves jobs three ways:

    * a result on the queue — success or a captured traceback;
    * a dead process without a result — ``worker died mid-job (exit
      code N)``, instead of the silent hang a ``multiprocessing.Pool``
      exhibits when a worker is SIGKILLed;
    * a job past its deadline — the process is terminated and the job
      resolves to a timeout error. The in-worker ``SIGALRM`` guard
      normally fires first (clean traceback); the parent-side kill is
      the backstop for workers too wedged to handle the signal.
    """

    #: Parent-side slack on top of the in-worker SIGALRM guard.
    GRACE = 2.0

    def __init__(self, n_jobs, job_timeout=None, ctx=None):
        self.n_jobs = max(1, int(n_jobs))
        self.job_timeout = job_timeout
        self.ctx = ctx or _pool_context()
        self.results = self.ctx.Queue()
        self.running = {}             # job_hash -> _Slot

    def free_slots(self):
        return self.n_jobs - len(self.running)

    def submit(self, job):
        """Start one job on a dedicated process (caller checks slots)."""
        timeout = job.wall_seconds or self.job_timeout
        proc = self.ctx.Process(
            target=_pool_worker,
            args=(job, None if job.wall_seconds else self.job_timeout,
                  self.results),
            daemon=True)
        proc.start()
        deadline = (time.monotonic() + timeout + self.GRACE) \
            if timeout else None
        self.running[job.job_hash()] = _Slot(proc, job, deadline,
                                             timeout)

    def _drain(self, out):
        while True:
            try:
                job_hash, ok, payload = self.results.get_nowait()
            except queue_mod.Empty:
                return
            slot = self.running.pop(job_hash, None)
            if slot is None:          # already resolved (late result)
                continue
            slot.proc.join()
            out.append((slot.job, ok, payload))

    def _reap(self, out):
        now = time.monotonic()
        for job_hash, slot in list(self.running.items()):
            if not slot.proc.is_alive():
                # The process may have posted its result between our
                # last drain and its exit; give the queue a moment to
                # deliver before declaring the worker dead.
                end = time.monotonic() + 0.25
                resolved = False
                while time.monotonic() < end:
                    self._drain(out)
                    if job_hash not in self.running:
                        resolved = True
                        break
                    time.sleep(0.01)
                if resolved:
                    continue
                slot = self.running.pop(job_hash)
                slot.proc.join()
                out.append((slot.job, False,
                            "worker died mid-job (exit code %s): %s"
                            % (slot.proc.exitcode, slot.job.label())))
            elif slot.deadline is not None and now > slot.deadline:
                self.running.pop(job_hash)
                slot.proc.terminate()
                slot.proc.join(1.0)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join()
                out.append((slot.job, False,
                            "job exceeded wall-clock timeout (%.1fs); "
                            "worker terminated: %s"
                            % (slot.timeout, slot.job.label())))

    def poll(self, block=0.0):
        """Collect finished jobs; returns ``[(job, ok, payload)]``.

        ``block``: seconds to wait for at least one completion (0 =
        return immediately with whatever is ready)."""
        out = []
        deadline = time.monotonic() + block
        while True:
            self._drain(out)
            self._reap(out)
            if out or time.monotonic() >= deadline:
                return out
            time.sleep(0.01)

    def close(self):
        """Terminate anything still running and release the queue."""
        for slot in self.running.values():
            slot.proc.terminate()
        for slot in self.running.values():
            slot.proc.join(1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join()
        self.running.clear()
        self.results.close()


def run_batch(jobs, n_jobs=None, cache=None, progress=None, strict=True,
              memo=_MEMO):
    """Resolve a batch of :class:`SimJob`; returns a :class:`BatchReport`.

    ``n_jobs``: worker processes (defaults to ``REPRO_JOBS``, serial if
    unset). ``cache``: a :class:`ResultCache`, ``None`` for the
    environment default, or ``False`` to disable disk caching.
    ``progress``: optional callable ``(done, total, job, source)`` with
    source one of ``memo``/``disk``/``run``/``error``. ``strict``:
    raise :class:`JobFailure` if any job failed (otherwise failed jobs
    resolve to ``None`` stats).
    """
    global _LAST_REPORT
    jobs = list(jobs)
    if cache is None:
        cache = ResultCache.from_env()
    n_jobs = n_jobs if n_jobs is not None else default_jobs()
    n_jobs = max(1, int(n_jobs))

    report = BatchReport(jobs)
    _LAST_REPORT = report
    if memo is None:
        memo = {}

    unique = {}                   # job_hash -> first SimJob instance
    for job in jobs:
        unique.setdefault(job.job_hash(), job)
    resolved = {}                 # job_hash -> SimStats
    failed = {}                   # job_hash -> traceback string
    done = [0]

    def _note(job, source):
        done[0] += 1
        if source == "error":
            _log.warning("[%d/%d] %s failed", done[0], len(unique),
                         job.label())
        else:
            _log.debug("[%d/%d] %s (%s)", done[0], len(unique),
                       job.label(), source)
        if progress is not None:
            progress(done[0], len(unique), job, source)

    pending = []
    for job_hash, job in unique.items():
        if job_hash in memo:
            resolved[job_hash] = memo[job_hash]
            report.memo_hits += 1
            _note(job, "memo")
            continue
        if cache:
            stats_dict = cache.get(job)
            if stats_dict is not None:
                stats = SimStats.from_dict(stats_dict)
                memo[job_hash] = stats
                resolved[job_hash] = stats
                report.disk_hits += 1
                _note(job, "disk")
                continue
        pending.append(job)

    def _absorb(job, job_hash, ok, payload):
        if ok:
            stats = SimStats.from_dict(payload)
            memo[job_hash] = stats
            resolved[job_hash] = stats
            report.executed += 1
            if cache:
                cache.put(job, payload)
            _note(job, "run")
        else:
            failed[job_hash] = payload
            _note(job, "error")

    if pending:
        _log.info("batch: %d job(s), %d cached (%d memo, %d disk), "
                  "simulating %d on %d worker(s)",
                  len(unique), report.memo_hits + report.disk_hits,
                  report.memo_hits, report.disk_hits, len(pending),
                  min(n_jobs, len(pending)))
        timeout = default_job_timeout()
        if n_jobs > 1 and len(pending) > 1:
            pool = ProcessPool(min(n_jobs, len(pending)),
                               job_timeout=timeout)
            try:
                backlog = iter(pending)
                next_job = next(backlog, None)
                while next_job is not None or pool.running:
                    while next_job is not None and pool.free_slots():
                        pool.submit(next_job)
                        next_job = next(backlog, None)
                    for job, ok, payload in pool.poll(block=0.1):
                        _absorb(job, job.job_hash(), ok, payload)
            finally:
                pool.close()
        else:
            for job in pending:
                job_hash, ok, payload = _run_one(job, timeout)
                _absorb(job, job_hash, ok, payload)

    for job in jobs:
        job_hash = job.job_hash()
        report.results[job] = resolved.get(job_hash)
        if job_hash in failed:
            report.errors[job] = failed[job_hash]
    if report.errors and strict:
        raise JobFailure(report.errors)
    return report


def submit(jobs, n_jobs=None, cache=None, progress=None, strict=True):
    """Run a batch and return ``{SimJob: SimStats}``.

    The convenience front door used by the experiment stack: layered
    caching included, duplicate jobs deduplicated, results keyed by the
    job objects so call sites index with the jobs they built.
    """
    return run_batch(jobs, n_jobs=n_jobs, cache=cache, progress=progress,
                     strict=strict).results


def last_report():
    """The :class:`BatchReport` of the most recent batch (or None)."""
    return _LAST_REPORT


def clear_memo():
    """Drop the in-process result memo (mainly for tests)."""
    _MEMO.clear()
