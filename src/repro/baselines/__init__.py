"""Squash-reuse schemes: the common interface and the RI baseline.

The paper's own mechanism (MSSR) lives in :mod:`repro.mssr`; it
implements the same :class:`ReuseScheme` interface, as does the
Register Integration baseline here. DCI is evaluated as single-stream
MSSR, exactly as in the paper (Section 4.1.2).
"""

from repro.baselines.base import ReuseScheme, NullScheme, ReuseResult
from repro.baselines.register_integration import RegisterIntegration
from repro.baselines.dir_reuse import DynamicInstructionReuse, DIRConfig

__all__ = ["ReuseScheme", "NullScheme", "ReuseResult",
           "RegisterIntegration", "DynamicInstructionReuse", "DIRConfig"]
