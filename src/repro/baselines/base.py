"""Interface between the core pipeline and a squash-reuse scheme.

The core owns all architectural machinery; a scheme only
(a) receives squashed state on branch mispredictions,
(b) may claim squashed instructions' physical registers (the core then
    marks them *reserved* and expects the scheme to free or transfer
    each exactly once), and
(c) answers reuse queries during rename.
"""


class ReuseResult:
    """A successful reuse decision returned by :meth:`ReuseScheme.try_reuse`.

    Two flavours:

    * *integration-style* (MSSR, RI): ``preg``/``rgid`` name the squashed
      instruction's destination mapping to adopt — the value still lives
      in the physical register file;
    * *value-style* (DIR): ``preg`` is None and ``value`` carries the
      stored result — the core allocates a fresh register and fills it.

    For loads, ``verify_addr`` requests the NoSQ-style verification
    re-execution with the logged address.
    """

    __slots__ = ("preg", "rgid", "value", "verify_addr", "tag")

    def __init__(self, preg, rgid, value=None, verify_addr=None, tag=None):
        self.preg = preg
        self.rgid = rgid
        self.value = value
        self.verify_addr = verify_addr
        self.tag = tag


class ReuseScheme:
    """Base class; every hook is optional."""

    name = "none"

    def __init__(self):
        self.core = None

    def attach(self, core):
        self.core = core

    @property
    def obs(self):
        """The core's observability bus (counters + event emission)."""
        return self.core.obs

    # -- squash-time hooks -------------------------------------------------
    def wants_preg(self, dyn):
        """Should the core keep this squashed instruction's dest preg alive?

        Called once per squashed, renamed, register-writing instruction
        during a *branch* squash. Answering True transfers ownership: the
        scheme must eventually call ``core.free_reserved_preg`` or hand
        the register to a reusing instruction.
        """
        return False

    def on_branch_squash(self, trigger, squashed, squashed_blocks):
        """A branch misprediction squashed ``squashed`` (renamed, oldest
        first) and the fetch blocks ``squashed_blocks``."""

    def on_replay_squash(self, trigger):
        """A memory-order replay squash occurred (not reuse-eligible)."""

    def on_wrong_path_block(self, block):
        """FTQ-sourced capture: one squashed prediction block (delivered
        or still pending), oldest first, during a branch squash. Only
        wired when the scheme sets ``ftq_capture`` and the frontend is
        decoupled; called *before* :meth:`on_branch_squash`."""

    # -- fetch/rename hooks --------------------------------------------------
    def on_fetch_block(self, block):
        """A new prediction block was fetched (MSSR reconvergence scan)."""

    def try_reuse(self, dyn):
        """Offered at rename before destination allocation.

        The current RAT already reflects all older instructions including
        earlier ones in this rename bundle. Return a :class:`ReuseResult`
        to reuse, or None to rename normally.
        """
        return None

    def on_rename(self, dyn, reused):
        """Called after every rename (reused or not)."""

    # -- lifecycle hooks ------------------------------------------------------
    def on_commit(self, dyn):
        """An instruction retired."""

    def on_preg_freed(self, preg):
        """The core returned ``preg`` to the free list (RI transitive
        invalidation trigger)."""

    def on_store_executed(self, addr, size):
        """A store computed its address (memory-hazard monitoring)."""

    def on_verify_fail(self, dyn):
        """A reused load failed value verification (pipeline is flushing)."""

    def emergency_release(self):
        """Free list exhausted (condition 5, Section 3.3.2): release the
        least-recent stream's registers. Returns True if any were freed."""
        return False

    def on_cycle(self, cycle):
        """Per-cycle maintenance."""

    def finalize(self):
        """End of simulation: publish scheme-specific stats."""


class NullScheme(ReuseScheme):
    """Baseline: no squash reuse."""

    name = "baseline"
