"""Dynamic Instruction Reuse (Sodani & Sohi, ISCA 1997) — scheme Sv.

The earliest squash-reuse proposal the paper compares against (Section
3.7): a PC-indexed *Reuse Buffer* stores each squashed instruction's
source operand **values** and its result. At rename, an instruction
whose PC hits the buffer and whose source registers are (a) already
ready and (b) hold exactly the stored values skips execution; the stored
result is written into a freshly allocated register.

Because entries carry values rather than register names, no physical
registers are retained and no invalidation is ever needed — but the
scheme inherits the table weaknesses the paper dissects in Section
3.7.1: one entry per (set, way) means *temporal references* (the same
static instruction squashed with different operands) overwrite each
other, and the reuse test can only fire when operands are ready at
rename, missing reuse of still-in-flight dependence chains.
"""

from repro.baselines.base import ReuseScheme, ReuseResult


class _DIREntry:
    __slots__ = ("pc", "src_values", "result", "is_load", "load_addr",
                 "load_size", "valid", "lru")

    def __init__(self):
        self.pc = -1
        self.src_values = ()
        self.result = 0
        self.is_load = False
        self.load_addr = None
        self.load_size = 0
        self.valid = False
        self.lru = 0


class DIRConfig:
    """Reuse Buffer geometry."""

    def __init__(self, num_sets=64, assoc=4):
        self.num_sets = num_sets
        self.assoc = assoc


class DynamicInstructionReuse(ReuseScheme):
    """Value-matching reuse buffer (DIR scheme Sv)."""

    name = "dir"
    needs_rgids = False

    def __init__(self, config=None):
        super().__init__()
        self.config = config or DIRConfig()
        self.num_sets = self.config.num_sets
        self.assoc = self.config.assoc
        self.sets = [[_DIREntry() for _ in range(self.assoc)]
                     for _ in range(self.num_sets)]
        self._tick = 0
        self.insertions = 0
        self.replacements = 0

    def _set_for(self, pc):
        return self.sets[(pc >> 2) % self.num_sets]

    # ------------------------------------------------------------------
    def on_branch_squash(self, trigger, squashed, squashed_blocks):
        values = self.core.regfile.values
        for dyn in squashed:
            inst = dyn.inst
            if (not dyn.renamed or not dyn.executed or not inst.writes_reg
                    or inst.is_branch or inst.is_store or dyn.verify_load):
                continue
            self._insert(dyn, tuple(values[p] for p in dyn.srcs_preg))

    def _insert(self, dyn, src_values):
        self._tick += 1
        ways = self._set_for(dyn.pc)
        victim = None
        for entry in ways:
            if entry.valid and entry.pc == dyn.pc:
                victim = entry          # temporal reference: overwrite
                break
        if victim is None:
            for entry in ways:
                if not entry.valid:
                    victim = entry
                    break
        if victim is None:
            victim = min(ways, key=lambda e: e.lru)
            self.replacements += 1
        victim.pc = dyn.pc
        victim.src_values = src_values
        victim.result = dyn.result
        victim.is_load = dyn.inst.is_load
        victim.load_addr = dyn.mem_addr if dyn.inst.is_load else None
        victim.load_size = dyn.mem_size if dyn.inst.is_load else 0
        victim.valid = True
        victim.lru = self._tick
        self.insertions += 1

    # ------------------------------------------------------------------
    def try_reuse(self, dyn):
        entry = None
        for candidate in self._set_for(dyn.pc):
            if candidate.valid and candidate.pc == dyn.pc:
                entry = candidate
                break
        if entry is None:
            return None
        if entry.is_load and entry.load_addr is None:
            return None
        self.obs.reuse_test(dyn)
        regfile = self.core.regfile
        # Value test: every source must be ready with the stored value.
        for preg, stored in zip(dyn.srcs_preg, entry.src_values):
            if not regfile.ready[preg] or regfile.values[preg] != stored:
                return None
        self._tick += 1
        entry.lru = self._tick
        verify_addr = entry.load_addr if entry.is_load else None
        return ReuseResult(None, None, value=entry.result,
                           verify_addr=verify_addr)

    def on_verify_fail(self, dyn):
        for ways in self.sets:
            for entry in ways:
                entry.valid = False
