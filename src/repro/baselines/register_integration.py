"""Register Integration (Roth & Sohi, MICRO 2000) — table-based squash reuse.

The comparison baseline of Sections 2.2.3/2.2.4 and Figure 12. Squashed,
executed instructions are inserted into a PC-indexed, PC-tagged
set-associative *reuse table*; each entry records the instruction's
source *physical register names* and its destination register (whose
value is retained in the PRF). At rename, an instruction whose PC hits
the table and whose current source physical registers match the entry's
is "integrated": it adopts the stored destination register and skips
execution.

The two structural weaknesses the paper highlights are modelled exactly:

* **table conflicts** — low associativity causes replacements that evict
  reusable results (per-set replacement counters feed Figure 3); and
* **transitive invalidation** — whenever a physical register is freed,
  every entry naming it as a source must be invalidated, which in turn
  frees that entry's destination register and may cascade.
"""

from repro.baselines.base import ReuseScheme, ReuseResult


class _RIEntry:
    __slots__ = ("pc", "src_pregs", "dest_preg", "is_load", "load_addr",
                 "load_size", "valid", "lru", "reserved")

    def __init__(self):
        self.pc = -1
        self.src_pregs = ()
        self.dest_preg = None
        self.is_load = False
        self.load_addr = None
        self.load_size = 0
        self.valid = False
        self.lru = 0
        self.reserved = False


class RegisterIntegration(ReuseScheme):
    """Reuse table with physical-register-name matching."""

    name = "ri"
    needs_rgids = False

    def __init__(self, config):
        super().__init__()
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.sets = [[_RIEntry() for _ in range(self.assoc)]
                     for _ in range(self.num_sets)]
        self._tick = 0
        self._pending = {}           # seq of squashed insts to claim
        self._src_index = {}         # preg -> set of entry ids sourcing it
        self._entries_by_id = {}     # id(entry) -> entry
        self.set_replacements = [0] * self.num_sets

    def attach(self, core):
        """Publish the per-set replacement counters immediately: Figure 3
        reads ``ri_set_replacements`` unconditionally, so the list must
        exist (all zeros included) even for runs that never replace."""
        super().attach(core)
        core.stats.ri_set_replacements = self.set_replacements

    # ------------------------------------------------------------------
    def _set_for(self, pc):
        return (pc >> 2) % self.num_sets

    def _lookup(self, pc):
        for entry in self.sets[self._set_for(pc)]:
            if entry.valid and entry.pc == pc:
                return entry
        return None

    # ------------------------------------------------------------------
    # Squash-time insertion
    # ------------------------------------------------------------------
    def on_branch_squash(self, trigger, squashed, squashed_blocks):
        self._pending = {}
        for dyn in squashed:
            if not dyn.renamed or not dyn.executed:
                continue
            inst = dyn.inst
            if (not inst.writes_reg or inst.is_branch or inst.is_store
                    or dyn.verify_load):
                continue
            self._pending[dyn.seq] = dyn

    def wants_preg(self, dyn):
        """Claim the register and insert the entry (the paper's RI keeps
        squashed results alive in the PRF exactly the same way)."""
        if dyn.seq not in self._pending:
            return False
        self._insert(dyn)
        return True

    def _insert(self, dyn):
        ways = self.sets[self._set_for(dyn.pc)]
        self._tick += 1
        victim = None
        for entry in ways:
            if entry.valid and entry.pc == dyn.pc:
                victim = entry  # same static instruction: replace in place
                break
        if victim is None:
            for entry in ways:
                if not entry.valid:
                    victim = entry
                    break
        if victim is None:
            victim = min(ways, key=lambda e: e.lru)
            self.obs.ri_replacement()
            self.set_replacements[self._set_for(dyn.pc)] += 1
        if victim.valid:
            self._invalidate_entry(victim)

        victim.pc = dyn.pc
        victim.src_pregs = dyn.srcs_preg
        victim.dest_preg = dyn.dest_preg
        victim.is_load = dyn.inst.is_load
        victim.load_addr = dyn.mem_addr if dyn.inst.is_load else None
        victim.load_size = dyn.mem_size if dyn.inst.is_load else 0
        victim.valid = True
        victim.reserved = True
        victim.lru = self._tick
        for preg in victim.src_pregs:
            self._src_index.setdefault(preg, set()).add(id(victim))
        self._entries_by_id[id(victim)] = victim
        self.obs.ri_insertion()

    # ------------------------------------------------------------------
    # Rename-time integration
    # ------------------------------------------------------------------
    def try_reuse(self, dyn):
        entry = self._lookup(dyn.pc)
        if entry is None or not entry.reserved:
            return None
        self.obs.reuse_test(dyn)
        if entry.src_pregs != dyn.srcs_preg:
            return None
        verify_addr = None
        if entry.is_load:
            verify_addr = entry.load_addr
        self._tick += 1
        entry.lru = self._tick
        # Transfer the register to the integrating instruction and drop
        # the entry (its result now lives on the correct path).
        self._release_entry(entry, free_preg=False)
        return ReuseResult(entry.dest_preg, None, verify_addr=verify_addr)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _release_entry(self, entry, free_preg):
        entry.valid = False
        was_reserved = entry.reserved
        entry.reserved = False
        for preg in entry.src_pregs:
            refs = self._src_index.get(preg)
            if refs:
                refs.discard(id(entry))
        entry.src_pregs = ()
        if free_preg and was_reserved:
            # Freeing the destination may cascade (transitive
            # invalidation) via on_preg_freed.
            self.core.free_reserved_preg(entry.dest_preg)

    def _invalidate_entry(self, entry):
        self.obs.ri_invalidation()
        self._release_entry(entry, free_preg=True)

    def on_preg_freed(self, preg):
        """Transitive invalidation: entries sourcing a freed register are
        stale and must be dropped (freeing their own registers, which may
        recurse through this hook)."""
        refs = self._src_index.pop(preg, None)
        if not refs:
            return
        for entry_id in list(refs):
            entry = self._entries_by_id.get(entry_id)
            if entry is not None and entry.valid:
                self._invalidate_entry(entry)

    def emergency_release(self):
        """Free-list pressure: drop the globally least-recent entry."""
        victim = None
        for ways in self.sets:
            for entry in ways:
                if entry.valid and entry.reserved:
                    if victim is None or entry.lru < victim.lru:
                        victim = entry
        if victim is None:
            return False
        self._invalidate_entry(victim)
        return True

    def on_verify_fail(self, dyn):
        """Flush all entries on a load-verification failure."""
        for ways in self.sets:
            for entry in ways:
                if entry.valid:
                    self._release_entry(entry, free_preg=True)

    def finalize(self):
        self.core.stats.ri_set_replacements = list(self.set_replacements)
