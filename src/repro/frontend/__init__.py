"""Instruction fetch frontend: branch predictors and block-based fetch."""

from repro.frontend.predictors import (
    BranchPredictor,
    BimodalPredictor,
    GSharePredictor,
    build_predictor,
)
from repro.frontend.tage import TagePredictor
from repro.frontend.tage_scl import TageSCL
from repro.frontend.loop_predictor import LoopPredictor
from repro.frontend.statistical_corrector import StatisticalCorrector
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.fetch import FetchUnit, PredictionBlock

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "TagePredictor",
    "TageSCL",
    "LoopPredictor",
    "StatisticalCorrector",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "FetchUnit",
    "PredictionBlock",
    "build_predictor",
]
