"""Return Address Stack with checkpoint-based misprediction repair.

The fetch unit pushes on calls (``jal``/``jalr`` writing ``ra``) and pops
on returns (``jalr`` through ``ra``). Because pushes/pops happen
speculatively at fetch, each in-flight control instruction captures a
snapshot (top-of-stack index plus the would-be-clobbered entry), restored
on squash — the standard low-cost RAS repair scheme.
"""


class RasSnapshot:
    __slots__ = ("top", "saved_value")

    def __init__(self, top, saved_value):
        self.top = top
        self.saved_value = saved_value


class ReturnAddressStack:
    """Circular return-address stack."""

    def __init__(self, depth=32):
        self.depth = depth
        self.stack = [0] * depth
        self.top = 0  # index of the next free slot

    def snapshot(self):
        """Capture repair state *before* this instruction's push/pop."""
        return RasSnapshot(self.top, self.stack[self.top % self.depth])

    def restore(self, snap):
        self.top = snap.top
        self.stack[snap.top % self.depth] = snap.saved_value

    def push(self, return_pc):
        self.stack[self.top % self.depth] = return_pc
        self.top += 1

    def pop(self):
        """Predicted return target (0 when empty — caller treats as miss)."""
        if self.top == 0:
            return None
        self.top -= 1
        return self.stack[self.top % self.depth]

    def peek(self):
        if self.top == 0:
            return None
        return self.stack[(self.top - 1) % self.depth]
