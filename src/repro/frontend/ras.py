"""Return Address Stack with checkpoint-based misprediction repair.

The fetch unit pushes on calls (``jal``/``jalr`` writing ``ra``) and pops
on returns (``jalr`` through ``ra``). Because pushes/pops happen
speculatively at fetch, each in-flight control instruction captures a
snapshot (top-of-stack pointer, occupancy and the would-be-clobbered
entry), restored on squash — the standard low-cost RAS repair scheme.

Overflow wraps: a push beyond ``depth`` overwrites the *oldest* entry
(circular storage) while the occupancy count saturates at ``depth``, so
a call chain deeper than the stack keeps the newest ``depth`` return
addresses live and predicts them all correctly on the way back out.
Underflow is explicit: once the (bounded) occupancy is exhausted, pop
reports a miss (``None``) instead of walking back into slots whose
contents were overwritten by the wrap — the old unbounded top-of-stack
pointer silently returned that stale garbage as a "prediction".
"""


class RasSnapshot:
    __slots__ = ("top", "count", "saved_value")

    def __init__(self, top, count, saved_value):
        self.top = top
        self.count = count
        self.saved_value = saved_value


class ReturnAddressStack:
    """Circular return-address stack with bounded occupancy."""

    def __init__(self, depth=32):
        self.depth = depth
        self.stack = [0] * depth
        self.top = 0    # index of the next free slot (monotonic)
        self.count = 0  # valid entries, saturating at depth

    def snapshot(self):
        """Capture repair state *before* this instruction's push/pop."""
        return RasSnapshot(self.top, self.count,
                           self.stack[self.top % self.depth])

    def restore(self, snap):
        self.top = snap.top
        self.count = snap.count
        self.stack[snap.top % self.depth] = snap.saved_value

    def push(self, return_pc):
        self.stack[self.top % self.depth] = return_pc
        self.top += 1
        if self.count < self.depth:
            self.count += 1

    def pop(self):
        """Predicted return target (None on underflow — caller treats
        it as a miss and falls back to the BTB)."""
        if self.count == 0:
            return None
        self.top -= 1
        self.count -= 1
        return self.stack[self.top % self.depth]

    def peek(self):
        if self.count == 0:
            return None
        return self.stack[(self.top - 1) % self.depth]
