"""TAGE direction predictor (Seznec-style, simplified).

A base bimodal table plus ``num_tables`` partially-tagged tables indexed
with geometrically increasing global-history lengths. The provider is the
longest-history hit; allocation on mispredictions steals a not-useful
entry from a longer table. The global history is an unbounded Python int
(bit 0 = most recent), folded down to index/tag widths on access — slower
than hardware folded-history registers but bit-equivalent.
"""

from repro.frontend.predictors import BranchPredictor


def _fold(value, length, bits):
    """XOR-fold the low ``length`` bits of ``value`` into ``bits`` bits."""
    if bits <= 0 or length <= 0:
        return 0
    value &= (1 << length) - 1
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class _TageEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self):
        self.tag = 0
        self.ctr = 4  # 3-bit counter, 4 = weakly taken
        self.useful = 0


class TagePredictor(BranchPredictor):
    """TAgged GEometric history length predictor."""

    name = "tage"

    def __init__(self, num_tables=6, base_entries=8192, table_entries=1024,
                 min_history=4, max_history=128, tag_bits=10,
                 useful_reset_period=1 << 18):
        super().__init__()
        self.num_tables = num_tables
        self.base_entries = base_entries
        self.table_entries = table_entries
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.useful_reset_period = useful_reset_period
        # Geometric history lengths.
        self.hist_lengths = []
        for i in range(num_tables):
            if num_tables == 1:
                length = max_history
            else:
                ratio = (max_history / float(min_history)) ** (
                    i / float(num_tables - 1))
                length = int(round(min_history * ratio))
            self.hist_lengths.append(max(1, length))
        self.base = [2] * base_entries  # 2-bit counters, 2 = weakly taken
        self.tables = [[_TageEntry() for _ in range(table_entries)]
                       for _ in range(num_tables)]
        self.use_alt_on_na = 8  # 4-bit counter, >=8 prefers altpred on weak
        self._update_count = 0
        self._alloc_seed = 0xACE1
        # Folded-history memo, one per table: masked history -> the
        # (index fold, tag fold, shifted second tag fold) triple. Real
        # hardware keeps incrementally-updated folded registers; that
        # uses a *different* fold function than our block-XOR `_fold`,
        # so to stay bit-identical we memoize instead — loops revisit
        # the same few history values, so the hit rate is high.
        self._hist_masks = [(1 << n) - 1 for n in self.hist_lengths]
        self._fold_caches = [{} for _ in range(num_tables)]
        self._fold_cache_limit = 1 << 16

    # ------------------------------------------------------------------
    def _base_index(self, pc):
        return (pc >> 2) % self.base_entries

    def _folds(self, table, history):
        """Memoized ``(index fold, tag fold, tag fold2 << 1)`` for one
        table. ``_fold`` masks its input to the history length first, so
        keying the cache on the masked history is exact."""
        masked = history & self._hist_masks[table]
        cache = self._fold_caches[table]
        folds = cache.get(masked)
        if folds is None:
            length = self.hist_lengths[table]
            folds = (_fold(masked, length, 10),
                     _fold(masked, length, self.tag_bits),
                     _fold(masked, length, self.tag_bits - 1) << 1)
            if len(cache) >= self._fold_cache_limit:
                cache.clear()
            cache[masked] = folds
        return folds

    def _index(self, pc, table, history):
        folded = self._folds(table, history)[0]
        return ((pc >> 2) ^ (pc >> 6) ^ folded ^ (table << 3)) \
            % self.table_entries

    def _tag(self, pc, table, history):
        _, folded, folded2 = self._folds(table, history)
        return ((pc >> 2) ^ folded ^ folded2) & self.tag_mask

    def _find(self, pc, history):
        """Returns (provider_table, alt_table); -1 means the base table."""
        provider = alt = -1
        for table in range(self.num_tables - 1, -1, -1):
            entry = self.tables[table][self._index(pc, table, history)]
            if entry.tag == self._tag(pc, table, history):
                if provider < 0:
                    provider = table
                else:
                    alt = table
                    break
        return provider, alt

    def _table_pred(self, pc, table, history):
        if table < 0:
            return self.base[self._base_index(pc)] >= 2
        entry = self.tables[table][self._index(pc, table, history)]
        return entry.ctr >= 4

    def _lookup(self, pc):
        # Single-pass restructuring of _find + _table_pred: each table's
        # (index, tag) pair is computed exactly once, and the provider /
        # alt entries are kept instead of being re-looked-up. Produces
        # the same (taken, meta) as the original composition.
        history = self.history
        pc2 = pc >> 2
        idx_base = pc2 ^ (pc >> 6)
        tables = self.tables
        num_entries = self.table_entries
        tag_mask = self.tag_mask
        provider = alt = -1
        provider_entry = alt_entry = None
        for table in range(self.num_tables - 1, -1, -1):
            idx_fold, tag_fold, tag_fold2 = self._folds(table, history)
            entry = tables[table][
                (idx_base ^ idx_fold ^ (table << 3)) % num_entries]
            if entry.tag == (pc2 ^ tag_fold ^ tag_fold2) & tag_mask:
                if provider < 0:
                    provider = table
                    provider_entry = entry
                else:
                    alt = table
                    alt_entry = entry
                    break
        if provider < 0:
            base_ctr = self.base[pc2 % self.base_entries]
            taken = provider_pred = alt_pred = base_ctr >= 2
            # Map the 2-bit base counter onto the 3-bit provider range
            # so confidence consumers see one weak region (3, 4).
            provider_ctr = (0, 3, 4, 7)[base_ctr]
        else:
            provider_ctr = provider_entry.ctr
            provider_pred = provider_ctr >= 4
            alt_pred = (alt_entry.ctr >= 4 if alt >= 0
                        else self.base[pc2 % self.base_entries] >= 2)
            taken = provider_pred
            if provider_entry.useful == 0 and provider_ctr in (3, 4) \
                    and self.use_alt_on_na >= 8:
                taken = alt_pred
        return taken, (provider, alt, provider_pred, alt_pred,
                       provider_ctr)

    # ------------------------------------------------------------------
    @staticmethod
    def _bump(ctr, taken, max_value):
        if taken:
            return min(ctr + 1, max_value)
        return max(ctr - 1, 0)

    def update(self, pc, taken, meta):
        history = meta.history
        provider, alt, provider_pred, alt_pred = meta.extra[:4]
        mispredicted = meta.pred_taken != taken

        # use_alt_on_na training: when the provider was weak and provider
        # and alt disagreed, learn which one to trust.
        if provider >= 0 and provider_pred != alt_pred:
            entry = self.tables[provider][self._index(pc, provider, history)]
            if entry.ctr in (3, 4) and entry.useful == 0:
                if alt_pred == taken:
                    self.use_alt_on_na = min(self.use_alt_on_na + 1, 15)
                else:
                    self.use_alt_on_na = max(self.use_alt_on_na - 1, 0)

        # Train the provider (and base when it provided).
        if provider >= 0:
            idx = self._index(pc, provider, history)
            entry = self.tables[provider][idx]
            entry.ctr = self._bump(entry.ctr, taken, 7)
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    entry.useful = min(entry.useful + 1, 3)
                else:
                    entry.useful = max(entry.useful - 1, 0)
        else:
            idx = self._base_index(pc)
            self.base[idx] = self._bump(self.base[idx], taken, 3)

        # Allocate a longer-history entry on misprediction.
        if mispredicted and provider < self.num_tables - 1:
            self._allocate(pc, taken, history, provider)

        self._update_count += 1
        if self._update_count % self.useful_reset_period == 0:
            self._decay_useful()

    def _allocate(self, pc, taken, history, provider):
        # Pseudo-random start table among candidates (LFSR, deterministic).
        self._alloc_seed = ((self._alloc_seed >> 1)
                            ^ (-(self._alloc_seed & 1) & 0xB400)) & 0xFFFF
        candidates = list(range(provider + 1, self.num_tables))
        start = self._alloc_seed % len(candidates)
        rotated = candidates[start:] + candidates[:start]
        for table in rotated:
            idx = self._index(pc, table, history)
            entry = self.tables[table][idx]
            if entry.useful == 0:
                entry.tag = self._tag(pc, table, history)
                entry.ctr = 4 if taken else 3
                entry.useful = 0
                return
        # Nothing free: age everything we considered.
        for table in candidates:
            entry = self.tables[table][self._index(pc, table, history)]
            entry.useful = max(entry.useful - 1, 0)

    def _decay_useful(self):
        for table in self.tables:
            for entry in table:
                entry.useful >>= 1
