"""Statistical corrector (the SC in TAGE-SC-L, simplified GEHL flavour).

A small set of perceptron-like tables vote on whether to *invert* the
TAGE prediction. Each table holds signed counters indexed by PC hashed
with a different history length; the signed sum (with the TAGE prediction
as a bias term) overrides TAGE when it is both confident and disagrees.

The confidence bar is *dynamic* (Seznec's threshold adaptation): every
commit where the corrector disagreed with TAGE bumps a saturating
counter up (SC was wrong) or down (SC was right), and the threshold
moves by one when the counter saturates. Without this, a branch whose
short-history counters are dragged by correlated neighbours can pin
the sum just past a fixed threshold and veto a perfectly confident —
and correct — TAGE prediction forever.
"""

from repro.frontend.tage import _fold


class StatisticalCorrector:
    """GEHL-style corrector over the global history."""

    #: Dynamic-threshold bounds and adaptation-counter saturation.
    MIN_THRESHOLD = 4
    MAX_THRESHOLD = 31
    TC_SATURATE = 4

    def __init__(self, num_tables=3, table_entries=1024,
                 hist_lengths=(0, 8, 21), counter_max=31, threshold=6):
        if len(hist_lengths) != num_tables:
            raise ValueError("need one history length per table")
        self.num_tables = num_tables
        self.table_entries = table_entries
        self.hist_lengths = hist_lengths
        self.counter_max = counter_max
        self.tables = [[0] * table_entries for _ in range(num_tables)]
        self.threshold = threshold
        self._tc = 0

    def _index(self, pc, table, history):
        folded = _fold(history, self.hist_lengths[table], 10)
        return ((pc >> 2) ^ folded ^ (table * 0x9E5)) % self.table_entries

    def _sum(self, pc, history, tage_taken):
        total = 8 if tage_taken else -8  # TAGE bias term
        for table in range(self.num_tables):
            total += self.tables[table][self._index(pc, table, history)]
        return total

    # ------------------------------------------------------------------
    def predict(self, pc, history, tage_taken, tage_weak=False):
        """Return (use_sc, taken, sum) for the branch at ``pc``.

        ``tage_weak`` flags a low-confidence TAGE prediction (provider
        counter in the weak region): the corrector then vetoes TAGE at
        half its usual confidence bar, since the provider carries
        little conviction worth defending.
        """
        total = self._sum(pc, history, tage_taken)
        taken = total >= 0
        bar = self.threshold
        if tage_weak:
            bar = max(1, bar // 2)
        use_sc = taken != tage_taken and abs(total) >= bar
        return use_sc, taken, total

    def update(self, pc, history, tage_taken, taken, total):
        """Train at commit when the sum was weak or the outcome was missed."""
        sc_taken = total >= 0
        if sc_taken != tage_taken:
            # Threshold adaptation on disagreements: raise the bar when
            # the corrector argues and loses, lower it when it wins.
            self._tc += 1 if sc_taken != taken else -1
            if self._tc >= self.TC_SATURATE:
                self._tc = 0
                self.threshold = min(self.MAX_THRESHOLD, self.threshold + 1)
            elif self._tc <= -self.TC_SATURATE:
                self._tc = 0
                self.threshold = max(self.MIN_THRESHOLD, self.threshold - 1)
        if sc_taken != taken or abs(total) <= self.threshold * 4:
            delta = 1 if taken else -1
            for table in range(self.num_tables):
                idx = self._index(pc, table, history)
                counter = self.tables[table][idx] + delta
                counter = max(-self.counter_max - 1,
                              min(self.counter_max, counter))
                self.tables[table][idx] = counter
