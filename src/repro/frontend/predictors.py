"""Direction predictor interface plus the bimodal and gshare predictors.

All predictors share one contract:

* :meth:`predict` returns ``(taken, meta)`` and *speculatively* pushes the
  prediction into the global history, so back-to-back in-flight branches
  see each other's (predicted) outcomes — as real frontends do.
* ``meta`` is opaque state captured at prediction time; the core hands it
  back to :meth:`update` when the branch *commits* (training) and to
  :meth:`recover` when the branch turns out mispredicted (history repair:
  the pre-prediction history is restored and the actual outcome pushed).
"""


class PredictorMeta:
    """Prediction-time snapshot carried with each in-flight branch."""

    __slots__ = ("history", "pred_taken", "extra")

    def __init__(self, history, pred_taken, extra=None):
        self.history = history
        self.pred_taken = pred_taken
        self.extra = extra


class BranchPredictor:
    """Abstract conditional-branch direction predictor."""

    name = "abstract"

    #: History kept per push. Every consumer folds at most 128 history
    #: bits (TAGE max_history) — without a cap the Python-int history
    #: grows by one bit per branch and every shift/mask touches all of
    #: it, so long runs slow down linearly. 1024 bits is far above any
    #: consumer's window, making the truncation unobservable.
    HISTORY_BITS = 1024

    def __init__(self):
        # Global history as an int bit-vector; bit0 is the most recent
        # outcome. Subclasses that don't use history ignore it.
        self.history = 0
        self._history_mask = (1 << self.HISTORY_BITS) - 1

    # -- history helpers -------------------------------------------------
    def _push_history(self, taken):
        self.history = ((self.history << 1)
                        | (1 if taken else 0)) & self._history_mask

    def snapshot_history(self):
        return self.history

    def restore_history(self, history):
        self.history = history

    # -- main interface ---------------------------------------------------
    def predict(self, pc):
        """Predict direction for the branch at ``pc``.

        Returns ``(taken, meta)`` and speculatively updates history.
        """
        taken, extra = self._lookup(pc)
        meta = PredictorMeta(self.history, taken, extra)
        self._push_history(taken)
        return taken, meta

    def update(self, pc, taken, meta):
        """Train with the committed outcome."""
        raise NotImplementedError

    def recover(self, taken, meta):
        """Repair speculative history after a misprediction of this branch."""
        self.history = meta.history
        self._push_history(taken)

    def _lookup(self, pc):
        """Return (taken, extra) without touching history."""
        raise NotImplementedError


def _counter_update(counter, taken, max_value):
    if taken:
        return min(counter + 1, max_value)
    return max(counter - 1, 0)


class BimodalPredictor(BranchPredictor):
    """Classic per-PC 2-bit saturating counter table."""

    name = "bimodal"

    def __init__(self, num_entries=4096, counter_bits=2):
        super().__init__()
        self.num_entries = num_entries
        self.max_counter = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.table = [self.threshold] * num_entries

    def _index(self, pc):
        return (pc >> 2) % self.num_entries

    def _lookup(self, pc):
        return self.table[self._index(pc)] >= self.threshold, None

    def update(self, pc, taken, meta):
        idx = self._index(pc)
        self.table[idx] = _counter_update(self.table[idx], taken,
                                          self.max_counter)


class GSharePredictor(BranchPredictor):
    """Two-level predictor hashing PC with global history."""

    name = "gshare"

    def __init__(self, num_entries=16384, history_bits=12, counter_bits=2):
        super().__init__()
        self.num_entries = num_entries
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.max_counter = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.table = [self.threshold] * num_entries

    def _index(self, pc, history):
        return ((pc >> 2) ^ (history & self.history_mask)) % self.num_entries

    def _lookup(self, pc):
        return (self.table[self._index(pc, self.history)] >= self.threshold,
                None)

    def update(self, pc, taken, meta):
        # Index with the history *at prediction time* (stored in meta).
        idx = self._index(pc, meta.history)
        self.table[idx] = _counter_update(self.table[idx], taken,
                                          self.max_counter)


class AlwaysTakenPredictor(BranchPredictor):
    """Degenerate predictor for unit tests."""

    name = "always-taken"

    def _lookup(self, pc):
        return True, None

    def update(self, pc, taken, meta):
        pass


def build_predictor(kind, **kwargs):
    """Factory used by the core config (``bimodal``/``gshare``/``tage-scl``)."""
    from repro.frontend.tage import TagePredictor
    from repro.frontend.tage_scl import TageSCL

    builders = {
        "bimodal": BimodalPredictor,
        "gshare": GSharePredictor,
        "tage": TagePredictor,
        "tage-scl": TageSCL,
        "always-taken": AlwaysTakenPredictor,
    }
    if kind not in builders:
        raise ValueError("unknown predictor kind %r" % kind)
    return builders[kind](**kwargs)
