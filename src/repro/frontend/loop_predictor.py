"""Loop termination predictor (the L in TAGE-SC-L, simplified).

Tracks, per branch PC, the trip count of loop-closing branches. Once the
same trip count has been observed several times in a row (high
confidence), the predictor can override the main predictor on the final,
otherwise-mispredicted exit iteration.

Entries record the loop *body direction* (``dir``): compilers emit both
polarities — backward branches taken around the body and not-taken on
exit, and forward exit-checks not-taken around the body and taken on
exit. A polarity-blind counter degenerates on the second kind (every
body iteration looks like a trip-1 "exit", which the entry then
confidently — and wrongly — predicts at the real exit).

Speculative iteration counts are maintained at predict time and repaired
on misprediction recovery; the architectural trip statistics are only
trained at commit.
"""


class _LoopEntry:
    __slots__ = ("tag", "dir", "trip", "commit_count", "spec_count",
                 "confidence")

    def __init__(self):
        self.tag = -1
        self.dir = True
        self.trip = 0
        self.commit_count = 0
        self.spec_count = 0
        self.confidence = 0


class LoopPredictor:
    """Confident-trip-count loop predictor."""

    CONFIDENT = 3

    def __init__(self, num_entries=128, max_trip=1 << 14):
        self.num_entries = num_entries
        self.max_trip = max_trip
        self.entries = [_LoopEntry() for _ in range(num_entries)]

    def _entry(self, pc):
        entry = self.entries[(pc >> 2) % self.num_entries]
        return entry if entry.tag == pc else None

    # ------------------------------------------------------------------
    def predict(self, pc):
        """Return (valid, taken) and advance the speculative count."""
        valid, taken, _ckpt = self.predict_spec(pc)
        return valid, taken

    def predict_spec(self, pc):
        """Like :meth:`predict` but also returns a checkpoint for
        :meth:`unwind` — ``(index, tag, spec_count before this
        prediction)``, or None when no confident entry was advanced.

        Entries with ``trip < 2`` never predict: a "loop" whose body
        runs zero times is just a biased branch, and counting adds
        nothing over the main predictor."""
        entry = self._entry(pc)
        if entry is None or entry.confidence < self.CONFIDENT \
                or entry.trip < 2:
            return False, False, None
        ckpt = ((pc >> 2) % self.num_entries, entry.tag, entry.spec_count)
        in_body = entry.spec_count + 1 < entry.trip
        if in_body:
            entry.spec_count += 1
            taken = entry.dir
        else:
            entry.spec_count = 0
            taken = not entry.dir
        return True, taken, ckpt

    def unwind(self, ckpt):
        """Roll back one speculative advance (squashed prediction).

        Unwinds must be applied youngest-prediction-first; the tag
        guard skips entries reallocated since the checkpoint."""
        if ckpt is None:
            return
        idx, tag, spec_count = ckpt
        entry = self.entries[idx]
        if entry.tag == tag:
            entry.spec_count = spec_count

    def resolve(self, pc, taken, ckpt):
        """Resynchronise the speculative count at a mispredicted branch.

        Called after every *younger* squashed prediction has been
        unwound, so the entry holds this branch's pre-prediction count
        (``ckpt``); redo its speculative advance with the actual
        outcome. Surviving older in-flight iterations stay counted —
        unlike a blunt ``spec = commit`` resync, which would forget
        them and desynchronise every later exit prediction."""
        entry = self._entry(pc)
        if entry is None:
            return
        if ckpt is not None:
            _idx, tag, spec_count = ckpt
            if entry.tag == tag:
                entry.spec_count = \
                    spec_count + 1 if taken == entry.dir else 0
        elif taken != entry.dir:
            # No confident entry at predict time, but an architectural
            # loop exit still resets the iteration count.
            entry.spec_count = 0

    def update(self, pc, taken):
        """Train with a committed outcome of the branch at ``pc``."""
        idx = (pc >> 2) % self.num_entries
        entry = self.entries[idx]
        if entry.tag != pc:
            # Allocate only when losing entries are stale (no confidence).
            if entry.confidence == 0:
                entry.tag = pc
                entry.dir = taken   # first outcome is assumed body-wards
                entry.trip = 0
                entry.commit_count = 1
                entry.spec_count = 0
                entry.confidence = 0
            else:
                entry.confidence -= 1
            return
        if taken == entry.dir:
            entry.commit_count += 1
            if entry.commit_count >= self.max_trip:
                # Not a countable loop; poison the entry.
                entry.tag = -1
                entry.confidence = 0
        else:
            if entry.commit_count == 0 and entry.trip <= 1:
                # Consecutive exits with no body in between: the
                # polarity guess was wrong. Flip it and restart
                # counting, treating this outcome as the first body
                # iteration of the re-oriented loop.
                entry.dir = taken
                entry.trip = 0
                entry.commit_count = 1
                entry.spec_count = 0
                entry.confidence = 0
                return
            observed = entry.commit_count + 1
            if observed == entry.trip:
                entry.confidence = min(entry.confidence + 1, 7)
            else:
                entry.trip = observed
                entry.confidence = 0
            entry.commit_count = 0
            # Deliberately leave spec_count alone: the predict path
            # already reset it when the exit was *predicted*, and the
            # next execution's iterations may be in flight by the time
            # the exit commits.
