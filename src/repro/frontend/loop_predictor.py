"""Loop termination predictor (the L in TAGE-SC-L, simplified).

Tracks, per branch PC, the trip count of loop-closing branches. Once the
same trip count has been observed several times in a row (high
confidence), the predictor can override the main predictor on the final,
otherwise-mispredicted exit iteration.

Speculative iteration counts are maintained at predict time and repaired
on misprediction recovery; the architectural trip statistics are only
trained at commit.
"""


class _LoopEntry:
    __slots__ = ("tag", "trip", "commit_count", "spec_count", "confidence")

    def __init__(self):
        self.tag = -1
        self.trip = 0
        self.commit_count = 0
        self.spec_count = 0
        self.confidence = 0


class LoopPredictor:
    """Confident-trip-count loop predictor."""

    CONFIDENT = 3

    def __init__(self, num_entries=128, max_trip=1 << 14):
        self.num_entries = num_entries
        self.max_trip = max_trip
        self.entries = [_LoopEntry() for _ in range(num_entries)]

    def _entry(self, pc):
        entry = self.entries[(pc >> 2) % self.num_entries]
        return entry if entry.tag == pc else None

    # ------------------------------------------------------------------
    def predict(self, pc):
        """Return (valid, taken) and advance the speculative count."""
        entry = self._entry(pc)
        if entry is None or entry.confidence < self.CONFIDENT:
            return False, False
        taken = entry.spec_count + 1 < entry.trip
        if taken:
            entry.spec_count += 1
        else:
            entry.spec_count = 0
        return True, taken

    def recover(self, pc):
        """Repair the speculative count after a squash involving ``pc``."""
        entry = self._entry(pc)
        if entry is not None:
            entry.spec_count = entry.commit_count

    def update(self, pc, taken):
        """Train with a committed outcome of the branch at ``pc``."""
        idx = (pc >> 2) % self.num_entries
        entry = self.entries[idx]
        if entry.tag != pc:
            # Allocate only when losing entries are stale (no confidence).
            if entry.confidence == 0:
                entry.tag = pc
                entry.trip = 0
                entry.commit_count = 0
                entry.spec_count = 0
                entry.confidence = 0
            else:
                entry.confidence -= 1
                return
        if taken:
            entry.commit_count += 1
            if entry.commit_count >= self.max_trip:
                # Not a countable loop; poison the entry.
                entry.tag = -1
                entry.confidence = 0
        else:
            observed = entry.commit_count + 1
            if observed == entry.trip:
                entry.confidence = min(entry.confidence + 1, 7)
            else:
                entry.trip = observed
                entry.confidence = 0
            entry.commit_count = 0
            entry.spec_count = 0
