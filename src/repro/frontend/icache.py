"""Instruction-cache latency model for the decoupled fetch pipeline.

A deliberately small model: a direct-mapped :class:`repro.mem.cache.
Cache` (assoc=1) of ``lines`` 64-byte lines over the code image — the
same cache class that models every data-side level. The fetch pipeline
looks up one prediction block per access (:meth:`InstructionCache.
access`); if every line the block spans is resident the access is a hit
and costs nothing beyond the baseline ``frontend.fetch_latency``,
otherwise the missing lines are filled and the block's delivery is
delayed by ``miss_latency`` extra cycles. Wrong-path fetches probe and
fill the cache exactly like correct-path ones — wrong-path prefetch
warming the icache is a real (and here faithfully modelled) side effect
of deep speculation.

The model is off by default (``frontend.icache_lines = 0`` builds no
cache at all), so default-config runs are bit-identical with or without
this module. With ``mem.model = "ported"`` this standalone icache is
replaced by :class:`repro.mem.ports.PortedICache`, which serves the
same ``access(start_pc, end_pc, cycle)`` contract from an L1I behind
the shared L2.
"""

from repro.mem.cache import Cache

#: Line size in bytes (fixed; 16 four-byte instructions).
LINE_BYTES = 64
_LINE_SHIFT = 6


class InstructionCache:
    """Direct-mapped icache: tag array only (contents come from the
    program image; only presence/latency is modelled).

    ``lines`` must be a power of two; ``miss_latency`` is the extra
    delay charged when an access misses. ``obs`` is the run's
    :class:`~repro.obs.bus.Observability` bus (every access emits an
    ``icache-access`` event and maintains the ``icache_accesses`` /
    ``icache_misses`` counters).
    """

    __slots__ = ("lines", "miss_latency", "obs", "cache")

    def __init__(self, lines, miss_latency, obs=None):
        if lines <= 0 or lines & (lines - 1):
            raise ValueError("icache lines must be a power of two, got %r"
                             % (lines,))
        self.lines = lines
        self.miss_latency = miss_latency
        self.obs = obs
        self.cache = Cache("L1I", lines * LINE_BYTES, 1, LINE_BYTES,
                           latency=miss_latency)

    def access(self, start_pc, end_pc, cycle=0):
        """Probe every line in ``[start_pc, end_pc]``; returns the extra
        delay (0 on a full hit, ``miss_latency`` otherwise). Missing
        lines are filled. ``cycle`` is accepted for interface parity
        with the ported icache (this synchronous model ignores it)."""
        cache = self.cache
        hit = True
        addr = (start_pc >> _LINE_SHIFT) << _LINE_SHIFT
        while addr <= end_pc:
            if not cache.probe(addr):
                cache.fill(addr)
                hit = False
            addr += LINE_BYTES
        delay = 0 if hit else self.miss_latency
        if self.obs is not None:
            self.obs.icache_access(start_pc, end_pc, hit, delay)
        return delay

    def flush(self):
        """Invalidate every line (testing hook)."""
        self.cache.flush()
