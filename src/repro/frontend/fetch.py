"""Block-based instruction fetch unit with a Fetch Target Queue.

The fetch unit predicts the dynamic instruction stream at *prediction
block* granularity (Section 3.3.1 of the paper): a block is a contiguous
run of instructions that ends at a predicted-taken control instruction or
at the fetch-width limit (32B = 8 instructions). Blocks are recorded in
the FTQ; on a branch misprediction the squashed FTQ suffix is what Multi-
Stream Squash Reuse moves into its Wrong-Path Buffers.

After a misprediction the fetch unit keeps following the *predicted* path
through real program code — wrong-path execution is what creates the
squashed streams that reuse later harvests.
"""

from repro.isa.instruction import INST_BYTES
from repro.log import get_logger
from repro.pipeline.dyninst import DynInst

_log = get_logger("frontend.fetch")

#: Register holding return addresses (``ra``).
_RA = 1


class PredictionBlock:
    """One FTQ entry: a contiguous fetch block."""

    __slots__ = ("block_id", "start_pc", "end_pc", "insts", "pred_next_pc",
                 "squashed")

    def __init__(self, block_id, start_pc):
        self.block_id = block_id
        self.start_pc = start_pc
        self.end_pc = start_pc
        self.insts = []
        self.pred_next_pc = None
        self.squashed = False

    @property
    def num_insts(self):
        return len(self.insts)

    def pc_range(self):
        """(start_pc, end_pc) inclusive of the last instruction."""
        return self.start_pc, self.end_pc

    def inst_summaries(self):
        """``(seq, pc, text)`` per instruction — the FetchEvent payload."""
        return tuple((dyn.seq, dyn.pc, repr(dyn.inst))
                     for dyn in self.insts)

    def __repr__(self):
        return "<Block %d [%#x..%#x] %d insts>" % (
            self.block_id, self.start_pc, self.end_pc, self.num_insts)


class FetchUnit:
    """Speculative fetch: directions from the predictor, targets from
    pre-decode (direct), BTB (indirect) and RAS (returns)."""

    def __init__(self, program, predictor, btb, ras, block_insts=8):
        self.program = program
        self.predictor = predictor
        self.btb = btb
        self.ras = ras
        self.block_insts = block_insts
        # Predecoded view: membership in ``by_pc`` is exactly
        # Program.has_pc, and each record carries the flattened fields
        # the fetch loop needs (halt/branch classification).
        self._by_pc = program.predecode().by_pc

        self.pc = program.entry
        self.stalled = False          # waiting for redirect (halt/invalid/
                                      # unpredicted indirect)
        self._next_block_id = 0
        self._next_seq = 0

        self.ftq = []                 # in-flight blocks, oldest first
        self.stats_blocks = 0
        self.stats_insts = 0

    # ------------------------------------------------------------------
    def redirect(self, pc):
        """Steer fetch (misprediction recovery or indirect resolution)."""
        self.pc = pc
        self.stalled = pc not in self._by_pc
        if self.stalled:
            _log.debug("redirect to %#x leaves the code image; fetch "
                       "stalled until the next redirect", pc)

    def squash_ftq_after(self, block_id, keep_partial_seq=None):
        """Drop FTQ blocks younger than ``block_id``.

        Returns the squashed blocks (oldest first). ``keep_partial_seq``
        trims instructions younger than the given seq from the boundary
        block without squashing the whole block.
        """
        squashed = []
        kept = []
        for block in self.ftq:
            if block.block_id > block_id:
                block.squashed = True
                squashed.append(block)
            else:
                kept.append(block)
        self.ftq = kept
        if keep_partial_seq is not None and kept:
            boundary = kept[-1]
            trimmed = [d for d in boundary.insts
                       if d.seq <= keep_partial_seq]
            removed = boundary.insts[len(trimmed):]
            if removed:
                partial = PredictionBlock(boundary.block_id, removed[0].pc)
                partial.insts = removed
                partial.end_pc = removed[-1].pc
                partial.squashed = True
                boundary.insts = trimmed
                if trimmed:
                    boundary.end_pc = trimmed[-1].pc
                squashed.insert(0, partial)
        return squashed

    def retire_block(self, block_id):
        """Deallocate FTQ entries at or before ``block_id`` (all retired)."""
        self.ftq = [b for b in self.ftq if b.block_id > block_id]

    # ------------------------------------------------------------------
    def fetch_block(self, cycle):
        """Fetch one prediction block; returns it or None when stalled."""
        by_pc = self._by_pc
        if self.stalled or self.pc not in by_pc:
            self.stalled = True
            return None
        block = PredictionBlock(self._next_block_id, self.pc)
        self._next_block_id += 1
        pc = self.pc
        seq = self._next_seq
        block_id = block.block_id
        insts = block.insts
        append = insts.append
        next_pc = None     # predicted PC after this block (None => stall)
        ended = False      # loop terminated by a control decision
        while len(insts) < self.block_insts:
            rec = by_pc.get(pc)
            if rec is None:
                # Ran off the code image mid-block (wrong path): stall.
                ended = True
                break
            dyn = DynInst(seq, pc, rec.inst, block_id, cycle, rec)
            seq += 1
            append(dyn)
            block.end_pc = pc

            if rec.is_halt:
                ended = True  # nothing sensible follows a halt
                break
            if rec.is_branch:
                taken, target = self._predict_control(dyn)
                if taken:
                    next_pc = target  # None for unpredictable indirects
                    ended = True
                    break
            pc += INST_BYTES
        self._next_seq = seq
        if not ended:
            # Block filled to the fetch limit: fall through.
            next_pc = pc
        block.pred_next_pc = next_pc

        if next_pc is None:
            self.stalled = True
        else:
            self.pc = next_pc
            self.stalled = next_pc not in by_pc

        self.ftq.append(block)
        self.stats_blocks += 1
        self.stats_insts += block.num_insts
        return block

    def _predict_control(self, dyn):
        """Predict one control instruction; returns (taken, target).

        Also fills the DynInst's prediction bookkeeping fields.
        """
        pd = dyn.pd
        fallthrough = pd.next_pc
        if pd.is_cond_branch:
            taken, meta = self.predictor.predict(pd.pc)
            dyn.bp_meta = meta
            target = pd.target if taken else fallthrough
            dyn.pred_npc = target
            return taken, target

        # Unconditional: jal / jalr.
        dyn.ras_snap = self.ras.snapshot()
        if not pd.is_indirect:  # jal
            if pd.dest == _RA:
                self.ras.push(fallthrough)
            dyn.pred_npc = pd.target
            return True, pd.target

        # jalr: return or other indirect.
        target = None
        if pd.src0 == _RA and pd.dest != _RA:
            target = self.ras.pop()
        if target is None:
            target = self.btb.lookup(pd.pc)
        if pd.dest == _RA:
            self.ras.push(fallthrough)
        dyn.pred_npc = target
        if target is None:
            # Unpredictable indirect: stall until it resolves.
            return True, None
        return True, target
