"""Decoupled frontend: branch-prediction unit, FTQ, and fetch stage.

The frontend predicts the dynamic instruction stream at *prediction
block* granularity (Section 3.3.1 of the paper): a block is a contiguous
run of instructions that ends at a predicted-taken control instruction or
at the fetch-width limit (32B = 8 instructions). Blocks are recorded in
the FTQ; on a branch misprediction the squashed FTQ suffix is what Multi-
Stream Squash Reuse moves into its Wrong-Path Buffers.

Two operating modes share this file:

* **Fused** (``frontend.decoupled = false``, the default): prediction
  and delivery happen in one call — :meth:`FetchUnit.fetch_block`
  predicts a block and hands it straight to decode, exactly the
  original single-stage fetch path.
* **Decoupled** (``frontend.decoupled = true``): the branch-prediction
  unit (BPU) runs ahead of fetch. Each cycle :meth:`FetchUnit.tick`
  predicts up to ``bpu_blocks_per_cycle`` blocks into a bounded FTQ
  (run-ahead capped at ``ftq_depth`` undelivered blocks), and
  :meth:`FetchUnit.fetch_block` *drains* the FTQ: a block becomes
  deliverable ``fetch_latency`` cycles after its enqueue (modelling the
  icache access of the fetch pipeline). Redirect bubbles, FTQ
  starvation and icache latency then show up as explicit fetch stalls.

Because the BPU speculates ahead of delivery, every enqueued block
snapshots the branch-history and RAS state it was predicted from; a
squash flushes the undelivered FTQ suffix and rewinds the predictors to
the oldest flushed block's snapshot before the core applies its own
(architecturally precise) repair. Delivered blocks stay in the FTQ for
squash/reuse bookkeeping until commit retires them
(:meth:`FetchUnit.retire_block`).

After a misprediction the frontend keeps following the *predicted* path
through real program code — wrong-path execution is what creates the
squashed streams that reuse later harvests.
"""

from collections import deque

from repro.isa.instruction import INST_BYTES
from repro.log import get_logger
from repro.pipeline.dyninst import DynInst

_log = get_logger("frontend.fetch")

#: Register holding return addresses (``ra``).
_RA = 1

#: Fetch-stall reasons (FetchStallEvent payloads).
STALL_FTQ_EMPTY = "ftq-empty"
STALL_REDIRECT = "redirect"
STALL_ICACHE = "icache"


class PredictionBlock:
    """One FTQ entry: a contiguous fetch block.

    ``pred_cycle`` is the cycle the BPU predicted (enqueued) the block;
    ``delivered`` flips when the fetch stage hands it to decode.
    ``hist_snap``/``ras_snap`` (decoupled mode only) capture the
    branch-history and RAS state *before* the block's predictions, for
    frontend repair when an undelivered block is flushed.
    """

    __slots__ = ("block_id", "start_pc", "end_pc", "insts", "pred_next_pc",
                 "squashed", "pred_cycle", "ready_cycle", "delivered",
                 "hist_snap", "ras_snap")

    def __init__(self, block_id, start_pc):
        self.block_id = block_id
        self.start_pc = start_pc
        self.end_pc = start_pc
        self.insts = []
        self.pred_next_pc = None
        self.squashed = False
        self.pred_cycle = 0
        self.ready_cycle = 0      # earliest delivery cycle (icache model)
        self.delivered = False
        self.hist_snap = None
        self.ras_snap = None

    @property
    def num_insts(self):
        return len(self.insts)

    def pc_range(self):
        """(start_pc, end_pc) inclusive of the last instruction."""
        return self.start_pc, self.end_pc

    def inst_summaries(self):
        """``(seq, pc, text)`` per instruction — the FetchEvent payload."""
        return tuple((dyn.seq, dyn.pc, repr(dyn.inst))
                     for dyn in self.insts)

    def __repr__(self):
        return "<Block %d [%#x..%#x] %d insts>" % (
            self.block_id, self.start_pc, self.end_pc, self.num_insts)


class FetchUnit:
    """Two-stage frontend: directions from the predictor, targets from
    pre-decode (direct), BTB (indirect) and RAS (returns).

    ``frontend`` is a :class:`~repro.pipeline.config.FrontendConfig`
    (None = fused defaults); ``obs`` an optional
    :class:`~repro.obs.bus.Observability` for FTQ/stall events;
    ``icache`` an optional
    :class:`~repro.frontend.icache.InstructionCache` consulted per block
    in decoupled mode (misses stretch the block's delivery latency).

    ``wrong_path_sink``, when set (FTQ-sourced MSSR capture), receives
    every squashed block — delivered and still-pending — at
    branch-squash time, oldest first.
    """

    def __init__(self, program, predictor, btb, ras, block_insts=8,
                 frontend=None, obs=None, icache=None):
        self.program = program
        self.predictor = predictor
        self.btb = btb
        self.ras = ras
        self.block_insts = block_insts
        self.obs = obs
        self.icache = icache
        self.wrong_path_sink = None
        if frontend is None:
            from repro.pipeline.config import FrontendConfig
            frontend = FrontendConfig()
        self.frontend = frontend
        self.decoupled = frontend.decoupled
        self.ftq_depth = frontend.ftq_depth
        self.fetch_latency = frontend.fetch_latency
        self.bpu_rate = frontend.bpu_blocks_per_cycle
        # Predecoded view: membership in ``by_pc`` is exactly
        # Program.has_pc, and each record carries the flattened fields
        # the fetch loop needs (halt/branch classification).
        self._by_pc = program.predecode().by_pc

        self.pc = program.entry
        self.stalled = False          # BPU waiting for redirect (halt/
                                      # invalid/unpredicted indirect)
        self._next_block_id = 0
        self._next_seq = 0

        self.ftq = []                 # in-flight blocks, oldest first
        self.pending = deque()        # predicted, not yet delivered
        self._redirect_cycle = None   # cycle of the last redirect
        self.stats_blocks = 0
        self.stats_insts = 0

    # ------------------------------------------------------------------
    def redirect(self, pc, cycle=None):
        """Steer the BPU (misprediction recovery or indirect resolution).

        Any undelivered FTQ suffix is flushed first (with predictor /
        RAS rewind); ``cycle`` stamps the redirect so subsequent fetch
        stalls are attributed to the redirect bubble.
        """
        self._flush_pending()
        self.pc = pc
        self.stalled = pc not in self._by_pc
        self._redirect_cycle = cycle
        if self.stalled:
            _log.debug("redirect to %#x leaves the code image; fetch "
                       "stalled until the next redirect", pc)

    def squash_ftq_after(self, block_id, keep_partial_seq=None,
                         capture=False):
        """Drop FTQ blocks younger than ``block_id``.

        Returns the squashed *delivered* blocks (oldest first) — the
        wrong-path instructions that actually entered the pipeline and
        are eligible for squash-reuse capture. Undelivered (pending)
        blocks are younger than any delivered block, so they are simply
        flushed, rewinding speculative predictor state to the oldest
        flushed block's snapshot. ``keep_partial_seq`` trims
        instructions younger than the given seq from the boundary block
        without squashing the whole block.

        With ``capture`` set (branch squashes) and a ``wrong_path_sink``
        attached, every squashed block is pushed to the sink oldest
        first: the delivered suffix (identical to what decode-time
        capture sees), then the flushed still-pending blocks that never
        reached decode — the extra coverage FTQ-sourced capture buys.
        """
        flushed = self._flush_pending()
        squashed = []
        kept = []
        for block in self.ftq:
            if block.block_id > block_id:
                block.squashed = True
                squashed.append(block)
            else:
                kept.append(block)
        self.ftq = kept
        if keep_partial_seq is not None and kept:
            boundary = kept[-1]
            trimmed = [d for d in boundary.insts
                       if d.seq <= keep_partial_seq]
            removed = boundary.insts[len(trimmed):]
            if removed:
                partial = PredictionBlock(boundary.block_id, removed[0].pc)
                partial.insts = removed
                partial.end_pc = removed[-1].pc
                partial.squashed = True
                partial.delivered = boundary.delivered
                boundary.insts = trimmed
                if trimmed:
                    boundary.end_pc = trimmed[-1].pc
                squashed.insert(0, partial)
        sink = self.wrong_path_sink
        if capture and sink is not None:
            obs = self.obs
            for block in squashed:
                if block.num_insts:
                    if obs is not None:
                        obs.wrong_path_capture(block, pending=False)
                    sink(block)
            for block in flushed:
                if block.num_insts:
                    if obs is not None:
                        obs.wrong_path_capture(block, pending=True)
                    sink(block)
        return squashed

    def retire_block(self, block_id):
        """Deallocate FTQ entries at or before ``block_id`` (all retired)."""
        self.ftq = [b for b in self.ftq if b.block_id > block_id]

    def _flush_pending(self):
        """Flush undelivered FTQ entries, unwinding speculative
        predictor state (loop iteration counts, history, RAS) that
        their predictions advanced. Pending blocks are the youngest
        speculation in the machine, so they unwind first. Returns the
        flushed blocks oldest first (for FTQ-sourced capture)."""
        pending = self.pending
        if not pending:
            return []
        unwind = getattr(self.predictor, "unwind", None)
        if unwind is not None:
            for block in reversed(pending):
                for dyn in reversed(block.insts):
                    if dyn.bp_meta is not None:
                        unwind(dyn.bp_meta)
        oldest = pending[0]
        if oldest.hist_snap is not None:
            self.predictor.restore_history(oldest.hist_snap)
        if oldest.ras_snap is not None:
            self.ras.restore(oldest.ras_snap)
        flushed = list(pending)
        live = set()
        for block in pending:
            block.squashed = True
            live.add(block.block_id)
        pending.clear()
        if live:
            self.ftq = [b for b in self.ftq if b.block_id not in live]
        return flushed

    # ------------------------------------------------------------------
    def tick(self, cycle):
        """Run the BPU for one cycle (decoupled mode): predict up to
        ``bpu_blocks_per_cycle`` blocks into the FTQ, stopping when the
        run-ahead window (``ftq_depth`` undelivered blocks) is full or
        the BPU stalls."""
        if not self.decoupled:
            return
        pending = self.pending
        for _ in range(self.bpu_rate):
            if len(pending) >= self.ftq_depth:
                break
            block = self._predict_block(cycle)
            if block is None:
                break
            pending.append(block)
            if self.obs is not None:
                self.obs.ftq_enqueue(block, len(pending))

    def fetch_block(self, cycle):
        """Deliver one prediction block to decode; None when stalled.

        Fused mode predicts and delivers in the same call; decoupled
        mode drains the FTQ, honouring the ``fetch_latency`` pipeline
        delay and reporting the stall reason on the obs bus.
        """
        if not self.decoupled:
            block = self._predict_block(cycle)
            if block is not None:
                block.delivered = True
            return block

        pending = self.pending
        in_redirect_bubble = (
            self._redirect_cycle is not None
            and cycle - self._redirect_cycle <= self.fetch_latency)
        if not pending:
            reason = STALL_REDIRECT if in_redirect_bubble \
                else STALL_FTQ_EMPTY
            if self.obs is not None:
                self.obs.fetch_stall(reason)
            return None
        head = pending[0]
        if head.ready_cycle > cycle:
            # Refill latency right after a squash is the redirect
            # bubble, not an ordinary icache-pipeline stall.
            reason = STALL_REDIRECT if in_redirect_bubble \
                else STALL_ICACHE
            if self.obs is not None:
                self.obs.fetch_stall(reason)
            return None
        pending.popleft()
        head.delivered = True
        # Re-stamp delivery: downstream latency accounting (the rename
        # frontier) is measured from when decode received the block.
        for dyn in head.insts:
            dyn.fetch_cycle = cycle
        return head

    # ------------------------------------------------------------------
    def _predict_block(self, cycle):
        """Predict one block and append it to the FTQ; None on stall."""
        by_pc = self._by_pc
        if self.stalled or self.pc not in by_pc:
            self.stalled = True
            return None
        block = PredictionBlock(self._next_block_id, self.pc)
        block.pred_cycle = cycle
        if self.decoupled:
            block.hist_snap = self.predictor.snapshot_history()
            block.ras_snap = self.ras.snapshot()
        self._next_block_id += 1
        pc = self.pc
        seq = self._next_seq
        block_id = block.block_id
        insts = block.insts
        append = insts.append
        next_pc = None     # predicted PC after this block (None => stall)
        ended = False      # loop terminated by a control decision
        while len(insts) < self.block_insts:
            rec = by_pc.get(pc)
            if rec is None:
                # Ran off the code image mid-block (wrong path): stall.
                ended = True
                break
            dyn = DynInst(seq, pc, rec.inst, block_id, cycle, rec)
            seq += 1
            append(dyn)
            block.end_pc = pc

            if rec.is_halt:
                ended = True  # nothing sensible follows a halt
                break
            if rec.is_branch:
                taken, target = self._predict_control(dyn)
                if taken:
                    next_pc = target  # None for unpredictable indirects
                    ended = True
                    break
            pc += INST_BYTES
        self._next_seq = seq
        if not ended:
            # Block filled to the fetch limit: fall through.
            next_pc = pc
        block.pred_next_pc = next_pc
        # The block can leave the fetch pipeline ``fetch_latency``
        # cycles after prediction; an icache miss stretches that.
        block.ready_cycle = cycle + self.fetch_latency
        if self.icache is not None and insts:
            block.ready_cycle += self.icache.access(block.start_pc,
                                                    block.end_pc, cycle)

        if next_pc is None:
            self.stalled = True
        else:
            self.pc = next_pc
            self.stalled = next_pc not in by_pc

        self.ftq.append(block)
        self.stats_blocks += 1
        self.stats_insts += block.num_insts
        return block

    def _predict_control(self, dyn):
        """Predict one control instruction; returns (taken, target).

        Also fills the DynInst's prediction bookkeeping fields.
        """
        pd = dyn.pd
        fallthrough = pd.next_pc
        if pd.is_cond_branch:
            taken, meta = self.predictor.predict(pd.pc)
            dyn.bp_meta = meta
            target = pd.target if taken else fallthrough
            dyn.pred_npc = target
            return taken, target

        # Unconditional: jal / jalr.
        dyn.ras_snap = self.ras.snapshot()
        if not pd.is_indirect:  # jal
            if pd.dest == _RA:
                self.ras.push(fallthrough)
            dyn.pred_npc = pd.target
            return True, pd.target

        # jalr: return or other indirect.
        target = None
        if pd.src0 == _RA and pd.dest != _RA:
            target = self.ras.pop()
        if target is None:
            target = self.btb.lookup(pd.pc)
        if pd.dest == _RA:
            self.ras.push(fallthrough)
        dyn.pred_npc = target
        if target is None:
            # Unpredictable indirect: stall until it resolves.
            return True, None
        return True, target
