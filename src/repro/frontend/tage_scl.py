"""TAGE-SC-L: TAGE core + statistical corrector + loop predictor.

Matches the paper's "TAGE-SC-L 64K" configuration role (the main branch
predictor in Table 3); component sizes are scaled for simulation speed
but the composition follows Seznec's championship predictor:

* **TAGE** provides the base prediction, including its own
  provider/altpred choice (``use_alt_on_na``). The provider counter
  travels in the meta so the outer stages can see TAGE's confidence.
* **SC** (GEHL-style statistical corrector) may invert TAGE when its
  signed sum is confident — and vetoes at *half* the usual bar when
  the TAGE provider is weak (counter in the 3/4 region), the
  low-confidence-veto of the real predictor.
* **L** (loop predictor) overrides everything on confidently-countable
  loop branches, but only while the ``withloop`` hysteresis counter is
  non-negative: it is trained at commit whenever the loop predictor
  disagreed with the SC+TAGE prediction, so a loop predictor that
  keeps losing arguments is dynamically benched.

Speculative state is repaired on two paths: :meth:`recover_branch`
performs the architectural repair at the mispredicted branch itself
(history rewind + loop spec-count resync), and :meth:`unwind` rolls
back one squashed *younger* prediction (loop iteration-count
checkpoint), applied youngest-first as the frontend flushes.
"""

from repro.frontend.predictors import BranchPredictor, PredictorMeta
from repro.frontend.tage import TagePredictor
from repro.frontend.loop_predictor import LoopPredictor
from repro.frontend.statistical_corrector import StatisticalCorrector


class TageSCL(BranchPredictor):
    """Composite TAGE-SC-L predictor."""

    name = "tage-scl"

    #: ``withloop`` hysteresis bounds (signed; >= 0 trusts the loop
    #: predictor).
    WITHLOOP_MIN = -8
    WITHLOOP_MAX = 7

    def __init__(self, tage_kwargs=None, sc_kwargs=None, loop_kwargs=None):
        super().__init__()
        self.tage = TagePredictor(**(tage_kwargs or {}))
        self.sc = StatisticalCorrector(**(sc_kwargs or {}))
        self.loop = LoopPredictor(**(loop_kwargs or {}))
        self.withloop = 0

    # The composite owns the authoritative history; the inner TAGE shares it.
    def predict(self, pc):
        self.tage.history = self.history
        tage_taken, tage_extra = self.tage._lookup(pc)
        provider_ctr = tage_extra[4]
        tage_weak = provider_ctr in (3, 4)

        use_sc, sc_taken, sc_sum = self.sc.predict(
            pc, self.history, tage_taken, tage_weak=tage_weak)
        pre_loop_taken = sc_taken if use_sc else tage_taken

        taken = pre_loop_taken
        loop_valid, loop_taken, loop_ckpt = self.loop.predict_spec(pc)
        if loop_valid and self.withloop >= 0:
            taken = loop_taken

        meta = PredictorMeta(
            self.history, taken,
            (tage_extra, tage_taken, sc_sum, pre_loop_taken, loop_valid,
             loop_taken, loop_ckpt))
        self._push_history(taken)
        return taken, meta

    def update(self, pc, taken, meta):
        (tage_extra, tage_taken, sc_sum, pre_loop_taken, loop_valid,
         loop_taken, _loop_ckpt) = meta.extra
        tage_meta = PredictorMeta(meta.history, tage_taken, tage_extra)
        self.tage.update(pc, taken, tage_meta)
        self.sc.update(pc, meta.history, tage_taken, taken, sc_sum)
        # withloop hysteresis: trained only on disagreements, where
        # using (or benching) the loop predictor actually matters.
        if loop_valid and loop_taken != pre_loop_taken:
            if loop_taken == taken:
                self.withloop = min(self.withloop + 1, self.WITHLOOP_MAX)
            else:
                self.withloop = max(self.withloop - 1, self.WITHLOOP_MIN)
        self.loop.update(pc, taken)

    def recover(self, taken, meta):
        super().recover(taken, meta)

    def recover_branch(self, pc, taken, meta):
        """Architectural repair at the mispredicted branch itself:
        history rewind plus loop spec-count resynchronisation. Must
        run *after* younger squashed predictions have been unwound
        (the core's repair order guarantees this)."""
        self.recover(taken, meta)
        self.loop.resolve(pc, taken, meta.extra[6])

    def unwind(self, meta):
        """Roll back the speculative loop-iteration advance of one
        squashed (younger) prediction. History repair is handled
        separately (absolute restore at the squash trigger)."""
        self.loop.unwind(meta.extra[6])

    def _lookup(self, pc):  # pragma: no cover - predict() is overridden
        raise NotImplementedError
