"""TAGE-SC-L: TAGE core + statistical corrector + loop predictor.

Matches the paper's "TAGE-SC-L 64K" configuration role (the main branch
predictor in Table 3); component sizes are scaled for simulation speed
but the override structure (L over SC over TAGE) follows Seznec's
championship predictor.
"""

from repro.frontend.predictors import BranchPredictor, PredictorMeta
from repro.frontend.tage import TagePredictor
from repro.frontend.loop_predictor import LoopPredictor
from repro.frontend.statistical_corrector import StatisticalCorrector


class TageSCL(BranchPredictor):
    """Composite TAGE-SC-L predictor."""

    name = "tage-scl"

    def __init__(self, tage_kwargs=None, sc_kwargs=None, loop_kwargs=None):
        super().__init__()
        self.tage = TagePredictor(**(tage_kwargs or {}))
        self.sc = StatisticalCorrector(**(sc_kwargs or {}))
        self.loop = LoopPredictor(**(loop_kwargs or {}))

    # The composite owns the authoritative history; the inner TAGE shares it.
    def predict(self, pc):
        self.tage.history = self.history
        tage_taken, tage_extra = self.tage._lookup(pc)

        use_sc, sc_taken, sc_sum = self.sc.predict(pc, self.history,
                                                   tage_taken)
        taken = sc_taken if use_sc else tage_taken

        loop_valid, loop_taken = self.loop.predict(pc)
        if loop_valid:
            taken = loop_taken

        meta = PredictorMeta(self.history, taken,
                             (tage_extra, tage_taken, sc_sum, loop_valid))
        self._push_history(taken)
        return taken, meta

    def update(self, pc, taken, meta):
        tage_extra, tage_taken, sc_sum, _loop_valid = meta.extra
        tage_meta = PredictorMeta(meta.history, tage_taken, tage_extra)
        self.tage.update(pc, taken, tage_meta)
        self.sc.update(pc, meta.history, tage_taken, taken, sc_sum)
        self.loop.update(pc, taken)

    def recover(self, taken, meta):
        super().recover(taken, meta)

    def recover_branch(self, pc, taken, meta):
        """Full recovery including loop speculative counts."""
        self.recover(taken, meta)
        self.loop.recover(pc)

    def _lookup(self, pc):  # pragma: no cover - predict() is overridden
        raise NotImplementedError
