"""Branch Target Buffer: set-associative, LRU, tagged by full PC.

Used by the fetch unit to predict *indirect* jump targets. Direct
branches and jumps do not need it: the fetch unit can see the decoded
program image, which models a frontend with perfect pre-decode (a common
simulator idealisation; direction prediction is still fully speculative).
"""


class _BTBEntry:
    __slots__ = ("pc", "target", "lru")

    def __init__(self):
        self.pc = -1
        self.target = 0
        self.lru = 0


class BranchTargetBuffer:
    """PC -> predicted target cache."""

    def __init__(self, num_sets=512, assoc=4):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [[_BTBEntry() for _ in range(assoc)]
                     for _ in range(num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        # pc -> ways memo (static branch pcs are few; skips the shift/
        # mod/index on every lookup of a hot indirect).
        self._set_cache = {}

    def _set(self, pc):
        ways = self._set_cache.get(pc)
        if ways is None:
            if len(self._set_cache) >= (1 << 16):
                self._set_cache.clear()
            ways = self.sets[(pc >> 2) % self.num_sets]
            self._set_cache[pc] = ways
        return ways

    def lookup(self, pc):
        """Predicted target for ``pc`` or None on miss."""
        self._tick += 1
        for entry in self._set(pc):
            if entry.pc == pc:
                entry.lru = self._tick
                self.hits += 1
                return entry.target
        self.misses += 1
        return None

    def install(self, pc, target):
        """Record a resolved target (called at branch commit)."""
        self._tick += 1
        ways = self._set(pc)
        victim = None
        for entry in ways:
            if entry.pc == pc:
                victim = entry
                break
        if victim is None:
            victim = min(ways, key=lambda e: e.lru)
        victim.pc = pc
        victim.target = target
        victim.lru = self._tick
