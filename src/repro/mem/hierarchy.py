"""Two-level cache hierarchy with a flat DRAM latency behind it.

Latencies follow the paper's Table 3: 64KB/4-way L1D at 3 cycles, 2MB/
8-way L2 at 12 cycles, 120-cycle DRAM. An access probes each level in
order; the returned latency is the first-hit level's (inclusive) load-to-
use delay. Misses fill all levels on the way back (inclusive hierarchy).
"""

from repro.mem.cache import Cache


class MemoryHierarchy:
    """L1D + L2 + DRAM timing model."""

    def __init__(self, l1_size=64 * 1024, l1_assoc=4, l1_latency=3,
                 l2_size=2 * 1024 * 1024, l2_assoc=8, l2_latency=12,
                 dram_latency=120, line_bytes=64):
        self.l1 = Cache("L1D", l1_size, l1_assoc, line_bytes, l1_latency)
        self.l2 = Cache("L2", l2_size, l2_assoc, line_bytes, l2_latency)
        self.dram_latency = dram_latency
        self.dram_accesses = 0

    def access(self, addr, is_write=False):
        """Probe the hierarchy; returns the access latency in cycles."""
        if self.l1.lookup(addr):
            if is_write:
                self.l1.mark_dirty(addr)
            return self.l1.latency
        if self.l2.lookup(addr):
            self.l1.fill(addr, dirty=is_write)
            return self.l2.latency
        self.dram_accesses += 1
        self.l2.fill(addr)
        self.l1.fill(addr, dirty=is_write)
        return self.dram_latency

    def stats(self):
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "dram_accesses": self.dram_accesses,
        }
