"""Flat synchronous two-level hierarchy (``mem.model = "flat"``).

Latencies follow the paper's Table 3: 64KB/4-way L1D at 3 cycles, 2MB/
8-way L2 at 12 cycles, 120-cycle DRAM. An access probes each level in
order; the returned latency is the first-hit level's (inclusive) load-to-
use delay. Misses fill all levels on the way back (inclusive hierarchy).

This is the default, byte-identical-to-pinned-stats model. The ported
model (:mod:`repro.mem.ports`) adds MSHRs, bounded outstanding misses
and a shared L2 behind an L1I; both share the :class:`repro.mem.cache.
Cache` level model and expose the same ``warm``/``stats`` surface so
the sampling layer and the harness treat them interchangeably.

Dirty accounting: a store installs its line dirty in L1; when L1 later
evicts that dirty victim the writeback lands in L2 (the L2 copy turns
dirty), and a store miss that fills L2 from DRAM marks the L2 copy
dirty as well — without either, L2 writeback/flush accounting
undercounts every written line (the L2 copy stayed clean forever).
"""

from repro.mem.cache import Cache


class MemoryHierarchy:
    """L1D + L2 + DRAM timing model."""

    def __init__(self, l1_size=64 * 1024, l1_assoc=4, l1_latency=3,
                 l2_size=2 * 1024 * 1024, l2_assoc=8, l2_latency=12,
                 dram_latency=120, line_bytes=64):
        self.l1 = Cache("L1D", l1_size, l1_assoc, line_bytes, l1_latency)
        self.l2 = Cache("L2", l2_size, l2_assoc, line_bytes, l2_latency)
        self.line_bytes = line_bytes
        self.dram_latency = dram_latency
        self.dram_accesses = 0

    def _fill_l1(self, addr, dirty):
        """Install ``addr`` in L1, writing a dirty victim back into L2."""
        if self.l1.fill(addr, dirty=dirty) \
                and self.l1.last_victim_line is not None:
            victim_addr = self.l1.last_victim_line * self.line_bytes
            if not self.l2.mark_dirty(victim_addr):
                # Inclusion was broken by an earlier L2 eviction: the
                # writeback re-installs the line dirty.
                self.l2.fill(victim_addr, dirty=True)

    def access(self, addr, is_write=False):
        """Probe the hierarchy; returns the access latency in cycles."""
        if self.l1.lookup(addr):
            if is_write:
                self.l1.mark_dirty(addr)
            return self.l1.latency
        if self.l2.lookup(addr):
            self._fill_l1(addr, is_write)
            return self.l2.latency
        self.dram_accesses += 1
        self.l2.fill(addr, dirty=is_write)
        self._fill_l1(addr, is_write)
        return self.dram_latency

    def warm(self, addr, is_write=False):
        """Functional warmup access (sampling layer): probe and fill,
        latency discarded."""
        self.access(addr, is_write=is_write)

    def stats(self):
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "l1_writebacks": self.l1.writebacks,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "l2_writebacks": self.l2.writebacks,
            "dram_accesses": self.dram_accesses,
        }
