"""Timing model of the data-memory hierarchy (L1D, L2, DRAM)."""

from repro.mem.cache import Cache
from repro.mem.hierarchy import MemoryHierarchy

__all__ = ["Cache", "MemoryHierarchy"]
