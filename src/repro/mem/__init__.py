"""Timing models of the memory hierarchy.

Two models share one :class:`Cache` level implementation: the flat
synchronous :class:`MemoryHierarchy` (default) and the port-based
:class:`PortedMemorySystem` (L1I + L1D behind a shared L2, MSHRs,
completion-cycle requests).
"""

from repro.mem.cache import Cache, REPLACEMENT_POLICIES
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.ports import (MemPort, MSHRFile, PortedICache,
                             PortedMemorySystem)

__all__ = ["Cache", "REPLACEMENT_POLICIES", "MemoryHierarchy",
           "MemPort", "MSHRFile", "PortedICache", "PortedMemorySystem"]
