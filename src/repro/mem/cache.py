"""Set-associative cache timing model.

Functional data lives in :class:`repro.emu.memory.SparseMemory`; caches
only track *presence* to derive access latencies (a standard decoupling
in execution-driven simulators). Writeback/write-allocate with true LRU
by default; the replacement policy is pluggable per level.

One :class:`Cache` class models every level of the hierarchy — the flat
``MemoryHierarchy``'s L1D and L2, and the ported memory system's L1I,
L1D and shared L2 are all instances of it.
"""

#: Named replacement policies (selected by ``Cache(replacement=...)``).
REPLACEMENT_POLICIES = ("lru", "mru")


class _Line:
    __slots__ = ("tag", "valid", "dirty", "lru")

    def __init__(self):
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.lru = 0


def _lru_key(line):
    # Invalid lines sort first (free ways are always preferred), then
    # least-recently-used.
    return (line.valid, line.lru)


def _mru_key(line):
    return (line.valid, -line.lru)


_POLICY_KEYS = {"lru": _lru_key, "mru": _mru_key}


class Cache:
    """One cache level.

    ``replacement`` names a policy from :data:`REPLACEMENT_POLICIES`
    or is a callable ``key(line)`` handed to ``min()`` over the set's
    ways (invalid ways should sort first). ``last_victim_line`` holds
    the line address evicted by the most recent :meth:`fill` (None when
    the fill hit or took a free way) so an outer hierarchy can
    propagate the victim's dirty state to the next level.
    """

    __slots__ = ("name", "size_bytes", "assoc", "line_bytes", "latency",
                 "num_sets", "sets", "_tick", "hits", "misses",
                 "writebacks", "fills", "last_victim_line",
                 "last_victim_dirty", "_victim_key")

    def __init__(self, name, size_bytes, assoc, line_bytes=64, latency=3,
                 replacement="lru"):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("cache size must be a multiple of way size")
        if callable(replacement):
            self._victim_key = replacement
        else:
            try:
                self._victim_key = _POLICY_KEYS[replacement]
            except KeyError:
                raise ValueError(
                    "unknown replacement policy %r (choose from: %s, or "
                    "pass a key callable)"
                    % (replacement,
                       ", ".join(REPLACEMENT_POLICIES))) from None
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.sets = [[_Line() for _ in range(assoc)]
                     for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fills = 0
        self.last_victim_line = None
        self.last_victim_dirty = False

    def _locate(self, addr):
        line_addr = addr // self.line_bytes
        return self.sets[line_addr % self.num_sets], line_addr

    def lookup(self, addr):
        """True on hit; updates LRU."""
        self._tick += 1
        # Hot path: one floor-div, one modulo, no tuple construction
        # (this runs once per load in detailed mode).
        tag = addr // self.line_bytes
        for line in self.sets[tag % self.num_sets]:
            if line.valid and line.tag == tag:
                line.lru = self._tick
                self.hits += 1
                return True
        self.misses += 1
        return False

    def probe(self, addr):
        """True when the line is resident; no LRU/stats side effects."""
        tag = addr // self.line_bytes
        for line in self.sets[tag % self.num_sets]:
            if line.valid and line.tag == tag:
                return True
        return False

    def fill(self, addr, dirty=False):
        """Install the line; returns True if a dirty victim was evicted.

        ``last_victim_line`` / ``last_victim_dirty`` record the evicted
        line (if any valid line was displaced) for victim propagation.
        """
        self._tick += 1
        tag = addr // self.line_bytes
        ways = self.sets[tag % self.num_sets]
        for line in ways:
            if line.valid and line.tag == tag:
                line.lru = self._tick
                line.dirty = line.dirty or dirty
                self.last_victim_line = None
                self.last_victim_dirty = False
                return False
        self.fills += 1
        victim = min(ways, key=self._victim_key)
        wrote_back = victim.valid and victim.dirty
        if victim.valid:
            self.last_victim_line = victim.tag
            self.last_victim_dirty = victim.dirty
        else:
            self.last_victim_line = None
            self.last_victim_dirty = False
        if wrote_back:
            self.writebacks += 1
        victim.tag = tag
        victim.valid = True
        victim.dirty = dirty
        victim.lru = self._tick
        return wrote_back

    def mark_dirty(self, addr):
        tag = addr // self.line_bytes
        for line in self.sets[tag % self.num_sets]:
            if line.valid and line.tag == tag:
                line.dirty = True
                return True
        return False

    def flush(self):
        """Invalidate every line; returns the number of dirty lines
        dropped (writeback/flush accounting)."""
        dirty = 0
        for ways in self.sets:
            for line in ways:
                if line.valid and line.dirty:
                    dirty += 1
                line.valid = False
                line.dirty = False
        return dirty

    @property
    def accesses(self):
        return self.hits + self.misses

    def stats(self):
        """Per-level counters, keyed by this level's name."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "writebacks": self.writebacks,
        }
