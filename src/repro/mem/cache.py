"""Set-associative cache timing model.

Functional data lives in :class:`repro.emu.memory.SparseMemory`; caches
only track *presence* to derive access latencies (a standard decoupling
in execution-driven simulators). Writeback/write-allocate with true LRU.
"""


class _Line:
    __slots__ = ("tag", "valid", "dirty", "lru")

    def __init__(self):
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.lru = 0


class Cache:
    """One cache level."""

    def __init__(self, name, size_bytes, assoc, line_bytes=64, latency=3):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("cache size must be a multiple of way size")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.sets = [[_Line() for _ in range(assoc)]
                     for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, addr):
        line_addr = addr // self.line_bytes
        return self.sets[line_addr % self.num_sets], line_addr

    def lookup(self, addr):
        """True on hit; updates LRU."""
        self._tick += 1
        ways, tag = self._locate(addr)
        for line in ways:
            if line.valid and line.tag == tag:
                line.lru = self._tick
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, addr, dirty=False):
        """Install the line; returns True if a dirty victim was evicted."""
        self._tick += 1
        ways, tag = self._locate(addr)
        for line in ways:
            if line.valid and line.tag == tag:
                line.lru = self._tick
                line.dirty = line.dirty or dirty
                return False
        victim = min(ways, key=lambda l: (l.valid, l.lru))
        wrote_back = victim.valid and victim.dirty
        if wrote_back:
            self.writebacks += 1
        victim.tag = tag
        victim.valid = True
        victim.dirty = dirty
        victim.lru = self._tick
        return wrote_back

    def mark_dirty(self, addr):
        ways, tag = self._locate(addr)
        for line in ways:
            if line.valid and line.tag == tag:
                line.dirty = True
                return True
        return False

    def flush(self):
        for ways in self.sets:
            for line in ways:
                line.valid = False
                line.dirty = False

    @property
    def accesses(self):
        return self.hits + self.misses
