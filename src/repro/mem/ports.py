"""Port-based memory system (``mem.model = "ported"``).

One shared, unified L2 serves two L1s — an L1I and an L1D, both plain
:class:`repro.mem.cache.Cache` instances — through typed request ports.
Each port owns a bounded :class:`MSHRFile`: an outstanding miss
allocates an entry keyed by line address that holds the fill's
completion cycle, a second miss to the same line *merges* onto the
existing entry instead of re-requesting, and when every MSHR is busy
the port stalls the request until the earliest fill lands. Requests
return absolute completion cycles, so two independent misses issued on
nearby cycles overlap — the memory-level parallelism the flat model's
synchronous ``access() → latency`` probe cannot express.

Timing simplification: fills are applied *eagerly* (tags update at
request time, the MSHR entry carries the time the data arrives). That
is why the MSHR merge check runs before the L1 lookup — an eagerly
filled line would otherwise fake an L1 hit while its fill is still in
flight. Squashing the requesting instruction does not deallocate the
entry: the fill completes regardless, which is precisely how wrong-path
misses warm the hierarchy for the correct path (and for MSSR's reuse of
squashed-stream results).

The L1I is built with ``latency=0``: its hit latency is already part of
``frontend.fetch_latency``, so a port request that hits L1I completes
on the issuing cycle and only L2/DRAM round-trips add fetch delay —
matching the flat ``InstructionCache`` contract of "0 extra on hit".
"""

from repro.mem.cache import Cache


class MSHRFile:
    """Bounded set of outstanding line misses for one port."""

    __slots__ = ("capacity", "entries", "merges", "stalls", "peak")

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self.entries = {}  # line address -> absolute fill completion cycle
        self.merges = 0
        self.stalls = 0
        self.peak = 0

    def drain(self, cycle):
        """Retire every entry whose fill has completed by ``cycle``."""
        if self.entries:
            done = [line for line, c in self.entries.items() if c <= cycle]
            for line in done:
                del self.entries[line]

    def pending(self, line_addr):
        """Completion cycle of an in-flight fill for the line, or None."""
        return self.entries.get(line_addr)

    def full(self):
        return len(self.entries) >= self.capacity

    def earliest(self):
        return min(self.entries.values())

    def allocate(self, line_addr, completion):
        self.entries[line_addr] = completion
        if len(self.entries) > self.peak:
            self.peak = len(self.entries)

    def occupancy(self):
        return len(self.entries)

    def stats(self):
        return {
            "merges": self.merges,
            "stalls": self.stalls,
            "peak": self.peak,
        }


class MemPort:
    """Typed request interface from one L1 into the shared hierarchy.

    ``request(cycle, addr, ...)`` returns the absolute cycle the data is
    available. Bandwidth is modeled as ``ports`` requests per cycle:
    request ``k`` issued on one cycle starts ``k // ports`` cycles
    later. When ``obs`` is set, every request emits a ``MemAccessEvent``
    and maintains the ``mem_*`` counters (the D-port; the I-port goes
    through the icache adapter's own counters instead).
    """

    __slots__ = ("name", "l1", "l2", "dram_latency", "line_bytes",
                 "mshrs", "ports", "dram_accesses",
                 "_bw_cycle", "_bw_used", "obs")

    def __init__(self, name, l1, l2, dram_latency, mshrs=8, ports=2,
                 obs=None):
        self.name = name
        self.l1 = l1
        self.l2 = l2
        self.dram_latency = dram_latency
        self.line_bytes = l1.line_bytes
        self.mshrs = MSHRFile(mshrs)
        self.ports = ports
        self.dram_accesses = 0
        self._bw_cycle = -1
        self._bw_used = 0
        self.obs = obs

    def _fill_l1(self, addr, dirty):
        """Install in L1, pushing a dirty victim's state into L2."""
        if self.l1.fill(addr, dirty=dirty) \
                and self.l1.last_victim_line is not None:
            victim_addr = self.l1.last_victim_line * self.line_bytes
            if not self.l2.mark_dirty(victim_addr):
                self.l2.fill(victim_addr, dirty=True)

    def request(self, cycle, addr, is_write=False, seq=None):
        """Issue a load/store probe; returns the completion cycle."""
        mshrs = self.mshrs
        mshrs.drain(cycle)

        # Port bandwidth: the (k+1)-th request of a cycle starts
        # k // ports cycles later.
        if cycle == self._bw_cycle:
            self._bw_used += 1
        else:
            self._bw_cycle = cycle
            self._bw_used = 1
        start = cycle + (self._bw_used - 1) // self.ports

        line_addr = addr // self.line_bytes
        # Merge check must precede the L1 lookup: fills are eager, so a
        # line with an in-flight fill already has valid L1 tags.
        pending = mshrs.pending(line_addr)
        if pending is not None and pending > start:
            mshrs.merges += 1
            if is_write:
                self.l1.mark_dirty(addr)
            completion = pending if pending > start + self.l1.latency \
                else start + self.l1.latency
            if self.obs is not None:
                self.obs.mem_access(
                    cycle, seq, addr, is_write, "mshr",
                    completion - cycle, mshrs.occupancy(), True)
            return completion

        if self.l1.lookup(addr):
            if is_write:
                self.l1.mark_dirty(addr)
            completion = start + self.l1.latency
            if self.obs is not None:
                self.obs.mem_access(
                    cycle, seq, addr, is_write, "l1",
                    completion - cycle, mshrs.occupancy(), False)
            return completion

        # L1 miss: need an MSHR. With all entries busy the request
        # waits for the earliest in-flight fill to land.
        if mshrs.full():
            mshrs.stalls += 1
            if self.obs is not None:
                self.obs.mem_mshr_stall()
            wait = mshrs.earliest()
            if wait > start:
                start = wait
            mshrs.drain(start)

        if self.l2.lookup(addr):
            level = "l2"
            completion = start + self.l2.latency
        else:
            level = "dram"
            self.dram_accesses += 1
            self.l2.fill(addr, dirty=is_write)
            completion = start + self.dram_latency
        self._fill_l1(addr, is_write)
        mshrs.allocate(line_addr, completion)
        if self.obs is not None:
            self.obs.mem_access(
                cycle, seq, addr, is_write, level,
                completion - cycle, mshrs.occupancy(), False)
        return completion


class PortedICache:
    """Drop-in for ``InstructionCache`` backed by the I-port.

    ``access(start_pc, end_pc, cycle)`` returns the *extra* fetch delay
    for the block (0 when every line hits L1I), charging the worst line
    in the block, and keeps the ``icache_accesses``/``icache_misses``
    counters through the same obs helper as the flat icache.
    """

    __slots__ = ("port", "obs", "line_bytes")

    def __init__(self, port, obs=None):
        self.port = port
        self.obs = obs
        self.line_bytes = port.line_bytes

    def access(self, start_pc, end_pc, cycle=0):
        line_bytes = self.line_bytes
        line = (start_pc // line_bytes) * line_bytes
        completion = cycle
        hit = True
        while line <= end_pc:
            resident = self.port.l1.probe(line)
            done = self.port.request(cycle, line)
            if done > completion:
                completion = done
            if not resident:
                hit = False
            line += line_bytes
        delay = completion - cycle
        if self.obs is not None:
            self.obs.icache_access(start_pc, end_pc, hit, delay)
        return delay

    def flush(self):
        """Pipeline flushes don't invalidate cache contents."""


class PortedMemorySystem:
    """L1I + L1D (one :class:`Cache` class) behind one shared L2.

    Exposes the same ``warm``/``stats`` surface as the flat
    ``MemoryHierarchy`` so the sampling layer and harness treat the two
    models interchangeably; the pipeline reaches the timing model
    through ``dport``/``iport`` instead of synchronous ``access``.
    """

    def __init__(self, *, line_bytes=64,
                 l1i_size=32 * 1024, l1i_assoc=4,
                 l1d_size=64 * 1024, l1d_assoc=4, l1d_latency=3,
                 l2_size=2 * 1024 * 1024, l2_assoc=8, l2_latency=12,
                 dram_latency=120, mshrs=8, ports=2, obs=None):
        self.line_bytes = line_bytes
        self.dram_latency = dram_latency
        # L1I hit latency is subsumed by frontend.fetch_latency, hence
        # latency=0 (an L1I hit adds no extra fetch delay).
        self.l1i = Cache("L1I", l1i_size, l1i_assoc, line_bytes, 0)
        self.l1d = Cache("L1D", l1d_size, l1d_assoc, line_bytes,
                         l1d_latency)
        self.l2 = Cache("L2", l2_size, l2_assoc, line_bytes, l2_latency)
        self.dport = MemPort("dport", self.l1d, self.l2, dram_latency,
                             mshrs=mshrs, ports=ports, obs=obs)
        self.iport = MemPort("iport", self.l1i, self.l2, dram_latency,
                             mshrs=mshrs, ports=ports, obs=None)
        self.icache = PortedICache(self.iport, obs=obs)

    @property
    def dram_accesses(self):
        return self.dport.dram_accesses + self.iport.dram_accesses

    def _warm_level(self, l1, addr, dirty):
        """Functional warmup: probe/fill L1+L2 with no MSHR or event
        side effects (mirrors the flat model's warm path)."""
        if l1.lookup(addr):
            if dirty:
                l1.mark_dirty(addr)
            return l1.latency
        hit_l2 = self.l2.lookup(addr)
        if not hit_l2:
            self.l2.fill(addr, dirty=dirty)
        if l1.fill(addr, dirty=dirty) and l1.last_victim_line is not None:
            victim_addr = l1.last_victim_line * self.line_bytes
            if not self.l2.mark_dirty(victim_addr):
                self.l2.fill(victim_addr, dirty=True)
        return self.l2.latency if hit_l2 else self.dram_latency

    def warm(self, addr, is_write=False):
        """Warm the data side (sampling-layer functional warmup)."""
        self._warm_level(self.l1d, addr, bool(is_write))

    def warm_inst(self, pc):
        """Warm the instruction side for one fetch address."""
        self._warm_level(self.l1i, pc, False)

    def access(self, addr, is_write=False):
        """Synchronous compat probe (flat-equivalent first-hit latency);
        the pipeline proper should use ``dport.request``."""
        return self._warm_level(self.l1d, addr, bool(is_write))

    def stats(self):
        return {
            "l1i_hits": self.l1i.hits,
            "l1i_misses": self.l1i.misses,
            "l1d_hits": self.l1d.hits,
            "l1d_misses": self.l1d.misses,
            "l1d_writebacks": self.l1d.writebacks,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "l2_writebacks": self.l2.writebacks,
            "dram_accesses": self.dram_accesses,
            "mshr_merges": self.dport.mshrs.merges + self.iport.mshrs.merges,
            "mshr_stalls": self.dport.mshrs.stalls + self.iport.mshrs.stalls,
            "mshr_peak": max(self.dport.mshrs.peak, self.iport.mshrs.peak),
        }
