"""Lockstep differential checking of the O3 core against the emulator.

The end-of-run cosimulation tests compare final registers and memory,
which tells you *that* a run diverged but not *where*. This checker
replays the golden-model :class:`~repro.emu.emulator.Emulator` one
instruction per O3 :class:`~repro.obs.events.CommitEvent` and compares
every commit as it happens — committed PC, destination value, store
address and data — so a correctness bug is localised to the exact first
divergent commit, together with the last-N-events ring-buffer dump
leading up to it.
"""

from repro.emu.emulator import Emulator
from repro.obs.events import CommitEvent
from repro.obs.sinks import CallbackSink, RingBufferSink
from repro.utils.bits import wrap64


class DivergenceReport:
    """The first point where the core and the golden model disagree."""

    __slots__ = ("commit_index", "cycle", "seq", "pc", "field",
                 "expected", "actual", "events")

    def __init__(self, commit_index, cycle, seq, pc, field, expected,
                 actual, events=()):
        self.commit_index = commit_index   # 0-based committed-inst index
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.field = field                 # pc | reg-value | store-addr |
        self.expected = expected           # store-data | final-state
        self.actual = actual
        self.events = list(events)

    def format(self):
        lines = [
            "lockstep divergence at commit #%d (cycle %s, seq %s, "
            "pc %s): %s expected %r, core committed %r"
            % (self.commit_index, self.cycle, self.seq,
               "%#x" % self.pc if isinstance(self.pc, int) else self.pc,
               self.field, self.expected, self.actual)]
        if self.events:
            lines.append("last %d events:" % len(self.events))
            lines.extend("  " + line for line in self.events)
        return "\n".join(lines)

    def __repr__(self):
        return "<Divergence commit=%d pc=%r field=%s>" % (
            self.commit_index, self.pc, self.field)


class LockstepDivergence(Exception):
    """Raised mid-simulation when a commit disagrees with the emulator."""

    def __init__(self, report):
        self.report = report
        super().__init__(report.format())


class LockstepResult:
    """Outcome of :func:`run_lockstep`."""

    __slots__ = ("result", "divergence", "commits")

    def __init__(self, result, divergence, commits):
        self.result = result          # SimResult, or None on divergence
        self.divergence = divergence  # DivergenceReport or None
        self.commits = commits        # commits compared

    @property
    def ok(self):
        return self.divergence is None


class _CommitChecker:
    """Steps the emulator once per CommitEvent and compares."""

    def __init__(self, program):
        self.program = program
        self.emu = Emulator(program)
        self.commits = 0

    def _diverge(self, event, field, expected, actual):
        raise LockstepDivergence(DivergenceReport(
            self.commits, event.cycle, event.seq, event.pc, field,
            expected, actual))

    def on_event(self, event):
        if type(event) is not CommitEvent:
            return
        emu = self.emu
        if emu.halted:
            self._diverge(event, "pc", "<halted>", event.pc)
        if event.pc != emu.pc:
            self._diverge(event, "pc", emu.pc, event.pc)
        inst = self.program.inst_at(emu.pc)
        if inst.is_store:
            addr = wrap64(emu.regs[inst.srcs[1]] + inst.imm)
            if event.mem_addr != addr:
                self._diverge(event, "store-addr", addr, event.mem_addr)
            data = emu.regs[inst.srcs[0]] \
                & ((1 << (inst.info.mem_size * 8)) - 1)
            if event.store_data != data:
                self._diverge(event, "store-data", data, event.store_data)
        emu.step()
        if event.dest is not None and event.result != emu.regs[event.dest]:
            self._diverge(event, "reg-value", emu.regs[event.dest],
                          event.result)
        self.commits += 1


def run_lockstep(program, config=None, reuse_scheme=None, max_cycles=None,
                 ring_capacity=256, core_factory=None):
    """Run ``program`` on the O3 core with commit-by-commit checking.

    Returns a :class:`LockstepResult`; on divergence ``result`` is None
    and ``divergence`` carries the first divergent commit plus the
    ring-buffer event dump. ``core_factory(program, config,
    reuse_scheme=...)`` lets tests substitute an instrumented (e.g.
    fault-injecting) core.
    """
    from repro.pipeline.core import O3Core

    factory = core_factory or O3Core
    core = factory(program, config, reuse_scheme=reuse_scheme)
    ring = core.obs.attach(RingBufferSink(ring_capacity))
    checker = _CommitChecker(program)
    core.obs.attach(CallbackSink(checker.on_event))

    try:
        result = core.run(max_cycles=max_cycles)
    except LockstepDivergence as exc:
        exc.report.events = ring.format_lines()
        return LockstepResult(None, exc.report, checker.commits)

    divergence = None
    if result.regs != checker.emu.regs:
        divergence = DivergenceReport(
            checker.commits, core.cycle, None, None, "final-state",
            checker.emu.regs, result.regs, ring.format_lines())
    elif result.memory != checker.emu.memory:
        divergence = DivergenceReport(
            checker.commits, core.cycle, None, None, "final-state",
            "<emulator memory>", "<core memory>", ring.format_lines())
    return LockstepResult(result if divergence is None else None,
                          divergence, checker.commits)
