"""Typed pipeline event records.

One event class per observable microarchitectural moment. Events are
plain ``__slots__`` records so constructing them is cheap, and every
field is a JSON-native scalar (or a flat tuple of scalars), so a record
serialises losslessly through :meth:`Event.as_dict` into the JSONL trace
and back out of post-mortem dumps.

Events are only constructed when the owning
:class:`~repro.obs.bus.Observability` bus has at least one sink attached
(``bus.enabled``); the disabled simulation path never allocates them.
"""


class Event:
    """Base event record. ``etype`` names the event in traces."""

    __slots__ = ()
    etype = "event"

    def as_dict(self):
        """Flat JSON-able dict, ``type`` first."""
        data = {"type": self.etype}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                data[name] = getattr(self, name)
        return data

    def __repr__(self):
        fields = " ".join(
            "%s=%r" % (k, v) for k, v in self.as_dict().items()
            if k != "type")
        return "<%s %s>" % (self.etype, fields)


class FtqEnqueueEvent(Event):
    """The BPU appended one predicted block to the fetch target queue
    (decoupled frontend only). ``occupancy`` counts undelivered FTQ
    entries *after* this enqueue (the BPU's run-ahead distance)."""

    __slots__ = ("cycle", "block_id", "start_pc", "pred_next_pc",
                 "occupancy")
    etype = "ftq-enqueue"

    def __init__(self, cycle, block_id, start_pc, pred_next_pc, occupancy):
        self.cycle = cycle
        self.block_id = block_id
        self.start_pc = start_pc
        self.pred_next_pc = pred_next_pc
        self.occupancy = occupancy


class FetchStallEvent(Event):
    """The fetch stage could not deliver a block this cycle (decoupled
    frontend only). ``reason`` is ``ftq-empty`` (BPU starvation),
    ``redirect`` (within the post-squash redirect bubble) or ``icache``
    (the FTQ head has not aged ``fetch_latency`` cycles yet)."""

    __slots__ = ("cycle", "reason")
    etype = "fetch-stall"

    def __init__(self, cycle, reason):
        self.cycle = cycle
        self.reason = reason


class IcacheAccessEvent(Event):
    """The fetch pipeline looked one prediction block up in the
    instruction cache (decoupled frontend with ``frontend.icache_lines``
    set). ``hit`` is False when any line of the block missed; ``delay``
    is the extra fetch latency charged (0 on a hit)."""

    __slots__ = ("cycle", "start_pc", "end_pc", "hit", "delay")
    etype = "icache-access"

    def __init__(self, cycle, start_pc, end_pc, hit, delay):
        self.cycle = cycle
        self.start_pc = start_pc
        self.end_pc = end_pc
        self.hit = hit
        self.delay = delay


class MemAccessEvent(Event):
    """The L1D port served one load/store request (``mem.model =
    "ported"`` only). ``level`` names where the request was satisfied —
    ``l1`` / ``l2`` / ``dram``, or ``mshr`` when it merged onto an
    in-flight same-line miss. ``latency`` is issue-to-completion in
    cycles; ``outstanding`` the port's MSHR occupancy after the request
    (>1 means overlapping misses, i.e. real MLP)."""

    __slots__ = ("cycle", "seq", "addr", "is_write", "level", "latency",
                 "outstanding", "merged")
    etype = "mem-access"

    def __init__(self, cycle, seq, addr, is_write, level, latency,
                 outstanding, merged):
        self.cycle = cycle
        self.seq = seq
        self.addr = addr
        self.is_write = is_write
        self.level = level
        self.latency = latency
        self.outstanding = outstanding
        self.merged = merged


class WrongPathCaptureEvent(Event):
    """FTQ-sourced MSSR capture handed one squashed prediction block to
    the reuse scheme at branch-squash time (``mssr.ftq_capture``).
    ``pending`` is True for blocks that were flushed before delivery —
    wrong-path code decode-time capture never sees."""

    __slots__ = ("cycle", "block_id", "start_pc", "end_pc", "num_insts",
                 "pending")
    etype = "wrong-path-capture"

    def __init__(self, cycle, block_id, start_pc, end_pc, num_insts,
                 pending):
        self.cycle = cycle
        self.block_id = block_id
        self.start_pc = start_pc
        self.end_pc = end_pc
        self.num_insts = num_insts
        self.pending = pending


class FetchEvent(Event):
    """One prediction block entered the pipeline.

    ``insts`` is a tuple of ``(seq, pc, text)`` triples, one per fetched
    instruction in program order.
    """

    __slots__ = ("cycle", "block_id", "start_pc", "end_pc", "insts")
    etype = "fetch"

    def __init__(self, cycle, block_id, start_pc, end_pc, insts):
        self.cycle = cycle
        self.block_id = block_id
        self.start_pc = start_pc
        self.end_pc = end_pc
        self.insts = insts


class RenameEvent(Event):
    """An instruction passed rename (normally or via reuse)."""

    __slots__ = ("cycle", "seq", "pc", "op", "dest_preg", "old_preg",
                 "srcs_preg", "src_rgids", "dest_rgid", "reused")
    etype = "rename"

    def __init__(self, cycle, seq, pc, op, dest_preg, old_preg, srcs_preg,
                 src_rgids, dest_rgid, reused):
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.op = op
        self.dest_preg = dest_preg
        self.old_preg = old_preg
        self.srcs_preg = srcs_preg
        self.src_rgids = src_rgids
        self.dest_rgid = dest_rgid
        self.reused = reused


class IssueEvent(Event):
    """An instruction was selected by an issue queue."""

    __slots__ = ("cycle", "seq", "pc", "op")
    etype = "issue"

    def __init__(self, cycle, seq, pc, op):
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.op = op


class WritebackEvent(Event):
    """An instruction finished execution and wrote its result."""

    __slots__ = ("cycle", "seq", "pc", "op", "dest_preg", "result",
                 "verify")
    etype = "writeback"

    def __init__(self, cycle, seq, pc, op, dest_preg, result, verify):
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.op = op
        self.dest_preg = dest_preg
        self.result = result
        self.verify = verify


class CommitEvent(Event):
    """An instruction retired from the ROB head.

    Carries everything a differential checker needs to validate the
    commit against a golden model: the architectural destination and its
    value for register writers, and address/data for stores. ``branch``
    is ``None`` for non-control instructions, else one of ``cond`` /
    ``indirect`` / ``direct``.
    """

    __slots__ = ("cycle", "seq", "pc", "op", "dest", "result", "mem_addr",
                 "mem_size", "store_data", "branch", "mispredicted")
    etype = "commit"

    def __init__(self, cycle, seq, pc, op, dest, result, mem_addr,
                 mem_size, store_data, branch, mispredicted):
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.op = op
        self.dest = dest
        self.result = result
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.store_data = store_data
        self.branch = branch
        self.mispredicted = mispredicted


class SquashEvent(Event):
    """A squash was applied at cycle end.

    ``kind`` is ``branch`` / ``replay`` / ``verify``. ``squashed_seqs``
    are the renamed (ROB) instructions rolled back, ``dropped_seqs`` the
    not-yet-renamed decode-queue instructions discarded with them.
    """

    __slots__ = ("cycle", "kind", "trigger_seq", "trigger_pc",
                 "boundary_seq", "redirect_pc", "squashed_seqs",
                 "dropped_seqs")
    etype = "squash"

    def __init__(self, cycle, kind, trigger_seq, trigger_pc, boundary_seq,
                 redirect_pc, squashed_seqs, dropped_seqs):
        self.cycle = cycle
        self.kind = kind
        self.trigger_seq = trigger_seq
        self.trigger_pc = trigger_pc
        self.boundary_seq = boundary_seq
        self.redirect_pc = redirect_pc
        self.squashed_seqs = squashed_seqs
        self.dropped_seqs = dropped_seqs


class ReconvergeEvent(Event):
    """The corrected fetch stream reconverged with a squashed stream.

    ``reconv_kind`` follows the paper's classification: ``simple`` /
    ``software`` / ``hardware``; ``distance`` is the stream distance
    (1 = most recent squash).
    """

    __slots__ = ("cycle", "stream_idx", "reconv_pc", "distance",
                 "reconv_kind", "trigger_seq")
    etype = "reconverge"

    def __init__(self, cycle, stream_idx, reconv_pc, distance,
                 reconv_kind, trigger_seq):
        self.cycle = cycle
        self.stream_idx = stream_idx
        self.reconv_pc = reconv_pc
        self.distance = distance
        self.reconv_kind = reconv_kind
        self.trigger_seq = trigger_seq


class ReuseAttemptEvent(Event):
    """A rename-time reuse test (``outcome="test"``) or applied reuse
    (``outcome="hit"``). MSSR attempts carry the squash-log location and
    the RGIDs compared by the reuse test."""

    __slots__ = ("cycle", "seq", "pc", "outcome", "stream_idx",
                 "entry_idx", "src_rgids", "entry_rgids", "is_load")
    etype = "reuse"

    def __init__(self, cycle, seq, pc, outcome, stream_idx, entry_idx,
                 src_rgids, entry_rgids, is_load):
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.outcome = outcome
        self.stream_idx = stream_idx
        self.entry_idx = entry_idx
        self.src_rgids = src_rgids
        self.entry_rgids = entry_rgids
        self.is_load = is_load


class IntervalEvent(Event):
    """A sampled-simulation interval began or ended.

    ``phase`` is ``begin`` / ``end``; ``index`` is the interval's
    position in the full dynamic instruction stream, ``start_inst`` its
    first instruction number, and ``weight`` the SimPoint cluster weight
    it represents. Sinks see every interval of a sampled run on one bus,
    so traces (and per-interval lockstep checks) can segment the stream.
    """

    __slots__ = ("cycle", "phase", "index", "start_inst", "num_insts",
                 "weight")
    etype = "interval"

    def __init__(self, cycle, phase, index, start_inst, num_insts, weight):
        self.cycle = cycle
        self.phase = phase
        self.index = index
        self.start_inst = start_inst
        self.num_insts = num_insts
        self.weight = weight


class JobStateEvent(Event):
    """A service job changed state (simulation-as-a-service layer).

    The one event class whose stream is *job-grained* rather than
    cycle-grained: ``ts`` is wall-clock time, not a simulated cycle.
    The broker publishes these through its fan-out hub and the HTTP
    ``/events`` stream ships ``as_dict()`` verbatim, so live progress
    uses the same lossless record serialisation as pipeline traces.
    ``state`` is one of the store's job states; ``detail`` optionally
    carries the cause (``cache``, ``heartbeat stale``, an error tail).
    """

    __slots__ = ("ts", "job_hash", "state", "detail")
    etype = "job-state"

    def __init__(self, ts, job_hash, state, detail=None):
        self.ts = ts
        self.job_hash = job_hash
        self.state = state
        self.detail = detail


#: Every concrete event class, in pipeline order (trace documentation).
EVENT_TYPES = (FtqEnqueueEvent, FetchStallEvent, IcacheAccessEvent,
               MemAccessEvent, FetchEvent, RenameEvent, IssueEvent,
               WritebackEvent, CommitEvent, SquashEvent,
               WrongPathCaptureEvent, ReconvergeEvent, ReuseAttemptEvent,
               IntervalEvent, JobStateEvent)


def format_event(event):
    """One-line human rendering used by ring-buffer dumps."""
    data = event.as_dict()
    cycle = data.pop("cycle", None)
    kind = data.pop("type")
    pc = data.pop("pc", None)
    head = "[%8s] %-10s" % (cycle if cycle is not None else "-", kind)
    if pc is not None:
        head += " pc=%#x" % pc
    body = " ".join("%s=%s" % (k, _fmt(k, v)) for k, v in data.items()
                    if v is not None and v != ())
    return (head + " " + body).rstrip()


def _fmt(key, value):
    if isinstance(value, int) and key.endswith("_pc"):
        return "%#x" % value
    return str(value)
