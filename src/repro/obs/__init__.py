"""Unified observability layer: typed event bus, sinks, lockstep checking.

The simulator explains itself through one funnel:

* :mod:`repro.obs.events` — typed ``__slots__`` event records for every
  pipeline moment (fetch, rename, issue, writeback, commit, squash,
  reconvergence, reuse attempts);
* :mod:`repro.obs.bus` — the :class:`Observability` bus every
  :class:`~repro.pipeline.core.O3Core` owns: its ``stats`` is the run's
  :class:`~repro.pipeline.stats.SimStats` (now a metrics *view* kept by
  the bus helpers), and attached sinks receive the event stream;
* :mod:`repro.obs.sinks` — ring buffer (post-mortems), JSONL trace,
  Konata pipeline-view export, and the event-derived metrics verifier;
* :mod:`repro.obs.lockstep` — commit-by-commit differential checking
  against the golden-model emulator, reporting the first divergent
  commit.

Quick trace::

    from repro.obs import Observability, JsonlTraceSink
    obs = Observability(sinks=[JsonlTraceSink("trace.jsonl")])
    O3Core(prog, mssr_config(), obs=obs).run()
    obs.close()
"""

from repro.obs.bus import Observability
from repro.obs.events import (
    EVENT_TYPES,
    CommitEvent,
    Event,
    FetchEvent,
    IntervalEvent,
    IssueEvent,
    ReconvergeEvent,
    RenameEvent,
    ReuseAttemptEvent,
    SquashEvent,
    WritebackEvent,
    format_event,
)
from repro.obs.sinks import (
    CallbackSink,
    JsonlTraceSink,
    KonataSink,
    MetricsSink,
    RingBufferSink,
    Sink,
)
from repro.obs.lockstep import (
    DivergenceReport,
    LockstepDivergence,
    LockstepResult,
    run_lockstep,
)

__all__ = [
    "Observability",
    "Event",
    "EVENT_TYPES",
    "FetchEvent",
    "IntervalEvent",
    "RenameEvent",
    "IssueEvent",
    "WritebackEvent",
    "CommitEvent",
    "SquashEvent",
    "ReconvergeEvent",
    "ReuseAttemptEvent",
    "format_event",
    "Sink",
    "RingBufferSink",
    "CallbackSink",
    "JsonlTraceSink",
    "KonataSink",
    "MetricsSink",
    "run_lockstep",
    "LockstepResult",
    "LockstepDivergence",
    "DivergenceReport",
]
