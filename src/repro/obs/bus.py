"""The pipeline event bus and its metrics view.

An :class:`Observability` instance is the single funnel through which
the simulator explains itself. It plays two roles:

* **metrics view** — it owns the run's
  :class:`~repro.pipeline.stats.SimStats` and exposes one typed helper
  per countable moment (``commit``, ``squash``, ``reconverge``, ...).
  Call sites never poke counters directly any more, so a counter and
  its corresponding event can never drift apart.
* **event bus** — when at least one sink is attached (``enabled``),
  the same helpers (plus the guarded ``emit_*`` helpers for the
  counter-less stages) construct typed event records and fan them out
  to every sink.

The disabled path is the default and is kept near-zero-overhead: no
event objects are built, and hot stages guard emission with a single
``if core.obs.enabled`` attribute test.
"""

from repro.obs.events import (
    CommitEvent,
    FetchEvent,
    FetchStallEvent,
    FtqEnqueueEvent,
    IcacheAccessEvent,
    IntervalEvent,
    IssueEvent,
    MemAccessEvent,
    ReconvergeEvent,
    RenameEvent,
    ReuseAttemptEvent,
    SquashEvent,
    WritebackEvent,
    WrongPathCaptureEvent,
)
from repro.pipeline.stats import SimStats


class Observability:
    """Typed event bus + the :class:`SimStats` metrics view over it."""

    __slots__ = ("stats", "sinks", "enabled", "cycle")

    def __init__(self, stats=None, sinks=()):
        self.stats = stats if stats is not None else SimStats()
        self.sinks = []
        self.enabled = False
        self.cycle = 0
        for sink in sinks:
            self.attach(sink)

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def attach(self, sink):
        """Attach a sink; enables event emission. Returns the sink."""
        self.sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink):
        """Detach a sink; emission stops when the last one is removed."""
        self.sinks.remove(sink)
        self.enabled = bool(self.sinks)

    def close(self):
        """Close every sink (flush trace files)."""
        for sink in self.sinks:
            sink.close()

    def emit(self, event):
        """Dispatch one event record to every sink."""
        for sink in self.sinks:
            sink.emit(event)

    def dump_recent(self):
        """Formatted lines from any attached ring-buffer sinks (newest
        last); empty when no ring buffer is attached."""
        lines = []
        for sink in self.sinks:
            dump = getattr(sink, "format_lines", None)
            if dump is not None:
                lines.extend(dump())
        return lines

    # ------------------------------------------------------------------
    # Counter-bearing helpers (always called; events only when enabled)
    # ------------------------------------------------------------------
    def ftq_enqueue(self, block, occupancy):
        self.stats.ftq_enqueues += 1
        if self.enabled:
            self.emit(FtqEnqueueEvent(self.cycle, block.block_id,
                                      block.start_pc, block.pred_next_pc,
                                      occupancy))

    def fetch_stall(self, reason):
        stats = self.stats
        stats.fetch_stalls += 1
        stats.fetch_stall_reasons[reason] = \
            stats.fetch_stall_reasons.get(reason, 0) + 1
        if self.enabled:
            self.emit(FetchStallEvent(self.cycle, reason))

    def icache_access(self, start_pc, end_pc, hit, delay):
        stats = self.stats
        stats.icache_accesses += 1
        if not hit:
            stats.icache_misses += 1
        if self.enabled:
            self.emit(IcacheAccessEvent(self.cycle, start_pc, end_pc, hit,
                                        delay))

    def mem_access(self, cycle, seq, addr, is_write, level, latency,
                   outstanding, merged):
        """One L1D-port request (ported memory model only). ``level``
        is ``l1`` / ``l2`` / ``dram`` / ``mshr`` (same-line merge)."""
        stats = self.stats
        stats.mem_accesses += 1
        if level == "l1":
            stats.mem_l1d_hits += 1
        elif level == "l2":
            stats.mem_l1d_misses += 1
            stats.mem_l2_hits += 1
        elif level == "dram":
            stats.mem_l1d_misses += 1
            stats.mem_l2_misses += 1
            stats.mem_dram_accesses += 1
        else:  # mshr merge
            stats.mem_mshr_merges += 1
        if outstanding > stats.mem_mshr_peak:
            stats.mem_mshr_peak = outstanding
        if self.enabled:
            self.emit(MemAccessEvent(cycle, seq, addr, is_write, level,
                                     latency, outstanding, merged))

    def mem_mshr_stall(self):
        """An L1D-port request found every MSHR busy and waited."""
        self.stats.mem_mshr_stalls += 1

    def mem_wrong_path(self, count):
        """``count`` squashed (wrong-path) instructions had issued a
        memory access before the squash (ported model only)."""
        self.stats.mem_wrong_path_insts += count

    def wrong_path_capture(self, block, pending):
        self.stats.wpb_captures_ftq += 1
        if self.enabled:
            self.emit(WrongPathCaptureEvent(self.cycle, block.block_id,
                                            block.start_pc, block.end_pc,
                                            block.num_insts, pending))

    def fetch_block(self, block):
        self.stats.fetched_insts += block.num_insts
        if self.enabled:
            self.emit(FetchEvent(self.cycle, block.block_id,
                                 block.start_pc, block.end_pc,
                                 block.inst_summaries()))

    def commit(self, dyn):
        self.stats.committed_insts += 1
        if self.enabled:
            inst = dyn.inst
            branch = None
            if inst.is_branch:
                branch = ("cond" if inst.is_cond_branch else
                          "indirect" if inst.is_indirect else "direct")
            dest = inst.dest if inst.writes_reg else None
            self.emit(CommitEvent(
                self.cycle, dyn.seq, dyn.pc, inst.op.name, dest,
                dyn.result if dest is not None else None,
                dyn.mem_addr, dyn.mem_size,
                dyn.store_data if inst.is_store else None,
                branch, dyn.mispredicted))

    def cond_branch(self, mispredicted):
        self.stats.cond_branches += 1
        if mispredicted:
            self.stats.cond_mispredicts += 1

    def indirect_branch(self, mispredicted):
        self.stats.indirect_branches += 1
        if mispredicted:
            self.stats.indirect_mispredicts += 1

    def squash(self, kind, trigger, boundary_seq, redirect_pc, squashed,
               dropped_seqs):
        stats = self.stats
        if kind == "branch":
            stats.branch_squashes += 1
        stats.squashed_insts += len(squashed)
        if self.enabled:
            self.emit(SquashEvent(
                self.cycle, kind, trigger.seq, trigger.pc, boundary_seq,
                redirect_pc, tuple(dyn.seq for dyn in squashed),
                tuple(dropped_seqs)))

    def replay_violation(self, victim):
        self.stats.replay_squashes += 1

    def verify_flush(self, dyn):
        self.stats.verify_flushes += 1

    def reuse_test(self, dyn, stream_idx=None, entry_idx=None,
                   entry_rgids=None):
        self.stats.reuse_tests += 1
        if self.enabled:
            self.emit(ReuseAttemptEvent(
                self.cycle, dyn.seq, dyn.pc, "test", stream_idx,
                entry_idx, dyn.src_rgids, entry_rgids, dyn.is_load))

    def reuse_applied(self, dyn):
        self.stats.reuse_successes += 1
        if dyn.inst.is_load:
            self.stats.reused_loads += 1
        if self.enabled:
            tag = dyn.reuse_scheme_tag
            stream_idx, entry_idx = tag if isinstance(tag, tuple) \
                else (None, None)
            self.emit(ReuseAttemptEvent(
                self.cycle, dyn.seq, dyn.pc, "hit", stream_idx,
                entry_idx, dyn.src_rgids, None, dyn.is_load))

    def reconverge(self, stream_idx, reconv_pc, distance, reconv_kind,
                   trigger_seq):
        stats = self.stats
        stats.reconvergences += 1
        if reconv_kind == "simple":
            stats.reconv_simple += 1
        elif reconv_kind == "software":
            stats.reconv_software += 1
        else:
            stats.reconv_hardware += 1
        stats.record_stream_distance(distance)
        if self.enabled:
            self.emit(ReconvergeEvent(self.cycle, stream_idx, reconv_pc,
                                      distance, reconv_kind, trigger_seq))

    def wpb_timeout(self, stream_idx):
        self.stats.wpb_timeouts += 1

    def pressure_free(self):
        self.stats.squash_log_pressure_frees += 1

    def rgid_reset(self):
        self.stats.rgid_resets += 1

    def ri_insertion(self):
        self.stats.ri_insertions += 1

    def ri_replacement(self):
        self.stats.ri_replacements += 1

    def ri_invalidation(self):
        self.stats.ri_invalidations += 1

    def interval_boundary(self, phase, index, start_inst, num_insts,
                          weight):
        """Mark a sampled-simulation interval ``begin`` / ``end`` on the
        bus, so sinks can segment a sampled run's event stream."""
        if self.enabled:
            self.emit(IntervalEvent(self.cycle, phase, index, start_inst,
                                    num_insts, weight))

    # ------------------------------------------------------------------
    # Counter-less stage events (call sites guard on ``enabled``)
    # ------------------------------------------------------------------
    def emit_rename(self, dyn, reused):
        self.emit(RenameEvent(self.cycle, dyn.seq, dyn.pc,
                              dyn.inst.op.name, dyn.dest_preg,
                              dyn.old_preg, dyn.srcs_preg, dyn.src_rgids,
                              dyn.dest_rgid, reused))

    def emit_issue(self, dyn):
        self.emit(IssueEvent(self.cycle, dyn.seq, dyn.pc,
                             dyn.inst.op.name))

    def emit_writeback(self, dyn):
        self.emit(WritebackEvent(self.cycle, dyn.seq, dyn.pc,
                                 dyn.inst.op.name, dyn.dest_preg,
                                 dyn.result, dyn.verify_load))
