"""Pluggable event sinks.

* :class:`RingBufferSink` — bounded in-memory history, auto-dumped on
  :class:`~repro.pipeline.core.SimulationError` for post-mortems;
* :class:`JsonlTraceSink` — one JSON object per event, the machine-
  readable trace behind ``python -m repro.harness trace``;
* :class:`KonataSink` — Kanata/Konata pipeline-viewer log
  (https://github.com/shioyadan/Konata);
* :class:`MetricsSink` — recomputes a :class:`SimStats` purely from the
  event stream, proving the counters are a view over the events;
* :class:`CallbackSink` — adapter for in-process consumers (the
  lockstep checker).
"""

import collections
import json

from repro.obs.events import (
    CommitEvent,
    FetchEvent,
    FetchStallEvent,
    FtqEnqueueEvent,
    IcacheAccessEvent,
    IssueEvent,
    MemAccessEvent,
    ReconvergeEvent,
    RenameEvent,
    ReuseAttemptEvent,
    SquashEvent,
    WritebackEvent,
    WrongPathCaptureEvent,
    format_event,
)
from repro.pipeline.stats import SimStats


class Sink:
    """Base sink; ``emit`` receives every event in emission order."""

    def emit(self, event):
        raise NotImplementedError

    def close(self):
        """Flush and release resources (idempotent)."""


class RingBufferSink(Sink):
    """Keep the last ``capacity`` events for post-mortem dumps."""

    def __init__(self, capacity=2048):
        self.capacity = capacity
        self.events = collections.deque(maxlen=capacity)

    def emit(self, event):
        self.events.append(event)

    def snapshot(self):
        """The buffered events, oldest first."""
        return list(self.events)

    def format_lines(self):
        """Human-readable dump lines, oldest first."""
        return [format_event(event) for event in self.events]

    def clear(self):
        self.events.clear()


class CallbackSink(Sink):
    """Forward every event to a callable (in-process consumers)."""

    def __init__(self, callback):
        self.callback = callback

    def emit(self, event):
        self.callback(event)


class JsonlTraceSink(Sink):
    """Write one JSON object per event to a file or file-like object."""

    def __init__(self, target):
        if hasattr(target, "write"):
            self._file = target
            self._owns = False
            self.path = getattr(target, "name", None)
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
            self.path = target
        self.count = 0

    def emit(self, event):
        self._file.write(json.dumps(event.as_dict(),
                                    separators=(",", ":")))
        self._file.write("\n")
        self.count += 1

    def close(self):
        if self._owns and not self._file.closed:
            self._file.close()
        elif not self._owns:
            self._file.flush()


class KonataSink(Sink):
    """Export the pipeline view in the Kanata log format.

    Open the produced file in Konata to scrub through fetch/rename/
    issue/writeback/retire lanes, with squashed instructions shown as
    flushes — the paper's squash/reconverge choreography made visible.
    """

    #: Kanata stage labels per event type.
    _STAGES = {RenameEvent: "Rn", IssueEvent: "Is", WritebackEvent: "Wb"}

    def __init__(self, target):
        if hasattr(target, "write"):
            self._file = target
            self._owns = False
            self.path = getattr(target, "name", None)
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
            self.path = target
        self._file.write("Kanata\t0004\n")
        self._cycle = None
        self._stage = {}          # seq -> currently open stage label
        self._retired = 0

    # ------------------------------------------------------------------
    def _advance(self, cycle):
        if self._cycle is None:
            self._file.write("C=\t%d\n" % cycle)
        elif cycle > self._cycle:
            self._file.write("C\t%d\n" % (cycle - self._cycle))
        self._cycle = cycle

    def _open_stage(self, seq, stage):
        previous = self._stage.get(seq)
        if previous is not None:
            self._file.write("E\t%d\t0\t%s\n" % (seq, previous))
        self._file.write("S\t%d\t0\t%s\n" % (seq, stage))
        self._stage[seq] = stage

    def _finish(self, seq, flushed):
        previous = self._stage.pop(seq, None)
        if previous is not None:
            self._file.write("E\t%d\t0\t%s\n" % (seq, previous))
        self._retired += 1
        self._file.write("R\t%d\t%d\t%d\n"
                         % (seq, self._retired, 1 if flushed else 0))

    # ------------------------------------------------------------------
    def emit(self, event):
        self._advance(event.cycle)
        write = self._file.write
        if type(event) is FetchEvent:
            for seq, pc, text in event.insts:
                write("I\t%d\t%d\t0\n" % (seq, seq))
                write("L\t%d\t0\t%#x: %s\n" % (seq, pc, text))
                write("S\t%d\t0\tF\n" % seq)
                self._stage[seq] = "F"
        elif type(event) is SquashEvent:
            for seq in event.squashed_seqs:
                self._finish(seq, flushed=True)
            for seq in event.dropped_seqs:
                self._finish(seq, flushed=True)
        elif type(event) is CommitEvent:
            self._finish(event.seq, flushed=False)
        else:
            stage = self._STAGES.get(type(event))
            if stage is not None:
                self._open_stage(event.seq, stage)

    def close(self):
        if self._owns and not self._file.closed:
            self._file.close()
        elif not self._owns:
            self._file.flush()


class MetricsSink(Sink):
    """Rebuild :class:`SimStats` counters from the event stream alone.

    This is the executable definition of "``SimStats`` is a view over
    the event bus": for every counter that has a defining event, the
    value recomputed here must equal the live counter the bus maintained
    (:meth:`verify` returns the mismatches; tests assert none).
    """

    #: Counters recomputed by this sink (everything event-derived).
    DERIVED = (
        "committed_insts", "fetched_insts", "cond_branches",
        "cond_mispredicts", "indirect_branches", "indirect_mispredicts",
        "branch_squashes", "squashed_insts", "reuse_tests",
        "reuse_successes", "reused_loads", "reconvergences",
        "reconv_simple", "reconv_software", "reconv_hardware",
        "stream_distance_hist", "ftq_enqueues", "fetch_stalls",
        "fetch_stall_reasons", "icache_accesses", "icache_misses",
        "wpb_captures_ftq", "mem_accesses", "mem_l1d_hits",
        "mem_l1d_misses", "mem_l2_hits", "mem_l2_misses",
        "mem_dram_accesses", "mem_mshr_merges", "mem_mshr_peak",
    )

    def __init__(self):
        self.stats = SimStats()

    def emit(self, event):
        stats = self.stats
        kind = type(event)
        if kind is CommitEvent:
            stats.committed_insts += 1
            if event.branch == "cond":
                stats.cond_branches += 1
                if event.mispredicted:
                    stats.cond_mispredicts += 1
            elif event.branch == "indirect":
                stats.indirect_branches += 1
                if event.mispredicted:
                    stats.indirect_mispredicts += 1
        elif kind is FetchEvent:
            stats.fetched_insts += len(event.insts)
        elif kind is FtqEnqueueEvent:
            stats.ftq_enqueues += 1
        elif kind is FetchStallEvent:
            stats.fetch_stalls += 1
            stats.fetch_stall_reasons[event.reason] = \
                stats.fetch_stall_reasons.get(event.reason, 0) + 1
        elif kind is IcacheAccessEvent:
            stats.icache_accesses += 1
            if not event.hit:
                stats.icache_misses += 1
        elif kind is MemAccessEvent:
            stats.mem_accesses += 1
            if event.level == "l1":
                stats.mem_l1d_hits += 1
            elif event.level == "l2":
                stats.mem_l1d_misses += 1
                stats.mem_l2_hits += 1
            elif event.level == "dram":
                stats.mem_l1d_misses += 1
                stats.mem_l2_misses += 1
                stats.mem_dram_accesses += 1
            else:
                stats.mem_mshr_merges += 1
            if event.outstanding > stats.mem_mshr_peak:
                stats.mem_mshr_peak = event.outstanding
        elif kind is WrongPathCaptureEvent:
            stats.wpb_captures_ftq += 1
        elif kind is SquashEvent:
            if event.kind == "branch":
                stats.branch_squashes += 1
            stats.squashed_insts += len(event.squashed_seqs)
        elif kind is ReuseAttemptEvent:
            if event.outcome == "test":
                stats.reuse_tests += 1
            else:
                stats.reuse_successes += 1
                if event.is_load:
                    stats.reused_loads += 1
        elif kind is ReconvergeEvent:
            stats.reconvergences += 1
            if event.reconv_kind == "simple":
                stats.reconv_simple += 1
            elif event.reconv_kind == "software":
                stats.reconv_software += 1
            else:
                stats.reconv_hardware += 1
            stats.record_stream_distance(event.distance)

    def verify(self, live_stats):
        """Compare against the live counters; returns mismatch list."""
        mismatches = []
        for name in self.DERIVED:
            derived = getattr(self.stats, name)
            live = getattr(live_stats, name)
            if derived != live:
                mismatches.append((name, derived, live))
        return mismatches
