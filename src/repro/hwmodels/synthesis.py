"""Table 4: analytical synthesis estimates for the two critical circuits.

We have no standard-cell library or synthesis tool, so this module
replaces Synopsys DC with a structural estimator: circuits are composed
from a small component library (comparators, priority encoders, muxes,
incrementers) whose logic depth follows textbook tree constructions.
Because absolute um^2 and mW depend entirely on the (unavailable) cell
library, each circuit carries per-gate area/power constants *calibrated*
to the paper's anchor rows (WPB 4x16/4x32/4x64; rename width 4/6/8 at
2 GHz, 0.7 V). The deliverable of the model is the scaling behaviour the
paper argues from — near-linear area/power in WPB capacity and a
super-linear logic-level tail in rename width from the worst-case serial
RGID-increment chain — which the structural composition reproduces.
"""

import math


def _clog2(value):
    return max(1, math.ceil(math.log2(value))) if value > 1 else 1


class Component:
    """A combinational block: logic depth and NAND2-equivalent gates."""

    def __init__(self, levels, gates):
        self.levels = levels
        self.gates = gates


def comparator(bits):
    """Magnitude comparator (<=/>=), tree construction."""
    return Component(levels=_clog2(bits) + 2, gates=5 * bits)


def equality(bits):
    """XOR-reduce equality check."""
    return Component(levels=_clog2(bits) + 1, gates=3 * bits)


def priority_encoder(width):
    return Component(levels=2 * _clog2(width), gates=3 * width)


def mux(ways, bits):
    return Component(levels=2 * _clog2(ways), gates=2 * ways * bits)


def incrementer(bits):
    return Component(levels=_clog2(bits) + 1, gates=4 * bits)


class SynthesisModel:
    """Per-circuit technology calibration (area um^2 / power mW per
    NAND2-equivalent gate)."""

    def __init__(self, area_per_gate, power_per_gate):
        self.area_per_gate = area_per_gate
        self.power_per_gate = power_per_gate

    def report(self, config, levels, gates):
        return {
            "config": config,
            "logic_levels": levels,
            "area_um2": round(gates * self.area_per_gate, 1),
            "power_mw": round(gates * self.power_per_gate, 3),
            "gates": gates,
        }


#: Calibrated against the paper's 4x32 row (aligner/encoder cell mix).
_RECONV_TECH = SynthesisModel(area_per_gate=0.253, power_per_gate=0.000142)
#: Calibrated against the paper's width-6 row (comparator/latch mix; the
#: reuse path replicates per-source RGID datapaths the simple gate count
#: under-weighs, hence the larger per-gate footprint).
_REUSE_TECH = SynthesisModel(area_per_gate=3.63, power_per_gate=0.00327)


def reconvergence_detection_report(num_streams=4, wpb_entries=16,
                                   pc_bits=11, vpn_bits=36,
                                   pipeline_stages=3):
    """Estimate the IFU reconvergence-detection logic (Section 3.4).

    Per WPB entry: a left aligner (start_head <= end_wpb) and a right
    aligner (end_head >= start_wpb) ANDed into the overlap mask; a
    priority encoder selects the first hit; the final max() picks the
    reconvergence PC; the VPN equality check runs in parallel. The
    combinational depth is spread across ``pipeline_stages`` stages
    (the paper notes three), so the reported logic level is the deepest
    stage's share plus the stage-crossing select logic.
    """
    entries = num_streams * wpb_entries
    cmp_left = comparator(pc_bits)
    cmp_right = comparator(pc_bits)
    penc = priority_encoder(entries)
    select = mux(entries, 2 * pc_bits)
    vpn_cmp = equality(vpn_bits)
    final_max = comparator(pc_bits)

    gates = (entries * (cmp_left.gates + cmp_right.gates + 1)
             + penc.gates + select.gates
             + num_streams * vpn_cmp.gates + final_max.gates)
    total_levels = (max(cmp_left.levels, cmp_right.levels) + 1
                    + penc.levels + select.levels + final_max.levels)
    per_stage = math.ceil(total_levels / pipeline_stages) \
        + _clog2(entries) // 2
    return _RECONV_TECH.report("%dx%d" % (num_streams, wpb_entries),
                               per_stage, gates)


def reuse_test_report(pipeline_width=6, squash_log_entries=64,
                      rgid_bits=6, areg_bits=6, preg_bits=8, num_srcs=3):
    """Estimate the rename-stage reuse-test logic (Section 3.5).

    Area counts the logic *added* by the reuse test (Figure 8's white
    boxes — the grey Reg CMP / Mux1 network already exists in the
    baseline rename): per-source RGID comparators, the transitive
    reuse-success chain, the reuse/new RGID select, the destination RGID
    increment, and the squash-log read alignment; it is therefore
    near-linear in pipeline width, as the paper's numbers are.

    Depth is the paper's identified critical path: the intra-bundle
    dependency resolution feeding the RGID comparison plus the worst
    case of width serial RGID increments to the same architectural
    register.
    """
    per_inst = (num_srcs * equality(rgid_bits).gates     # RGID CMP
                + num_srcs * mux(2, rgid_bits).gates     # RAT/forward pick
                + incrementer(rgid_bits).gates
                + mux(2, rgid_bits + preg_bits).gates
                + 8)                                     # success chain
    shared = squash_log_entries * (num_srcs * rgid_bits + preg_bits) // 8
    gates = pipeline_width * per_inst + shared

    levels = (equality(areg_bits).levels                 # Reg CMP
              + mux(pipeline_width, preg_bits).levels    # youngest match
              + equality(rgid_bits).levels               # RGID CMP
              + 2                                        # success chain AND
              + incrementer(rgid_bits).levels
              + 3 * (pipeline_width - 1) - 2)            # serial RGID bumps
    return _REUSE_TECH.report("width %d" % pipeline_width,
                              max(levels, 1), gates)
