"""Table 2: additional storage required by the squash-reuse scheme.

Implements the paper's formulas verbatim:

* constant part: ROB RGID fields, RAT RGIDs and RAT checkpoint RGIDs::

      4 regs x 6 bits x 256 ROB entries
    + 64 arch regs x 6 bits
    + 64 arch regs x 6 bits x 32 checkpoints  = 18,816 bits = 2.30 KB

* variable part (N streams, M WPB entries/stream, P log entries/stream)::

      (23*M + 33*P + 36) * N + log2(M * P * N^4)  bits

  where 23 = WPB entry (valid + 2 x 11-bit page-offset PCs), 33 = squash
  log entry (valid + 3x6 src RGIDs + 6 dest RGID + 8 dest preg) and 36 =
  per-stream VPN register.
"""

import math


def _log2_bits(value):
    """ceil(log2(value)) with log2(1) = 0 (a 1-deep structure needs no
    pointer bits), matching the paper's closed form."""
    return math.ceil(math.log2(value)) if value > 1 else 0


class StorageModel:
    """Parametric storage cost of the MSSR extensions."""

    def __init__(self, num_streams=4, wpb_entries=16, squash_log_entries=64,
                 rgid_bits=6, arch_regs=64, rob_entries=256,
                 rat_checkpoints=32, src_regs=3, preg_bits=8,
                 pc_offset_bits=11, vpn_bits=36):
        self.num_streams = num_streams
        self.wpb_entries = wpb_entries
        self.squash_log_entries = squash_log_entries
        self.rgid_bits = rgid_bits
        self.arch_regs = arch_regs
        self.rob_entries = rob_entries
        self.rat_checkpoints = rat_checkpoints
        self.src_regs = src_regs
        self.preg_bits = preg_bits
        self.pc_offset_bits = pc_offset_bits
        self.vpn_bits = vpn_bits

    # -- per-structure fields -------------------------------------------
    def wpb_entry_bits(self):
        """Valid + start PC + end PC."""
        return 1 + 2 * self.pc_offset_bits

    def squash_log_entry_bits(self):
        """Valid + source RGIDs + dest RGID + dest physical register."""
        return (1 + self.src_regs * self.rgid_bits + self.rgid_bits
                + self.preg_bits)

    def rob_bits(self):
        """RGIDs for 3 sources + 1 destination, every ROB entry."""
        return ((self.src_regs + 1) * self.rgid_bits * self.rob_entries)

    def rat_bits(self):
        """Current RAT RGIDs plus every checkpoint's."""
        per_map = self.arch_regs * self.rgid_bits
        return per_map + per_map * self.rat_checkpoints

    def pointer_bits(self):
        """Stream/entry read + stream write pointers for WPB and log."""
        n = self.num_streams
        return (2 * _log2_bits(n) + _log2_bits(self.wpb_entries)
                + 2 * _log2_bits(n) + _log2_bits(self.squash_log_entries))

    # -- aggregates ------------------------------------------------------
    def constant_bits(self):
        return self.rob_bits() + self.rat_bits()

    def variable_bits(self):
        n, m, p = self.num_streams, self.wpb_entries, self.squash_log_entries
        per_stream = (self.wpb_entry_bits() * m
                      + self.squash_log_entry_bits() * p
                      + self.vpn_bits)
        return per_stream * n + self.pointer_bits()

    def variable_bits_formula(self):
        """The paper's closed form (identical result, kept for the test
        that checks we transcribed Table 2 faithfully)."""
        n, m, p = self.num_streams, self.wpb_entries, self.squash_log_entries
        return ((23 * m + 33 * p + 36) * n
                + math.ceil(math.log2(m * p * n ** 4)))

    def total_bits(self):
        return self.constant_bits() + self.variable_bits()

    @staticmethod
    def bits_to_kb(bits):
        return bits / 8.0 / 1024.0

    def report(self):
        """Structured breakdown matching Table 2's rows."""
        return {
            "wpb_entry_bits": self.wpb_entry_bits(),
            "squash_log_entry_bits": self.squash_log_entry_bits(),
            "rob_bits": self.rob_bits(),
            "rat_bits": self.rat_bits(),
            "pointer_bits": self.pointer_bits(),
            "constant_bits": self.constant_bits(),
            "constant_kb": self.bits_to_kb(self.constant_bits()),
            "variable_bits": self.variable_bits(),
            "variable_kb": self.bits_to_kb(self.variable_bits()),
            "total_bits": self.total_bits(),
            "total_kb": self.bits_to_kb(self.total_bits()),
        }


def paper_default_storage():
    """The configuration Table 2 totals: N=4, M=16, P=64 -> 3.53 KB."""
    return StorageModel(num_streams=4, wpb_entries=16,
                        squash_log_entries=64)
