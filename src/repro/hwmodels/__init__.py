"""Hardware cost models.

:mod:`repro.hwmodels.storage` implements the paper's Table 2 bit-count
formulas exactly. :mod:`repro.hwmodels.synthesis` is an analytical
gate-level estimator standing in for the Synopsys Design Compiler flow of
Table 4 (we have no PDK or synthesis tools): it composes comparator
trees, priority encoders and mux networks from a small component library
whose per-gate constants are calibrated to the paper's reported anchor
points.
"""

from repro.hwmodels.storage import StorageModel, paper_default_storage
from repro.hwmodels.synthesis import (
    SynthesisModel,
    reconvergence_detection_report,
    reuse_test_report,
)

__all__ = [
    "StorageModel",
    "paper_default_storage",
    "SynthesisModel",
    "reconvergence_detection_report",
    "reuse_test_report",
]
