"""Typed schema of the whole configuration tree.

The schema is *derived* from the dataclasses that already define the
simulator's knobs (:class:`~repro.pipeline.config.CoreConfig`,
:class:`~repro.pipeline.config.MSSRConfig`,
:class:`~repro.pipeline.config.RIConfig`, the DIR reuse-buffer geometry
and :class:`~repro.sampling.sampler.SamplingSpec`), so a field added to
a dataclass automatically appears in the tree, the ``--set`` surface,
the sweep DSL and the generated configuration reference. Runtime knobs
(worker counts, cache directories, log level) come from the env-var
registry (:mod:`repro.config.envreg`) and are marked non-*model*: they
never enter configuration hashes, because they cannot change simulated
results.

Keys are dotted ``section.field`` names::

    core.width          mssr.num_streams        sampling.interval_insts
    ri.num_sets         dir.assoc               harness.jobs
"""

import dataclasses
import difflib

from repro.config import envreg

#: Bumped whenever the schema or the canonical serialisation changes in
#: a way that alters configuration hashes; folded into job specs and the
#: harness cache fingerprint so results hashed under an older scheme are
#: never misattributed to the new one. v4: runtime ``emu`` /
#: ``harness.shared_images`` keys (superblock dispatch, shared-image
#: batching). v5: ``mem.*`` section (port-based memory system) and the
#: ``service.no_api`` runtime key.
CONFIG_SCHEMA_VERSION = 5

#: Model sections, in canonical order.
MODEL_SECTIONS = ("core", "frontend", "mem", "mssr", "ri", "dir",
                  "sampling")

#: Extra model sections required by each job kind (``core`` and
#: ``frontend`` are always present; ``sampling`` joins when the job is
#: sampled).
KIND_SECTIONS = {
    "baseline": (),
    "mssr": ("mssr",),
    "ri": ("ri",),
    "dir": ("dir",),
}


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """One key of the configuration tree."""

    key: str                 # dotted name, e.g. "core.width"
    type: type               # int / float / str / bool
    default: object
    doc: str
    choices: tuple = None    # closed value set for enum-like strings
    env: str = None          # backing REPRO_* variable, if any
    model: bool = True       # enters configuration hashes

    @property
    def section(self):
        return self.key.partition(".")[0]

    @property
    def name(self):
        return self.key.partition(".")[2]

    def coerce(self, value, source="value"):
        """Validate/convert ``value`` for this field.

        Accepts native values (from files / programmatic use) and
        strings (from ``--set`` overrides and environment variables).
        """
        if isinstance(value, str) and self.type is not str:
            value = self._from_string(value)
        if self.type is bool:
            if not isinstance(value, bool):
                raise ValueError("%s for %s must be a boolean, got %r"
                                 % (source, self.key, value))
        elif self.type is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError("%s for %s must be an integer, got %r"
                                 % (source, self.key, value))
        elif self.type is float:
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                raise ValueError("%s for %s must be a number, got %r"
                                 % (source, self.key, value))
            value = float(value)
        elif self.type is str:
            if not isinstance(value, str):
                raise ValueError("%s for %s must be a string, got %r"
                                 % (source, self.key, value))
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                "invalid %s %r%s (choose from: %s)"
                % (self.key, value, suggestion(value, self.choices),
                   ", ".join(self.choices)))
        return value

    def _from_string(self, text):
        text = text.strip()
        if self.type is bool:
            lowered = text.lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError("cannot parse %r as a boolean for %s"
                             % (text, self.key))
        try:
            if self.type is int:
                return int(text, 0)
            if self.type is float:
                return float(text)
        except ValueError:
            raise ValueError("cannot parse %r as %s for %s"
                             % (text, self.type.__name__,
                                self.key)) from None
        return text


def suggestion(value, candidates):
    """``' (did you mean "x"?)'`` or an empty string."""
    matches = difflib.get_close_matches(str(value), [str(c) for c
                                                     in candidates], n=1)
    return ' (did you mean "%s"?)' % matches[0] if matches else ""


# ---------------------------------------------------------------------------
# Field documentation (dataclasses cannot carry per-field docstrings).
# Keys without an entry get a generic line; the docs check in CI keeps
# the generated reference in sync, not this dict complete.
# ---------------------------------------------------------------------------
_DOCS = {
    "core.fetch_block_insts": "Instructions per fetch block (32B blocks).",
    "core.fetch_blocks_per_cycle":
        "Prediction blocks fetched per cycle (2 = Section 3.9.1 "
        "multiple-block fetching).",
    "core.frontend_stages": "Fetch-to-rename pipeline depth.",
    "core.decode_queue": "Decode queue entries.",
    "core.predictor": "Conditional branch direction predictor.",
    "core.btb_sets": "Branch target buffer sets (power of two).",
    "core.btb_assoc": "Branch target buffer associativity.",
    "core.ras_depth": "Return address stack depth.",
    "frontend.decoupled":
        "Run the branch-prediction unit decoupled from fetch (FTQ-"
        "driven IFU); false reproduces the fused single-stage fetch.",
    "frontend.ftq_depth":
        "Fetch target queue capacity (prediction blocks the BPU may "
        "run ahead of fetch).",
    "frontend.fetch_latency":
        "Fetch-to-decode latency in cycles (icache access of the "
        "decoupled fetch pipeline).",
    "frontend.bpu_blocks_per_cycle":
        "Prediction blocks the BPU appends to the FTQ per cycle.",
    "frontend.icache_lines":
        "Instruction-cache lines (64B, direct-mapped; power of two). "
        "0 disables the icache model. Requires frontend.decoupled.",
    "frontend.icache_latency":
        "Extra block-delivery delay on an icache miss (cycles).",
    "core.width": "Decode/rename/commit width.",
    "core.rob_entries": "Reorder buffer entries.",
    "core.int_iq_entries": "Integer issue-queue entries.",
    "core.mem_iq_entries": "Memory issue-queue entries.",
    "core.num_alu": "ALU functional units.",
    "core.num_bru": "Branch units.",
    "core.num_lsu": "Load/store units.",
    "core.num_phys_regs": "Physical integer registers.",
    "core.lq_entries": "Load queue entries.",
    "core.sq_entries": "Store queue entries.",
    "core.alu_latency": "ALU latency (cycles).",
    "core.mul_latency": "Multiply latency (cycles).",
    "core.div_latency": "Divide latency (cycles).",
    "core.branch_latency": "Branch resolution latency (cycles).",
    "core.store_latency": "Store execution latency (cycles).",
    "core.l1_size": "L1 data cache size (bytes).",
    "core.l1_assoc": "L1 associativity.",
    "core.l1_latency": "L1 hit latency (cycles).",
    "core.l2_size": "L2 cache size (bytes).",
    "core.l2_assoc": "L2 associativity.",
    "core.l2_latency": "L2 hit latency (cycles).",
    "core.dram_latency": "DRAM latency (cycles).",
    "core.max_cycles": "Simulated-cycle safety guard.",
    "mem.model":
        "Memory-system model: flat = synchronous two-level probe "
        "(default, drives core.l1_*/l2_* knobs); ported = L1I + L1D "
        "behind a shared L2 with MSHRs and completion-cycle requests.",
    "mem.line_bytes": "Cache line size, all levels (bytes; power of two).",
    "mem.l1i_size": "Ported L1 instruction cache size (bytes).",
    "mem.l1i_assoc": "Ported L1 instruction cache associativity.",
    "mem.l1d_size": "Ported L1 data cache size (bytes).",
    "mem.l1d_assoc": "Ported L1 data cache associativity.",
    "mem.l1d_latency": "Ported L1 data cache hit latency (cycles).",
    "mem.l2_size": "Ported shared L2 size (bytes).",
    "mem.l2_assoc": "Ported shared L2 associativity.",
    "mem.l2_latency": "Ported shared L2 hit latency (cycles).",
    "mem.dram_latency": "Ported-model DRAM latency (cycles).",
    "mem.mshrs":
        "Outstanding line misses per L1 port (same-line misses merge; "
        "a full MSHR file stalls the request).",
    "mem.ports": "Requests each memory port accepts per cycle.",
    "mssr.num_streams": "Wrong-path streams tracked (N; DCI = 1).",
    "mssr.wpb_entries": "Wrong-Path Buffer fetch blocks per stream (M).",
    "mssr.squash_log_entries": "Squash Log instructions per stream (P).",
    "mssr.rgid_bits": "Reuse-generation ID width (bits).",
    "mssr.reconvergence_timeout":
        "Instructions fetched before a stream is abandoned.",
    "mssr.rgid_overflow_limit":
        "RGID overflows tolerated before the global reset protocol.",
    "mssr.memory_hazard_scheme":
        "Reused-load hazard handling (Section 3.8).",
    "mssr.bloom_bits": "Bloom filter bits (bloom scheme).",
    "mssr.bloom_hashes": "Bloom filter hash functions.",
    "mssr.single_page_wpb":
        "Restrict each WPB stream to one virtual page (Section 3.4).",
    "mssr.ftq_capture":
        "Capture wrong-path WPB blocks at the FTQ on squash (including "
        "undelivered blocks) instead of at decode time. Requires "
        "frontend.decoupled.",
    "ri.num_sets": "Register Integration reuse-table sets.",
    "ri.assoc": "Register Integration reuse-table associativity.",
    "dir.num_sets": "Dynamic Instruction Reuse buffer sets.",
    "dir.assoc": "Dynamic Instruction Reuse buffer associativity.",
    "sampling.interval_insts": "SimPoint interval length (instructions).",
    "sampling.max_k": "Maximum SimPoint clusters.",
    "sampling.dims": "Random-projection dimensions for clustering.",
    "sampling.warmup_branches":
        "Branches replayed into the predictors before each interval.",
    "sampling.warmup_mem":
        "Memory accesses replayed into the caches before each interval.",
    "sampling.detail_warmup_insts":
        "Detailed (discarded) instructions before each measured "
        "interval.",
    "sampling.seed": "Deterministic clustering seed.",
}

#: Enum-like string fields and their closed value sets.
_CHOICES = {
    "core.predictor": ("always-taken", "bimodal", "gshare", "tage",
                       "tage-scl"),
    "mssr.memory_hazard_scheme": ("verify", "bloom"),
    "mem.model": ("flat", "ported"),
}

_ENV_TYPES = {"str": str, "path": str, "int": int, "float": float,
              "bool": bool}

_SCHEMA = None


def _dataclass_fields(section, cls, skip=()):
    specs = []
    for field in dataclasses.fields(cls):
        if field.name in skip:
            continue
        default = field.default
        if default is dataclasses.MISSING:       # pragma: no cover
            continue
        key = "%s.%s" % (section, field.name)
        specs.append(FieldSpec(key=key, type=type(default),
                               default=default,
                               doc=_DOCS.get(key, "(undocumented)"),
                               choices=_CHOICES.get(key)))
    return specs


def _build_schema():
    from repro.baselines.dir_reuse import DIRConfig
    from repro.pipeline.config import (CoreConfig, FrontendConfig,
                                       MemConfig, MSSRConfig, RIConfig)
    from repro.sampling.sampler import SamplingSpec

    specs = []
    specs += _dataclass_fields("core", CoreConfig,
                               skip=("frontend", "mem", "mssr", "ri"))
    specs += _dataclass_fields("frontend", FrontendConfig)
    specs += _dataclass_fields("mem", MemConfig)
    specs += _dataclass_fields("mssr", MSSRConfig)
    specs += _dataclass_fields("ri", RIConfig)
    dir_defaults = DIRConfig()
    for name in ("num_sets", "assoc"):
        key = "dir.%s" % name
        default = getattr(dir_defaults, name)
        specs.append(FieldSpec(key=key, type=type(default),
                               default=default,
                               doc=_DOCS.get(key, "(undocumented)")))
    specs += _dataclass_fields("sampling", SamplingSpec)

    # Runtime keys, one per registered env var that backs a tree key.
    for name in sorted(envreg.REGISTRY):
        var = envreg.REGISTRY[name]
        if var.key is None:
            continue
        specs.append(FieldSpec(key=var.key, type=_ENV_TYPES[var.type],
                               default=var.default, doc=var.doc,
                               env=name, model=False))
    return {spec.key: spec for spec in specs}


def schema():
    """``{key: FieldSpec}`` for the whole tree (cached per process)."""
    global _SCHEMA
    if _SCHEMA is None:
        _SCHEMA = _build_schema()
    return _SCHEMA


def field(key):
    """The :class:`FieldSpec` for ``key``.

    Unknown keys raise ``KeyError`` with a did-you-mean suggestion.
    """
    table = schema()
    try:
        return table[key]
    except KeyError:
        raise KeyError("unknown configuration key %r%s"
                       % (key, suggestion(key, table))) from None


def model_keys(kind=None, sampled=False):
    """Canonically ordered model keys, optionally restricted to the
    sections relevant for one job ``kind``."""
    if kind is None:
        sections = MODEL_SECTIONS
    else:
        try:
            extra = KIND_SECTIONS[kind]
        except KeyError:
            raise KeyError("unknown config kind %r%s"
                           % (kind, suggestion(kind,
                                               KIND_SECTIONS))) from None
        sections = ("core", "frontend", "mem") + extra \
            + (("sampling",) if sampled else ())
    out = []
    for section in sections:
        out.extend(key for key in schema()
                   if key.partition(".")[0] == section)
    return out
