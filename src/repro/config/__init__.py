"""Unified layered configuration: schema, env registry, sweeps.

Import layering: :mod:`repro.config.envreg` is stdlib-only and safe to
import from anywhere (including :mod:`repro.isa.predecode`, which sits
under the whole simulator). The schema/tree/sweep modules introspect
the simulator's dataclasses, so they are exposed lazily here — eagerly
importing them from this package ``__init__`` would create an import
cycle (predecode -> repro.config -> schema -> pipeline -> predecode).
"""

from repro.config import envreg  # noqa: F401  (eager; stdlib-only)

_LAZY = {
    "CONFIG_SCHEMA_VERSION": ("repro.config.schema",
                              "CONFIG_SCHEMA_VERSION"),
    "FieldSpec": ("repro.config.schema", "FieldSpec"),
    "schema": ("repro.config.schema", "schema"),
    "field": ("repro.config.schema", "field"),
    "model_keys": ("repro.config.schema", "model_keys"),
    "ConfigTree": ("repro.config.tree", "ConfigTree"),
    "resolve": ("repro.config.tree", "resolve"),
    "job_snapshot": ("repro.config.tree", "job_snapshot"),
    "snapshot_hash": ("repro.config.tree", "snapshot_hash"),
    "build_core_config": ("repro.config.tree", "build_core_config"),
    "build_reuse_scheme": ("repro.config.tree", "build_reuse_scheme"),
    "parse_overrides": ("repro.config.tree", "parse_overrides"),
    "Scenario": ("repro.config.sweep", "Scenario"),
    "Sweep": ("repro.config.sweep", "Sweep"),
    "SweepError": ("repro.config.sweep", "SweepError"),
    "SweepPlan": ("repro.config.sweep", "SweepPlan"),
    "load_sweep": ("repro.config.sweep", "load_sweep"),
    "sweep_from_dict": ("repro.config.sweep", "sweep_from_dict"),
}

__all__ = ["envreg"] + sorted(_LAZY)


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r"
                             % (__name__, name)) from None
    import importlib
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
