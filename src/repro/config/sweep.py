"""Scenario and sweep declarations.

The paper's evaluation is a configuration matrix — scheme x workload x
structure sizes — and this module makes such matrices *declarative*: a
sweep names its workloads and a list of scenarios, each scenario pins a
configuration kind plus fixed overrides and optional ``grid``
(cartesian product) and ``zip`` (parallel lists) axes over any model
key of the configuration tree. Expansion produces ordinary
:class:`~repro.harness.jobs.SimJob` objects, deduplicated by job hash,
so two scenarios that describe the same point (e.g. a DCI scenario and
the 1-stream point of an MSSR grid) simulate exactly once and share
cache entries.

TOML form (``python -m repro.harness sweep FILE``)::

    [sweep]
    name = "fig10-small"
    workloads = ["suite:micro"]
    scale = 0.1

    [sweep.base]                    # applied to every job
    core.width = 8

    [[scenario]]
    name = "baseline"
    kind = "baseline"

    [[scenario]]
    name = "mssr-grid"
    kind = "mssr"
    [scenario.grid]                 # cartesian product
    mssr.num_streams = [1, 2, 4]
    mssr.wpb_entries = [8, 16]

    [[scenario]]
    name = "wpb-vs-log"
    kind = "mssr"
    [scenario.zip]                  # advanced together
    mssr.wpb_entries = [8, 16, 32]
    mssr.squash_log_entries = [32, 64, 128]

Scenario tables may also override ``workloads``, ``scale`` and
``sampling`` (``true`` or a table of :class:`SamplingSpec` knobs).
"""

import dataclasses
import itertools

from repro.config.schema import field, suggestion
from repro.config.tree import flatten

#: Keys understood in a [sweep] table / Sweep(...) call.
_SWEEP_KEYS = ("name", "workloads", "scale", "sampling", "jobs", "base",
               "scenarios")
#: Keys understood in a [[scenario]] table / Scenario(...) call.
_SCENARIO_KEYS = ("name", "kind", "workloads", "scale", "sampling",
                  "set", "grid", "zip")


class SweepError(ValueError):
    """A sweep declaration is malformed."""


@dataclasses.dataclass
class Scenario:
    """One scheme point or axis family within a sweep."""

    name: str
    kind: str = "baseline"
    workloads: tuple = None        # None -> inherit from the sweep
    scale: float = None            # None -> inherit from the sweep
    sampling: object = None        # None -> inherit from the sweep
    set: dict = dataclasses.field(default_factory=dict)
    grid: dict = dataclasses.field(default_factory=dict)
    zip: dict = dataclasses.field(default_factory=dict)

    def points(self):
        """Expand the axes into override dicts (``set`` included)."""
        base = _checked_overrides(self.set, self.name, "set")
        grid = _checked_axes(self.grid, self.name, "grid")
        zipped = _checked_axes(self.zip, self.name, "zip")
        if zipped:
            lengths = {len(values) for values in zipped.values()}
            if len(lengths) != 1:
                raise SweepError(
                    "scenario %r: zip axes must have equal lengths "
                    "(got %s)" % (self.name, sorted(lengths)))
        grid_keys = sorted(grid)
        grid_product = itertools.product(*(grid[key]
                                           for key in grid_keys)) \
            if grid_keys else [()]
        zip_rows = list(zip(*(zipped[key] for key in sorted(zipped)))) \
            if zipped else [()]
        zip_keys = sorted(zipped)
        out = []
        for grid_values in grid_product:
            for zip_values in zip_rows:
                point = dict(base)
                point.update(zip(grid_keys, grid_values))
                point.update(zip(zip_keys, zip_values))
                out.append(point)
        return out


@dataclasses.dataclass
class Sweep:
    """A named batch of scenarios over shared workloads."""

    name: str = "sweep"
    workloads: tuple = ()
    scale: float = 0.15
    sampling: object = None
    jobs: int = None               # harness workers requested by the file
    base: dict = dataclasses.field(default_factory=dict)
    scenarios: list = dataclasses.field(default_factory=list)

    def expand(self):
        """Expand into a deduplicated :class:`SweepPlan`."""
        from repro.harness.jobs import SimJob
        from repro.workloads.registry import get_workload, suite_names

        if not self.scenarios:
            raise SweepError("sweep %r declares no scenarios"
                             % self.name)
        base = _checked_overrides(self.base, self.name, "base")
        entries = []
        unique = {}
        for scenario in self.scenarios:
            names = scenario.workloads or self.workloads
            if not names:
                raise SweepError(
                    "scenario %r has no workloads (set them on the "
                    "scenario or the sweep)" % scenario.name)
            workloads = []
            for name in names:
                if name.startswith("suite:"):
                    workloads.extend(suite_names(name[len("suite:"):]))
                else:
                    get_workload(name)       # fail fast, with suggestions
                    workloads.append(name)
            scale = self.scale if scenario.scale is None \
                else scenario.scale
            sampling = self.sampling if scenario.sampling is None \
                else scenario.sampling
            if sampling is False:
                sampling = None
            for point in scenario.points():
                overrides = dict(base)
                overrides.update(point)
                for workload in workloads:
                    job = SimJob(workload, scenario.kind, scale,
                                 config=overrides, sampling=sampling)
                    entries.append(PlanEntry(scenario.name, workload,
                                             job))
                    unique.setdefault(job.job_hash(), job)
        return SweepPlan(self, entries, list(unique.values()))


class PlanEntry:
    """One declared (scenario, workload, job) row of a plan."""

    __slots__ = ("scenario", "workload", "job")

    def __init__(self, scenario, workload, job):
        self.scenario = scenario
        self.workload = workload
        self.job = job


class SweepPlan:
    """Expanded sweep: declared rows plus the deduplicated job set."""

    def __init__(self, sweep, entries, jobs):
        self.sweep = sweep
        self.entries = entries
        self.jobs = jobs             # unique, in first-declared order

    @property
    def declared(self):
        return len(self.entries)

    @property
    def duplicates(self):
        return self.declared - len(self.jobs)

    def summary(self):
        return ("sweep %s: %d scenario(s), %d declared job(s), "
                "%d unique (%d shared)"
                % (self.sweep.name, len(self.sweep.scenarios),
                   self.declared, len(self.jobs), self.duplicates))


# ---------------------------------------------------------------------------
# Declaration checking
# ---------------------------------------------------------------------------
def _checked_overrides(mapping, owner, what):
    out = {}
    for key, value in flatten(dict(mapping or {})).items():
        spec = field(key)            # unknown keys raise with suggestion
        out[spec.key] = spec.coerce(value,
                                    source="%s %s" % (owner, what))
    return out


def _checked_axes(mapping, owner, what):
    out = {}
    for key, values in flatten(dict(mapping or {})).items():
        spec = field(key)
        if not isinstance(values, (list, tuple)) or not values:
            raise SweepError(
                "scenario %r: %s axis %s must be a non-empty list"
                % (owner, what, spec.key))
        out[spec.key] = [spec.coerce(value,
                                     source="%s %s axis" % (owner, what))
                         for value in values]
    return out


def _check_table(table, allowed, what):
    for key in table:
        if key not in allowed:
            raise SweepError("unknown %s key %r%s"
                             % (what, key, suggestion(key, allowed)))


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------
def sweep_from_dict(doc):
    """Build a :class:`Sweep` from a parsed TOML/JSON document."""
    if not isinstance(doc, dict):
        raise SweepError("sweep document must be a table")
    head = doc.get("sweep", {})
    if not isinstance(head, dict):
        raise SweepError("[sweep] must be a table")
    _check_table(head, _SWEEP_KEYS, "[sweep]")
    raw_scenarios = doc.get("scenario", head.get("scenarios", []))
    extra = set(doc) - {"sweep", "scenario"}
    if extra:
        raise SweepError("unknown top-level table(s): %s"
                         % ", ".join(sorted(extra)))
    if not isinstance(raw_scenarios, list):
        raise SweepError("[[scenario]] must be an array of tables")
    scenarios = []
    for index, table in enumerate(raw_scenarios):
        if not isinstance(table, dict):
            raise SweepError("scenario #%d must be a table" % index)
        _check_table(table, _SCENARIO_KEYS, "[[scenario]]")
        if "kind" not in table:
            raise SweepError("scenario #%d (%r) is missing 'kind'"
                             % (index, table.get("name")))
        scenarios.append(Scenario(
            name=str(table.get("name", "scenario-%d" % index)),
            kind=table["kind"],
            workloads=tuple(table["workloads"])
            if "workloads" in table else None,
            scale=table.get("scale"),
            sampling=table.get("sampling"),
            set=table.get("set", {}),
            grid=table.get("grid", {}),
            zip=table.get("zip", {})))
    return Sweep(
        name=str(head.get("name", "sweep")),
        workloads=tuple(head.get("workloads", ())),
        scale=head.get("scale", 0.15),
        sampling=head.get("sampling"),
        jobs=head.get("jobs"),
        base=head.get("base", {}),
        scenarios=scenarios)


def load_sweep(path):
    """Parse a ``.toml``/``.json`` sweep file into a :class:`Sweep`."""
    from repro.config.toml_compat import TomlError, load_file
    try:
        doc = load_file(path)
    except OSError as exc:
        raise SweepError("cannot read sweep file: %s" % exc) from None
    except TomlError as exc:
        raise SweepError(str(exc)) from None
    return sweep_from_dict(doc)
