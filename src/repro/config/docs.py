"""Generated configuration reference.

The README's configuration tables are *generated* from the schema and
the env-var registry, between marker comments, so they cannot drift
from the code::

    python -m repro.harness config docs            # rewrite in place
    python -m repro.harness config docs --check    # CI freshness gate
"""

import json

from repro.config import envreg
from repro.config.schema import schema

BEGIN_MARK = ("<!-- BEGIN GENERATED CONFIG REFERENCE "
              "(python -m repro.harness config docs) -->")
END_MARK = "<!-- END GENERATED CONFIG REFERENCE -->"


def _fmt_default(value):
    if value is None:
        return "unset"
    return "`%s`" % json.dumps(value)


def generate_reference():
    """The full markdown reference block (between the markers)."""
    lines = [BEGIN_MARK, ""]
    lines.append("#### Configuration keys")
    lines.append("")
    lines.append("Dotted keys of the layered configuration tree "
                 "(defaults < config file < `REPRO_*` environment < "
                 "`--set` overrides). *Model* keys enter configuration "
                 "hashes and result snapshots; runtime keys "
                 "(`harness.*`, `perf.*`) never do.")
    lines.append("")
    lines.append("| key | type | default | description |")
    lines.append("|---|---|---|---|")
    table = schema()
    for key in sorted(table, key=lambda k: (not table[k].model, k)):
        spec = table[key]
        doc = spec.doc
        if spec.choices:
            doc = "%s Choices: %s." % (doc, ", ".join(
                "`%s`" % choice for choice in spec.choices))
        if spec.env:
            doc = "%s Env: `%s`." % (doc, spec.env)
        lines.append("| `%s` | %s | %s | %s |"
                     % (spec.key, spec.type.__name__,
                        _fmt_default(spec.default), doc))
    lines.append("")
    lines.append("#### Environment variables")
    lines.append("")
    lines.append("Every `REPRO_*` variable is declared in "
                 "`repro.config.envreg`; all reads go through the "
                 "registry.")
    lines.append("")
    lines.append("| variable | type | default | description |")
    lines.append("|---|---|---|---|")
    for var, _raw, _parsed in envreg.environment_report(env={}):
        lines.append("| `%s` | %s | %s | %s |"
                     % (var.name, var.type, _fmt_default(var.default),
                        var.doc))
    lines.append("")
    lines.append(END_MARK)
    return "\n".join(lines)


def update_file(path, check=False):
    """Rewrite (or with ``check``, verify) the generated block in
    ``path``. Returns True when the file was already up to date."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError("%s has no generated-config markers (%s / %s)"
                         % (path, BEGIN_MARK, END_MARK))
    updated = (text[:begin] + generate_reference()
               + text[end + len(END_MARK):])
    fresh = updated == text
    if not fresh and not check:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(updated)
    return fresh
