"""Registry of every ``REPRO_*`` environment variable.

Before this module existed, each subsystem read ``os.environ`` at its
own call sites with its own parsing conventions, so the set of knobs
was undiscoverable and the parsing rules subtly inconsistent. Every
variable is now *declared* here once — name, type, default, docstring
and (optionally) the configuration-tree key it backs — and every
consumer resolves through the typed accessors below, so:

* ``python -m repro.harness config show`` can enumerate and document
  the whole surface (the README table is generated from this registry);
* the configuration tree (:mod:`repro.config.tree`) knows exactly which
  keys the environment layer may set;
* parsing rules ("0 disables", "empty means unset", disable sentinels
  for cache directories) live in one place.

This module must stay stdlib-only: it is imported by
:mod:`repro.isa.predecode`, which sits under everything else.
"""

import dataclasses
import os

#: Values that disable a directory-backed store entirely
#: (``REPRO_CACHE_DIR=off`` and friends).
DISABLE_VALUES = ("", "0", "off", "none", "disabled")

#: Falsy spellings for boolean variables (case-insensitive).
FALSE_VALUES = ("", "0", "false", "off", "no")


@dataclasses.dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment variable.

    ``type`` is one of ``str``/``int``/``float``/``bool``/``path``;
    ``key`` names the configuration-tree key this variable backs (None
    for variables outside the tree, e.g. pytest-only knobs).
    """

    name: str
    type: str
    default: object
    doc: str
    key: str = None

    def parse(self, raw):
        """Parse a raw environment string per the declared type.

        Unset or unparsable values resolve to the declared default
        (environment knobs must never crash an import).
        """
        if raw is None:
            return self.default
        if self.type == "bool":
            return raw.strip().lower() not in FALSE_VALUES
        raw = raw.strip()
        if self.type in ("str", "path"):
            return raw if raw else self.default
        if not raw:
            return self.default
        try:
            if self.type == "int":
                return int(raw)
            if self.type == "float":
                return float(raw)
        except ValueError:
            return self.default
        raise ValueError("unknown env var type %r" % self.type)


def _declare(*vars_):
    return {var.name: var for var in vars_}


#: Every ``REPRO_*`` variable the package reads, in one place.
REGISTRY = _declare(
    EnvVar("REPRO_JOBS", "int", 1,
           "Harness worker processes (0 = one per CPU; default 1 = "
           "serial).", key="harness.jobs"),
    EnvVar("REPRO_CACHE_DIR", "path", None,
           "On-disk result cache directory (default "
           "~/.cache/repro-sim; 'off' disables caching).",
           key="harness.cache_dir"),
    EnvVar("REPRO_CKPT_DIR", "path", None,
           "Sampling checkpoint store directory (default "
           "<cache>/checkpoints; 'off' disables the store).",
           key="harness.ckpt_dir"),
    EnvVar("REPRO_TRACE", "path", None,
           "Directory: every executed job also writes a JSONL event "
           "trace there (workers included).", key="harness.trace_dir"),
    EnvVar("REPRO_CONFIG", "path", None,
           "TOML/JSON configuration file applied as the file layer of "
           "the configuration tree.", key="harness.config_file"),
    EnvVar("REPRO_LOG_LEVEL", "str", None,
           "Logging level for the repro.* hierarchy (DEBUG, INFO, "
           "WARNING, ...).", key="harness.log_level"),
    EnvVar("REPRO_SLOWPATH", "bool", False,
           "Use the pre-predecode interpretive execute paths "
           "(differential-testing escape hatch).",
           key="harness.slowpath"),
    EnvVar("REPRO_SUPERBLOCK", "bool", False,
           "Emulator dispatches one compiled function per superblock "
           "instead of one closure per instruction (REPRO_SLOWPATH "
           "wins when both are set).", key="emu.superblock"),
    EnvVar("REPRO_SHARED_IMAGES", "bool", True,
           "Batch runner groups same-(workload, scale) jobs into one "
           "worker so the program image and predecode/superblock "
           "tables are built once per group (0 = one process per "
           "job).", key="harness.shared_images"),
    EnvVar("REPRO_LOCKSTEP", "bool", False,
           "Cosimulation tests check every commit against the emulator "
           "instead of only final state.", key="harness.lockstep"),
    EnvVar("REPRO_BENCH_SCALE", "float", 0.1,
           "Workload scale factor for benchmarks/ (paper inputs are "
           "proportionally shrunk).", key="perf.bench_scale"),
    EnvVar("REPRO_FULL", "bool", False,
           "Include the expensive upper-bound benchmark configurations "
           "(e.g. Figure 10's 4x1024 point).", key="perf.full"),
    EnvVar("REPRO_PERF_THRESHOLD", "float", 0.15,
           "Allowed normalised-throughput drop for the perf regression "
           "gate.", key="perf.threshold"),
    EnvVar("REPRO_PERF_CURRENT", "path", None,
           "Path to an already-measured perf report to gate instead of "
           "re-measuring.", key="perf.current"),
    EnvVar("REPRO_JOB_TIMEOUT", "float", 0.0,
           "Default per-job wall-clock timeout in seconds enforced by "
           "the batch runner and the service broker (0 disables).",
           key="harness.job_timeout"),
    EnvVar("REPRO_SERVICE_DIR", "path", None,
           "Simulation-service store directory (default "
           "<cache>/service); holds the sqlite job store and the "
           "shared result cache.", key="service.dir"),
    EnvVar("REPRO_SERVICE_HOST", "str", "127.0.0.1",
           "Bind host for the simulation-service HTTP API.",
           key="service.host"),
    EnvVar("REPRO_SERVICE_PORT", "int", 8642,
           "Bind port for the simulation-service HTTP API (0 = pick an "
           "ephemeral port).", key="service.port"),
    EnvVar("REPRO_SERVICE_WORKERS", "int", 0,
           "Simulation-service worker processes (0 = one per CPU).",
           key="service.workers"),
    EnvVar("REPRO_SERVICE_LEASE_TTL", "float", 15.0,
           "Seconds without a heartbeat before a running service job "
           "is considered lost and requeued.", key="service.lease_ttl"),
    EnvVar("REPRO_SERVICE_RETRIES", "int", 2,
           "Extra execution attempts the service grants a job after a "
           "failure or lost worker before marking it failed/orphaned.",
           key="service.retries"),
    EnvVar("REPRO_SERVICE_NO_API", "bool", False,
           "Run the service worker-only (broker + store, no HTTP "
           "listener); endpoint.json is written api-less for pure "
           "compute hosts.", key="service.no_api"),
)


def declared(name):
    """The :class:`EnvVar` declaration for ``name`` (KeyError if the
    variable was never declared — new ``REPRO_*`` reads must be added
    to the registry, not scattered)."""
    return REGISTRY[name]


def raw(name, env=None):
    """The unparsed environment value for ``name`` (None when unset).

    ``env`` defaults to ``os.environ``; tests pass explicit dicts.
    """
    declared(name)
    env = os.environ if env is None else env
    return env.get(name)


def get(name, env=None):
    """Typed value of ``name``: parsed environment value, or the
    declared default when unset/unparsable."""
    return declared(name).parse(raw(name, env))


def is_set(name, env=None):
    """True when the variable is present in the environment at all."""
    return raw(name, env) is not None


def store_dir(name, env=None):
    """Resolve a directory-backed store variable.

    Returns ``(enabled, directory)``: ``(True, None)`` when unset
    (use the built-in default directory), ``(False, None)`` when set to
    a disable sentinel (``off``/``0``/``none``/empty), and
    ``(True, path)`` otherwise.
    """
    value = raw(name, env)
    if value is None:
        return True, None
    if value.strip().lower() in DISABLE_VALUES:
        return False, None
    return True, value


def environment_report(env=None):
    """``[(EnvVar, raw, parsed)]`` for every declared variable, sorted
    by name — the data behind ``config show`` and the generated docs."""
    out = []
    for name in sorted(REGISTRY):
        var = REGISTRY[name]
        value = raw(name, env)
        out.append((var, value, var.parse(value)))
    return out
