"""Layered resolution of the configuration tree.

Values resolve through four layers, later layers winning::

    code defaults  <  config file (TOML/JSON)  <  REPRO_* environment
                   <  programmatic / CLI ``--set key=value`` overrides

Every resolved value remembers which layer set it (and from where: the
file path or the variable name), so ``python -m repro.harness config
show --provenance`` can attribute the whole tree. Two rules keep
results reproducible:

* Only *runtime* keys (``harness.*`` / ``perf.*``) have environment
  bindings — the environment can pick worker counts and cache
  directories, never simulated semantics.
* Job hashes are computed from defaults + explicit overrides only
  (:func:`job_snapshot`): a :class:`~repro.harness.jobs.SimJob` is
  fully self-describing, so the same job hashes identically in any
  environment and any result file can be replayed from its embedded
  snapshot alone.
"""

import hashlib
import json
import os

from repro.config import envreg
from repro.config.schema import (
    CONFIG_SCHEMA_VERSION,
    KIND_SECTIONS,
    field,
    model_keys,
    schema,
    suggestion,
)

#: Provenance layer names, in precedence order.
LAYER_DEFAULT = "default"
LAYER_FILE = "file"
LAYER_ENV = "env"
LAYER_OVERRIDE = "override"


class ResolvedValue:
    """One resolved key: value + provenance."""

    __slots__ = ("value", "layer", "source")

    def __init__(self, value, layer, source=None):
        self.value = value
        self.layer = layer
        self.source = source

    def describe(self):
        """Human-readable provenance (``env:REPRO_JOBS`` etc.)."""
        if self.source:
            return "%s:%s" % (self.layer, self.source)
        return self.layer

    def __repr__(self):
        return "<ResolvedValue %r [%s]>" % (self.value, self.describe())


class ConfigTree:
    """A fully resolved configuration tree."""

    def __init__(self, values):
        self._values = values        # key -> ResolvedValue

    def __contains__(self, key):
        return key in self._values

    def __getitem__(self, key):
        return self._values[field(key).key].value

    def get(self, key, default=None):
        entry = self._values.get(key)
        return default if entry is None else entry.value

    def provenance(self, key):
        """The :class:`ResolvedValue` carrying value + layer info."""
        return self._values[field(key).key]

    def keys(self):
        return list(self._values)

    def flat(self, model_only=False):
        """``{key: value}`` over the whole tree."""
        return {key: entry.value for key, entry in self._values.items()
                if not model_only or field(key).model}

    # -- canonical form ------------------------------------------------
    def canonical(self, kind=None, sampled=False):
        """Canonical model snapshot: ordered ``{key: value}`` over the
        model sections (restricted to ``kind``'s sections if given)."""
        return {key: self._values[key].value
                for key in model_keys(kind=kind, sampled=sampled)}

    def config_hash(self, kind=None, sampled=False):
        """Stable hash of the canonical model snapshot."""
        return snapshot_hash(self.canonical(kind=kind, sampled=sampled))

    # -- reporting -----------------------------------------------------
    def lines(self, provenance=False, sections=None):
        """Formatted ``key = value`` lines for ``config show``."""
        out = []
        last_section = None
        for key in sorted(self._values,
                          key=lambda k: (field(k).section, k)):
            spec = field(key)
            if sections and spec.section not in sections:
                continue
            if spec.section != last_section:
                if last_section is not None:
                    out.append("")
                out.append("[%s]" % spec.section)
                last_section = spec.section
            entry = self._values[key]
            line = "%s = %s" % (key, json.dumps(entry.value))
            if provenance:
                line = "%-44s # %s" % (line, entry.describe())
            out.append(line)
        return out


def snapshot_hash(snapshot):
    """Canonical 24-hex hash of a ``{key: value}`` snapshot (same
    recipe as :meth:`repro.harness.jobs.SimJob.job_hash`)."""
    blob = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
def flatten(mapping, prefix=""):
    """Flatten nested tables into dotted keys
    (``{"core": {"width": 8}}`` -> ``{"core.width": 8}``)."""
    out = {}
    for name, value in mapping.items():
        key = "%s%s" % (prefix, name)
        if isinstance(value, dict):
            out.update(flatten(value, key + "."))
        else:
            out[key] = value
    return out


def parse_overrides(pairs):
    """``["core.width=4", ...]`` (or a dict) -> ``{key: value}``.

    String values are coerced by the field's type, so CLI ``--set``
    and environment values share one parsing path.
    """
    if isinstance(pairs, dict):
        items = pairs.items()
    else:
        items = []
        for pair in pairs:
            key, _eq, value = str(pair).partition("=")
            if not _eq:
                raise ValueError("override %r is not key=value" % pair)
            items.append((key.strip(), value.strip()))
    out = {}
    for key, value in items:
        spec = field(key)
        out[spec.key] = spec.coerce(value, source="override")
    return out


def resolve(file=None, env=None, overrides=None):
    """Resolve the full tree; returns a :class:`ConfigTree`.

    ``file``: a TOML/JSON path, an already-loaded dict, or None. When
    None, ``REPRO_CONFIG`` (if set) names the file. ``env``: a mapping
    to use as the environment, None for ``os.environ``, or False to
    disable the environment layer entirely. ``overrides``: a dict or a
    list of ``key=value`` strings.
    """
    environ = {} if env is False else (os.environ if env is None
                                       else env)

    file_source = None
    file_values = {}
    if file is None and env is not False:
        file = envreg.get("REPRO_CONFIG", env=environ)
    if isinstance(file, dict):
        file_source = "<dict>"
        file_values = flatten(file)
    elif file:
        from repro.config.toml_compat import load_file
        file_source = str(file)
        file_values = flatten(load_file(file))
    for key in file_values:
        field(key)                       # unknown keys fail loudly

    override_values = parse_overrides(overrides or {})

    values = {}
    for key, spec in schema().items():
        entry = ResolvedValue(spec.default, LAYER_DEFAULT)
        if key in file_values:
            entry = ResolvedValue(
                spec.coerce(file_values[key], source="file value"),
                LAYER_FILE, file_source)
        if spec.env and envreg.is_set(spec.env, env=environ):
            entry = ResolvedValue(envreg.get(spec.env, env=environ),
                                  LAYER_ENV, spec.env)
        if key in override_values:
            entry = ResolvedValue(override_values[key], LAYER_OVERRIDE)
        values[key] = entry
    return ConfigTree(values)


# ---------------------------------------------------------------------------
# Job snapshots: the hashed, persisted description of one simulation
# point. Environment-independent by construction (defaults + explicit
# overrides only).
# ---------------------------------------------------------------------------
_SNAPSHOT_MEMO = {}


def job_snapshot(kind, overrides=(), sampling=None):
    """Canonical model snapshot for one job.

    ``overrides`` is a dict (or tuple of pairs) of dotted model keys;
    keys outside the sections active for ``kind`` are rejected — an
    override that cannot affect the run must not silently change its
    hash. ``sampling`` (a dict of ``sampling.*`` short names, without
    the prefix) folds the sampling section in.
    """
    overrides = tuple(sorted(dict(overrides).items()))
    sampling_items = None if sampling is None \
        else tuple(sorted(dict(sampling).items()))
    memo_key = (kind, overrides, sampling_items)
    cached = _SNAPSHOT_MEMO.get(memo_key)
    if cached is not None:
        return dict(cached)

    sampled = sampling is not None
    keys = model_keys(kind=kind, sampled=sampled)
    active = set(keys)
    snapshot = {key: field(key).default for key in keys}
    for key, value in overrides:
        spec = field(key)
        if spec.key not in active:
            if not spec.model:
                raise ValueError(
                    "%s is a runtime key; it cannot be part of a job's "
                    "configuration" % spec.key)
            raise ValueError(
                "override %s has no effect on kind %r (active "
                "sections: %s)"
                % (spec.key, kind,
                   ", ".join(sorted({k.partition('.')[0]
                                     for k in active}))))
        snapshot[spec.key] = spec.coerce(value, source="override")
    if sampled:
        for name, value in sampling_items:
            key = "sampling.%s" % name
            snapshot[key] = field(key).coerce(value,
                                              source="sampling knob")
    _SNAPSHOT_MEMO[memo_key] = dict(snapshot)
    return snapshot


def build_core_config(kind, overrides=()):
    """A :class:`~repro.pipeline.config.CoreConfig` (with the scheme
    sub-config for ``kind``) from defaults + ``overrides``."""
    from repro.pipeline.config import (CoreConfig, FrontendConfig,
                                       MemConfig, MSSRConfig, RIConfig)

    snapshot = job_snapshot(kind, overrides)
    kwargs = {key.partition(".")[2]: value
              for key, value in snapshot.items()
              if key.startswith("core.")}
    kwargs["frontend"] = FrontendConfig(
        **{key.partition(".")[2]: value
           for key, value in snapshot.items()
           if key.startswith("frontend.")})
    kwargs["mem"] = MemConfig(
        **{key.partition(".")[2]: value
           for key, value in snapshot.items()
           if key.startswith("mem.")})
    if kind == "mssr":
        kwargs["mssr"] = MSSRConfig(**{key.partition(".")[2]: value
                                       for key, value in snapshot.items()
                                       if key.startswith("mssr.")})
    elif kind == "ri":
        kwargs["ri"] = RIConfig(**{key.partition(".")[2]: value
                                   for key, value in snapshot.items()
                                   if key.startswith("ri.")})
    return CoreConfig(**kwargs)


def build_reuse_scheme(kind, overrides=()):
    """The explicit reuse-scheme object for kinds the core config
    cannot express (DIR); None otherwise."""
    if kind != "dir":
        return None
    from repro.baselines.dir_reuse import DIRConfig, \
        DynamicInstructionReuse
    snapshot = job_snapshot(kind, overrides)
    return DynamicInstructionReuse(DIRConfig(
        num_sets=snapshot["dir.num_sets"],
        assoc=snapshot["dir.assoc"]))


def kinds():
    """Known job kinds (sections beyond ``core`` they activate)."""
    return dict(KIND_SECTIONS)


__all__ = [
    "CONFIG_SCHEMA_VERSION", "ConfigTree", "ResolvedValue",
    "LAYER_DEFAULT", "LAYER_FILE", "LAYER_ENV", "LAYER_OVERRIDE",
    "build_core_config", "build_reuse_scheme", "flatten",
    "job_snapshot", "kinds", "parse_overrides", "resolve",
    "snapshot_hash", "suggestion",
]
