"""TOML loading that works on every supported interpreter.

``tomllib`` only ships with Python >= 3.11 and the container policy
forbids new dependencies, so this module prefers the stdlib parser and
falls back to a small parser covering the TOML subset our config and
sweep files actually use:

* comments, blank lines
* ``[table]`` and ``[[array-of-tables]]`` headers (dotted names ok)
* ``key = value`` with bare, quoted or dotted keys
* strings (single/double quoted), ints, floats, booleans
* single-line arrays (nesting ok) and inline tables

Anything outside the subset raises :class:`TomlError` with a line
number — a config file that parses differently on 3.10 and 3.12 would
be far worse than one that fails loudly.
"""

try:
    import tomllib as _tomllib
except ImportError:            # Python < 3.11
    _tomllib = None


class TomlError(ValueError):
    """A config/sweep file failed to parse."""


def loads(text):
    """Parse TOML text into a dict (tomllib when available)."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TomlError(str(exc)) from None
    return _mini_loads(text)


def load_file(path):
    """Parse a ``.toml`` (or ``.json``) file into a dict."""
    import json
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if str(path).endswith(".json"):
        try:
            return json.loads(text)
        except ValueError as exc:
            raise TomlError("%s: %s" % (path, exc)) from None
    try:
        return loads(text)
    except TomlError as exc:
        raise TomlError("%s: %s" % (path, exc)) from None


# ---------------------------------------------------------------------------
# Fallback parser
# ---------------------------------------------------------------------------
def _mini_loads(text):
    root = {}
    current = root
    for lineno, raw_line in enumerate(text.splitlines(), 1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise TomlError("line %d: malformed table array header"
                                % lineno)
            current = _enter(root, line[2:-2].strip(), lineno,
                             array=True)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise TomlError("line %d: malformed table header"
                                % lineno)
            current = _enter(root, line[1:-1].strip(), lineno)
        else:
            key, _eq, value = line.partition("=")
            if not _eq:
                raise TomlError("line %d: expected key = value" % lineno)
            target, leaf = _descend(current, key.strip(), lineno)
            if leaf in target:
                raise TomlError("line %d: duplicate key %r"
                                % (lineno, leaf))
            target[leaf] = _parse_value(value.strip(), lineno)
    return root


def _strip_comment(line):
    out = []
    quote = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out)


def _split_name(name, lineno):
    """Split a (possibly dotted, possibly quoted) key into parts."""
    parts = []
    buf = []
    quote = None
    for ch in name:
        if quote:
            if ch == quote:
                quote = None
            else:
                buf.append(ch)
        elif ch in "\"'":
            quote = ch
        elif ch == ".":
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
    if quote:
        raise TomlError("line %d: unterminated quoted key" % lineno)
    parts.append("".join(buf).strip())
    if any(not part for part in parts):
        raise TomlError("line %d: empty key component in %r"
                        % (lineno, name))
    return parts


def _descend(table, name, lineno):
    """Walk dotted-key prefixes, creating tables; returns (table, leaf).

    A prefix that names an array of tables descends into its most
    recent element (``[scenario.grid]`` after ``[[scenario]]``).
    """
    parts = _split_name(name, lineno)
    for part in parts[:-1]:
        nxt = table.setdefault(part, {})
        if isinstance(nxt, list):
            if not nxt or not isinstance(nxt[-1], dict):
                raise TomlError("line %d: %r is not a table"
                                % (lineno, part))
            nxt = nxt[-1]
        elif not isinstance(nxt, dict):
            raise TomlError("line %d: %r is not a table" % (lineno, part))
        table = nxt
    return table, parts[-1]


def _enter(root, name, lineno, array=False):
    table, leaf = _descend(root, name, lineno)
    if array:
        arr = table.setdefault(leaf, [])
        if not isinstance(arr, list):
            raise TomlError("line %d: %r is not a table array"
                            % (lineno, leaf))
        arr.append({})
        return arr[-1]
    nxt = table.setdefault(leaf, {})
    if isinstance(nxt, list):       # [[x]] earlier, [x.y] now
        raise TomlError("line %d: %r is a table array" % (lineno, leaf))
    if not isinstance(nxt, dict):
        raise TomlError("line %d: %r is not a table" % (lineno, leaf))
    return nxt


def _parse_value(token, lineno):
    if not token:
        raise TomlError("line %d: missing value" % lineno)
    if token[0] in "\"'":
        if len(token) < 2 or token[-1] != token[0]:
            raise TomlError("line %d: unterminated string" % lineno)
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    if token.startswith("["):
        if not token.endswith("]"):
            raise TomlError("line %d: arrays must be single-line"
                            % lineno)
        return [_parse_value(item, lineno)
                for item in _split_items(token[1:-1], lineno)]
    if token.startswith("{"):
        if not token.endswith("}"):
            raise TomlError("line %d: inline tables must be single-line"
                            % lineno)
        table = {}
        for item in _split_items(token[1:-1], lineno):
            key, _eq, value = item.partition("=")
            if not _eq:
                raise TomlError("line %d: malformed inline table"
                                % lineno)
            target, leaf = _descend(table, key.strip(), lineno)
            target[leaf] = _parse_value(value.strip(), lineno)
        return table
    try:
        if any(ch in token for ch in ".eE") and not token.startswith("0x"):
            return float(token)
        return int(token, 0)
    except ValueError:
        raise TomlError("line %d: cannot parse value %r"
                        % (lineno, token)) from None


def _split_items(body, lineno):
    """Split an array/inline-table body on top-level commas."""
    items = []
    buf = []
    depth = 0
    quote = None
    for ch in body:
        if quote:
            if ch == quote:
                quote = None
            buf.append(ch)
        elif ch in "\"'":
            quote = ch
            buf.append(ch)
        elif ch in "[{":
            depth += 1
            buf.append(ch)
        elif ch in "]}":
            depth -= 1
            buf.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
    if quote or depth:
        raise TomlError("line %d: unbalanced array/table" % lineno)
    tail = "".join(buf).strip()
    if tail:
        items.append(tail)
    return items
