"""Static instruction representation."""

from repro.isa.opcodes import Op, OpClass, OPCODE_INFO
from repro.isa.registers import reg_name

#: All instructions are 4 bytes, like RV64 without the C extension.
INST_BYTES = 4


class Instruction:
    """One static instruction.

    Operand conventions (``srcs`` is a tuple of architectural register
    numbers):

    * ALU reg-reg:      ``dest = fn(srcs[0], srcs[1])``
    * ALU reg-imm:      ``dest = fn(srcs[0], imm)``
    * loads:            ``dest = mem[srcs[0] + imm]``
    * stores:           ``mem[srcs[1] + imm] = srcs[0]``
    * branches:         ``if fn(srcs[0], srcs[1]): pc = imm`` (absolute target)
    * ``jal``:          ``dest = pc + 4; pc = imm``
    * ``jalr``:         ``dest = pc + 4; pc = (srcs[0] + imm)``

    Branch/jump targets are stored as *absolute byte addresses* in ``imm``
    (the assembler resolves labels), which keeps the simulator simple while
    remaining faithful to PC-relative hardware encodings.
    """

    __slots__ = ("op", "info", "dest", "srcs", "imm", "pc", "label",
                 "is_branch", "is_cond_branch", "is_indirect", "is_load",
                 "is_store", "is_halt", "writes_reg")

    def __init__(self, op, dest=None, srcs=(), imm=0, pc=None, label=None):
        if not isinstance(op, Op):
            raise TypeError("op must be an Op, got %r" % (op,))
        self.op = op
        self.info = OPCODE_INFO[op]
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.pc = pc
        self.label = label
        self._validate()
        # Precomputed classification flags (hot paths in the simulator).
        info = self.info
        self.is_branch = info.is_control
        self.is_cond_branch = (info.op_class is OpClass.BRANCH
                               and op not in (Op.JAL, Op.JALR))
        self.is_indirect = op is Op.JALR
        self.is_load = info.is_load
        self.is_store = info.is_store
        self.is_halt = op is Op.HALT
        self.writes_reg = info.has_dest and self.dest != 0

    def _validate(self):
        info = self.info
        if len(self.srcs) != info.num_srcs:
            raise ValueError(
                "%s expects %d sources, got %d"
                % (self.op.value, info.num_srcs, len(self.srcs)))
        if info.has_dest and self.dest is None:
            raise ValueError("%s requires a destination" % self.op.value)
        if not info.has_dest and self.dest is not None:
            raise ValueError("%s takes no destination" % self.op.value)

    def next_pc(self):
        """Fall-through PC."""
        return self.pc + INST_BYTES

    def taken_target(self):
        """Statically-known taken target (None for indirect jumps)."""
        if self.op is Op.JALR:
            return None
        return self.imm

    def __repr__(self):
        parts = [self.op.value]
        if self.dest is not None:
            parts.append(reg_name(self.dest))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.info.has_imm:
            parts.append(str(self.imm))
        loc = "@%#x" % self.pc if self.pc is not None else ""
        return "<%s%s>" % (" ".join(parts), loc)
