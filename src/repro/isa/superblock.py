"""Superblock trace-JIT: one compiled Python function per basic block.

The predecode layer (:mod:`repro.isa.predecode`) collapsed decode into
one dict lookup + one closure call *per instruction*. This module takes
the next rung: it discovers every straight-line region of a program
(single entry, ending at a branch/halt — the same block boundaries the
BBV profiler derives dynamically) and *generates Python source* for the
whole region, compiled once per static block, so the emulator's fast
path becomes one dict lookup + one call per **block**.

Code generation mirrors the per-instruction semantic closures exactly:

* constants (register numbers, converted immediates, fall-through pcs,
  masks) are inlined as literals; non-literal constants (ALU/branch
  functions for the rare ops without an inline template, the block's pc
  tuple, ``sext32``) are bound as default arguments — the same
  "fastest CPython name lookup" trick predecode uses;
* common ALU/branch ops are emitted as inline expressions
  (``(a + b) & MASK64`` instead of a ``wrap64`` call); signed compares
  use the sign-flip trick (``(a ^ 2**63) < (b ^ 2**63)`` orders
  unsigned representations exactly like ``to_signed`` compares);
* every observer field (``last_branch_taken``, ``last_mem_addr``,
  ``last_mem_size``) is updated in program order, so a block-mode run
  is unobservable next to the closure path;
* blocks containing memory operations carry an exactness guard: a
  progress marker is stored before every potentially-raising access
  (misaligned loads/stores raise ``ValueError``), and a re-raising
  ``except`` handler publishes the raising instruction's pc and the
  count of instructions fully executed, so ``Emulator.run_until``
  commits an *exact* ``inst_count`` even when a block body raises
  mid-block. Blocks without memory operations cannot raise
  synchronously and skip the guard entirely. (Asynchronous exceptions
  — e.g. KeyboardInterrupt — resolve to the last marker, a
  conservative count; the per-instruction paths have the analogous
  ambiguity inside a closure.)

Dispatch falls back to per-instruction stepping at block exits that
land off the leader set (e.g. an indirect jump into the middle of a
block), for unknown PCs, when the remaining instruction budget cannot
fit a whole block, and whenever ``on_inst`` observation or
``REPRO_SLOWPATH`` is active. Selection is gated by the
``emu.superblock`` runtime key (``REPRO_SUPERBLOCK``), which also
suffixes the result-cache fingerprint (``-sb``) so block-mode results
are never silently served to closure-mode runs or vice versa.
"""

from repro.isa.opcodes import Op
from repro.isa.predecode import (KIND_BRANCH, KIND_HALT, KIND_LOAD,
                                 KIND_NOP, KIND_STORE)
from repro.utils.bits import MASK64, SIGN_BIT, sext32

#: Static cap on instructions per generated block; a capped block chains
#: into a synthetic leader at its fall-through pc, so long straight-line
#: regions become a sequence of blocks rather than one giant function.
MAX_BLOCK_INSTS = 64

_MASK = "0x%X" % MASK64
#: wrap64 and ``& ~1`` fused into one literal mask (jalr targets).
_MASK_EVEN = "0x%X" % (MASK64 & ~1)


class Superblock:
    """One compiled straight-line region.

    ``fn(emu, regs) -> next_pc`` executes every instruction of the
    block (``length`` of them) and returns the successor pc; ``pcs``
    holds the member instruction addresses and ``source`` the generated
    Python (debugging / tests).
    """

    __slots__ = ("pc", "length", "pcs", "fn", "source")

    def __init__(self, pc, length, pcs, fn, source):
        self.pc = pc
        self.length = length
        self.pcs = pcs
        self.fn = fn
        self.source = source

    def __repr__(self):
        return "<Superblock %#x x%d>" % (self.pc, self.length)


class SuperblockTable:
    """Every block of one program, keyed by leader pc."""

    __slots__ = ("blocks", "by_pc")

    def __init__(self, blocks):
        self.blocks = blocks
        self.by_pc = {block.pc: block for block in blocks}


# ---------------------------------------------------------------------------
# Inline expression templates. Each returns a Python expression string
# computing the op on unsigned 64-bit operands, bit-identical to the
# _ALU_FN / _BRANCH_FN lambdas (the property test in
# tests/test_superblock.py covers every opcode against per-inst
# stepping). ``b_const`` is the pre-converted immediate for immediate
# forms (None for register forms).
# ---------------------------------------------------------------------------
def _signed(expr, const=None):
    if const is not None:
        return "%d" % (const ^ SIGN_BIT)
    return "(%s ^ %d)" % (expr, SIGN_BIT)


def _shamt(expr, const=None):
    if const is not None:
        return "%d" % (const & 63)
    return "(%s & 63)" % expr


def _alu_expr(op, a, b, b_const=None):
    """Inline expression for ``op`` or None (bound-function fallback)."""
    if op in (Op.ADD, Op.ADDI):
        return "(%s + %s) & %s" % (a, b, _MASK)
    if op is Op.SUB:
        return "(%s - %s) & %s" % (a, b, _MASK)
    if op in (Op.AND, Op.ANDI):
        return "%s & %s" % (a, b)
    if op in (Op.OR, Op.ORI):
        return "%s | %s" % (a, b)
    if op in (Op.XOR, Op.XORI):
        return "%s ^ %s" % (a, b)
    if op is Op.MUL:
        return "(%s * %s) & %s" % (a, b, _MASK)
    if op in (Op.SLT, Op.SLTI):
        return "1 if %s < %s else 0" % (_signed(a), _signed(b, b_const))
    if op in (Op.SLTU, Op.SLTIU):
        return "1 if %s < %s else 0" % (a, b)
    if op in (Op.SLL, Op.SLLI):
        return "(%s << %s) & %s" % (a, _shamt(b, b_const), _MASK)
    if op in (Op.SRL, Op.SRLI):
        # Register values are already masked to 64 bits.
        return "%s >> %s" % (a, _shamt(b, b_const))
    if op in (Op.SRA, Op.SRAI):
        # Two's-complement reinterpretation: Python's >> on a negative
        # int is arithmetic, so convert, shift, mask back.
        return "((%s - ((%s & %d) << 1)) >> %s) & %s" \
            % (a, a, SIGN_BIT, _shamt(b, b_const), _MASK)
    return None


def _branch_expr(op, a, b):
    """Inline taken-condition for ``op`` or None."""
    if op is Op.BEQ:
        return "%s == %s" % (a, b)
    if op is Op.BNE:
        return "%s != %s" % (a, b)
    if op is Op.BLT:
        return "%s < %s" % (_signed(a), _signed(b))
    if op is Op.BGE:
        return "%s >= %s" % (_signed(a), _signed(b))
    if op is Op.BLTU:
        return "%s < %s" % (a, b)
    if op is Op.BGEU:
        return "%s >= %s" % (a, b)
    return None


# ---------------------------------------------------------------------------
# Per-instruction statement emission. ``guarded`` marks blocks holding
# memory operations: those set the progress marker ``n`` before each
# access so the except handler can publish an exact instruction count.
# ---------------------------------------------------------------------------
def _emit(rec, index, lines, binds, guarded):
    kind = rec.kind
    if kind == KIND_NOP:
        return

    if kind == KIND_BRANCH:
        if rec.is_cond_branch:
            cond = _branch_expr(rec.op, "regs[%d]" % rec.src0,
                                "regs[%d]" % rec.src1)
            if cond is None:      # pragma: no cover - all ops templated
                name = "_f%d" % index
                binds[name] = rec.branch_fn
                cond = "%s(regs[%d], regs[%d])" % (name, rec.src0,
                                                   rec.src1)
            lines.append("_tk = %s" % cond)
            lines.append("emu.last_branch_taken = _tk")
            lines.append("return %d if _tk else %d" % (rec.imm,
                                                       rec.next_pc))
            return
        if rec.op is Op.JAL:
            if rec.writes_reg:
                lines.append("regs[%d] = %d" % (rec.dest, rec.next_pc))
            lines.append("emu.last_branch_taken = True")
            lines.append("return %d" % rec.imm)
            return
        # jalr: target computed before the link write (so
        # ``jalr ra, ra`` stays correct), exactly like the closure.
        lines.append("_tg = (regs[%d] + %d) & %s"
                     % (rec.src0, rec.imm, _MASK_EVEN))
        if rec.writes_reg:
            lines.append("regs[%d] = %d" % (rec.dest, rec.next_pc))
        lines.append("emu.last_branch_taken = True")
        lines.append("return _tg")
        return

    if kind == KIND_LOAD:
        if guarded:
            lines.append("n = %d" % index)
        lines.append("_a = (regs[%d] + %d) & %s"
                     % (rec.src0, rec.imm, _MASK))
        # The access always happens (alignment checks fire even for an
        # x0 destination); only the writeback is gated.
        if rec.writes_reg:
            if rec.is_lw:
                binds["_sx"] = sext32
                lines.append("regs[%d] = _sx(_rd(_a, 4))" % rec.dest)
            else:
                lines.append("regs[%d] = _rd(_a, %d)"
                             % (rec.dest, rec.mem_size))
        else:
            lines.append("_rd(_a, %d)" % rec.mem_size)
        lines.append("emu.last_mem_addr = _a")
        lines.append("emu.last_mem_size = %d" % rec.mem_size)
        return

    if kind == KIND_STORE:
        if guarded:
            lines.append("n = %d" % index)
        lines.append("_a = (regs[%d] + %d) & %s"
                     % (rec.src1, rec.imm, _MASK))
        lines.append("_wr(_a, regs[%d], %d)" % (rec.src0, rec.mem_size))
        lines.append("emu.last_mem_addr = _a")
        lines.append("emu.last_mem_size = %d" % rec.mem_size)
        return

    if kind == KIND_HALT:
        lines.append("emu.halted = True")
        lines.append("return %d" % rec.next_pc)
        return

    # ALU / MUL / DIV: pure, so an x0 destination emits nothing.
    if not rec.writes_reg:
        return
    if rec.has_imm:
        if not rec.num_srcs:      # lui materialises its immediate
            lines.append("regs[%d] = %d" % (rec.dest, rec.imm_u))
            return
        a = "regs[%d]" % rec.src0
        expr = _alu_expr(rec.op, a, "%d" % rec.imm_u, b_const=rec.imm_u)
        if expr is None:
            name = "_f%d" % index
            binds[name] = rec.alu_fn
            expr = "%s(%s, %d)" % (name, a, rec.imm_u)
    else:
        a = "regs[%d]" % rec.src0
        b = "regs[%d]" % rec.src1
        expr = _alu_expr(rec.op, a, b)
        if expr is None:
            name = "_f%d" % index
            binds[name] = rec.alu_fn
            expr = "%s(%s, %s)" % (name, a, b)
    lines.append("regs[%d] = %s" % (rec.dest, expr))


def compile_block(records):
    """Compile one straight-line run of :class:`~repro.isa.predecode.
    PDInst` records into a :class:`Superblock`."""
    has_load = any(rec.kind == KIND_LOAD for rec in records)
    has_store = any(rec.kind == KIND_STORE for rec in records)
    guarded = has_load or has_store

    binds = {}
    body = []
    for index, rec in enumerate(records):
        _emit(rec, index, body, binds, guarded)
    last = records[-1]
    if last.kind not in (KIND_BRANCH, KIND_HALT):
        # Capped (or program-end) block: chain into the fall-through.
        body.append("return %d" % last.next_pc)

    prologue = []
    if has_load:
        prologue.append("_rd = emu.memory.read")
    if has_store:
        prologue.append("_wr = emu.memory.write")

    if guarded:
        binds["_pcs"] = tuple(rec.pc for rec in records)
        lines = ["    n = 0"]
        lines += ["    " + line for line in prologue]
        lines.append("    try:")
        lines += ["        " + line for line in body]
        lines.append("    except BaseException:")
        lines.append("        emu.pc = _pcs[n]")
        lines.append("        emu._sb_progress = n")
        lines.append("        raise")
    else:
        lines = ["    " + line for line in prologue + body]

    args = ["emu", "regs"] + ["%s=%s" % (name, name)
                              for name in sorted(binds)]
    source = "def _block(%s):\n%s\n" % (", ".join(args),
                                        "\n".join(lines))
    namespace = dict(binds)
    exec(compile(source, "<superblock %#x>" % records[0].pc, "exec"),
         namespace)
    return Superblock(records[0].pc, len(records),
                      tuple(rec.pc for rec in records),
                      namespace["_block"], source)


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------
def discover_leaders(program):
    """Static block leaders: the program entry, every direct branch
    target and every post-branch fall-through (which covers both
    not-taken paths and jal return sites). Only pcs addressing real
    instructions qualify."""
    pd = program.predecode()
    by_pc = pd.by_pc
    leaders = set()
    candidates = [program.entry]
    for rec in pd.records:
        if rec.kind == KIND_BRANCH:
            candidates.append(rec.next_pc)
            if rec.target is not None:
                candidates.append(rec.target)
    for pc in candidates:
        if pc in by_pc:
            leaders.add(pc)
    return leaders


def build_superblocks(program, max_insts=MAX_BLOCK_INSTS):
    """Discover and compile every superblock of ``program``.

    Blocks may overlap (an interior leader — e.g. a loop back-edge
    target inside a longer straight-line run — gets its own block
    starting there); straight-line code has no entry conditions, so
    overlap is semantically free and keeps blocks long. Blocks longer
    than ``max_insts`` are capped and chain into a synthetic leader at
    the cap boundary.
    """
    by_pc = program.predecode().by_pc
    worklist = sorted(discover_leaders(program))
    blocks = {}
    while worklist:
        pc = worklist.pop()
        if pc in blocks or pc not in by_pc:
            continue
        records = []
        cur = pc
        while True:
            rec = by_pc.get(cur)
            if rec is None:
                break
            records.append(rec)
            if rec.kind in (KIND_BRANCH, KIND_HALT):
                break
            if len(records) >= max_insts:
                worklist.append(rec.next_pc)
                break
            cur = rec.next_pc
        blocks[pc] = compile_block(records)
    return SuperblockTable([blocks[pc] for pc in sorted(blocks)])
