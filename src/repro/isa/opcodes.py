"""Opcode definitions, classes and arithmetic semantics.

``OPCODE_INFO`` is the single source of truth consumed by the assembler,
the functional emulator and the timing model. Each entry records the
operand shape (how many register sources, whether there is a destination,
whether an immediate is used) and, for ALU operations, a pure function
implementing the arithmetic on unsigned 64-bit values.
"""

import enum

from repro.utils.bits import (
    MASK64,
    wrap64,
    to_signed,
    sll64,
    srl64,
    sra64,
    div_trunc,
    rem_trunc,
    mulh64,
)


class OpClass(enum.Enum):
    """Functional-unit class used by the issue/execute model."""

    ALU = "alu"          # single-cycle integer
    MUL = "mul"          # pipelined multiplier
    DIV = "div"          # unpipelined divider
    BRANCH = "branch"    # resolved on a BRU port
    LOAD = "load"
    STORE = "store"
    NOP = "nop"
    HALT = "halt"


class Op(enum.Enum):
    """Every opcode in the ISA."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    MUL = "mul"
    MULH = "mulh"
    DIV = "div"
    REM = "rem"
    MIN = "min"   # convenience ops (RISC-V Zbb-style)
    MAX = "max"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"
    SLTIU = "sltiu"
    LUI = "lui"
    # Memory.
    LD = "ld"   # 8-byte load
    LW = "lw"   # 4-byte sign-extending load
    LBU = "lbu"  # 1-byte zero-extending load
    SD = "sd"
    SW = "sw"
    SB = "sb"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JAL = "jal"
    JALR = "jalr"
    # Misc.
    NOP = "nop"
    HALT = "halt"


def _slt(a, b):
    return 1 if to_signed(a) < to_signed(b) else 0


def _sltu(a, b):
    return 1 if (a & MASK64) < (b & MASK64) else 0


def _smin(a, b):
    return a if to_signed(a) <= to_signed(b) else b


def _smax(a, b):
    return a if to_signed(a) >= to_signed(b) else b


_ALU_FN = {
    Op.ADD: lambda a, b: wrap64(a + b),
    Op.SUB: lambda a, b: wrap64(a - b),
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SLL: sll64,
    Op.SRL: srl64,
    Op.SRA: sra64,
    Op.SLT: _slt,
    Op.SLTU: _sltu,
    Op.MUL: lambda a, b: wrap64(a * b),
    Op.MULH: mulh64,
    Op.DIV: div_trunc,
    Op.REM: rem_trunc,
    Op.MIN: _smin,
    Op.MAX: _smax,
}

# Immediate forms share the register-register semantics (operand b is the
# immediate); LUI simply materialises its (pre-shifted) immediate.
_ALU_FN.update({
    Op.ADDI: _ALU_FN[Op.ADD],
    Op.ANDI: _ALU_FN[Op.AND],
    Op.ORI: _ALU_FN[Op.OR],
    Op.XORI: _ALU_FN[Op.XOR],
    Op.SLLI: _ALU_FN[Op.SLL],
    Op.SRLI: _ALU_FN[Op.SRL],
    Op.SRAI: _ALU_FN[Op.SRA],
    Op.SLTI: _ALU_FN[Op.SLT],
    Op.SLTIU: _ALU_FN[Op.SLTU],
    Op.LUI: lambda a, b: b,
})

_BRANCH_FN = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Op.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Op.BLTU: lambda a, b: (a & MASK64) < (b & MASK64),
    Op.BGEU: lambda a, b: (a & MASK64) >= (b & MASK64),
}

#: Memory access width in bytes for each memory opcode.
MEM_SIZE = {
    Op.LD: 8, Op.LW: 4, Op.LBU: 1,
    Op.SD: 8, Op.SW: 4, Op.SB: 1,
}

#: Loads that sign-extend their result.
MEM_SIGNED = {Op.LD: True, Op.LW: True, Op.LBU: False}


class OpInfo:
    """Static description of one opcode."""

    __slots__ = ("op", "op_class", "num_srcs", "has_dest", "has_imm",
                 "alu_fn", "branch_fn", "mem_size", "mem_signed")

    def __init__(self, op, op_class, num_srcs, has_dest, has_imm):
        self.op = op
        self.op_class = op_class
        self.num_srcs = num_srcs
        self.has_dest = has_dest
        self.has_imm = has_imm
        self.alu_fn = _ALU_FN.get(op)
        self.branch_fn = _BRANCH_FN.get(op)
        self.mem_size = MEM_SIZE.get(op, 0)
        self.mem_signed = MEM_SIGNED.get(op, False)

    @property
    def is_branch(self):
        return self.op_class is OpClass.BRANCH

    @property
    def is_load(self):
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self):
        return self.op_class is OpClass.STORE

    @property
    def is_control(self):
        return self.op_class is OpClass.BRANCH or self.op in (Op.JAL, Op.JALR)


def _build_info():
    info = {}
    rr_ops = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
              Op.SLT, Op.SLTU, Op.MIN, Op.MAX]
    for op in rr_ops:
        info[op] = OpInfo(op, OpClass.ALU, 2, True, False)
    info[Op.MUL] = OpInfo(Op.MUL, OpClass.MUL, 2, True, False)
    info[Op.MULH] = OpInfo(Op.MULH, OpClass.MUL, 2, True, False)
    info[Op.DIV] = OpInfo(Op.DIV, OpClass.DIV, 2, True, False)
    info[Op.REM] = OpInfo(Op.REM, OpClass.DIV, 2, True, False)
    ri_ops = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI,
              Op.SLTI, Op.SLTIU]
    for op in ri_ops:
        info[op] = OpInfo(op, OpClass.ALU, 1, True, True)
    info[Op.LUI] = OpInfo(Op.LUI, OpClass.ALU, 0, True, True)
    for op in (Op.LD, Op.LW, Op.LBU):
        info[op] = OpInfo(op, OpClass.LOAD, 1, True, True)
    for op in (Op.SD, Op.SW, Op.SB):
        # src0 = value to store, src1 = address base.
        info[op] = OpInfo(op, OpClass.STORE, 2, False, True)
    for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
        info[op] = OpInfo(op, OpClass.BRANCH, 2, False, True)
    info[Op.JAL] = OpInfo(Op.JAL, OpClass.BRANCH, 0, True, True)
    info[Op.JALR] = OpInfo(Op.JALR, OpClass.BRANCH, 1, True, True)
    info[Op.NOP] = OpInfo(Op.NOP, OpClass.NOP, 0, False, False)
    info[Op.HALT] = OpInfo(Op.HALT, OpClass.HALT, 0, False, False)
    return info


#: Opcode -> :class:`OpInfo`.
OPCODE_INFO = _build_info()

#: The immediate-ALU opcode corresponding to each register-register one
#: (used by the assembler's pseudo-instruction expansion).
IMM_FORM = {
    Op.ADD: Op.ADDI, Op.AND: Op.ANDI, Op.OR: Op.ORI, Op.XOR: Op.XORI,
    Op.SLL: Op.SLLI, Op.SRL: Op.SRLI, Op.SRA: Op.SRAI,
    Op.SLT: Op.SLTI, Op.SLTU: Op.SLTIU,
}
