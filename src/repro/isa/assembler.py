"""Two-level assembler.

:class:`Assembler` is a programmatic builder: call opcode-named methods to
emit instructions, use :meth:`Assembler.label` for branch targets and the
data helpers for static arrays, then :meth:`Assembler.finish` to get a
:class:`~repro.isa.program.Program` with all labels resolved.

:func:`assemble_text` additionally accepts a small textual syntax (one
instruction per line, ``name:`` labels, ``#`` comments) which is convenient
in tests and examples.
"""

from repro.isa.instruction import Instruction, INST_BYTES
from repro.isa.opcodes import Op, OPCODE_INFO, OpClass
from repro.isa.program import Program, DataSegment, CODE_BASE
from repro.isa.registers import reg_num


class AsmError(Exception):
    """Raised for malformed assembly input or unresolved labels."""


class _PendingInst:
    """Instruction whose immediate may still be a symbolic label."""

    __slots__ = ("op", "dest", "srcs", "imm", "pc")

    def __init__(self, op, dest, srcs, imm, pc):
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.imm = imm
        self.pc = pc


class Assembler:
    """Incremental program builder with label resolution."""

    def __init__(self, code_base=CODE_BASE, data=None):
        self.code_base = code_base
        self.data = data if data is not None else DataSegment()
        self._insts = []
        self._labels = {}
        self._entry_label = None

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    @property
    def next_pc(self):
        return self.code_base + INST_BYTES * len(self._insts)

    def label(self, name):
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AsmError("duplicate label %r" % name)
        self._labels[name] = self.next_pc
        return self

    def entry(self, name):
        """Mark the program entry point (defaults to the first instruction)."""
        self._entry_label = name
        return self

    def emit(self, op, dest=None, srcs=(), imm=0):
        """Emit a raw instruction; ``imm`` may be an int or a label name."""
        info = OPCODE_INFO[op]
        dest_n = reg_num(dest) if dest is not None else None
        srcs_n = tuple(reg_num(s) for s in srcs)
        if len(srcs_n) != info.num_srcs:
            raise AsmError("%s expects %d sources, got %d"
                           % (op.value, info.num_srcs, len(srcs_n)))
        self._insts.append(_PendingInst(op, dest_n, srcs_n, imm, self.next_pc))
        return self

    # ------------------------------------------------------------------
    # Typed emitters (one per operand shape)
    # ------------------------------------------------------------------
    def rr(self, op, dest, src1, src2):
        return self.emit(op, dest, (src1, src2))

    def ri(self, op, dest, src1, imm):
        return self.emit(op, dest, (src1,), int(imm))

    def load(self, op, dest, base, offset=0):
        return self.emit(op, dest, (base,), int(offset))

    def store(self, op, value, base, offset=0):
        return self.emit(op, None, (value, base), int(offset))

    def branch(self, op, src1, src2, target):
        return self.emit(op, None, (src1, src2), target)

    def jal(self, dest, target):
        return self.emit(Op.JAL, dest, (), target)

    def jalr(self, dest, base, offset=0):
        return self.emit(Op.JALR, dest, (base,), int(offset))

    def lui(self, dest, imm):
        return self.emit(Op.LUI, dest, (), int(imm) << 12)

    def nop(self):
        return self.emit(Op.NOP)

    def halt(self):
        return self.emit(Op.HALT)

    # ------------------------------------------------------------------
    # Pseudo-instructions
    # ------------------------------------------------------------------
    def li(self, dest, value):
        """Load an arbitrary 64-bit constant.

        The simulator does not model encoding width, so a single ``addi``
        from ``zero`` suffices for any value.
        """
        return self.ri(Op.ADDI, dest, "zero", int(value))

    def mv(self, dest, src):
        return self.ri(Op.ADDI, dest, src, 0)

    def not_(self, dest, src):
        return self.ri(Op.XORI, dest, src, -1)

    def neg(self, dest, src):
        return self.rr(Op.SUB, dest, "zero", src)

    def seqz(self, dest, src):
        return self.ri(Op.SLTIU, dest, src, 1)

    def snez(self, dest, src):
        return self.rr(Op.SLTU, dest, "zero", src)

    def j(self, target):
        return self.jal("zero", target)

    def jr(self, base):
        return self.jalr("zero", base, 0)

    def call(self, target):
        return self.jal("ra", target)

    def ret(self):
        return self.jalr("zero", "ra", 0)

    def beqz(self, src, target):
        return self.branch(Op.BEQ, src, "zero", target)

    def bnez(self, src, target):
        return self.branch(Op.BNE, src, "zero", target)

    def bgt(self, src1, src2, target):
        return self.branch(Op.BLT, src2, src1, target)

    def ble(self, src1, src2, target):
        return self.branch(Op.BGE, src2, src1, target)

    def la(self, dest, symbol):
        """Load the address of a data symbol."""
        return self.li(dest, self.data.addr_of(symbol))

    # ------------------------------------------------------------------
    # Data helpers (delegate to the data segment)
    # ------------------------------------------------------------------
    def word_array(self, name, values):
        return self.data.word_array(name, values)

    def word(self, name, value=0):
        return self.data.word(name, value)

    def reserve(self, name, num_bytes):
        return self.data.reserve(name, num_bytes)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def resolve(self, value):
        """Resolve a label or integer immediate to an int."""
        if isinstance(value, str):
            if value in self._labels:
                return self._labels[value]
            if value in self.data.symbols:
                return self.data.symbols[value]
            raise AsmError("unresolved label %r" % value)
        return int(value)

    def finish(self):
        """Resolve labels and return the assembled :class:`Program`."""
        insts = []
        for pend in self._insts:
            imm = self.resolve(pend.imm)
            insts.append(Instruction(pend.op, dest=pend.dest,
                                     srcs=pend.srcs, imm=imm, pc=pend.pc))
        entry = None
        if self._entry_label is not None:
            entry = self.resolve(self._entry_label)
        return Program(insts, labels=dict(self._labels), data=self.data,
                       entry=entry, code_base=self.code_base)


# Convenience: install thin opcode-named wrappers (``a.add(...)``,
# ``a.beq(...)``) so assembly code reads naturally. Reserved Python words
# (``and``, ``or``) get a trailing underscore.
def _install_opcode_methods():
    def make_rr(op):
        def method(self, dest, src1, src2):
            return self.rr(op, dest, src1, src2)
        return method

    def make_ri(op):
        def method(self, dest, src1, imm):
            return self.ri(op, dest, src1, imm)
        return method

    def make_load(op):
        def method(self, dest, base, offset=0):
            return self.load(op, dest, base, offset)
        return method

    def make_store(op):
        def method(self, value, base, offset=0):
            return self.store(op, value, base, offset)
        return method

    def make_branch(op):
        def method(self, src1, src2, target):
            return self.branch(op, src1, src2, target)
        return method

    for op, info in OPCODE_INFO.items():
        name = op.value
        if name in ("and", "or", "not"):
            name += "_"
        if hasattr(Assembler, name):
            continue
        if info.op_class in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            method = make_ri(op) if info.has_imm else make_rr(op)
        elif info.op_class is OpClass.LOAD:
            method = make_load(op)
        elif info.op_class is OpClass.STORE:
            method = make_store(op)
        elif info.op_class is OpClass.BRANCH and op not in (Op.JAL, Op.JALR):
            method = make_branch(op)
        else:
            continue
        method.__name__ = name
        method.__doc__ = "Emit a %s instruction." % op.value
        setattr(Assembler, name, method)


_install_opcode_methods()

_TEXT_OPS = {op.value: op for op in Op}


def assemble_text(source, code_base=CODE_BASE):
    """Assemble a textual listing into a :class:`Program`.

    Supported syntax, one item per line::

        label:
        add t0, t1, t2
        addi t0, t1, -4
        ld t0, 8(a0)
        sd t0, 8(a0)
        beq t0, t1, label
        jal ra, label
        .word name 1 2 3      # initialised 64-bit array
        .space name 128       # zeroed bytes
        # comment
    """
    asm = Assembler(code_base=code_base)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            _assemble_line(asm, line)
        except (AsmError, ValueError, KeyError) as exc:
            raise AsmError("line %d (%r): %s" % (lineno, raw.strip(), exc))
    return asm.finish()


def _parse_int(token):
    return int(token, 0)


def _assemble_line(asm, line):
    if line.endswith(":"):
        asm.label(line[:-1].strip())
        return
    if line.startswith(".word"):
        parts = line.split()
        asm.word_array(parts[1], [_parse_int(v) for v in parts[2:]])
        return
    if line.startswith(".space"):
        parts = line.split()
        asm.reserve(parts[1], _parse_int(parts[2]))
        return
    mnemonic, _, rest = line.partition(" ")
    args = [a.strip() for a in rest.split(",")] if rest.strip() else []
    _emit_text_inst(asm, mnemonic.strip(), args)


def _mem_operand(arg):
    """Parse ``offset(base)`` into (offset, base)."""
    if "(" in arg:
        off_s, _, base_s = arg.partition("(")
        base = base_s.rstrip(") ")
        offset = _parse_int(off_s) if off_s.strip() else 0
        return offset, base
    return 0, arg


def _imm_or_label(token):
    try:
        return _parse_int(token)
    except ValueError:
        return token


_PSEUDO_TEXT = {
    "li": lambda a, args: a.li(args[0], _parse_int(args[1])),
    "mv": lambda a, args: a.mv(args[0], args[1]),
    "j": lambda a, args: a.j(_imm_or_label(args[0])),
    "jr": lambda a, args: a.jr(args[0]),
    "call": lambda a, args: a.call(_imm_or_label(args[0])),
    "ret": lambda a, args: a.ret(),
    "beqz": lambda a, args: a.beqz(args[0], _imm_or_label(args[1])),
    "bnez": lambda a, args: a.bnez(args[0], _imm_or_label(args[1])),
    "bgt": lambda a, args: a.bgt(args[0], args[1], _imm_or_label(args[2])),
    "ble": lambda a, args: a.ble(args[0], args[1], _imm_or_label(args[2])),
    "la": lambda a, args: a.la(args[0], args[1]),
    "seqz": lambda a, args: a.seqz(args[0], args[1]),
    "snez": lambda a, args: a.snez(args[0], args[1]),
    "neg": lambda a, args: a.neg(args[0], args[1]),
    "not": lambda a, args: a.not_(args[0], args[1]),
}


def _emit_text_inst(asm, mnemonic, args):
    if mnemonic in _PSEUDO_TEXT:
        _PSEUDO_TEXT[mnemonic](asm, args)
        return
    op = _TEXT_OPS.get(mnemonic)
    if op is None:
        raise AsmError("unknown mnemonic %r" % mnemonic)
    info = OPCODE_INFO[op]
    if op is Op.JAL:
        asm.jal(args[0], _imm_or_label(args[1]))
    elif op is Op.JALR:
        offset, base = _mem_operand(args[1]) if len(args) > 1 else (0, "ra")
        asm.jalr(args[0], base, offset)
    elif op is Op.LUI:
        asm.lui(args[0], _parse_int(args[1]))
    elif info.op_class is OpClass.LOAD:
        offset, base = _mem_operand(args[1])
        asm.load(op, args[0], base, offset)
    elif info.op_class is OpClass.STORE:
        offset, base = _mem_operand(args[1])
        asm.store(op, args[0], base, offset)
    elif info.op_class is OpClass.BRANCH:
        asm.branch(op, args[0], args[1], _imm_or_label(args[2]))
    elif info.has_imm:
        asm.ri(op, args[0], args[1], _parse_int(args[2]))
    elif info.num_srcs == 2:
        asm.rr(op, args[0], args[1], args[2])
    elif op in (Op.NOP, Op.HALT):
        asm.emit(op)
    else:
        raise AsmError("cannot assemble %r" % mnemonic)
