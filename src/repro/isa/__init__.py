"""A 64-bit RISC-V-flavoured instruction set for the simulator.

The ISA is deliberately small but complete enough to compile real integer
kernels: register-register and register-immediate ALU operations
(including M-extension multiply/divide), 1/4/8-byte loads and stores,
conditional branches, direct and indirect jumps, and a ``halt`` marker
that terminates simulation at commit.
"""

from repro.isa.registers import (
    NUM_ARCH_REGS,
    REG_NAMES,
    REG_NUMBERS,
    reg_num,
    reg_name,
)
from repro.isa.opcodes import Op, OPCODE_INFO, OpClass
from repro.isa.instruction import Instruction
from repro.isa.program import Program, DataSegment
from repro.isa.assembler import Assembler, AsmError, assemble_text

__all__ = [
    "NUM_ARCH_REGS",
    "REG_NAMES",
    "REG_NUMBERS",
    "reg_num",
    "reg_name",
    "Op",
    "OpClass",
    "OPCODE_INFO",
    "Instruction",
    "Program",
    "DataSegment",
    "Assembler",
    "AsmError",
    "assemble_text",
]
