"""Predecode layer: static instructions flattened for the hot paths.

Both the functional emulator and the detailed core spend most of their
time re-deriving the same per-instruction facts (`inst.info` attribute
walks, ``op_class`` if/elif chains, ``to_unsigned(imm)``) on every
dynamic instance of every static instruction. This module computes all
of it exactly once per static instruction at :meth:`Program.predecode`
time:

* :class:`PDInst` — a ``__slots__`` record with the operand shape, the
  register numbers, the pre-converted immediate, the memory size /
  store mask, the functional-unit kind as a small int, and the
  classification flags, so hot stages read plain attributes instead of
  walking ``inst.info``.
* ``exec_fn`` — a per-instruction *semantic closure* for the golden
  model: ``exec_fn(emu, regs) -> next_pc`` performs the instruction's
  architectural effect with every constant (register numbers, converted
  immediate, fall-through pc, ALU function) bound at predecode time.
  The closures are bit-identical to :meth:`Emulator._execute` by
  construction, and the ``REPRO_SLOWPATH=1`` escape hatch keeps the
  original interpretive path alive for differential testing.

The records are pure functions of the static instruction, so a
predecoded program can be cached on the :class:`Program` and shared by
every emulator / core instance built from it.
"""

from repro.isa.opcodes import Op, OpClass
from repro.utils.bits import sext32, to_unsigned, wrap64

#: Bumped whenever predecoded semantics change in a way that could alter
#: results; folded into the harness cache fingerprint so cached results
#: from pre-optimisation code are never silently reused. v2: superblock
#: compilation (repro.isa.superblock) joins the execution fast path.
PREDECODE_VERSION = 2

#: Functional-unit kind as a small int (dispatch without enum identity
#: checks). Order matters: ``kind <= KIND_DIV`` selects the ALU-computed
#: classes and ``kind >= KIND_NOP`` the no-execute ones.
KIND_ALU = 0
KIND_MUL = 1
KIND_DIV = 2
KIND_BRANCH = 3
KIND_LOAD = 4
KIND_STORE = 5
KIND_NOP = 6
KIND_HALT = 7

_CLASS_KIND = {
    OpClass.ALU: KIND_ALU,
    OpClass.MUL: KIND_MUL,
    OpClass.DIV: KIND_DIV,
    OpClass.BRANCH: KIND_BRANCH,
    OpClass.LOAD: KIND_LOAD,
    OpClass.STORE: KIND_STORE,
    OpClass.NOP: KIND_NOP,
    OpClass.HALT: KIND_HALT,
}

#: Human-readable kind names (debugging / tests).
KIND_NAMES = ("alu", "mul", "div", "branch", "load", "store", "nop",
              "halt")


def slowpath_enabled():
    """True when ``REPRO_SLOWPATH=1`` requests the pre-predecode
    interpretive paths (differential-testing escape hatch). Read at
    emulator/core construction time, so tests can toggle per instance."""
    from repro.config import envreg
    return envreg.get("REPRO_SLOWPATH")


def superblock_enabled():
    """True when ``REPRO_SUPERBLOCK=1`` (config key ``emu.superblock``)
    selects block-granular dispatch (:mod:`repro.isa.superblock`) for
    the emulator fast path. Read at construction time, like
    :func:`slowpath_enabled`; slowpath wins when both are set."""
    from repro.config import envreg
    return envreg.get("REPRO_SUPERBLOCK")


class PDInst:
    """One predecoded static instruction (flat, read-only hot-path view)."""

    __slots__ = (
        "inst", "op", "op_class", "kind", "pc", "next_pc",
        "dest", "src0", "src1", "num_srcs",
        "imm", "imm_u", "has_imm", "target",
        "writes_reg", "is_branch", "is_cond_branch", "is_indirect",
        "is_load", "is_store", "is_halt", "is_lw",
        "mem_size", "store_mask", "alu_fn", "branch_fn", "exec_fn",
    )

    def __repr__(self):
        return "<PDInst %s %r>" % (KIND_NAMES[self.kind], self.inst)


def predecode_inst(inst):
    """Flatten one :class:`~repro.isa.instruction.Instruction`.

    Every field is derived from the instruction and its
    :class:`~repro.isa.opcodes.OpInfo`; the property test in
    ``tests/test_predecode.py`` asserts the correspondence for every
    opcode in the ISA. Instructions without a placed ``pc`` (unit-test
    constructions) get ``next_pc``/``exec_fn`` of None.
    """
    info = inst.info
    rec = PDInst()
    rec.inst = inst
    rec.op = inst.op
    rec.op_class = info.op_class
    rec.kind = _CLASS_KIND[info.op_class]
    rec.pc = inst.pc
    rec.next_pc = None if inst.pc is None else inst.next_pc()
    rec.dest = inst.dest
    srcs = inst.srcs
    rec.num_srcs = len(srcs)
    rec.src0 = srcs[0] if srcs else None
    rec.src1 = srcs[1] if len(srcs) > 1 else None
    rec.imm = inst.imm
    rec.imm_u = to_unsigned(inst.imm) if info.has_imm else 0
    rec.has_imm = info.has_imm
    rec.target = inst.taken_target()
    rec.writes_reg = inst.writes_reg
    rec.is_branch = inst.is_branch
    rec.is_cond_branch = inst.is_cond_branch
    rec.is_indirect = inst.is_indirect
    rec.is_load = inst.is_load
    rec.is_store = inst.is_store
    rec.is_halt = inst.is_halt
    rec.is_lw = inst.op is Op.LW
    rec.mem_size = info.mem_size
    rec.store_mask = (1 << (info.mem_size * 8)) - 1 if info.mem_size else 0
    rec.alu_fn = info.alu_fn
    rec.branch_fn = info.branch_fn
    rec.exec_fn = None if rec.next_pc is None else _build_exec(rec)
    return rec


# ---------------------------------------------------------------------------
# Golden-model semantic closures. Constants are bound as default
# arguments (the fastest name lookup CPython offers); each closure
# mirrors one arm of the original ``Emulator._execute`` exactly —
# including evaluation order (jalr computes its target before writing
# the link register, so ``jalr ra, ra`` stays correct) and the
# ``last_branch_taken`` / ``last_mem_*`` observer fields.
# ---------------------------------------------------------------------------
def _build_exec(rec):
    npc = rec.next_pc
    kind = rec.kind

    if kind == KIND_BRANCH:
        if rec.is_cond_branch:
            def run(emu, regs, _fn=rec.branch_fn, _s0=rec.src0,
                    _s1=rec.src1, _t=rec.imm, _npc=npc):
                taken = _fn(regs[_s0], regs[_s1])
                emu.last_branch_taken = taken
                return _t if taken else _npc
            return run
        if rec.op is Op.JAL:
            if rec.writes_reg:
                def run(emu, regs, _d=rec.dest, _t=rec.imm, _link=npc):
                    regs[_d] = _link
                    emu.last_branch_taken = True
                    return _t
            else:
                def run(emu, regs, _t=rec.imm):
                    emu.last_branch_taken = True
                    return _t
            return run
        # jalr
        if rec.writes_reg:
            def run(emu, regs, _s0=rec.src0, _imm=rec.imm, _d=rec.dest,
                    _link=npc):
                target = wrap64(regs[_s0] + _imm) & ~1
                regs[_d] = _link
                emu.last_branch_taken = True
                return target
        else:
            def run(emu, regs, _s0=rec.src0, _imm=rec.imm):
                emu.last_branch_taken = True
                return wrap64(regs[_s0] + _imm) & ~1
        return run

    if kind == KIND_LOAD:
        # The access itself always happens (alignment checks must fire
        # even for an x0-destination load); only the writeback is gated.
        if rec.writes_reg:
            if rec.is_lw:
                def run(emu, regs, _s0=rec.src0, _imm=rec.imm,
                        _d=rec.dest, _npc=npc):
                    addr = wrap64(regs[_s0] + _imm)
                    regs[_d] = sext32(emu.memory.read(addr, 4))
                    emu.last_mem_addr = addr
                    emu.last_mem_size = 4
                    return _npc
            else:
                def run(emu, regs, _s0=rec.src0, _imm=rec.imm,
                        _d=rec.dest, _size=rec.mem_size, _npc=npc):
                    addr = wrap64(regs[_s0] + _imm)
                    regs[_d] = emu.memory.read(addr, _size)
                    emu.last_mem_addr = addr
                    emu.last_mem_size = _size
                    return _npc
        else:
            def run(emu, regs, _s0=rec.src0, _imm=rec.imm,
                    _size=rec.mem_size, _npc=npc):
                addr = wrap64(regs[_s0] + _imm)
                emu.memory.read(addr, _size)
                emu.last_mem_addr = addr
                emu.last_mem_size = _size
                return _npc
        return run

    if kind == KIND_STORE:
        def run(emu, regs, _s0=rec.src0, _s1=rec.src1, _imm=rec.imm,
                _size=rec.mem_size, _npc=npc):
            addr = wrap64(regs[_s1] + _imm)
            emu.memory.write(addr, regs[_s0], _size)
            emu.last_mem_addr = addr
            emu.last_mem_size = _size
            return _npc
        return run

    if kind == KIND_HALT:
        def run(emu, regs, _npc=npc):
            emu.halted = True
            return _npc
        return run

    if kind == KIND_NOP:
        def run(emu, regs, _npc=npc):
            return _npc
        return run

    # ALU / MUL / DIV. The functions are pure, so skipping the compute
    # for an x0 destination is unobservable.
    if rec.has_imm:
        if not rec.writes_reg:
            def run(emu, regs, _npc=npc):
                return _npc
        elif rec.num_srcs:
            def run(emu, regs, _fn=rec.alu_fn, _d=rec.dest, _s0=rec.src0,
                    _b=rec.imm_u, _npc=npc):
                regs[_d] = _fn(regs[_s0], _b)
                return _npc
        else:  # lui
            def run(emu, regs, _d=rec.dest, _b=rec.imm_u, _npc=npc):
                regs[_d] = _b
                return _npc
        return run
    if rec.writes_reg:
        def run(emu, regs, _fn=rec.alu_fn, _d=rec.dest, _s0=rec.src0,
                _s1=rec.src1, _npc=npc):
            regs[_d] = _fn(regs[_s0], regs[_s1])
            return _npc
    else:
        def run(emu, regs, _npc=npc):
            return _npc
    return run


class PredecodedProgram:
    """All of a program's static instructions, predecoded.

    ``by_pc`` maps every valid instruction address to its
    :class:`PDInst` — membership in the dict *is* the program-bounds
    check (``Program.has_pc`` + ``inst_at`` collapsed into one
    ``dict.get``).
    """

    __slots__ = ("records", "by_pc")

    def __init__(self, records):
        self.records = records
        self.by_pc = {rec.pc: rec for rec in records}


def predecode_program(program):
    """Predecode every instruction of a :class:`~repro.isa.program.
    Program` (cached on the program by :meth:`Program.predecode`)."""
    return PredecodedProgram([predecode_inst(inst)
                              for inst in program.instructions])
