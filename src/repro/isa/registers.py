"""Architectural register file naming.

We follow the RISC-V integer ABI: 32 registers, ``x0`` hard-wired to zero.
Both numeric (``x7``) and ABI (``t2``) names are accepted everywhere.
"""

NUM_ARCH_REGS = 32

ABI_NAMES = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]

#: Register number -> canonical ABI name.
REG_NAMES = list(ABI_NAMES)

#: Every accepted spelling -> register number.
REG_NUMBERS = {}
for _i, _abi in enumerate(ABI_NAMES):
    REG_NUMBERS[_abi] = _i
    REG_NUMBERS["x%d" % _i] = _i
REG_NUMBERS["fp"] = REG_NUMBERS["s0"]

#: Registers a callee must preserve (used by the compiler's allocator).
CALLEE_SAVED = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
                "s10", "s11"]

#: Scratch registers clobbered freely by expression evaluation.
CALLER_SAVED_TEMPS = ["t0", "t1", "t2", "t3", "t4", "t5", "t6"]

#: Argument / return-value registers.
ARG_REGS = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"]


def reg_num(name):
    """Resolve a register name or number to its architectural index."""
    if isinstance(name, int):
        if 0 <= name < NUM_ARCH_REGS:
            return name
        raise ValueError("register number out of range: %r" % (name,))
    try:
        return REG_NUMBERS[name]
    except KeyError:
        raise ValueError("unknown register name: %r" % (name,)) from None


def reg_name(num):
    """Canonical ABI name for a register index."""
    return REG_NAMES[num]
