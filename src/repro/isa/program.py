"""Program container: code image, labels and an initialised data segment."""

from repro.isa.instruction import Instruction, INST_BYTES
from repro.utils.bits import MASK64, to_unsigned

#: Default layout. Code and data live in disjoint regions; the stack grows
#: down from STACK_TOP. Nothing enforces protection — wrong-path execution
#: is allowed to read anywhere (returning zeros for untouched memory).
CODE_BASE = 0x1000
DATA_BASE = 0x100000
STACK_TOP = 0x8000000


class DataSegment:
    """Bump allocator for statically-initialised data.

    Allocations are 8-byte aligned. ``image()`` renders the initial memory
    contents as a mapping of aligned word address -> 64-bit value, which is
    what :class:`repro.emu.memory.SparseMemory` consumes.
    """

    def __init__(self, base=DATA_BASE):
        self.base = base
        self._next = base
        self._words = {}
        self.symbols = {}

    def align(self, alignment=8):
        rem = self._next % alignment
        if rem:
            self._next += alignment - rem

    def reserve(self, name, num_bytes):
        """Reserve zero-initialised space; returns the base address."""
        self.align(8)
        addr = self._next
        self._next += (num_bytes + 7) & ~7
        if name is not None:
            if name in self.symbols:
                raise ValueError("duplicate data symbol %r" % name)
            self.symbols[name] = addr
        return addr

    def word_array(self, name, values):
        """Allocate and initialise an array of 64-bit words."""
        addr = self.reserve(name, 8 * len(values))
        for i, v in enumerate(values):
            word = to_unsigned(int(v))
            if word:
                self._words[addr + 8 * i] = word
        return addr

    def word(self, name, value=0):
        """Allocate a single 64-bit scalar."""
        return self.word_array(name, [value])

    def addr_of(self, name):
        return self.symbols[name]

    @property
    def end(self):
        return self._next

    def image(self):
        """Initial memory image: aligned word address -> value."""
        return dict(self._words)


class Program:
    """An assembled program ready for emulation or simulation."""

    def __init__(self, instructions, labels=None, data=None,
                 entry=None, code_base=CODE_BASE):
        self.code_base = code_base
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        self.data = data if data is not None else DataSegment()
        self.entry = entry if entry is not None else code_base
        self._check_pcs()
        self._predecoded = None
        self._superblocks = None

    def _check_pcs(self):
        pc = self.code_base
        for inst in self.instructions:
            if not isinstance(inst, Instruction):
                raise TypeError("not an Instruction: %r" % (inst,))
            if inst.pc != pc:
                raise ValueError(
                    "instruction %r has pc %#x, expected %#x"
                    % (inst, inst.pc or -1, pc))
            pc += INST_BYTES
        self.code_end = pc

    def __len__(self):
        return len(self.instructions)

    def has_pc(self, pc):
        """True when ``pc`` addresses a real instruction."""
        return (self.code_base <= pc < self.code_end
                and (pc - self.code_base) % INST_BYTES == 0)

    def inst_at(self, pc):
        """Instruction at ``pc`` (raises for invalid addresses)."""
        if not self.has_pc(pc):
            raise KeyError("no instruction at pc %#x" % pc)
        return self.instructions[(pc - self.code_base) // INST_BYTES]

    def predecode(self):
        """The program's :class:`~repro.isa.predecode.PredecodedProgram`
        (flattened hot-path view; built once and cached, so every
        emulator / core instance over this program shares it)."""
        pd = self._predecoded
        if pd is None:
            from repro.isa.predecode import predecode_program
            pd = self._predecoded = predecode_program(self)
        return pd

    def superblocks(self):
        """The program's compiled :class:`~repro.isa.superblock.
        SuperblockTable` (block-granular dispatch for the emulator fast
        path; built once and cached like :meth:`predecode`)."""
        table = self._superblocks
        if table is None:
            from repro.isa.superblock import build_superblocks
            table = self._superblocks = build_superblocks(self)
        return table

    def label_pc(self, name):
        return self.labels[name]

    def initial_memory(self):
        return self.data.image()

    def disassemble(self):
        """Human-readable listing with labels (debugging aid)."""
        by_pc = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines = []
        for inst in self.instructions:
            for name in sorted(by_pc.get(inst.pc, [])):
                lines.append("%s:" % name)
            lines.append("  %#07x  %r" % (inst.pc, inst))
        return "\n".join(lines)
