"""Architectural checkpoints and the on-disk checkpoint store.

A :class:`Checkpoint` is everything needed to drop the detailed
pipeline into the middle of a program: pc, architectural registers, the
memory delta against the program's initial image, and short *warmup
traces* — the last N control transfers and memory accesses executed
before the checkpoint — which :mod:`repro.sampling.sampler` replays
functionally through the branch predictors, BTB, RAS and cache
hierarchy before cycle 0 so the sampled interval does not start from
glacially cold microarchitectural state.

Checkpoints are JSON-serialisable and persist in a
:class:`CheckpointStore` laid out exactly like the harness result cache
(``<dir>/<code fingerprint>/<key>.json``, ``REPRO_CKPT_DIR``), sharing
its store-walking and pruning helpers.
"""

import collections
import hashlib
import json
import os
import tempfile

from repro.emu.emulator import Emulator
from repro.harness.cache import (
    code_fingerprint,
    default_cache_dir,
    prune_store,
    walk_store,
)
from repro.pipeline.core import InitialState

#: Branch-trace entry flags (bitmask in the 4th tuple slot).
FLAG_COND = 1
FLAG_INDIRECT = 2
FLAG_CALL = 4
FLAG_RET = 8

#: Register holding return addresses (``ra``) — call/return detection.
_RA = 1

#: Default warmup trace depths.
DEFAULT_WARMUP_BRANCHES = 2048
DEFAULT_WARMUP_MEM = 4096


class Checkpoint:
    """Architectural state at one dynamic instruction boundary."""

    __slots__ = ("inst_count", "pc", "regs", "mem_words", "branch_trace",
                 "mem_trace")

    def __init__(self, inst_count, pc, regs, mem_words, branch_trace=(),
                 mem_trace=()):
        self.inst_count = inst_count
        self.pc = pc
        self.regs = list(regs)
        self.mem_words = dict(mem_words)
        # (pc, taken, target, flags) tuples, oldest first.
        self.branch_trace = [tuple(entry) for entry in branch_trace]
        # (addr, is_write) tuples, oldest first.
        self.mem_trace = [tuple(entry) for entry in mem_trace]

    def initial_state(self):
        """The :class:`~repro.pipeline.core.InitialState` to inject."""
        return InitialState(self.pc, self.regs, self.mem_words)

    def as_dict(self):
        return {
            "inst_count": self.inst_count,
            "pc": self.pc,
            "regs": list(self.regs),
            "mem_words": {"%d" % addr: value
                          for addr, value in self.mem_words.items()},
            "branch_trace": [list(entry) for entry in self.branch_trace],
            "mem_trace": [list(entry) for entry in self.mem_trace],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["inst_count"], data["pc"], data["regs"],
                   {int(addr): value
                    for addr, value in data["mem_words"].items()},
                   data["branch_trace"], data["mem_trace"])

    def __repr__(self):
        return "<Checkpoint @%d pc=%#x %d mem word(s)>" % (
            self.inst_count, self.pc, len(self.mem_words))


def _snapshot(emu, image, branches, mems):
    delta = {addr: value for addr, value in emu.memory._words.items()
             if image.get(addr, 0) != value}
    return Checkpoint(emu.inst_count, emu.pc, emu.regs, delta,
                      list(branches), list(mems))


def capture_checkpoints(program, boundaries,
                        warmup_branches=DEFAULT_WARMUP_BRANCHES,
                        warmup_mem=DEFAULT_WARMUP_MEM):
    """Fast-forward the emulator once, checkpointing at each boundary.

    ``boundaries`` are dynamic instruction counts (ascending order not
    required; duplicates collapse). Returns ``{boundary: Checkpoint}``.
    Raises :class:`ValueError` if the program halts before the last
    boundary is reached.
    """
    emu = Emulator(program)
    image = program.initial_memory()
    branches = collections.deque(maxlen=max(1, warmup_branches))
    mems = collections.deque(maxlen=max(1, warmup_mem))

    def on_inst(pc, inst):
        if inst.is_branch:
            flags = 0
            if inst.is_cond_branch:
                flags |= FLAG_COND
            if inst.is_indirect:
                flags |= FLAG_INDIRECT
            if inst.writes_reg and inst.dest == _RA:
                flags |= FLAG_CALL
            if inst.is_indirect and inst.srcs \
                    and inst.srcs[0] == _RA and inst.dest != _RA:
                flags |= FLAG_RET
            branches.append((pc, 1 if emu.last_branch_taken else 0,
                             emu.pc, flags))
        elif inst.is_load or inst.is_store:
            mems.append((emu.last_mem_addr, 1 if inst.is_store else 0))

    out = {}
    for boundary in sorted(set(boundaries)):
        if boundary < emu.inst_count:
            raise ValueError("boundary %d precedes emulator position %d"
                             % (boundary, emu.inst_count))
        emu.run_until(boundary, on_inst=on_inst)
        if emu.inst_count < boundary:
            raise ValueError(
                "program halted at %d insts, before boundary %d"
                % (emu.inst_count, boundary))
        out[boundary] = _snapshot(emu, image, branches, mems)
    return out


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------
def spec_key(spec):
    """Canonical 24-hex key for a JSON-able spec dict (same recipe as
    :meth:`repro.harness.jobs.SimJob.job_hash`)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def default_checkpoint_dir():
    return os.path.join(default_cache_dir(), "checkpoints")


class CheckpointStore:
    """JSON blob store keyed by spec hash + code fingerprint.

    The second on-disk store next to the harness result cache, with the
    same layout, environment override (``REPRO_CKPT_DIR``), miss-on-
    any-failure semantics and shared pruning helpers. Values are plain
    JSON dicts — the sampler persists the simpoint selection plus the
    captured checkpoints for one (program, sampling spec) as a single
    entry, so a warm store skips both emulator passes.
    """

    def __init__(self, directory=None, fingerprint=None):
        self.directory = directory or default_checkpoint_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def from_env(cls):
        """Store configured by ``REPRO_CKPT_DIR`` (None if disabled)."""
        from repro.config import envreg
        enabled, directory = envreg.store_dir("REPRO_CKPT_DIR")
        if not enabled:
            return None
        return cls(directory=directory)

    def _path(self, key):
        return os.path.join(self.directory, self.fingerprint,
                            key + ".json")

    def get(self, key):
        """Payload dict for ``key``, or None on a miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key, payload):
        """Persist a payload dict; failures are silently ignored."""
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return
        self.stores += 1

    # ------------------------------------------------------------------
    def entries(self):
        """Entry count for the current fingerprint."""
        try:
            names = os.listdir(os.path.join(self.directory,
                                            self.fingerprint))
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(".json"))

    def total_bytes(self):
        return sum(size for _path, size, _mtime
                   in walk_store(self.directory))

    def prune(self, max_age_days=None, max_bytes=None):
        """Prune old / excess entries across all fingerprints."""
        return prune_store(self.directory, max_age_days=max_age_days,
                           max_bytes=max_bytes)
