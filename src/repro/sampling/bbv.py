"""Basic-block-vector profiling over the golden-model emulator.

SimPoint-style sampling starts from a cheap functional pass: execution
is sliced into fixed-size intervals (100k instructions by default) and
each interval is summarised as a *basic-block vector* — how many
instructions the interval spent in each dynamic basic block. Program
phases show up as clusters of similar BBVs, which
:mod:`repro.sampling.simpoint` exploits to pick a few representative
intervals for detailed simulation.

Basic blocks are discovered dynamically: a new block begins at the
program entry and after every executed control instruction (taken or
not), so the block leader set is exactly the set of dynamic control-flow
join points the run actually visits. Each interval's vector maps leader
pc -> instructions executed under that leader, which sums to the
interval length by construction.
"""

from repro.emu.emulator import Emulator

#: Default interval length in committed instructions. The paper's
#: SimPoint methodology uses 100M-instruction intervals on full SPEC
#: runs; our scaled workloads are ~10^4-10^6 instructions, so the
#: default scales down in proportion.
DEFAULT_INTERVAL = 100_000


class Interval:
    """One profiled interval: position, length and its BBV."""

    __slots__ = ("index", "start_inst", "num_insts", "bbv")

    def __init__(self, index, start_inst, num_insts, bbv):
        self.index = index
        self.start_inst = start_inst
        self.num_insts = num_insts
        self.bbv = bbv              # leader pc -> inst count

    def as_dict(self):
        return {
            "index": self.index,
            "start_inst": self.start_inst,
            "num_insts": self.num_insts,
            "bbv": {"%d" % pc: count for pc, count in self.bbv.items()},
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["index"], data["start_inst"], data["num_insts"],
                   {int(pc): count for pc, count in data["bbv"].items()})

    def __repr__(self):
        return "<Interval %d [%d..%d) %d blocks>" % (
            self.index, self.start_inst, self.start_inst + self.num_insts,
            len(self.bbv))


class BBVProfile:
    """Per-interval BBVs for one full functional run."""

    def __init__(self, interval_insts, intervals, total_insts, halted):
        self.interval_insts = interval_insts
        self.intervals = list(intervals)
        self.total_insts = total_insts
        self.halted = halted

    @property
    def num_intervals(self):
        return len(self.intervals)

    def block_leaders(self):
        """Every leader pc seen in any interval (sorted)."""
        leaders = set()
        for interval in self.intervals:
            leaders.update(interval.bbv)
        return sorted(leaders)

    def as_dict(self):
        return {
            "interval_insts": self.interval_insts,
            "total_insts": self.total_insts,
            "halted": self.halted,
            "intervals": [iv.as_dict() for iv in self.intervals],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["interval_insts"],
                   [Interval.from_dict(iv) for iv in data["intervals"]],
                   data["total_insts"], data["halted"])

    def __repr__(self):
        return "<BBVProfile %d interval(s) x %d insts, %d total>" % (
            self.num_intervals, self.interval_insts, self.total_insts)


def profile_program(program, interval_insts=DEFAULT_INTERVAL,
                    max_insts=50_000_000):
    """Profile ``program`` into per-interval BBVs (one emulator pass).

    Returns a :class:`BBVProfile`. The final partial interval is kept
    (with its true ``num_insts``) so interval lengths always partition
    the dynamic instruction count exactly.
    """
    if interval_insts <= 0:
        raise ValueError("interval_insts must be positive, got %r"
                         % (interval_insts,))
    emu = Emulator(program)
    intervals = []
    state = {"leader": program.entry, "count": 0, "start": 0, "bbv": {}}

    def on_inst(_pc, inst):
        bbv = state["bbv"]
        leader = state["leader"]
        bbv[leader] = bbv.get(leader, 0) + 1
        if inst.is_branch:
            # The next executed instruction (taken target or the
            # fall-through) starts a new basic block either way.
            state["leader"] = emu.pc
        state["count"] += 1
        if state["count"] == interval_insts:
            intervals.append(Interval(len(intervals), state["start"],
                                      state["count"], bbv))
            state["start"] += state["count"]
            state["count"] = 0
            state["bbv"] = {}

    halted = emu.run_until(max_insts, on_inst=on_inst)
    if state["count"]:
        if intervals and state["count"] < interval_insts // 2:
            # Merge a short tail into the last full interval: a
            # near-empty final interval would otherwise earn a cluster
            # of its own and be dominated by pipeline-fill overhead
            # when simulated in isolation.
            last = intervals[-1]
            for leader, count in state["bbv"].items():
                last.bbv[leader] = last.bbv.get(leader, 0) + count
            last.num_insts += state["count"]
        else:
            intervals.append(Interval(len(intervals), state["start"],
                                      state["count"], state["bbv"]))
    return BBVProfile(interval_insts, intervals, emu.inst_count, halted)
