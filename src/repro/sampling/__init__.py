"""SimPoint-style sampled simulation.

Full detailed runs are the dominant wall-clock cost of every
experiment; this subsystem replaces them with a few representative
*intervals*:

* :mod:`repro.sampling.bbv` — slice a functional (emulator) run into
  fixed-size intervals and summarise each as a basic-block vector;
* :mod:`repro.sampling.simpoint` — deterministic k-means (seeded via
  :mod:`repro.utils.rng`, random projection to ~16 dims, BIC model
  selection) picks representative intervals and weights;
* :mod:`repro.sampling.checkpoint` — architectural checkpoints
  (regs/pc/memory delta + functional warmup traces) captured by
  fast-forwarding the emulator, persisted in an on-disk store keyed
  like the harness result cache (``REPRO_CKPT_DIR``);
* :mod:`repro.sampling.sampler` — restores checkpoints into the
  detailed pipeline (initial-state injection + frontend/cache warmup),
  runs each interval for its instruction budget, and aggregates
  weighted stats into a :class:`SampledResult`.

Sampled runs integrate with the rest of the stack through
``SimJob(sampling=...)`` and ``python -m repro.harness profile /
simpoints / run --sampled``.
"""

from repro.sampling.bbv import (
    DEFAULT_INTERVAL,
    BBVProfile,
    Interval,
    profile_program,
)
from repro.sampling.checkpoint import (
    Checkpoint,
    CheckpointStore,
    capture_checkpoints,
    default_checkpoint_dir,
    spec_key,
)
from repro.sampling.sampler import (
    IntervalRun,
    SampledResult,
    SamplingSpec,
    aggregate_stats,
    run_sampled,
    warm_frontend,
)
from repro.sampling.simpoint import (
    SimPoint,
    SimPointSelection,
    pick_simpoints,
    project_bbv,
)

__all__ = [
    "DEFAULT_INTERVAL",
    "BBVProfile",
    "Interval",
    "profile_program",
    "SimPoint",
    "SimPointSelection",
    "pick_simpoints",
    "project_bbv",
    "Checkpoint",
    "CheckpointStore",
    "capture_checkpoints",
    "default_checkpoint_dir",
    "spec_key",
    "SamplingSpec",
    "SampledResult",
    "IntervalRun",
    "aggregate_stats",
    "run_sampled",
    "warm_frontend",
]
