"""SimPoint selection: deterministic k-means over projected BBVs.

Follows the SimPoint recipe: per-interval basic-block vectors are
L1-normalised, randomly projected down to a few dimensions (the
projection is a deterministic hash of each block leader pc, so no
projection matrix needs to be stored), clustered with k-means for
every candidate k, and scored with the Bayesian Information Criterion;
the smallest k whose BIC reaches 90% of the observed BIC range is
chosen, exactly as SimPoint 3.0 does. Each cluster contributes one
*simpoint*: the member interval closest to the centroid, weighted by
the cluster's share of all intervals.

Everything is seeded through :mod:`repro.utils.rng`, so selections are
bit-identical across machines and Python versions.
"""

import math

from repro.utils.rng import XorShift64, mix_hash

DEFAULT_DIMS = 16
DEFAULT_SEED = 0x51A19017
_KMEANS_ITERS = 100


class SimPoint:
    """One chosen interval and the cluster weight it represents.

    ``weight`` is the cluster's share of *dynamic instructions* (not
    interval count), so a merged or odd-length interval contributes in
    proportion to the instructions it actually stands in for; weights
    across a selection sum to 1.
    """

    __slots__ = ("index", "weight", "start_inst", "num_insts",
                 "cluster_size")

    def __init__(self, index, weight, start_inst, num_insts,
                 cluster_size):
        self.index = index
        self.weight = weight
        self.start_inst = start_inst
        self.num_insts = num_insts
        self.cluster_size = cluster_size

    def as_dict(self):
        return {"index": self.index, "weight": self.weight,
                "start_inst": self.start_inst,
                "num_insts": self.num_insts,
                "cluster_size": self.cluster_size}

    @classmethod
    def from_dict(cls, data):
        return cls(data["index"], data["weight"], data["start_inst"],
                   data["num_insts"], data["cluster_size"])

    def __repr__(self):
        return "<SimPoint interval=%d weight=%.3f start=%d>" % (
            self.index, self.weight, self.start_inst)


class SimPointSelection:
    """The chosen simpoints plus clustering quality metadata.

    ``error_bound`` is a heuristic relative error estimate: the
    weighted mean distance between each interval's (projected,
    normalised) BBV and its cluster representative, relative to the
    mean vector magnitude. 0 means every interval is identical to its
    representative; larger values mean the sample is less faithful.
    """

    def __init__(self, points, k, num_intervals, error_bound):
        self.points = list(points)
        self.k = k
        self.num_intervals = num_intervals
        self.error_bound = error_bound

    def coverage(self):
        """Fraction of dynamic instructions simulated in detail
        (simulated interval lengths over the run they stand in for)."""
        simulated = sum(p.num_insts for p in self.points)
        represented = sum(p.num_insts * p.cluster_size
                          for p in self.points)
        return simulated / represented if represented else 1.0

    def as_dict(self):
        return {"k": self.k, "num_intervals": self.num_intervals,
                "error_bound": self.error_bound,
                "points": [p.as_dict() for p in self.points]}

    @classmethod
    def from_dict(cls, data):
        return cls([SimPoint.from_dict(p) for p in data["points"]],
                   data["k"], data["num_intervals"], data["error_bound"])

    def __repr__(self):
        return "<SimPointSelection k=%d of %d interval(s) err<=%.3f>" % (
            self.k, self.num_intervals, self.error_bound)


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------
def project_bbv(bbv, num_insts, dims=DEFAULT_DIMS, seed=DEFAULT_SEED):
    """L1-normalise a BBV and randomly project it to ``dims`` floats.

    The projection row for each block leader is generated from a hash of
    the leader pc, so equal leaders project identically everywhere and
    nothing needs to be stored or synchronised.
    """
    vec = [0.0] * dims
    if not num_insts:
        return vec
    for leader, count in bbv.items():
        weight = count / num_insts
        rng = XorShift64(mix_hash(leader ^ seed))
        for j in range(dims):
            vec[j] += weight * (2.0 * rng.random() - 1.0)
    return vec


def _dist2(a, b):
    total = 0.0
    for x, y in zip(a, b):
        d = x - y
        total += d * d
    return total


# ---------------------------------------------------------------------------
# k-means
# ---------------------------------------------------------------------------
def _kmeans(vectors, k, rng):
    """Lloyd's algorithm with k-means++ seeding; deterministic via rng.

    Returns (assignment list, centroids, within-cluster sum of squares).
    """
    n = len(vectors)
    # k-means++ initialisation.
    centroids = [list(vectors[rng.randint(0, n - 1)])]
    while len(centroids) < k:
        dists = [min(_dist2(v, c) for c in centroids) for v in vectors]
        total = sum(dists)
        if total <= 0.0:
            # All remaining points coincide with a centroid; duplicate.
            centroids.append(list(vectors[rng.randint(0, n - 1)]))
            continue
        pick = rng.random() * total
        acc = 0.0
        chosen = n - 1
        for i, d in enumerate(dists):
            acc += d
            if acc >= pick:
                chosen = i
                break
        centroids.append(list(vectors[chosen]))

    assign = [-1] * n
    for _ in range(_KMEANS_ITERS):
        changed = False
        for i, v in enumerate(vectors):
            best, best_d = 0, _dist2(v, centroids[0])
            for c in range(1, k):
                d = _dist2(v, centroids[c])
                if d < best_d:
                    best, best_d = c, d
            if assign[i] != best:
                assign[i] = best
                changed = True
        if not changed:
            break
        dims = len(vectors[0])
        sums = [[0.0] * dims for _ in range(k)]
        counts = [0] * k
        for i, v in enumerate(vectors):
            counts[assign[i]] += 1
            target = sums[assign[i]]
            for j, x in enumerate(v):
                target[j] += x
        for c in range(k):
            if counts[c]:
                centroids[c] = [x / counts[c] for x in sums[c]]
            else:
                # Empty cluster: reseed to the point farthest from its
                # centroid (deterministic).
                far_i = max(range(n),
                            key=lambda i: _dist2(vectors[i],
                                                 centroids[assign[i]]))
                centroids[c] = list(vectors[far_i])
    wcss = sum(_dist2(vectors[i], centroids[assign[i]]) for i in range(n))
    return assign, centroids, wcss


def _bic(n, dims, k, cluster_sizes, wcss):
    """Bayesian Information Criterion (Pelleg & Moore x-means form)."""
    if n <= k:
        return float("-inf")
    sigma2 = wcss / (dims * (n - k))
    if sigma2 <= 0.0:
        return float("inf")
    loglik = 0.0
    for size in cluster_sizes:
        if size:
            loglik += size * math.log(size / n)
    loglik -= 0.5 * n * dims * math.log(2.0 * math.pi * sigma2)
    loglik -= 0.5 * dims * (n - k)
    params = k * (dims + 1)
    return loglik - 0.5 * params * math.log(n)


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------
def pick_simpoints(profile, max_k=8, dims=DEFAULT_DIMS, seed=DEFAULT_SEED):
    """Choose representative intervals from a :class:`BBVProfile`.

    Returns a :class:`SimPointSelection`; points are sorted by their
    position in the run and weights sum to 1.
    """
    intervals = profile.intervals
    if not intervals:
        raise ValueError("profile has no intervals")
    vectors = [project_bbv(iv.bbv, iv.num_insts, dims, seed)
               for iv in intervals]
    n = len(vectors)
    max_k = max(1, min(max_k, n))

    candidates = []
    for k in range(1, max_k + 1):
        rng = XorShift64(mix_hash(seed + 0x9E37 * k))
        assign, centroids, wcss = _kmeans(vectors, k, rng)
        sizes = [assign.count(c) for c in range(k)]
        bic = _bic(n, dims, k, sizes, wcss)
        candidates.append((k, assign, centroids, wcss, bic))
        if wcss <= 1e-12:
            break  # perfect clustering; larger k can't help

    # SimPoint 3.0 rule: smallest k scoring >= 90% of the BIC range.
    bics = [c[4] for c in candidates]
    finite = [b for b in bics if b not in (float("inf"), float("-inf"))]
    if any(b == float("inf") for b in bics):
        chosen = next(c for c in candidates if c[4] == float("inf"))
    elif finite:
        lo, hi = min(finite), max(finite)
        threshold = lo + 0.9 * (hi - lo)
        chosen = next(c for c in candidates
                      if c[4] != float("-inf") and c[4] >= threshold)
    else:
        chosen = candidates[0]
    k, assign, centroids, _wcss, _bic_score = chosen

    points = []
    rep_dist = {}
    profiled_insts = sum(iv.num_insts for iv in intervals)
    for c in range(k):
        members = [i for i in range(n) if assign[i] == c]
        if not members:
            continue
        rep = min(members, key=lambda i: _dist2(vectors[i], centroids[c]))
        interval = intervals[rep]
        cluster_insts = sum(intervals[i].num_insts for i in members)
        points.append(SimPoint(rep, cluster_insts / profiled_insts,
                               interval.start_inst, interval.num_insts,
                               len(members)))
        for i in members:
            rep_dist[i] = math.sqrt(_dist2(vectors[i], vectors[rep]))
    points.sort(key=lambda p: p.start_inst)

    mean_norm = sum(math.sqrt(_dist2(v, [0.0] * dims))
                    for v in vectors) / n
    mean_dist = sum(rep_dist[i] for i in range(n)) / n
    error_bound = mean_dist / mean_norm if mean_norm else 0.0
    return SimPointSelection(points, k, n, error_bound)
