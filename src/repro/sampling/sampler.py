"""Sampled detailed simulation: warm-started interval runs.

``run_sampled`` glues the subsystem together: profile the program into
BBV intervals (:mod:`~repro.sampling.bbv`), pick representative
intervals (:mod:`~repro.sampling.simpoint`), capture architectural
checkpoints at their boundaries (:mod:`~repro.sampling.checkpoint`),
then run each chosen interval on the *detailed* out-of-order core —
injected with the checkpoint's architectural state and functionally
warmed (recent branches replayed through predictor/BTB/RAS, recent
memory accesses through the cache hierarchy) — and aggregate the
per-interval statistics into a whole-program estimate weighted by the
SimPoint cluster weights.

The aggregate is an ordinary :class:`~repro.pipeline.stats.SimStats`
(committed instructions = the full run's dynamic count, cycles derived
from the weighted CPI, event counters extrapolated from per-interval
rates), so sampled results flow through the harness result cache and
the analysis stack unchanged.
"""

import dataclasses

from repro.frontend.tage_scl import TageSCL
from repro.isa.instruction import INST_BYTES
from repro.obs.bus import Observability
from repro.pipeline.core import O3Core
from repro.pipeline.stats import SimStats
from repro.sampling.bbv import DEFAULT_INTERVAL, profile_program
from repro.sampling.checkpoint import (
    DEFAULT_WARMUP_BRANCHES,
    DEFAULT_WARMUP_MEM,
    FLAG_CALL,
    FLAG_COND,
    FLAG_INDIRECT,
    FLAG_RET,
    Checkpoint,
    capture_checkpoints,
    spec_key,
)
from repro.sampling.simpoint import (
    DEFAULT_DIMS,
    DEFAULT_SEED,
    SimPointSelection,
    pick_simpoints,
)


@dataclasses.dataclass(frozen=True)
class SamplingSpec:
    """Knobs of one sampled simulation (hash-canonical, JSON-able).

    ``detail_warmup_insts`` instructions are simulated in *detail*
    before each measured interval and their stats discarded: the
    functional trace replay warms predictors and caches, but only real
    detailed execution restores the in-flight overlap (a full window,
    outstanding misses) the interval would have had mid-run, which
    matters most on memory-bound phases.
    """

    interval_insts: int = DEFAULT_INTERVAL
    max_k: int = 8
    dims: int = DEFAULT_DIMS
    warmup_branches: int = DEFAULT_WARMUP_BRANCHES
    warmup_mem: int = DEFAULT_WARMUP_MEM
    detail_warmup_insts: int = 1000
    seed: int = DEFAULT_SEED

    def __post_init__(self):
        if self.interval_insts <= 0:
            raise ValueError("interval_insts must be positive")
        if self.max_k <= 0:
            raise ValueError("max_k must be positive")
        if self.detail_warmup_insts < 0:
            raise ValueError("detail_warmup_insts must be >= 0")

    @classmethod
    def from_any(cls, value):
        """Coerce None / dict / pair-tuple / SamplingSpec to a spec."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        return cls(**dict(value))

    def spec(self):
        """Canonical JSON-able description (checkpoint-store key input)."""
        return dataclasses.asdict(self)


class IntervalRun:
    """Detailed stats of one simulated interval."""

    __slots__ = ("point", "stats")

    def __init__(self, point, stats):
        self.point = point
        self.stats = stats

    def __repr__(self):
        return "<IntervalRun interval=%d weight=%.3f ipc=%.3f>" % (
            self.point.index, self.point.weight, self.stats.ipc)


class SampledResult:
    """Weighted whole-program estimate from a few detailed intervals.

    ``stats`` is the extrapolated :class:`SimStats`; ``runs`` keeps the
    raw per-interval stats, ``selection`` the clustering (including the
    heuristic ``error_bound``), and ``detailed_insts`` the number of
    instructions actually simulated in detail (the cost).
    """

    def __init__(self, spec, selection, runs, stats, total_insts):
        self.spec = spec
        self.selection = selection
        self.runs = list(runs)
        self.stats = stats
        self.total_insts = total_insts

    @property
    def ipc(self):
        return self.stats.ipc

    @property
    def weighted_ipc(self):
        return _weighted_ipc(self.runs)

    @property
    def error_bound(self):
        return self.selection.error_bound

    @property
    def detailed_insts(self):
        return sum(run.stats.committed_insts
                   + min(self.spec.detail_warmup_insts,
                         run.point.start_inst)
                   for run in self.runs)

    def summary(self):
        return ("sampled IPC=%.3f (%d/%d interval(s), %d/%d insts "
                "detailed, err<=%.3f)"
                % (self.ipc, len(self.runs),
                   self.selection.num_intervals, self.detailed_insts,
                   self.total_insts, self.error_bound))

    def __repr__(self):
        return "<SampledResult %s>" % self.summary()


# ---------------------------------------------------------------------------
# Functional frontend warmup
# ---------------------------------------------------------------------------
def warm_frontend(core, checkpoint, warmup_branches=None, warmup_mem=None):
    """Replay the checkpoint's warmup traces into the core's frontend.

    Branches train the direction predictor exactly as the pipeline
    would at commit (predict, repair history on a mispredict, update);
    indirect targets install into the BTB, calls/returns replay through
    the RAS, and memory accesses prime the cache hierarchy. Purely
    functional: cycle 0 has not happened yet.
    """
    predictor = core.predictor
    branch_trace = checkpoint.branch_trace
    if warmup_branches is not None:
        branch_trace = branch_trace[-warmup_branches:] \
            if warmup_branches else []
    # Ported hierarchy: the branch trace's PCs double as an L1I/L2
    # instruction-side warmup (the flat model has no shared icache).
    warm_inst = getattr(core.hierarchy, "warm_inst", None)
    for pc, taken, target, flags in branch_trace:
        if warm_inst is not None:
            warm_inst(pc)
        taken = bool(taken)
        if flags & FLAG_COND:
            pred_taken, meta = predictor.predict(pc)
            if pred_taken != taken:
                if isinstance(predictor, TageSCL):
                    predictor.recover_branch(pc, taken, meta)
                else:
                    predictor.recover(taken, meta)
            predictor.update(pc, taken, meta)
            continue
        if flags & FLAG_RET:
            core.ras.pop()
        if flags & FLAG_CALL:
            core.ras.push(pc + INST_BYTES)
        if flags & FLAG_INDIRECT:
            core.btb.install(pc, target)
    mem_trace = checkpoint.mem_trace
    if warmup_mem is not None:
        mem_trace = mem_trace[-warmup_mem:] if warmup_mem else []
    for addr, is_write in mem_trace:
        core.hierarchy.warm(addr, is_write=bool(is_write))


def _stats_delta(after, before):
    """``after - before`` for every integer counter (and the stream-
    distance histogram); used to discard the detailed-warmup slice."""
    delta = SimStats()
    for name, value in vars(after).items():
        if isinstance(value, int):
            setattr(delta, name, value - getattr(before, name))
    delta.stream_distance_hist = {
        distance: count - before.stream_distance_hist.get(distance, 0)
        for distance, count in after.stream_distance_hist.items()
        if count - before.stream_distance_hist.get(distance, 0)}
    delta.ri_set_replacements = after.ri_set_replacements
    return delta


def _stats_copy(stats):
    copy = SimStats()
    for name, value in vars(stats).items():
        if isinstance(value, int):
            setattr(copy, name, value)
    copy.stream_distance_hist = dict(stats.stream_distance_hist)
    return copy


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
def _weighted_cpi(runs):
    """SimPoint estimate: cluster-weighted mean of interval CPIs."""
    total_weight = sum(run.point.weight for run in runs)
    if not total_weight:
        return 0.0
    return sum(run.point.weight * run.stats.cycles
               / run.stats.committed_insts
               for run in runs if run.stats.committed_insts) / total_weight


def _weighted_ipc(runs):
    cpi = _weighted_cpi(runs)
    return 1.0 / cpi if cpi else 0.0


def aggregate_stats(runs, total_insts):
    """Extrapolate per-interval stats to a whole-program estimate.

    Cycles follow the SimPoint estimate (instruction-weighted mean of
    interval CPIs, scaled to the full dynamic instruction count);
    every other counter is extrapolated from the weighted
    per-instruction rate, so e.g. ``branch_mpki`` of the estimate is
    the weighted mix of the sampled intervals' rates.
    """
    est = SimStats()
    est.committed_insts = total_insts
    est.cycles = int(round(total_insts * _weighted_cpi(runs)))
    total_weight = sum(run.point.weight for run in runs) or 1.0

    skip = {"cycles", "committed_insts", "ri_set_replacements",
            "stream_distance_hist"}
    for name, value in vars(est).items():
        if name in skip or not isinstance(value, int):
            continue
        rate = sum(run.point.weight
                   * getattr(run.stats, name) / run.stats.committed_insts
                   for run in runs if run.stats.committed_insts)
        setattr(est, name, int(round(rate / total_weight * total_insts)))
    hist = {}
    for run in runs:
        insts = run.stats.committed_insts
        if not insts:
            continue
        for distance, count in run.stats.stream_distance_hist.items():
            hist[distance] = hist.get(distance, 0) \
                + run.point.weight * count / insts
    est.stream_distance_hist = {
        distance: int(round(value / total_weight * total_insts))
        for distance, value in hist.items()}
    return est


# ---------------------------------------------------------------------------
# The sampled run
# ---------------------------------------------------------------------------
def _prepare(program, spec, store, key_spec, max_insts):
    """Selection + checkpoints, through the store when one is given."""
    key = None
    if store is not None and key_spec is not None:
        key = spec_key({"sampling": spec.spec(), "target": key_spec})
        payload = store.get(key)
        if payload is not None:
            selection = SimPointSelection.from_dict(payload["selection"])
            checkpoints = {
                int(boundary): Checkpoint.from_dict(data)
                for boundary, data in payload["checkpoints"].items()}
            return selection, checkpoints, payload["total_insts"]

    profile = profile_program(program, spec.interval_insts,
                              max_insts=max_insts)
    selection = pick_simpoints(profile, max_k=spec.max_k, dims=spec.dims,
                               seed=spec.seed)
    boundaries = {max(0, p.start_inst - spec.detail_warmup_insts)
                  for p in selection.points}
    checkpoints = capture_checkpoints(
        program, [b for b in boundaries if b > 0],
        warmup_branches=spec.warmup_branches,
        warmup_mem=spec.warmup_mem)
    if key is not None:
        store.put(key, {
            "selection": selection.as_dict(),
            "total_insts": profile.total_insts,
            "checkpoints": {"%d" % boundary: ckpt.as_dict()
                            for boundary, ckpt in checkpoints.items()},
        })
    return selection, checkpoints, profile.total_insts


def run_sampled(program, config=None, scheme_factory=None, spec=None,
                obs=None, max_cycles=None, store=None, key_spec=None,
                max_insts=50_000_000):
    """Run a SimPoint-sampled detailed simulation of ``program``.

    ``scheme_factory`` builds a fresh reuse scheme per interval (scheme
    objects are stateful and bind to one core). ``obs`` is an optional
    outer :class:`Observability` bus: its sinks observe every interval,
    bracketed by ``interval`` begin/end events, so traces and lockstep
    checkers segment a sampled run cleanly; each interval still gets
    its own stats. ``store`` + ``key_spec`` enable the on-disk
    checkpoint store (selection + checkpoints persist across runs).

    Returns a :class:`SampledResult`.
    """
    spec = SamplingSpec.from_any(spec) or SamplingSpec()
    selection, checkpoints, total_insts = _prepare(
        program, spec, store, key_spec, max_insts)

    runs = []
    for point in selection.points:
        interval_obs = Observability()
        if obs is not None:
            for sink in obs.sinks:
                interval_obs.attach(sink)
        scheme = scheme_factory() if scheme_factory is not None else None
        boundary = max(0, point.start_inst - spec.detail_warmup_insts)
        init_state = None
        checkpoint = None
        if boundary > 0:
            checkpoint = checkpoints[boundary]
            init_state = checkpoint.initial_state()
        core = O3Core(program, config, reuse_scheme=scheme,
                      obs=interval_obs, init_state=init_state)
        if checkpoint is not None:
            warm_frontend(core, checkpoint,
                          warmup_branches=spec.warmup_branches,
                          warmup_mem=spec.warmup_mem)
        if point.start_inst > boundary:
            # Detailed warmup: simulate up to the interval start and
            # discard the slice's stats — this restores the in-flight
            # pipeline/miss overlap a mid-run window would have.
            core.run(max_cycles=max_cycles,
                     max_insts=point.start_inst - boundary)
        warm_stats = _stats_copy(core.stats)
        interval_obs.interval_boundary("begin", point.index,
                                       point.start_inst, point.num_insts,
                                       point.weight)
        result = core.run(max_cycles=max_cycles,
                          max_insts=point.num_insts)
        interval_obs.interval_boundary("end", point.index,
                                       point.start_inst, point.num_insts,
                                       point.weight)
        runs.append(IntervalRun(point,
                                _stats_delta(result.stats, warm_stats)))

    stats = aggregate_stats(runs, total_insts)
    return SampledResult(spec, selection, runs, stats, total_insts)
