"""Stdlib HTTP client for the simulation service.

``ServiceClient`` wraps :mod:`http.client` (one connection per
request — the API closes connections anyway) and knows how to find a
server either from an explicit URL or from the ``endpoint.json`` a
running server drops into its store directory. This is what ``harness
submit`` uses, and what tests drive against a live ephemeral-port
server.
"""

import http.client
import json
import os
import time
import urllib.parse


class ServiceError(RuntimeError):
    """A non-2xx response (or unreachable server)."""

    def __init__(self, status, message):
        super().__init__("HTTP %s: %s" % (status, message))
        self.status = status


def discover(directory):
    """URL of the server publishing ``endpoint.json`` in
    ``directory`` (a service store dir); None when no server has
    registered there."""
    path = os.path.join(directory, "endpoint.json")
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)["url"]
    except (OSError, ValueError, KeyError):
        return None


class ServiceClient:
    """Talk to one simulation service over HTTP."""

    def __init__(self, url=None, directory=None, timeout=30.0):
        if url is None and directory is not None:
            url = discover(directory)
        if url is None:
            raise ServiceError("n/a", "no service URL: pass url= or a "
                               "store directory with endpoint.json")
        parsed = urllib.parse.urlsplit(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method, path, payload=None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            blob = response.read()
        finally:
            conn.close()
        try:
            doc = json.loads(blob.decode("utf-8")) if blob else {}
        except ValueError:
            doc = {"error": blob.decode("utf-8", "replace")}
        if response.status >= 400:
            raise ServiceError(response.status,
                               doc.get("error", "request failed"))
        return doc

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self):
        return self._request("GET", "/healthz")

    def counters(self):
        return self._request("GET", "/counters")

    def submit(self, doc, name=None, client=None):
        """Submit a sweep document (parsed sweep-file dict) or
        ``{"jobs": [decl, ...]}``; returns the server's 202 payload."""
        doc = dict(doc)
        if name:
            doc["name"] = name
        if client:
            doc["client"] = client
        return self._request("POST", "/sweeps", doc)

    def job(self, job_hash):
        return self._request("GET", "/jobs/%s" % job_hash)

    def sweep(self, sweep_id):
        return self._request("GET", "/sweeps/%s" % sweep_id)

    def results(self, sweep_id):
        return self._request("GET", "/sweeps/%s/results" % sweep_id)

    def wait(self, sweep_id, timeout=300.0, poll=0.25):
        """Block until every job of a sweep is terminal; returns the
        final ``results`` payload."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.sweep(sweep_id)
            if summary.get("complete"):
                return self.results(sweep_id)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "timeout", "sweep %s not complete after %.0fs: %s"
                    % (sweep_id, timeout, summary.get("states")))
            time.sleep(poll)

    def events(self, limit=None, timeout=None):
        """Generator over ``/events`` SSE payloads (decoded dicts).

        Reads until ``limit`` events arrived, the socket times out
        (``timeout`` seconds per read), or the server closes."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            conn.request("GET", "/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(response.status, "events stream "
                                   "refused")
            count = 0
            while limit is None or count < limit:
                line = response.fp.readline()
                if not line:
                    break
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue            # keepalive comment or blank
                yield json.loads(line[len(b"data: "):].decode("utf-8"))
                count += 1
        finally:
            conn.close()
