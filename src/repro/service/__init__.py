"""Simulation-as-a-service: job broker, durable store, HTTP API.

The service turns the batch harness into a long-running facility:
clients POST sweeps, a durable sqlite store collapses overlapping
submissions onto one content-addressed job row per unique point, an
async broker leases queued jobs onto supervised worker processes
(heartbeats, crash detection, bounded retries), and a stdlib HTTP API
serves states, results and a live event stream. See DESIGN.md
("Simulation service") for the store schema and lease protocol.
"""

from repro.service.api import ApiError, ServiceAPI
from repro.service.broker import Broker, EventHub
from repro.service.client import ServiceClient, ServiceError, discover
from repro.service.runtime import ServiceThread, serve
from repro.service.store import (COUNTER_NAMES, STATES, TERMINAL_STATES,
                                 JobStore, default_service_dir,
                                 worker_id)

__all__ = [
    "ApiError", "ServiceAPI", "Broker", "EventHub", "ServiceClient",
    "ServiceError", "discover", "ServiceThread", "serve",
    "COUNTER_NAMES", "STATES", "TERMINAL_STATES", "JobStore",
    "default_service_dir", "worker_id",
]
