"""Durable job/result store for the simulation service.

One sqlite database (``<store dir>/store.sqlite3``, WAL mode so
multiple broker hosts can share the directory over a common
filesystem) holds every job the service has ever been asked to
simulate, keyed by the content-addressed ``SimJob`` hash. Result
payloads do *not* live in sqlite: completed stats go through the
ordinary sharded :class:`~repro.harness.cache.ResultCache` under
``<store dir>/results``, so service results and direct ``harness
run`` results are interchangeable files — byte-identical stats, same
self-describing entry format, same fingerprint invalidation.

Job state machine::

    queued ──claim──▶ running ──complete──▶ done
      ▲                  │ │
      │   fail (attempts left) │ heartbeat stale (attempts left)
      ├──────────────◀───┘ └───▶────────────┤
      │                                     │
      │  fail (attempts exhausted)          │ heartbeat stale
      └──▶ failed                           └──▶ orphaned
              (error captured)                   (worker lost)

``failed`` records the captured error of the last execution attempt;
``orphaned`` marks jobs whose worker (or whole broker host) vanished
with retries exhausted — nothing was captured, the lease just went
stale. Submitting a failed/orphaned job again requeues it with a
fresh retry budget.

Dedupe is structural: the jobs table is keyed by job hash, so any
number of clients submitting overlapping sweeps share one row — and
therefore at most one execution — per unique point, cluster-wide.
The ``counters`` table records the evidence (``submitted`` vs
``executions`` vs ``dedup_hits``/``cache_hits``).
"""

import json
import os
import socket
import sqlite3
import threading
import time

from repro.config import envreg
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.jobs import SimJob

#: Every state a job row can be in.
STATES = ("queued", "running", "done", "failed", "orphaned")

#: States a job never leaves without a new submission.
TERMINAL_STATES = ("done", "failed", "orphaned")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_hash     TEXT PRIMARY KEY,
    decl         TEXT NOT NULL,
    label        TEXT NOT NULL,
    state        TEXT NOT NULL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 1,
    worker       TEXT,
    heartbeat    REAL,
    error        TEXT,
    source       TEXT,
    created      REAL NOT NULL,
    updated      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, created);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id     TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    client       TEXT,
    created      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS sweep_jobs (
    sweep_id     TEXT NOT NULL,
    position     INTEGER NOT NULL,
    scenario     TEXT NOT NULL,
    workload     TEXT NOT NULL,
    job_hash     TEXT NOT NULL,
    PRIMARY KEY (sweep_id, position)
);
CREATE TABLE IF NOT EXISTS counters (
    name         TEXT PRIMARY KEY,
    value        INTEGER NOT NULL
);
"""

#: Counter rows maintained by the store (all start at zero).
#: ``claims``/``claim_txns`` record lease traffic: jobs leased vs the
#: write transactions that leased them, so batched claiming
#: (:meth:`JobStore.claim_many`) is provably cheaper than one
#: round-trip per job. ``INSERT OR IGNORE`` seeding means new names
#: are safe on databases created by older versions.
COUNTER_NAMES = ("submitted", "unique_jobs", "dedup_hits", "cache_hits",
                 "executions", "requeues", "worker_losses", "failures",
                 "claims", "claim_txns")


def default_service_dir():
    """Store directory from ``REPRO_SERVICE_DIR`` (default
    ``<cache>/service``)."""
    value = envreg.get("REPRO_SERVICE_DIR")
    if value:
        return value
    return os.path.join(default_cache_dir(), "service")


class JobStore:
    """sqlite-backed durable job store plus its sharded result cache.

    All mutating methods are single transactions (``BEGIN IMMEDIATE``)
    so concurrent brokers and API handlers — in this process, in other
    processes, or on other hosts sharing the directory — serialise on
    the database's write lock. A ``threading.Lock`` additionally makes
    one connection safe to share across the serving thread and tests.
    """

    def __init__(self, directory=None, cache=None):
        self.directory = directory or default_service_dir()
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, "store.sqlite3")
        self.db = sqlite3.connect(self.path, timeout=30.0,
                                  check_same_thread=False)
        self.db.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        with self._lock:
            self.db.execute("PRAGMA journal_mode=WAL")
            self.db.execute("PRAGMA synchronous=NORMAL")
            self.db.executescript(_SCHEMA)
            for name in COUNTER_NAMES:
                self.db.execute(
                    "INSERT OR IGNORE INTO counters VALUES (?, 0)",
                    (name,))
            self.db.commit()
        self.cache = cache if cache is not None else ResultCache(
            directory=os.path.join(self.directory, "results"))

    def close(self):
        with self._lock:
            self.db.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bump(self, name, by=1):
        if by:
            self.db.execute(
                "UPDATE counters SET value = value + ? WHERE name = ?",
                (by, name))

    def _job(self, job_hash):
        return self.db.execute(
            "SELECT * FROM jobs WHERE job_hash = ?",
            (job_hash,)).fetchone()

    @staticmethod
    def _now(now):
        return time.time() if now is None else now

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, entries, name="sweep", client=None, retries=None,
               now=None):
        """Record one sweep submission; returns ``(sweep_id, rows)``.

        ``entries``: ``[(scenario, SimJob)]`` — the *declared* rows, so
        the dedupe evidence (submitted vs unique) is preserved.
        Already-known hashes only bump ``dedup_hits``; terminal
        ``failed``/``orphaned`` rows are requeued with a fresh retry
        budget; fresh hashes whose result already sits in the shared
        cache are recorded ``done`` immediately (``cache_hits``) and
        never reach a worker. Returns per-entry
        ``[{scenario, workload, job_hash, state}]``.
        """
        now = self._now(now)
        if retries is None:
            retries = envreg.get("REPRO_SERVICE_RETRIES")
        max_attempts = 1 + max(0, int(retries))
        with self._lock:
            sweep_id = "s%08x" % (self.db.execute(
                "SELECT COUNT(*) FROM sweeps").fetchone()[0] + 1)
            self.db.execute("BEGIN IMMEDIATE")
            self.db.execute(
                "INSERT INTO sweeps VALUES (?, ?, ?, ?)",
                (sweep_id, name, client, now))
            rows = []
            seen = {}
            for position, (scenario, job) in enumerate(entries):
                job_hash = job.job_hash()
                self._bump("submitted")
                state = seen.get(job_hash)
                if state is None:
                    existing = self._job(job_hash)
                    if existing is None:
                        state = "queued"
                        if self.cache.get(job) is not None:
                            state = "done"
                            self._bump("cache_hits")
                        self.db.execute(
                            "INSERT INTO jobs (job_hash, decl, label, "
                            "state, max_attempts, source, created, "
                            "updated) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                            (job_hash, json.dumps(job.decl(),
                                                  sort_keys=True),
                             job.label(), state, max_attempts,
                             "cache" if state == "done" else None,
                             now, now))
                        self._bump("unique_jobs")
                    else:
                        self._bump("dedup_hits")
                        state = existing["state"]
                        if state in ("failed", "orphaned"):
                            # A fresh submission is consent to retry.
                            state = "queued"
                            self.db.execute(
                                "UPDATE jobs SET state='queued', "
                                "attempts=0, max_attempts=?, error=NULL,"
                                " worker=NULL, updated=? "
                                "WHERE job_hash=?",
                                (max_attempts, now, job_hash))
                    seen[job_hash] = state
                else:
                    self._bump("dedup_hits")
                self.db.execute(
                    "INSERT INTO sweep_jobs VALUES (?, ?, ?, ?, ?)",
                    (sweep_id, position, scenario, job.workload,
                     job_hash))
                rows.append({"scenario": scenario,
                             "workload": job.workload,
                             "job_hash": job_hash, "state": state})
            self.db.commit()
        return sweep_id, rows

    # ------------------------------------------------------------------
    # Worker protocol: claim / heartbeat / complete / fail / reap
    # ------------------------------------------------------------------
    def claim(self, worker, now=None):
        """Atomically lease the oldest queued job to ``worker``.

        Returns ``(job_hash, SimJob)`` or ``None`` when the queue is
        empty. One-job convenience over :meth:`claim_many`."""
        claimed = self.claim_many(worker, limit=1, now=now)
        return claimed[0] if claimed else None

    def claim_many(self, worker, limit=1, now=None):
        """Atomically lease up to ``limit`` oldest queued jobs to
        ``worker`` in a *single* transaction.

        Returns ``[(job_hash, SimJob)]`` (empty when the queue is
        empty), oldest first. Each claim bumps ``attempts`` — a lease
        *is* an execution attempt, so a worker that dies mid-job
        consumes retry budget. One write transaction per batch instead
        of one per job is the point: the ``claims``/``claim_txns``
        counters record the ratio."""
        now = self._now(now)
        limit = max(1, int(limit))
        with self._lock:
            self.db.execute("BEGIN IMMEDIATE")
            rows = self.db.execute(
                "SELECT job_hash, decl FROM jobs WHERE state='queued' "
                "ORDER BY created LIMIT ?", (limit,)).fetchall()
            for row in rows:
                self.db.execute(
                    "UPDATE jobs SET state='running', worker=?, "
                    "heartbeat=?, attempts=attempts+1, updated=? "
                    "WHERE job_hash=?",
                    (worker, now, now, row["job_hash"]))
            if rows:
                self._bump("claims", len(rows))
                self._bump("claim_txns")
            self.db.commit()
        return [(row["job_hash"],
                 SimJob.from_decl(json.loads(row["decl"])))
                for row in rows]

    def heartbeat(self, job_hashes, worker, now=None):
        """Refresh the lease on every running job ``worker`` holds."""
        if not job_hashes:
            return
        now = self._now(now)
        with self._lock:
            self.db.execute("BEGIN IMMEDIATE")
            for job_hash in job_hashes:
                self.db.execute(
                    "UPDATE jobs SET heartbeat=?, updated=? WHERE "
                    "job_hash=? AND worker=? AND state='running'",
                    (now, now, job_hash, worker))
            self.db.commit()

    def complete(self, job_hash, worker, stats_dict, source="run",
                 now=None):
        """Mark a running job done and persist its stats.

        ``source='run'`` counts an execution; ``source='cache'`` marks
        a claim satisfied by a result another host published since
        submission."""
        now = self._now(now)
        with self._lock:
            row = self._job(job_hash)
            if row is None:
                return
            job = SimJob.from_decl(json.loads(row["decl"]))
            if source == "run":
                self.cache.put(job, stats_dict)
            self.db.execute("BEGIN IMMEDIATE")
            self.db.execute(
                "UPDATE jobs SET state='done', worker=?, error=NULL, "
                "source=?, updated=? WHERE job_hash=?",
                (worker, source, now, job_hash))
            self._bump("executions" if source == "run" else
                       "cache_hits")
            self.db.commit()

    def fail(self, job_hash, worker, error, now=None):
        """Record a failed execution attempt: requeue while retry
        budget remains, else ``failed`` with the captured error.
        Returns the resulting state."""
        now = self._now(now)
        with self._lock:
            row = self._job(job_hash)
            if row is None:
                return None
            retryable = row["attempts"] < row["max_attempts"]
            state = "queued" if retryable else "failed"
            self.db.execute("BEGIN IMMEDIATE")
            self.db.execute(
                "UPDATE jobs SET state=?, worker=NULL, error=?, "
                "updated=? WHERE job_hash=?",
                (state, str(error), now, job_hash))
            self._bump("requeues" if retryable else "failures")
            self.db.commit()
        return state

    def reap(self, lease_ttl, now=None):
        """Requeue (or orphan) running jobs whose heartbeat went stale.

        Crash detection for *hosts*: a broker that dies stops
        heartbeating the leases it supervises, and any surviving
        broker's next reap pass recovers them. Returns
        ``[(job_hash, new_state)]``."""
        now = self._now(now)
        out = []
        with self._lock:
            self.db.execute("BEGIN IMMEDIATE")
            rows = self.db.execute(
                "SELECT job_hash, attempts, max_attempts, worker FROM "
                "jobs WHERE state='running' AND heartbeat < ?",
                (now - lease_ttl,)).fetchall()
            for row in rows:
                retryable = row["attempts"] < row["max_attempts"]
                state = "queued" if retryable else "orphaned"
                error = None if retryable else (
                    "worker %s lost (heartbeat stale after %d "
                    "attempt(s))" % (row["worker"], row["attempts"]))
                self.db.execute(
                    "UPDATE jobs SET state=?, worker=NULL, error=?, "
                    "updated=? WHERE job_hash=?",
                    (state, error, now, row["job_hash"]))
                self._bump("worker_losses")
                if retryable:
                    self._bump("requeues")
                out.append((row["job_hash"], state))
            self.db.commit()
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def job(self, job_hash, with_stats=True):
        """Public description of one job, or None. Includes the stats
        dict for ``done`` jobs when ``with_stats``."""
        with self._lock:
            row = self._job(job_hash)
        if row is None:
            return None
        out = {"job_hash": row["job_hash"], "state": row["state"],
               "label": row["label"], "attempts": row["attempts"],
               "max_attempts": row["max_attempts"],
               "worker": row["worker"], "error": row["error"],
               "source": row["source"],
               "decl": json.loads(row["decl"])}
        if with_stats and row["state"] == "done":
            out["stats"] = self.cache.get(
                SimJob.from_decl(out["decl"]))
        return out

    def sweep(self, sweep_id):
        """Summary of one sweep: per-state counts + completion flag."""
        with self._lock:
            head = self.db.execute(
                "SELECT * FROM sweeps WHERE sweep_id=?",
                (sweep_id,)).fetchone()
            if head is None:
                return None
            rows = self.db.execute(
                "SELECT j.state AS state, COUNT(*) AS n FROM sweep_jobs"
                " s JOIN jobs j ON j.job_hash = s.job_hash WHERE "
                "s.sweep_id=? GROUP BY j.state", (sweep_id,)).fetchall()
        states = {row["state"]: row["n"] for row in rows}
        declared = sum(states.values())
        terminal = sum(states.get(state, 0)
                       for state in TERMINAL_STATES)
        return {"sweep_id": sweep_id, "name": head["name"],
                "declared": declared, "states": states,
                "complete": declared > 0 and terminal == declared}

    def sweep_results(self, sweep_id, with_stats=True):
        """Every declared row of a sweep with its job state (and stats
        for done jobs); None for an unknown sweep id."""
        summary = self.sweep(sweep_id)
        if summary is None:
            return None
        with self._lock:
            rows = self.db.execute(
                "SELECT s.position, s.scenario, s.workload, "
                "j.job_hash, j.state, j.label, j.error, j.decl "
                "FROM sweep_jobs s JOIN jobs j ON j.job_hash = "
                "s.job_hash WHERE s.sweep_id=? ORDER BY s.position",
                (sweep_id,)).fetchall()
        entries = []
        for row in rows:
            entry = {"scenario": row["scenario"],
                     "workload": row["workload"],
                     "job_hash": row["job_hash"],
                     "label": row["label"], "state": row["state"],
                     "error": row["error"]}
            if with_stats and row["state"] == "done":
                entry["stats"] = self.cache.get(
                    SimJob.from_decl(json.loads(row["decl"])))
            entries.append(entry)
        summary["entries"] = entries
        return summary

    def counters(self):
        """All dedupe/traffic counters as a dict."""
        with self._lock:
            rows = self.db.execute("SELECT * FROM counters").fetchall()
        return {row["name"]: row["value"] for row in rows}

    def state_counts(self):
        """``{state: count}`` over the whole jobs table."""
        with self._lock:
            rows = self.db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: row["n"] for row in rows}


def worker_id():
    """Stable-ish identity of this broker process for lease rows."""
    return "%s:%d" % (socket.gethostname(), os.getpid())
