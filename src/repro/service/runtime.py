"""Service orchestration: wire store + broker + HTTP API together.

:func:`serve` is the blocking entry point behind ``harness serve``:
it opens (or creates) the store, starts the broker loop and the HTTP
server on one event loop, publishes ``endpoint.json`` into the store
directory so clients can discover the URL, and runs until interrupted.

``harness serve --no-api`` (or ``REPRO_SERVICE_NO_API``) runs the same
stack *worker-only*: broker + store with no HTTP listener, for pure
compute hosts that drain a shared store filled by an API-ful peer.
``endpoint.json`` is then written api-less (``"api": false``, no
host/port/url) so discovery knows there is nothing to connect to.

:class:`ServiceThread` runs the same stack on a background thread —
the test harness's way to stand up a real live server on an ephemeral
port inside one process, then tear it down deterministically.
"""

import asyncio
import json
import os
import threading

from repro.log import get_logger
from repro.service.broker import Broker
from repro.service.api import ServiceAPI
from repro.service.store import JobStore

_log = get_logger("service.runtime")


def _write_endpoint(directory, bound):
    if bound is None:
        doc = {"api": False, "pid": os.getpid()}
    else:
        doc = {"api": True, "host": bound[0], "port": bound[1],
               "pid": os.getpid(), "url": "http://%s:%d" % bound}
    path = os.path.join(directory, "endpoint.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, sort_keys=True)
    os.replace(tmp, path)
    return doc


def _remove_endpoint(directory):
    try:
        os.remove(os.path.join(directory, "endpoint.json"))
    except OSError:
        pass


async def _serve(store, broker, api, stop, on_ready=None):
    bound = await api.start() if api is not None else None
    endpoint = _write_endpoint(store.directory, bound)
    if bound is None:
        _log.info("service ready: worker-only, no API (store %s)",
                  store.directory)
    else:
        _log.info("service ready: %s (store %s)", endpoint["url"],
                  store.directory)
    if on_ready is not None:
        on_ready(endpoint)
    try:
        await broker.run(stop)
    finally:
        if api is not None:
            await api.stop()
        _remove_endpoint(store.directory)


def serve(directory=None, host=None, port=None, workers=None,
          lease_ttl=None, job_timeout=None, stop=None, on_ready=None,
          no_api=False):
    """Run the full service until interrupted (or ``stop`` is set by
    another task). Returns the store's final counters. ``no_api=True``
    runs worker-only: broker + store, no HTTP listener."""
    store = JobStore(directory)
    broker = Broker(store, workers=workers, lease_ttl=lease_ttl,
                    job_timeout=job_timeout)
    api = None if no_api \
        else ServiceAPI(store, broker, host=host, port=port)

    async def main():
        stop_event = stop if stop is not None else asyncio.Event()
        task = asyncio.ensure_future(
            _serve(store, broker, api, stop_event, on_ready))
        try:
            await task
        except asyncio.CancelledError:
            stop_event.set()
            await asyncio.wait_for(task, 10.0)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        _log.info("service interrupted; shutting down")
    counters = store.counters()
    store.close()
    return counters


class ServiceThread:
    """A live service on a daemon thread (tests, CI smoke).

    ::

        with ServiceThread(tmpdir, workers=2) as svc:
            client = ServiceClient(url=svc.url)
            ...

    ``no_api=True`` stands up a worker-only service (``url`` stays
    None; jobs reach it through the shared store directory).
    """

    def __init__(self, directory, host="127.0.0.1", port=0,
                 workers=1, lease_ttl=None, job_timeout=None,
                 no_api=False):
        self.directory = directory
        self._kwargs = dict(host=host, port=port, workers=workers,
                            lease_ttl=lease_ttl,
                            job_timeout=job_timeout, no_api=no_api)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.endpoint = None
        self.thread = None

    # ------------------------------------------------------------------
    def _main(self):
        # asyncio.Event has no loop affinity since 3.10, so it can be
        # created here; the running loop (needed for a thread-safe
        # stop) is captured inside on_ready, which runs on it.
        self._stop = asyncio.Event()

        def on_ready(endpoint):
            self._loop = asyncio.get_running_loop()
            self.endpoint = endpoint
            self._ready.set()

        try:
            serve(self.directory, stop=self._stop,
                  on_ready=on_ready, **self._kwargs)
        finally:
            self._ready.set()      # unblock start() on early failure

    def start(self, timeout=30.0):
        self.thread = threading.Thread(target=self._main,
                                       name="repro-service",
                                       daemon=True)
        self.thread.start()
        if not self._ready.wait(timeout) or self.endpoint is None:
            raise RuntimeError("service thread failed to start")
        return self

    def stop(self, timeout=30.0):
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self.thread is not None:
            self.thread.join(timeout)

    @property
    def url(self):
        return self.endpoint.get("url") if self.endpoint else None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False
