"""Async job broker: leases queued jobs onto a local worker pool.

One broker supervises one host's worker processes. Its ``run`` loop is
a plain asyncio task that, every tick:

1. **reaps** stale leases in the store (crash detection for *other*
   hosts — or a previous life of this one — that stopped
   heartbeating);
2. **claims** queued jobs while local pool slots are free — up to one
   batch per free slot count in a *single* store transaction
   (:meth:`~repro.service.store.JobStore.claim_many`), so many workers
   cost one sqlite round-trip per tick instead of one per job. Each
   claim is re-probed against the shared result cache first, so a
   result published by another host since submission is served without
   burning a worker; the remainder is grouped by program image
   (:func:`~repro.harness.runner.group_jobs`) so same-workload cells
   share one worker's build caches;
3. **collects** finished workers from the
   :class:`~repro.harness.runner.ProcessPool` — success persists stats
   through the shared cache, failure consumes retry budget (requeue,
   then ``failed``). A worker killed mid-job surfaces here with its
   captured exit code instead of hanging the pool;
4. **heartbeats** every lease it holds, on behalf of its (busy,
   single-threaded) workers. A broker host that dies stops
   heartbeating, and any surviving broker's next reap requeues its
   jobs — that is the cluster's whole crash story.

Every state transition is published to the :class:`EventHub`, which
the HTTP API's ``/events`` stream fans out to live clients.
"""

import asyncio
import time

from repro.config import envreg
from repro.harness.runner import (ProcessPool, default_job_timeout,
                                  default_shared_images, group_jobs)
from repro.log import get_logger
from repro.service.store import worker_id

_log = get_logger("service.broker")


class EventHub:
    """Fan-out of broker progress events to asyncio subscribers.

    Subscribers get bounded queues: a stalled ``/events`` client drops
    its oldest events rather than stalling the broker.
    """

    def __init__(self, maxsize=256):
        self.maxsize = maxsize
        self._subscribers = []

    def subscribe(self):
        queue = asyncio.Queue(maxsize=self.maxsize)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue):
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def publish(self, event):
        for queue in self._subscribers:
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                try:
                    queue.get_nowait()
                    queue.put_nowait(event)
                except (asyncio.QueueEmpty,
                        asyncio.QueueFull):   # pragma: no cover
                    pass


class Broker:
    """The per-host serving loop (see module docstring)."""

    def __init__(self, store, workers=None, lease_ttl=None,
                 job_timeout=None, poll_interval=0.05):
        self.store = store
        if workers is None:
            workers = envreg.get("REPRO_SERVICE_WORKERS")
        if workers <= 0:
            import os
            workers = os.cpu_count() or 1
        self.workers = int(workers)
        self.lease_ttl = float(lease_ttl if lease_ttl is not None
                               else envreg.get("REPRO_SERVICE_LEASE_TTL"))
        self.job_timeout = job_timeout if job_timeout is not None \
            else default_job_timeout()
        self.poll_interval = poll_interval
        self.worker = worker_id()
        self.hub = EventHub()
        self.pool = None
        self._last_heartbeat = 0.0

    # ------------------------------------------------------------------
    def _publish(self, job_hash, state, detail=None):
        from repro.obs.events import JobStateEvent
        self.hub.publish(JobStateEvent(time.time(), job_hash, state,
                                       detail).as_dict())

    def tick(self):
        """One synchronous scheduling pass (also driven directly by
        tests — the async loop adds nothing but pacing)."""
        store, pool = self.store, self.pool

        for job_hash, state in store.reap(self.lease_ttl):
            _log.warning("lease lost: %s -> %s", job_hash, state)
            self._publish(job_hash, state, "heartbeat stale")

        while True:
            free = pool.free_slots()
            if not free:
                break
            claimed = store.claim_many(self.worker, limit=free)
            if not claimed:
                break
            to_run = []
            for job_hash, job in claimed:
                cached = store.cache.get(job)
                if cached is not None:
                    store.complete(job_hash, self.worker, cached,
                                   source="cache")
                    self._publish(job_hash, "done", "cache")
                else:
                    to_run.append(job)
            for group in group_jobs(to_run, free,
                                    shared=default_shared_images()):
                pool.submit_group(group)
                for job in group:
                    self._publish(job.job_hash(), "running")

        for job, ok, payload in pool.poll(0):
            job_hash = job.job_hash()
            if ok:
                store.complete(job_hash, self.worker, payload)
                self._publish(job_hash, "done")
            else:
                state = store.fail(job_hash, self.worker, payload)
                _log.warning("job %s failed (-> %s): %s", job_hash,
                             state, str(payload).strip()
                             .splitlines()[-1])
                self._publish(job_hash, state or "failed",
                              str(payload).strip().splitlines()[-1])

        now = time.monotonic()
        if now - self._last_heartbeat >= self.lease_ttl / 3.0:
            store.heartbeat(list(pool.running), self.worker)
            self._last_heartbeat = now

    async def run(self, stop):
        """Serve until ``stop`` (an :class:`asyncio.Event`) is set."""
        self.pool = ProcessPool(self.workers,
                                job_timeout=self.job_timeout)
        _log.info("broker %s: %d worker slot(s), lease ttl %.1fs",
                  self.worker, self.workers, self.lease_ttl)
        try:
            while not stop.is_set():
                self.tick()
                try:
                    await asyncio.wait_for(stop.wait(),
                                           self.poll_interval)
                except asyncio.TimeoutError:
                    pass
        finally:
            # Anything still running is abandoned; its lease goes
            # stale and the next broker (or our next life) reaps it.
            self.pool.close()
            self.pool = None
