"""Stdlib HTTP results API for the simulation service.

A deliberately small HTTP/1.1 server on raw asyncio streams — no
framework, no threads; it shares one event loop (and therefore one
store connection) with the broker. Routes::

    GET  /healthz             liveness + store directory
    GET  /counters            dedupe/traffic counters + state counts
    POST /sweeps              submit a sweep document or a job list
    GET  /jobs/<hash>         one job: state, attempts, error, stats
    GET  /sweeps/<id>         sweep summary (per-state counts)
    GET  /sweeps/<id>/results declared rows with stats for done jobs
    GET  /events              live progress (server-sent events)

``POST /sweeps`` accepts either ``{"sweep": ..., "scenario": [...]}``
(a parsed sweep file — the same document ``harness sweep`` reads, so
clients never need a TOML serialiser) or ``{"jobs": [<decl>, ...]}``
with explicit :meth:`~repro.harness.jobs.SimJob.decl` payloads.
Expansion, validation and hashing happen server-side, so every client
submits *declared* rows and the store's dedupe counters see the full
overlap between clients.

``/events`` speaks server-sent events (``text/event-stream``): one
``data: <json>`` line per broker state transition, plus periodic
keepalive comments so dead clients are noticed and dropped.
"""

import asyncio
import json

from repro.log import get_logger

_log = get_logger("service.api")

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error"}

#: Request body cap (a sweep document is a few KB; a decl list for a
#: million-point sweep is what the document form exists to avoid).
MAX_BODY = 8 * 1024 * 1024


class ApiError(Exception):
    """An error that maps to a client-visible HTTP status."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class ServiceAPI:
    """The HTTP front end over one :class:`JobStore` + broker."""

    def __init__(self, store, broker, host=None, port=None):
        from repro.config import envreg
        self.store = store
        self.broker = broker
        self.host = host if host is not None \
            else envreg.get("REPRO_SERVICE_HOST")
        self.port = port if port is not None \
            else envreg.get("REPRO_SERVICE_PORT")
        self.server = None
        self.bound = None            # (host, port) after start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self):
        """Bind and start serving; returns the bound ``(host, port)``
        (``port=0`` requests an ephemeral port)."""
        self.server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sock = self.server.sockets[0]
        self.bound = sock.getsockname()[:2]
        _log.info("api listening on http://%s:%d", *self.bound)
        return self.bound

    async def stop(self):
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    @property
    def url(self):
        return "http://%s:%d" % self.bound if self.bound else None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            if method == "GET" and path == "/events":
                await self._stream_events(writer)
                return
            try:
                status, payload = self._route(method, path, body)
            except ApiError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except Exception as exc:
                _log.exception("unhandled API error for %s %s",
                               method, path)
                status, payload = 500, {"error": repr(exc)}
            await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown while a handler (typically the /events
            # stream) is parked; exit quietly instead of letting the
            # cancelled task trip the streams exception callback.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = min(int(value.strip()), MAX_BODY)
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(self, writer, status, payload):
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "Connection: close\r\n\r\n"
                % (status, _REASONS.get(status, "?"), len(blob)))
        writer.write(head.encode("latin-1") + blob)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method, path, body):
        path = path.partition("?")[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "store": self.store.directory,
                         "worker": self.broker.worker}
        if path == "/counters" and method == "GET":
            return 200, {"counters": self.store.counters(),
                         "states": self.store.state_counts()}
        if path == "/sweeps" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/") and method == "GET":
            job = self.store.job(path[len("/jobs/"):])
            if job is None:
                raise ApiError(404, "unknown job hash")
            return 200, job
        if path.startswith("/sweeps/") and method == "GET":
            rest = path[len("/sweeps/"):]
            sweep_id, _sep, tail = rest.partition("/")
            if tail == "results":
                summary = self.store.sweep_results(sweep_id)
            elif not tail:
                summary = self.store.sweep(sweep_id)
            else:
                raise ApiError(404, "unknown route")
            if summary is None:
                raise ApiError(404, "unknown sweep id")
            return 200, summary
        if path in ("/sweeps", "/events", "/counters", "/healthz") \
                or path.startswith(("/jobs/", "/sweeps/")):
            raise ApiError(405, "method not allowed")
        raise ApiError(404, "unknown route")

    def _submit(self, body):
        from repro.config.sweep import SweepError, sweep_from_dict
        from repro.harness.jobs import SimJob
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ApiError(400, "request body is not valid JSON")
        if not isinstance(doc, dict):
            raise ApiError(400, "request body must be a JSON object")

        name = str(doc.pop("name", "") or "sweep")
        client = str(doc.pop("client", "") or "") or None
        try:
            if "jobs" in doc:
                decls = doc["jobs"]
                if not isinstance(decls, list) or not decls:
                    raise ApiError(400, "'jobs' must be a non-empty "
                                        "list of job declarations")
                entries = [("adhoc", SimJob.from_decl(decl))
                           for decl in decls]
            else:
                plan = sweep_from_dict(doc).expand()
                name = plan.sweep.name if name == "sweep" else name
                entries = [(entry.scenario, entry.job)
                           for entry in plan.entries]
        except ApiError:
            raise
        except (SweepError, KeyError, ValueError, TypeError) as exc:
            raise ApiError(400, "invalid submission: %s" % exc)

        sweep_id, rows = self.store.submit(entries, name=name,
                                           client=client)
        return 202, {"sweep_id": sweep_id, "name": name,
                     "declared": len(rows),
                     "unique": len({row["job_hash"] for row in rows}),
                     "jobs": rows,
                     "counters": self.store.counters()}

    # ------------------------------------------------------------------
    # Live progress stream
    # ------------------------------------------------------------------
    async def _stream_events(self, writer):
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        snapshot = {"type": "snapshot",
                    "counters": self.store.counters(),
                    "states": self.store.state_counts()}
        writer.write(b"data: " + json.dumps(
            snapshot, sort_keys=True).encode("utf-8") + b"\n\n")
        await writer.drain()
        queue = self.broker.hub.subscribe()
        try:
            while True:
                try:
                    event = await asyncio.wait_for(queue.get(), 5.0)
                    writer.write(b"data: " + json.dumps(
                        event, sort_keys=True).encode("utf-8") + b"\n\n")
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self.broker.hub.unsubscribe(queue)
