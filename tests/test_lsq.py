"""Load/store queue: forwarding, patching, violation search."""

from repro.isa import Op, Instruction
from repro.emu import SparseMemory
from repro.pipeline.dyninst import DynInst
from repro.pipeline.lsq import LoadStoreQueue


def _store(seq, addr, data, size=8, issued=True, issue_cycle=0):
    inst = Instruction(Op.SD if size == 8 else Op.SB, srcs=(1, 2),
                       imm=0, pc=0x100 + 4 * seq)
    dyn = DynInst(seq, inst.pc, inst, 0, 0)
    dyn.mem_addr = addr
    dyn.mem_size = size
    dyn.store_data = data
    dyn.issued = issued
    dyn.issue_cycle = issue_cycle
    return dyn


def _load(seq, addr, size=8, issued=True, issue_cycle=0):
    inst = Instruction(Op.LD, dest=3, srcs=(1,), imm=0, pc=0x100 + 4 * seq)
    dyn = DynInst(seq, inst.pc, inst, 0, 0)
    dyn.mem_addr = addr
    dyn.mem_size = size
    dyn.issued = issued
    dyn.issue_cycle = issue_cycle
    return dyn


def _lsq(initial=None):
    return LoadStoreQueue(SparseMemory(initial or {}))


def test_read_from_committed_memory():
    lsq = _lsq({0x100: 0xAA})
    value, forwarded = lsq.speculative_read(0x100, 8, seq=5)
    assert value == 0xAA and not forwarded


def test_forward_from_older_store():
    lsq = _lsq({0x100: 0xAA})
    store = _store(1, 0x100, 0xBB)
    lsq.allocate(store)
    value, forwarded = lsq.speculative_read(0x100, 8, seq=2)
    assert value == 0xBB and forwarded


def test_younger_store_not_forwarded():
    lsq = _lsq({0x100: 0xAA})
    lsq.allocate(_store(9, 0x100, 0xBB))
    value, _fw = lsq.speculative_read(0x100, 8, seq=2)
    assert value == 0xAA


def test_unissued_store_skipped():
    lsq = _lsq({0x100: 0xAA})
    lsq.allocate(_store(1, 0x100, 0xBB, issued=False))
    value, _fw = lsq.speculative_read(0x100, 8, seq=2)
    assert value == 0xAA   # the speculation violations later catch


def test_partial_byte_patching():
    lsq = _lsq({0x100: 0x1111111111111111})
    lsq.allocate(_store(1, 0x103, 0xFF, size=1))
    value, forwarded = lsq.speculative_read(0x100, 8, seq=2)
    assert forwarded
    assert value == 0x11111111FF111111


def test_multiple_stores_apply_in_age_order():
    lsq = _lsq()
    lsq.allocate(_store(1, 0x100, 0x01))
    lsq.allocate(_store(2, 0x100, 0x02))
    value, _fw = lsq.speculative_read(0x100, 8, seq=3)
    assert value == 0x02


def test_violation_search_finds_early_loads():
    lsq = _lsq()
    load = _load(5, 0x100, issue_cycle=3)
    lsq.allocate(load)
    store = _store(2, 0x100, 0xEE, issue_cycle=9)
    lsq.allocate(store)
    assert lsq.find_violations(store) == [load]


def test_no_violation_if_load_issued_after_store():
    lsq = _lsq()
    load = _load(5, 0x100, issue_cycle=10)
    lsq.allocate(load)
    store = _store(2, 0x100, 0xEE, issue_cycle=9)
    lsq.allocate(store)
    assert lsq.find_violations(store) == []


def test_no_violation_for_disjoint_addresses():
    lsq = _lsq()
    load = _load(5, 0x200, issue_cycle=0)
    lsq.allocate(load)
    store = _store(2, 0x100, 0xEE, issue_cycle=5)
    lsq.allocate(store)
    assert lsq.find_violations(store) == []


def test_commit_store_writes_memory():
    lsq = _lsq()
    store = _store(1, 0x100, 0x42)
    lsq.allocate(store)
    lsq.commit_store(store)
    assert lsq.memory.read(0x100, 8) == 0x42
    assert not lsq.stores
