"""Broker + supervised pool: end-to-end leasing, crash recovery.

The fault-injection trick throughout: the pool forks its workers, so
a monkeypatch applied to ``repro.harness.runner.execute`` in the
parent is inherited by every child — a patched function that calls
``os._exit`` simulates a worker killed mid-job (no traceback, no
result on the queue, just a corpse with an exit code).
"""

import json
import os
import time

import pytest

from repro.harness.jobs import SimJob, execute
from repro.harness.runner import ProcessPool, run_batch
from repro.service.broker import Broker
from repro.service.store import JobStore

_SCALE = 0.02


def _job(**kwargs):
    kwargs.setdefault("workload", "linear-mispred")
    kwargs.setdefault("kind", "baseline")
    kwargs.setdefault("scale", _SCALE)
    return SimJob(**kwargs)


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
    js = JobStore(str(tmp_path / "svc"))
    yield js
    js.close()


def _drive(broker, store, deadline=90.0):
    """Tick the broker until every job is terminal (or we time out)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        broker.tick()
        states = store.state_counts()
        if states and all(state in ("done", "failed", "orphaned")
                          for state in states):
            return states
        time.sleep(0.02)
    raise AssertionError("jobs never settled: %s"
                         % store.state_counts())


@pytest.fixture
def broker(store):
    b = Broker(store, workers=2, lease_ttl=15.0)
    b.pool = ProcessPool(b.workers, job_timeout=b.job_timeout)
    yield b
    b.pool.close()


# ---------------------------------------------------------------------------
# Happy path
# ---------------------------------------------------------------------------
def test_broker_executes_and_matches_direct_run(broker, store):
    """Acceptance: service results are byte-identical to a direct
    in-process execution of the same job."""
    job = _job()
    store.submit([("s", job)])
    states = _drive(broker, store)
    assert states == {"done": 1}

    direct = execute(job).as_dict()
    via_service = store.job(job.job_hash())["stats"]
    assert json.dumps(via_service, sort_keys=True) == \
        json.dumps(direct, sort_keys=True)
    assert store.counters()["executions"] == 1


def test_broker_serves_claims_from_shared_cache(broker, store):
    # A result published between submission and claim (e.g. by another
    # broker host) is served without burning a worker slot.
    job = _job()
    store.submit([("s", job)])
    store.cache.put(job, {"ipc": 9.9})
    states = _drive(broker, store)
    assert states == {"done": 1}
    counters = store.counters()
    assert counters["executions"] == 0
    assert counters["cache_hits"] == 1


def test_broker_publishes_lifecycle_events(broker, store):
    queue = broker.hub.subscribe()
    store.submit([("s", _job())])
    _drive(broker, store)
    events = []
    while not queue.empty():
        events.append(queue.get_nowait())
    states = [event["state"] for event in events]
    assert states == ["running", "done"]


# ---------------------------------------------------------------------------
# Crash recovery (the PR's acceptance scenario)
# ---------------------------------------------------------------------------
def test_killed_worker_requeues_then_completes_identically(
        broker, store, tmp_path, monkeypatch):
    """Kill the worker mid-job on the first attempt; the broker must
    detect the corpse, requeue, and the retry's stats must be
    byte-identical to a direct run."""
    marker = tmp_path / "died-once"
    real_execute = execute

    def flaky(job):
        if not marker.exists():
            marker.write_text("x")
            os._exit(9)          # simulated SIGKILL mid-job
        return real_execute(job)

    monkeypatch.setattr("repro.harness.runner.execute", flaky)
    job = _job()
    store.submit([("s", job)], retries=2)
    states = _drive(broker, store)
    assert states == {"done": 1}

    row = store.job(job.job_hash())
    assert row["attempts"] == 2
    assert store.counters()["requeues"] == 1
    direct = real_execute(job).as_dict()
    assert json.dumps(row["stats"], sort_keys=True) == \
        json.dumps(direct, sort_keys=True)


def test_killed_worker_exhausts_budget_to_failed(
        broker, store, monkeypatch):
    def always_dies(_job):
        os._exit(9)

    monkeypatch.setattr("repro.harness.runner.execute", always_dies)
    job = _job()
    store.submit([("s", job)], retries=1)
    states = _drive(broker, store)
    assert states == {"failed": 1}
    row = store.job(job.job_hash())
    assert row["attempts"] == 2
    assert "worker died mid-job (exit code 9)" in row["error"]
    assert store.counters()["failures"] == 1


def test_broker_reaps_other_hosts_stale_leases(broker, store):
    # Another host claimed a job and vanished: its lease predates this
    # broker. The first tick requeues it, then a local worker runs it.
    job = _job()
    store.submit([("s", job)], retries=1)
    store.claim("dead-host:1", now=time.time() - 3600.0)
    states = _drive(broker, store)
    assert states == {"done": 1}
    counters = store.counters()
    assert counters["worker_losses"] == 1
    assert counters["executions"] == 1


# ---------------------------------------------------------------------------
# ProcessPool fault injection (runner hardening satellite)
# ---------------------------------------------------------------------------
def test_pool_captures_exit_code_of_killed_worker(monkeypatch):
    def dies(_job):
        os._exit(7)

    monkeypatch.setattr("repro.harness.runner.execute", dies)
    pool = ProcessPool(1)
    try:
        pool.submit(_job())
        done = pool.poll(block=30.0)
    finally:
        pool.close()
    assert len(done) == 1
    _job_obj, ok, payload = done[0]
    assert not ok
    assert "worker died mid-job (exit code 7)" in payload


def test_pool_terminates_job_past_wall_timeout(monkeypatch):
    def hangs(_job):
        while True:      # ignores nothing, but never finishes
            time.sleep(0.1)

    monkeypatch.setattr("repro.harness.runner.execute", hangs)
    pool = ProcessPool(1, job_timeout=0.5)
    try:
        pool.submit(_job())
        done = pool.poll(block=30.0)
    finally:
        pool.close()
    assert len(done) == 1
    _job_obj, ok, payload = done[0]
    assert not ok
    # Either guard is fine: the in-worker SIGALRM normally fires first
    # ("wall clock guard expired"); the parent-side kill is the
    # backstop for wedged workers ("exceeded wall-clock timeout").
    assert "wall clock guard" in payload \
        or "exceeded wall-clock timeout" in payload


def test_run_batch_surfaces_killed_worker_error(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def dies(_job):
        os._exit(11)

    monkeypatch.setattr("repro.harness.runner.execute", dies)
    jobs = [_job(), _job(kind="mssr", params={"streams": 2})]
    report = run_batch(jobs, n_jobs=2, cache=False, strict=False)
    assert len(report.errors) == 2
    for message in report.errors.values():
        assert "worker died mid-job (exit code 11)" in message


# ---------------------------------------------------------------------------
# Batched claims + grouped execution through the broker
# ---------------------------------------------------------------------------
def test_broker_batch_claims_and_groups_same_image_jobs(broker, store):
    """Same-image jobs are claimed in one store transaction per tick
    and leased onto shared-image worker groups, with byte-identical
    results."""
    jobs = [_job(kind="mssr", params={"streams": s}) for s in (1, 2)] \
        + [_job()]
    store.submit([("s", job) for job in jobs])
    states = _drive(broker, store)
    assert states == {"done": 3}

    counters = store.counters()
    assert counters["executions"] == 3
    assert counters["claims"] == 3
    # Fewer transactions than jobs: the first tick leases a batch of
    # two in one claim_many round-trip.
    assert counters["claim_txns"] < counters["claims"]

    for job in jobs:
        direct = execute(job).as_dict()
        assert json.dumps(store.job(job.job_hash())["stats"],
                          sort_keys=True) \
            == json.dumps(direct, sort_keys=True)


def test_group_worker_death_fails_whole_group(monkeypatch):
    """A worker dying mid-group resolves every unfinished member with
    the captured exit code instead of hanging the pool."""
    def dies(_job):
        os._exit(5)

    monkeypatch.setattr("repro.harness.runner.execute", dies)
    jobs = [_job(kind="mssr", params={"streams": s}) for s in (1, 2, 4)]
    pool = ProcessPool(1)
    try:
        pool.submit_group(jobs)
        assert pool.free_slots() == 0
        assert sorted(pool.running) == sorted(j.job_hash()
                                              for j in jobs)
        done = []
        end = time.monotonic() + 30.0
        while len(done) < 3 and time.monotonic() < end:
            done.extend(pool.poll(block=1.0))
    finally:
        pool.close()
    assert len(done) == 3
    for _job_obj, ok, payload in done:
        assert not ok
        assert "worker died mid-job (exit code 5)" in payload
