"""Hardware models: Table 2 exactness, Table 4 scaling."""

from repro.hwmodels import paper_default_storage
from repro.hwmodels.storage import StorageModel
from repro.hwmodels.synthesis import (
    comparator, equality, priority_encoder, mux, incrementer,
    reconvergence_detection_report, reuse_test_report,
)


def test_paper_totals_exact():
    report = paper_default_storage().report()
    assert report["constant_bits"] == 18816
    assert round(report["constant_kb"], 2) == 2.30
    assert round(report["variable_kb"], 2) == 1.23
    assert round(report["total_kb"], 2) == 3.53


def test_entry_widths_match_table2():
    model = StorageModel()
    assert model.wpb_entry_bits() == 23      # valid + 2 x 11-bit PCs
    assert model.squash_log_entry_bits() == 33


def test_formula_equivalence_across_configs():
    for n in (1, 2, 4, 8):
        for m in (8, 16, 64):
            for p in (32, 64, 256):
                model = StorageModel(num_streams=n, wpb_entries=m,
                                     squash_log_entries=p)
                assert model.variable_bits() == \
                    model.variable_bits_formula(), (n, m, p)


def test_constant_part_independent_of_streams():
    a = StorageModel(num_streams=1).constant_bits()
    b = StorageModel(num_streams=8).constant_bits()
    assert a == b


def test_variable_part_scales_linearly():
    one = StorageModel(num_streams=1)
    four = StorageModel(num_streams=4)
    per_stream_1 = one.variable_bits() - one.pointer_bits()
    per_stream_4 = four.variable_bits() - four.pointer_bits()
    assert per_stream_4 == 4 * per_stream_1


def test_component_library_sanity():
    assert comparator(11).levels > comparator(2).levels
    assert equality(64).gates > equality(8).gates
    assert priority_encoder(64).levels == 12
    assert mux(2, 8).gates == 32
    assert incrementer(6).levels == 4


def test_reconvergence_detection_scaling():
    reports = [reconvergence_detection_report(4, m) for m in (16, 32, 64)]
    areas = [r["area_um2"] for r in reports]
    powers = [r["power_mw"] for r in reports]
    assert areas[0] < areas[1] < areas[2]
    assert powers[0] < powers[1] < powers[2]
    # near-linear in capacity
    assert 1.7 < areas[1] / areas[0] < 2.3
    assert 1.7 < areas[2] / areas[1] < 2.3


def test_reuse_test_scaling():
    reports = [reuse_test_report(w) for w in (4, 6, 8)]
    levels = [r["logic_levels"] for r in reports]
    assert levels[0] < levels[1] < levels[2]
    # depth grows super-logarithmically (serial RGID increments add ~3
    # levels per extra instruction, far more than a mux tree's log term)
    assert levels[2] - levels[0] >= 10


def test_streams_dont_change_reuse_test():
    # The reuse-test circuit depends on pipeline width, not stream count
    # (the paper's "complexity independent of the number of streams").
    a = reuse_test_report(6, squash_log_entries=64)
    b = reuse_test_report(6, squash_log_entries=64)
    assert a == b
