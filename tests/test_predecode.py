"""Predecode layer: field correspondence and fast/slow-path identity.

The predecoded fast paths (``PDInst`` records + semantic closures) must
be *unobservable*: every field mirrors ``inst``/``inst.info`` exactly,
and a simulation through the fast paths produces byte-identical results
to the original interpretive paths (kept alive under ``REPRO_SLOWPATH=1``).
"""

import os

from hypothesis import given, settings, strategies as st

from repro.emu import Emulator
from repro.isa import Instruction, Op
from repro.isa.opcodes import OPCODE_INFO, OpClass
from repro.isa.predecode import (KIND_ALU, KIND_BRANCH, KIND_DIV,
                                 KIND_HALT, KIND_LOAD, KIND_MUL, KIND_NOP,
                                 KIND_STORE, predecode_inst,
                                 slowpath_enabled)
from repro.pipeline import O3Core, baseline_config, mssr_config
from repro.utils.bits import to_unsigned
from repro.workloads import get_workload

from tests.test_random_programs import _REGS, _assemble, _instruction

_CLASS_TO_KIND = {
    OpClass.ALU: KIND_ALU, OpClass.MUL: KIND_MUL, OpClass.DIV: KIND_DIV,
    OpClass.BRANCH: KIND_BRANCH, OpClass.LOAD: KIND_LOAD,
    OpClass.STORE: KIND_STORE, OpClass.NOP: KIND_NOP,
    OpClass.HALT: KIND_HALT,
}


def _synthesize(op, pc=0x1000):
    """A representative placed Instruction for one opcode."""
    info = OPCODE_INFO[op]
    imm = 0
    if info.has_imm:
        imm = 0x2000 if info.is_branch else 24
    return Instruction(
        op,
        dest=5 if info.has_dest else None,
        srcs=(6, 7)[:info.num_srcs],
        imm=imm,
        pc=pc)


def test_pdinst_fields_match_info_for_every_opcode():
    """Every flattened field equals its inst / OpInfo source of truth."""
    for op, info in OPCODE_INFO.items():
        inst = _synthesize(op)
        rec = predecode_inst(inst)
        assert rec.inst is inst
        assert rec.op is op
        assert rec.op_class is info.op_class
        assert rec.kind == _CLASS_TO_KIND[info.op_class]
        assert rec.pc == inst.pc
        assert rec.next_pc == inst.next_pc()
        assert rec.dest == inst.dest
        assert rec.num_srcs == len(inst.srcs) == info.num_srcs
        assert rec.src0 == (inst.srcs[0] if inst.srcs else None)
        assert rec.src1 == (inst.srcs[1] if len(inst.srcs) > 1 else None)
        assert rec.imm == inst.imm
        assert rec.imm_u == (to_unsigned(inst.imm) if info.has_imm else 0)
        assert rec.has_imm == info.has_imm
        assert rec.target == inst.taken_target()
        assert rec.writes_reg == inst.writes_reg
        assert rec.is_branch == inst.is_branch
        assert rec.is_cond_branch == inst.is_cond_branch
        assert rec.is_indirect == inst.is_indirect
        assert rec.is_load == inst.is_load
        assert rec.is_store == inst.is_store
        assert rec.is_halt == inst.is_halt
        assert rec.is_lw == (op is Op.LW)
        assert rec.mem_size == info.mem_size
        if info.mem_size:
            assert rec.store_mask == (1 << (info.mem_size * 8)) - 1
        assert rec.alu_fn is info.alu_fn
        assert rec.branch_fn is info.branch_fn
        assert rec.exec_fn is not None  # placed pc -> closure built


def test_x0_dest_load_predecodes_without_writeback():
    """An x0-destination load skips the writeback but still gets a
    closure (the access itself must happen for alignment faults)."""
    inst = Instruction(Op.LD, dest=0, srcs=(6,), imm=0, pc=0x1000)
    rec = predecode_inst(inst)
    assert not rec.writes_reg
    assert rec.exec_fn is not None


def test_unplaced_instruction_predecodes_without_closure():
    """DynInsts built directly in unit tests have pc=None: the record
    still carries the flattened fields, just no semantic closure."""
    rec = predecode_inst(Instruction(Op.ADD, dest=3, srcs=(1, 2)))
    assert rec.pc is None
    assert rec.next_pc is None
    assert rec.exec_fn is None
    assert rec.kind == KIND_ALU


class _ObserverStub:
    """Captures the observer fields a semantic closure writes."""
    last_branch_taken = None
    last_mem_addr = None
    last_mem_size = None


def test_jalr_closure_reads_target_before_link_write():
    """jalr with dest == src must compute the target from the *old*
    register value (the closure bakes in the evaluation order)."""
    inst = Instruction(Op.JALR, dest=5, srcs=(5,), imm=8, pc=0x1000)
    rec = predecode_inst(inst)
    regs = [0] * 32
    regs[5] = 0x4000
    emu = _ObserverStub()
    target = rec.exec_fn(emu, regs)
    assert target == 0x4008     # old x5 + imm, not the link value
    assert regs[5] == 0x1004    # link written after the target read
    assert emu.last_branch_taken is True


def test_slowpath_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SLOWPATH", raising=False)
    assert not slowpath_enabled()
    monkeypatch.setenv("REPRO_SLOWPATH", "0")
    assert not slowpath_enabled()
    monkeypatch.setenv("REPRO_SLOWPATH", "1")
    assert slowpath_enabled()


def test_program_predecode_is_cached_and_complete():
    _mod, prog = get_workload("nested-mispred").build(scale=0.05)
    pd = prog.predecode()
    assert prog.predecode() is pd
    assert len(pd.records) == len(prog)
    for inst in prog.instructions:
        assert pd.by_pc[inst.pc].inst is inst
    # Membership == Program.has_pc for hits and misses alike.
    assert prog.code_base in pd.by_pc
    assert prog.code_end not in pd.by_pc


# ---------------------------------------------------------------------------
# Differential: fast path vs REPRO_SLOWPATH=1 interpretive path.
# ---------------------------------------------------------------------------
def _emulate(prog, slow, monkeypatch):
    if slow:
        monkeypatch.setenv("REPRO_SLOWPATH", "1")
    else:
        monkeypatch.delenv("REPRO_SLOWPATH", raising=False)
    return Emulator(prog).run(max_insts=2_000_000)


def test_emulator_fast_slow_identity_micro(monkeypatch):
    for name in ("nested-mispred", "linear-mispred"):
        _mod, prog = get_workload(name).build(scale=0.1)
        fast = _emulate(prog, False, monkeypatch)
        slow = _emulate(prog, True, monkeypatch)
        assert fast.regs == slow.regs
        assert fast.memory == slow.memory
        assert fast.pc == slow.pc
        assert fast.inst_count == slow.inst_count
        assert fast.halted and slow.halted


def _core_run(prog, config, slow, monkeypatch):
    if slow:
        monkeypatch.setenv("REPRO_SLOWPATH", "1")
    else:
        monkeypatch.delenv("REPRO_SLOWPATH", raising=False)
    result = O3Core(prog, config).run()
    return result.stats.as_dict(), result.regs


def test_core_stats_byte_identical_fast_vs_slow(monkeypatch):
    """SimStats must be *byte-identical* across the two execute paths,
    for the plain pipeline and with MSSR squash reuse active."""
    _mod, prog = get_workload("nested-mispred").build(scale=0.1)
    for config in (baseline_config(), mssr_config()):
        fast_stats, fast_regs = _core_run(prog, config, False, monkeypatch)
        slow_stats, slow_regs = _core_run(prog, config, True, monkeypatch)
        assert fast_stats == slow_stats
        assert fast_regs == slow_regs


@settings(max_examples=25, deadline=None)
@given(st.lists(_instruction, min_size=1, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_random_programs_fast_slow_identity(descriptors, seeds):
    """Hypothesis cosim: generated programs execute identically through
    the predecoded closures and the interpretive ``_execute``."""
    prog = _assemble(descriptors, seeds)
    old = os.environ.pop("REPRO_SLOWPATH", None)
    try:
        fast = Emulator(prog).run(max_insts=100_000)
        os.environ["REPRO_SLOWPATH"] = "1"
        slow = Emulator(prog).run(max_insts=100_000)
    finally:
        if old is None:
            os.environ.pop("REPRO_SLOWPATH", None)
        else:
            os.environ["REPRO_SLOWPATH"] = old
    assert fast.regs == slow.regs
    assert fast.memory == slow.memory
    assert fast.inst_count == slow.inst_count


def test_lockstep_green_on_fast_path(monkeypatch):
    """Commit-by-commit differential check passes with the fast paths
    active in both the core and the golden-model emulator."""
    from repro.obs import run_lockstep
    monkeypatch.delenv("REPRO_SLOWPATH", raising=False)
    _mod, prog = get_workload("nested-mispred").build(scale=0.05)
    outcome = run_lockstep(prog, mssr_config())
    assert outcome.ok, outcome.divergence and outcome.divergence.format()
    assert outcome.commits > 0
