"""Observability layer: event records, bus semantics, sinks, traces.

The load-bearing invariants:

* attaching sinks must not change simulation results — identical
  ``SimStats`` with and without tracing;
* the counters are a pure view over the event stream —
  :class:`MetricsSink` recomputes them from events alone and must agree
  with the live stats;
* the JSONL and Konata exports are well-formed.
"""

import io
import json

import pytest

from repro.obs import (
    CallbackSink,
    CommitEvent,
    JsonlTraceSink,
    KonataSink,
    MetricsSink,
    Observability,
    RingBufferSink,
    format_event,
)
from repro.obs.events import EVENT_TYPES, IssueEvent
from repro.pipeline import O3Core, baseline_config, mssr_config, ri_config
from repro.workloads import get_workload

_SCALE = 0.08


def _program(name="nested-mispred"):
    _mod, prog = get_workload(name).build(_SCALE)
    return prog


def _run(prog, config, sinks=()):
    obs = Observability(sinks=list(sinks))
    core = O3Core(prog, config, obs=obs)
    result = core.run()
    obs.close()
    return result


# ---------------------------------------------------------------------------
# Event records
# ---------------------------------------------------------------------------
def test_event_as_dict_is_flat_and_typed():
    event = CommitEvent(cycle=7, seq=3, pc=0x1010, op="ADD", dest=5,
                        result=12, mem_addr=None, mem_size=0,
                        store_data=None, branch=None, mispredicted=False)
    data = event.as_dict()
    assert data["type"] == "commit"
    assert data["cycle"] == 7 and data["pc"] == 0x1010
    assert list(data)[0] == "type"
    # Every value JSON-serialisable.
    json.dumps(data)


def test_every_event_type_has_unique_etype():
    etypes = [cls.etype for cls in EVENT_TYPES]
    assert len(etypes) == len(set(etypes))


def test_format_event_renders_pc_in_hex():
    line = format_event(IssueEvent(cycle=4, seq=9, pc=0x1234, op="MUL"))
    assert "0x1234" in line and "issue" in line and "MUL" in line


# ---------------------------------------------------------------------------
# Bus semantics
# ---------------------------------------------------------------------------
def test_bus_disabled_without_sinks_and_toggles_with_attach():
    obs = Observability()
    assert not obs.enabled and obs.sinks == []
    ring = obs.attach(RingBufferSink(8))
    assert obs.enabled
    obs.detach(ring)
    assert not obs.enabled


def test_counter_helpers_work_without_sinks():
    obs = Observability()
    obs.cond_branch(mispredicted=True)
    obs.cond_branch(mispredicted=False)
    obs.reconverge(0, 0x2000, 1, "software", 42)
    assert obs.stats.cond_branches == 2
    assert obs.stats.cond_mispredicts == 1
    assert obs.stats.reconv_software == 1
    assert obs.stats.stream_distance_hist == {1: 1}


def test_ring_buffer_is_bounded_and_keeps_newest():
    ring = RingBufferSink(capacity=4)
    obs = Observability(sinks=[ring])
    for seq in range(10):
        obs.emit(IssueEvent(cycle=seq, seq=seq, pc=0x1000, op="ADD"))
    events = ring.snapshot()
    assert len(events) == 4
    assert [e.seq for e in events] == [6, 7, 8, 9]
    assert len(ring.format_lines()) == 4


def test_callback_sink_sees_emission_order():
    seen = []
    obs = Observability(sinks=[CallbackSink(seen.append)])
    first = IssueEvent(0, 0, 0x1000, "ADD")
    second = IssueEvent(1, 1, 0x1004, "SUB")
    obs.emit(first)
    obs.emit(second)
    assert seen == [first, second]


# ---------------------------------------------------------------------------
# Tracing never changes the simulation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config_fn", [
    baseline_config,
    lambda: mssr_config(num_streams=4),
    lambda: ri_config(num_sets=64, assoc=2),
], ids=["baseline", "mssr", "ri"])
def test_stats_identical_with_and_without_sinks(config_fn):
    prog = _program()
    plain = _run(prog, config_fn())
    traced = _run(prog, config_fn(),
                  sinks=[RingBufferSink(64), JsonlTraceSink(io.StringIO())])
    assert plain.stats.as_dict() == traced.stats.as_dict()
    assert plain.regs == traced.regs


@pytest.mark.parametrize("config_fn", [
    baseline_config,
    lambda: mssr_config(num_streams=4),
    lambda: ri_config(num_sets=64, assoc=2),
], ids=["baseline", "mssr", "ri"])
def test_metrics_sink_agrees_with_live_counters(config_fn):
    metrics = MetricsSink()
    result = _run(_program(), config_fn(), sinks=[metrics])
    assert metrics.verify(result.stats) == []
    assert metrics.stats.committed_insts == result.stats.committed_insts


# ---------------------------------------------------------------------------
# Trace exports
# ---------------------------------------------------------------------------
def test_jsonl_trace_is_wellformed():
    buffer = io.StringIO()
    sink = JsonlTraceSink(buffer)
    result = _run(_program(), mssr_config(num_streams=4), sinks=[sink])
    lines = buffer.getvalue().splitlines()
    assert lines and len(lines) == sink.count
    commits = 0
    for line in lines:
        data = json.loads(line)
        assert "type" in data and "cycle" in data
        commits += data["type"] == "commit"
    assert commits == result.stats.committed_insts


def test_konata_export_format():
    buffer = io.StringIO()
    _run(_program("linear-mispred"), baseline_config(),
         sinks=[KonataSink(buffer)])
    lines = buffer.getvalue().splitlines()
    assert lines[0] == "Kanata\t0004"
    assert lines[1].startswith("C=\t")
    kinds = {line.split("\t", 1)[0] for line in lines[1:]}
    assert {"I", "L", "S", "E", "R", "C"} <= kinds
    retire_flags = [line.split("\t")[3] for line in lines
                    if line.startswith("R\t")]
    assert "0" in retire_flags     # retired instructions
    assert "1" in retire_flags     # flushed (squashed) instructions


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------
def test_cli_trace_subcommand(tmp_path):
    from repro.harness.cli import main as cli_main
    trace = tmp_path / "t.jsonl"
    konata = tmp_path / "t.kanata"
    out = io.StringIO()
    rc = cli_main(["trace", "--workload", "linear-mispred", "--scale",
                   str(_SCALE), "--out", str(trace),
                   "--konata", str(konata), "--lockstep"], out=out)
    assert rc == 0
    assert "lockstep OK" in out.getvalue()
    lines = trace.read_text().splitlines()
    assert lines
    for line in lines[:50]:
        assert "type" in json.loads(line)
    assert konata.read_text().startswith("Kanata\t0004")


def test_repro_trace_env_attaches_jsonl_sink(tmp_path, monkeypatch):
    from repro.harness.jobs import SimJob, execute, trace_path_for
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
    job = SimJob("linear-mispred", "baseline", _SCALE)
    stats = execute(job)
    path = trace_path_for(job, str(tmp_path))
    lines = open(path).read().splitlines()
    assert lines
    commits = sum(json.loads(line)["type"] == "commit" for line in lines)
    assert commits == stats.committed_insts
