"""Lockstep differential checker: divergence localisation.

The headline requirement: a seeded fault in the core must be reported
at the *exact first divergent commit* (pc, field, expected vs actual
value) together with the ring-buffer event history — not as an opaque
final-state mismatch.
"""

import pytest

from repro.emu import Emulator
from repro.isa import Assembler, Op
from repro.isa.instruction import INST_BYTES
from repro.obs import Observability, RingBufferSink, run_lockstep
from repro.pipeline import O3Core, baseline_config, mssr_config
from repro.pipeline.core import SimulationError
from repro.pipeline.stages import WritebackStage
from repro.utils.bits import wrap64
from repro.workloads import get_workload

_SCALE = 0.08


def _straightline_program():
    """Branch-free program whose every register value is predictable."""
    asm = Assembler()
    asm.li("t0", 7)
    asm.li("t1", 5)
    asm.rr(Op.ADD, "t2", "t0", "t1")
    asm.rr(Op.XOR, "t3", "t2", "t1")
    asm.rr(Op.SUB, "t4", "t3", "t0")
    asm.halt()
    return asm.finish()


def _find_pc(prog, op):
    pc = prog.entry
    while prog.has_pc(pc):
        if prog.inst_at(pc).op is op:
            return pc
        pc += INST_BYTES
    raise AssertionError("op %s not found" % op)


class _FaultyWriteback(WritebackStage):
    """Writeback stage that corrupts the result at one static PC."""

    fault_pc = None

    def _writeback_inst(self, dyn):
        if dyn.pc == self.fault_pc and not dyn.verify_load:
            dyn.result = wrap64(dyn.result + 1)
        super()._writeback_inst(dyn)


class _FaultyCore(O3Core):
    """O3 core with the fault-injecting writeback stage swapped in."""

    fault_pc = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        faulty = _FaultyWriteback(self.state)
        type(faulty).fault_pc = self.fault_pc
        self.writeback_stage = faulty
        self._stages = tuple(
            faulty if isinstance(s, WritebackStage) else s
            for s in self._stages)


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------
def test_lockstep_clean_microbench_baseline():
    _mod, prog = get_workload("nested-mispred").build(_SCALE)
    outcome = run_lockstep(prog, baseline_config())
    assert outcome.ok and outcome.divergence is None
    assert outcome.commits == outcome.result.stats.committed_insts
    assert outcome.commits > 0


def test_lockstep_clean_microbench_mssr():
    _mod, prog = get_workload("nested-mispred").build(_SCALE)
    outcome = run_lockstep(prog, mssr_config(num_streams=4))
    assert outcome.ok
    # Reuse actually happened, and every reused commit still matched.
    assert outcome.result.stats.reuse_successes > 0


# ---------------------------------------------------------------------------
# Fault localisation
# ---------------------------------------------------------------------------
def test_lockstep_localises_seeded_writeback_fault():
    prog = _straightline_program()
    fault_pc = _find_pc(prog, Op.ADD)

    # Golden model: commit index of the faulted instruction and the
    # value it should have produced.
    emu = Emulator(prog)
    expected_index = 0
    while emu.pc != fault_pc:
        emu.step()
        expected_index += 1
    inst = prog.inst_at(fault_pc)
    emu.step()
    expected_value = emu.regs[inst.dest]

    class _Core(_FaultyCore):
        pass
    _Core.fault_pc = fault_pc

    outcome = run_lockstep(prog, baseline_config(), core_factory=_Core,
                           ring_capacity=64)
    assert not outcome.ok and outcome.result is None
    report = outcome.divergence
    assert report.field == "reg-value"
    assert report.commit_index == expected_index
    assert report.pc == fault_pc
    assert report.expected == expected_value
    assert report.actual == wrap64(expected_value + 1)
    # The ring-buffer history around the divergence is part of the
    # report, and it shows the faulty instruction's own pipeline events.
    assert report.events
    text = "\n".join(report.events)
    assert "writeback" in text and "commit" in text
    assert "%#x" % fault_pc in text
    assert "reg-value" in report.format()


def test_lockstep_divergence_on_wrong_store_data():
    asm = Assembler()
    buf = asm.reserve("buf", 8)
    asm.li("s0", buf)
    asm.li("t0", 11)
    asm.rr(Op.ADD, "t1", "t0", "t0")
    asm.sd("t1", "s0", 0)
    asm.halt()
    prog = asm.finish()
    fault_pc = _find_pc(prog, Op.ADD)

    class _Core(_FaultyCore):
        pass
    _Core.fault_pc = fault_pc

    outcome = run_lockstep(prog, baseline_config(), core_factory=_Core)
    assert not outcome.ok
    # The corrupted ADD is caught at its own commit, before the store
    # ever retires with wrong data.
    assert outcome.divergence.field == "reg-value"
    assert outcome.divergence.pc == fault_pc


# ---------------------------------------------------------------------------
# Post-mortem dumps
# ---------------------------------------------------------------------------
def test_simulation_error_carries_ring_buffer_dump():
    _mod, prog = get_workload("nested-mispred").build(_SCALE)
    obs = Observability(sinks=[RingBufferSink(32)])
    core = O3Core(prog, baseline_config(), obs=obs)
    with pytest.raises(SimulationError) as excinfo:
        core.run(max_cycles=40)
    dump = excinfo.value.event_dump
    assert dump and len(dump) <= 32
    assert any("fetch" in line for line in dump)


def test_simulation_error_dump_empty_without_ring():
    _mod, prog = get_workload("nested-mispred").build(_SCALE)
    core = O3Core(prog, baseline_config())
    with pytest.raises(SimulationError) as excinfo:
        core.run(max_cycles=40)
    assert excinfo.value.event_dump == ()
