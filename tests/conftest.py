"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.isa import Assembler
from repro.emu import Emulator
from repro.pipeline import O3Core, baseline_config
from repro.utils.bits import to_signed


def run_both(program, config=None, max_cycles=2_000_000):
    """Run ``program`` on the emulator and the O3 core; assert the final
    architectural state matches; returns (emu_result, core_result)."""
    emu = Emulator(program).run()
    core = O3Core(program, config or baseline_config())
    result = core.run(max_cycles=max_cycles)
    assert result.regs == emu.regs, "architectural registers diverged"
    assert result.memory == emu.memory, "memory diverged"
    return emu, result


def signed_reg(result, name):
    return to_signed(result.reg(name))


@pytest.fixture
def asm():
    return Assembler()
