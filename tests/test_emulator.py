"""Functional emulator behaviour."""

import pytest

from repro.isa import Assembler, assemble_text
from repro.isa.program import STACK_TOP
from repro.emu import Emulator, EmulationError
from repro.utils.bits import to_signed, to_unsigned


def test_initial_state():
    prog = assemble_text("halt")
    emu = Emulator(prog)
    assert emu.regs[2] == STACK_TOP  # sp
    assert emu.pc == prog.entry


def test_x0_stays_zero():
    prog = assemble_text("""
        li x0, 42
        addi t0, x0, 1
        halt
    """)
    result = Emulator(prog).run()
    assert result.regs[0] == 0
    assert result.reg("t0") == 1


def test_branches_and_jumps():
    prog = assemble_text("""
        li t0, 0
        li t1, 5
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        jal ra, sub
        halt
    sub:
        addi t2, t0, 10
        ret
    """)
    result = Emulator(prog).run()
    assert result.reg("t0") == 5
    assert result.reg("t2") == 15


def test_lw_sign_extends():
    asm = Assembler()
    slot = asm.word("slot")
    asm.li("t0", 0xFFFFFFFF)
    asm.li("t1", slot)
    asm.sw("t0", "t1", 0)
    asm.lw("t2", "t1", 0)
    asm.lbu("t3", "t1", 0)
    asm.halt()
    result = Emulator(asm.finish()).run()
    assert to_signed(result.reg("t2")) == -1
    assert result.reg("t3") == 0xFF


def test_wrapping_arithmetic():
    prog = assemble_text("""
        li t0, -1
        addi t0, t0, 2
        li t1, 0x7FFFFFFFFFFFFFFF
        addi t1, t1, 1
        halt
    """)
    result = Emulator(prog).run()
    assert result.reg("t0") == 1
    assert result.reg("t1") == to_unsigned(-(1 << 63))


def test_run_off_program_raises():
    prog = assemble_text("nop")  # no halt
    with pytest.raises(EmulationError):
        Emulator(prog).run()


def test_instruction_budget():
    prog = assemble_text("""
    loop:
        j loop
    """)
    with pytest.raises(EmulationError):
        Emulator(prog).run(max_insts=100)


def test_step_after_halt_raises():
    prog = assemble_text("halt")
    emu = Emulator(prog)
    emu.step()
    with pytest.raises(EmulationError):
        emu.step()


def test_run_trace_records_branches():
    prog = assemble_text("""
        li t0, 2
    loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    """)
    _result, trace = Emulator(prog).run_trace()
    branches = [(taken) for _pc, taken, _target in trace]
    assert branches == [True, False]


def test_jalr_target_clears_low_bit():
    asm = Assembler()
    asm.li("t0", 0)
    asm.j("start")
    asm.label("func")
    asm.li("t0", 7)
    asm.ret()
    asm.label("start")
    # target = func address | 1 (low bit must be cleared by jalr)
    asm.li("t2", asm.resolve("func") | 1)
    asm.jalr("ra", "t2", 0)
    asm.halt()
    result = Emulator(asm.finish()).run()
    assert result.reg("t0") == 7
