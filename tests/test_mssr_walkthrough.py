"""The paper's Figure 5 walkthrough, end to end.

An if-then-else with a hard-to-predict branch: the taken path (I5, I6)
computes a2; the reconvergent region I7-I9 updates a1 twice and a2 once.
After the branch mispredicts and the corrected path (I2-I4) re-derives
a2, the refetched I7 and I8 (sources: a1, untouched by either arm) must
be *reused*, while I9 (source: a2, rewritten on the corrected path) must
fail its RGID test and re-execute — exactly the paper's steps 8/9/10.
"""

from repro.isa import Assembler
from repro.pipeline import O3Core, mssr_config
from repro.emu import Emulator


def _program(t0_value):
    asm = Assembler()
    # Delay t0 so I1 resolves late (guaranteeing deep wrong-path fetch).
    asm.li("t1", t0_value)
    for _ in range(6):
        asm.mul("t1", "t1", "t1")
    asm.snez("t0", "t1")       # t0 = (t0_value != 0)
    asm.label("I1")
    asm.beqz("t0", "I5")
    asm.label("I2")
    asm.srli("a2", "a2", 1)
    asm.label("I3")
    asm.addi("a2", "a2", 1)
    asm.label("I4")
    asm.j("I7")
    asm.label("I5")
    asm.srli("a2", "a2", 2)
    asm.label("I6")
    asm.addi("a2", "a2", -1)
    asm.label("I7")
    asm.addi("a1", "a1", 1)
    asm.label("I8")
    asm.srli("a1", "a1", 1)
    asm.label("I9")
    asm.srli("a2", "a2", 1)
    asm.halt()
    return asm.finish()


def _run(t0_value, warm_branch_taken):
    prog = _program(t0_value)
    core = O3Core(prog, mssr_config(num_streams=4))
    # Bias the predictor so I1 is predicted the *wrong* way.
    branch_pc = prog.label_pc("I1")
    for _ in range(8):
        taken, meta = core.predictor.predict(branch_pc)
        core.predictor.update(branch_pc, warm_branch_taken, meta)
        core.predictor.restore_history(0)
    result = core.run()
    return prog, core, result


def test_reuse_of_a1_chain_and_reexecution_of_a2():
    # t0 != 0 -> branch NOT taken -> correct path I2,I3,I4,I7...
    # Warm the predictor toward taken so the wrong path I5.. executes.
    prog, core, result = _run(t0_value=3, warm_branch_taken=True)
    stats = result.stats

    # The branch really mispredicted and the corrected path reconverged
    # with the squashed stream.
    assert stats.cond_mispredicts >= 1
    assert stats.reconvergences >= 1
    # I7 and I8 (the a1 chain) are the only reusable instructions: their
    # source a1 has RGID 0 on both paths (steps 8 and 9).
    assert stats.reuse_successes == 2
    # I9's reuse test ran and failed (step 10: a2's RGID differs).
    assert stats.reuse_tests >= 3

    # Architectural result identical to the functional model.
    emu = Emulator(prog).run()
    assert result.regs == emu.regs


def test_no_reuse_when_prediction_correct():
    prog, core, result = _run(t0_value=3, warm_branch_taken=False)
    assert result.stats.cond_mispredicts == 0
    assert result.stats.reuse_successes == 0
    emu = Emulator(prog).run()
    assert result.regs == emu.regs


def test_taken_direction_also_reuses():
    # t0 == 0 -> branch taken -> wrong path is the fall-through I2..
    prog, core, result = _run(t0_value=0, warm_branch_taken=False)
    assert result.stats.cond_mispredicts >= 1
    assert result.stats.reuse_successes == 2
    emu = Emulator(prog).run()
    assert result.regs == emu.regs
