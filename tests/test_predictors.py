"""Branch predictors: learning behaviour and history recovery."""

from repro.frontend import (
    BimodalPredictor, GSharePredictor, TagePredictor, TageSCL,
    LoopPredictor, StatisticalCorrector, build_predictor,
)


def _train(pred, pc, outcomes, repeats=1):
    """Feed a repeating outcome pattern; returns accuracy of last pass."""
    correct = 0
    total = 0
    for r in range(repeats):
        for outcome in outcomes:
            taken, meta = pred.predict(pc)
            if r == repeats - 1:
                total += 1
                correct += (taken == outcome)
            if taken != outcome:
                pred.recover(outcome, meta)
            pred.update(pc, outcome, meta)
    return correct / total if total else 0.0


def test_bimodal_learns_bias():
    pred = BimodalPredictor(num_entries=64)
    acc = _train(pred, 0x1000, [True] * 50, repeats=2)
    assert acc == 1.0
    acc = _train(pred, 0x2000, [False] * 50, repeats=2)
    assert acc == 1.0


def test_bimodal_cannot_learn_alternation():
    pred = BimodalPredictor(num_entries=64)
    acc = _train(pred, 0x1000, [True, False] * 40, repeats=3)
    assert acc < 0.8


def test_gshare_learns_alternation():
    pred = GSharePredictor(num_entries=1024, history_bits=8)
    acc = _train(pred, 0x1000, [True, False] * 40, repeats=6)
    assert acc > 0.9


def test_tage_learns_long_pattern():
    pred = TagePredictor(num_tables=5, base_entries=512, table_entries=256,
                         min_history=2, max_history=32)
    pattern = [True, True, False, True, False, False, True, False]
    acc = _train(pred, 0x1000, pattern * 10, repeats=8)
    assert acc > 0.9


def test_tage_scl_learns_pattern():
    pred = TageSCL()
    pattern = [True, False, False, True]
    acc = _train(pred, 0x4000, pattern * 10, repeats=8)
    assert acc > 0.9


def test_history_recovery_restores_state():
    pred = GSharePredictor()
    pred.predict(0x10)
    snap = pred.snapshot_history()
    _taken, meta = pred.predict(0x20)
    assert pred.history != snap
    pred.recover(True, meta)
    # History = pre-prediction history of 0x20 plus the actual outcome.
    assert pred.history == ((meta.history << 1) | 1)


def test_loop_predictor_predicts_exit():
    loop = LoopPredictor(num_entries=16)
    pc = 0x100
    # Train: loop runs exactly 5 iterations (4 taken + 1 not-taken).
    for _ in range(6):
        for taken in [True] * 4 + [False]:
            loop.update(pc, taken)
    hits = []
    for taken in [True] * 4 + [False]:
        valid, pred_taken = loop.predict(pc)
        hits.append(valid and pred_taken == taken)
        loop.update(pc, taken)
    assert all(hits), hits


def test_loop_predictor_loses_confidence_on_trip_change():
    loop = LoopPredictor(num_entries=16)
    pc = 0x100
    for _ in range(6):
        for taken in [True] * 3 + [False]:
            loop.update(pc, taken)
    for taken in [True] * 9 + [False]:   # trip changes
        loop.update(pc, taken)
    valid, _taken = loop.predict(pc)
    assert not valid


def test_statistical_corrector_trains():
    sc = StatisticalCorrector()
    pc, history = 0x300, 0b1011
    # TAGE keeps saying taken but the outcome is not-taken: SC learns to
    # flip it.
    for _ in range(40):
        _use, _taken, total = sc.predict(pc, history, True)
        sc.update(pc, history, True, False, total)
    use, taken, _total = sc.predict(pc, history, True)
    assert use and taken is False


def test_build_predictor_factory():
    assert build_predictor("bimodal").name == "bimodal"
    assert build_predictor("gshare").name == "gshare"
    assert build_predictor("tage").name == "tage"
    assert build_predictor("tage-scl").name == "tage-scl"
    try:
        build_predictor("nope")
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_loop_predictor_unwind_restores_spec_count():
    loop = LoopPredictor(num_entries=16)
    pc = 0x100
    for _ in range(6):
        for taken in [True] * 4 + [False]:
            loop.update(pc, taken)
    entry = loop._entry(pc)
    base = entry.spec_count
    _valid, _taken, ckpt1 = loop.predict_spec(pc)
    _valid, _taken, ckpt2 = loop.predict_spec(pc)
    assert entry.spec_count == base + 2
    # Unwind youngest first: back to the pre-speculation count.
    loop.unwind(ckpt2)
    loop.unwind(ckpt1)
    assert entry.spec_count == base
    # A reallocated entry (tag mismatch) is left alone.
    entry.tag = 0xDEAD
    loop.unwind(ckpt1)
    assert entry.spec_count == base


def test_tage_scl_unwind_repairs_loop_speculation():
    pred = TageSCL()
    pc = 0x200
    for _ in range(8):
        for taken in [True] * 4 + [False]:
            _t, meta = pred.predict(pc)
            pred.recover(taken, meta) if _t != taken else None
            pred.update(pc, taken, meta)
    entry = pred.loop._entry(pc)
    assert entry is not None and entry.confidence >= pred.loop.CONFIDENT
    base = entry.spec_count
    metas = []
    for _ in range(3):
        _taken, meta = pred.predict(pc)
        metas.append(meta)
    # Squash all three speculative iterations, youngest first.
    for meta in reversed(metas):
        pred.unwind(meta)
    assert entry.spec_count == base


def test_tage_scl_withloop_benches_losing_loop_predictor():
    pred = TageSCL()
    pred.withloop = 0
    pc = 0x300
    # Fabricate a confident loop entry that is *wrong* (trip=3 while the
    # real behaviour is always-taken): withloop must go negative and the
    # loop override stop applying.
    idx = (pc >> 2) % pred.loop.num_entries
    entry = pred.loop.entries[idx]
    entry.tag = pc
    entry.trip = 3
    entry.confidence = 7
    saw_override = False
    for i in range(200):
        taken, meta = pred.predict(pc)
        loop_valid = meta.extra[4]
        if loop_valid and pred.withloop >= 0 and not taken:
            saw_override = True
        if taken is not True:
            pred.recover(True, meta)
        pred.update(pc, True, meta)
        entry.confidence = 7          # keep the bad entry "confident"
        entry.trip = 3
    assert saw_override               # it did try the loop override...
    assert pred.withloop < 0          # ...and got benched for losing


def test_statistical_corrector_vetoes_weak_tage_sooner():
    sc = StatisticalCorrector(threshold=6)
    pc, history = 0x400, 0b0110
    # Build a moderate anti-TAGE sum: strong enough to override a weak
    # provider, not a confident one.
    for _ in range(4):
        _u, _t, total = sc.predict(pc, history, True)
        sc.update(pc, history, True, False, total)
    use_strong, _t, total = sc.predict(pc, history, True, tage_weak=False)
    use_weak, taken, _tot = sc.predict(pc, history, True, tage_weak=True)
    assert abs(total) < sc.threshold          # below the confident bar
    assert not use_strong
    assert use_weak and taken is False


def test_tage_meta_carries_provider_confidence():
    pred = TagePredictor(num_tables=4, base_entries=256, table_entries=128)
    _taken, extra = pred._lookup(0x500)
    assert len(extra) == 5
    provider_ctr = extra[4]
    assert 0 <= provider_ctr <= 7
