"""MSSR controller internals, unit-tested against a stub core.

The integration tests exercise the controller through the full pipeline;
these tests pin down the finer policies in isolation: stream
classification, lockstep annotation/divergence, reuse-test outcomes,
pressure release ordering and the reset suspension window.
"""

from repro.isa import Op, Instruction
from repro.isa.instruction import INST_BYTES
from repro.frontend.fetch import PredictionBlock
from repro.mssr.controller import MSSRController
from repro.obs import Observability
from repro.pipeline.config import MSSRConfig
from repro.pipeline.dyninst import DynInst


class _StubRat:
    def __init__(self):
        self.overflow_events = 0
        self.resets = 0

    def reset_rgids(self):
        self.resets += 1


class _StubConfig:
    rob_entries = 256


class _StubCore:
    """Just enough of O3Core for the controller."""

    def __init__(self):
        self.obs = Observability()
        self.stats = self.obs.stats
        self.rat = _StubRat()
        self.config = _StubConfig()
        self.freed = []

    def free_reserved_preg(self, preg):
        self.freed.append(preg)


def _controller(**kwargs):
    controller = MSSRController(MSSRConfig(**kwargs))
    core = _StubCore()
    controller.attach(core)
    return controller, core


_SEQ = [0]


def _renamed(pc, dest_rgid=None, src_rgids=(), executed=True, preg=None):
    inst = Instruction(Op.ADDI, dest=5, srcs=(6,), imm=0, pc=pc)
    dyn = DynInst(_SEQ[0], pc, inst, block_id=0, fetch_cycle=0)
    _SEQ[0] += 1
    dyn.renamed = True
    dyn.executed = executed
    dyn.src_rgids = src_rgids or (11,)
    dyn.dest_rgid = dest_rgid if dest_rgid is not None else _SEQ[0] + 100
    dyn.dest_preg = preg if preg is not None else 60 + _SEQ[0]
    return dyn


def _trigger(seq):
    inst = Instruction(Op.BEQ, srcs=(1, 2), imm=0x400, pc=0x50)
    dyn = DynInst(seq, 0x50, inst, block_id=0, fetch_cycle=0)
    return dyn


def _block(block_id, start_pc, num_insts, op=Op.ADDI):
    block = PredictionBlock(block_id, start_pc)
    for i in range(num_insts):
        pc = start_pc + i * INST_BYTES
        inst = Instruction(op, dest=5, srcs=(6,), imm=0, pc=pc)
        dyn = DynInst(_SEQ[0], pc, inst, block_id, fetch_cycle=0)
        _SEQ[0] += 1
        block.insts.append(dyn)
        block.end_pc = pc
    block.pred_next_pc = block.end_pc + INST_BYTES
    return block


def _squash(controller, pcs, trigger_seq=0):
    """Create one squashed stream from the given pcs."""
    renamed = [_renamed(pc) for pc in pcs]
    blocks = [_block(99, pcs[0], len(pcs))]
    trigger = _trigger(trigger_seq)
    controller.on_branch_squash(trigger, renamed, blocks)
    for dyn in renamed:
        controller.wants_preg(dyn)
    return renamed


def test_squash_populates_wpb_and_log():
    controller, _core = _controller()
    pcs = [0x100 + 4 * i for i in range(6)]
    _squash(controller, pcs)
    assert controller.wpb.valid_count() == 1
    assert controller.log.streams[0].valid
    assert len(controller.log.streams[0].entries) == 6
    assert all(e.reserved for e in controller.log.streams[0].entries)


def test_fetch_block_triggers_lockstep_annotation():
    controller, core = _controller()
    pcs = [0x100 + 4 * i for i in range(8)]
    _squash(controller, pcs)
    block = _block(200, 0x110, 4)      # overlaps at pcs[4]
    controller.on_fetch_block(block)
    assert core.stats.reconvergences == 1
    assert block.insts[0].reuse_candidate is not None
    stream_idx, entry_idx, _gen = block.insts[0].reuse_candidate
    assert entry_idx == 4              # offset from the stream start


def test_divergence_ends_lockstep_and_releases_stream():
    controller, core = _controller()
    pcs = [0x100 + 4 * i for i in range(8)]
    _squash(controller, pcs)
    controller.on_fetch_block(_block(200, 0x100, 4))  # reconverge at 0
    assert controller._lockstep is not None
    # Next block diverges (wrong PC).
    controller.on_fetch_block(_block(201, 0x900, 2))
    assert controller._lockstep is None
    # Condition 4: the stream's registers were all released.
    assert len(core.freed) == 8
    assert not controller.wpb.streams[0].valid


def test_classification_simple_software_hardware():
    controller, core = _controller()
    # Stream created by trigger seq 50; current trigger also 50 = simple.
    _squash(controller, [0x100, 0x104], trigger_seq=50)
    controller._last_trigger_seq = 50
    controller.on_fetch_block(_block(300, 0x100, 2))
    assert core.stats.reconv_simple == 1

    controller2, core2 = _controller()
    _squash(controller2, [0x100, 0x104], trigger_seq=10)  # elder branch
    controller2._last_trigger_seq = 99
    controller2.on_fetch_block(_block(300, 0x100, 2))
    assert core2.stats.reconv_software == 1

    controller3, core3 = _controller()
    _squash(controller3, [0x100, 0x104], trigger_seq=99)  # younger branch
    controller3._last_trigger_seq = 10
    controller3.on_fetch_block(_block(300, 0x100, 2))
    assert core3.stats.reconv_hardware == 1


def test_reuse_test_rgid_match_and_mismatch():
    controller, core = _controller()
    renamed = _squash(controller, [0x100, 0x104])
    controller.on_fetch_block(_block(400, 0x100, 2))

    # Matching RGIDs -> reuse; entry consumed.
    candidate = _renamed(0x100, src_rgids=renamed[0].src_rgids)
    candidate.reuse_candidate = (0, 0, controller.log.streams[0].generation)
    result = controller.try_reuse(candidate)
    assert result is not None
    assert result.preg == renamed[0].dest_preg
    assert result.rgid == renamed[0].dest_rgid
    assert controller.log.streams[0].entries[0].consumed

    # Mismatching RGIDs -> fail; register released (condition 3).
    candidate2 = _renamed(0x104, src_rgids=(12345,))
    candidate2.reuse_candidate = (0, 1,
                                  controller.log.streams[0].generation)
    assert controller.try_reuse(candidate2) is None
    assert renamed[1].dest_preg in core.freed


def test_stale_generation_rejected():
    controller, _core = _controller()
    renamed = _squash(controller, [0x100])
    gen = controller.log.streams[0].generation
    controller.invalidate_all()
    candidate = _renamed(0x100, src_rgids=renamed[0].src_rgids)
    candidate.reuse_candidate = (0, 0, gen)
    assert controller.try_reuse(candidate) is None


def test_emergency_release_frees_oldest_stream():
    controller, core = _controller(num_streams=2)
    first = _squash(controller, [0x100, 0x104], trigger_seq=1)
    second = _squash(controller, [0x300, 0x304], trigger_seq=2)
    assert controller.emergency_release()
    # The least recent allocation (first) was sacrificed.
    assert {d.dest_preg for d in first} <= set(core.freed)
    assert all(d.dest_preg not in core.freed for d in second)
    assert core.stats.squash_log_pressure_frees == 1


def test_emergency_release_with_nothing_held():
    controller, _core = _controller()
    assert not controller.emergency_release()


def test_overflow_triggers_reset_and_suspension():
    controller, core = _controller()
    core.rat.overflow_events = 99
    controller.on_cycle(1)
    assert core.rat.resets == 1
    assert core.stats.rgid_resets == 1
    # New streams refused until a ROB's worth of commits.
    _squash(controller, [0x100, 0x104])
    assert not controller.wpb.any_valid()
    core.stats.committed_insts += core.config.rob_entries
    _squash(controller, [0x100, 0x104])
    assert controller.wpb.any_valid()


def test_replay_squash_only_ends_lockstep():
    controller, _core = _controller()
    _squash(controller, [0x100 + 4 * i for i in range(4)])
    controller.on_fetch_block(_block(500, 0x100, 2))
    assert controller._lockstep is not None
    controller.on_replay_squash(_trigger(123))
    assert controller._lockstep is None
    # Stream itself survives a replay (it wasn't the diverging path).
    assert controller.wpb.any_valid()
