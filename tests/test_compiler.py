"""Compiler feature coverage + native-oracle equivalence (hypothesis).

Every kernel here is compiled to the ISA, emulated, and compared against
its own native-Python execution under wrapping 64-bit semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import Module, array_ref, CompileError, hash64, \
    min64, max64
from repro.compiler.runtime import I64, native_call
from repro.emu import Emulator
from repro.utils.bits import to_signed

# Kernels must be module-level so inspect.getsource works.


def k_arith(a, b):
    return (a + b) * 3 - (a - b) // 5 + (a % 7) * (b & 15)


def k_bitops(a, b):
    x = (a << 3) ^ (b >> 2)
    y = ~a & b | 0x0F0F
    return x + y + (-a)


def k_control(n):
    total = 0
    i = 0
    while i < n:
        if i % 3 == 0:
            total += i
        elif i % 3 == 1:
            total -= 1
        else:
            total = total * 2 - 3
        i += 1
    return total


def k_for_loops(n):
    total = 0
    for i in range(n):
        total += i
    for i in range(2, n, 3):
        total += i * 2
    for i in range(n, 0, -1):
        total -= 1
    for i in range(n - 1, -1, -1):
        total += i & 1
    return total


def k_break_continue(n):
    total = 0
    for i in range(n):
        if i == 7:
            continue
        if i > 12:
            break
        total += i
    return total


def k_boolops(a, b):
    count = 0
    if a > 0 and b > 0:
        count += 1
    if a > 0 or b > 10:
        count += 2
    if not (a == b):
        count += 4
    flag = (a > 1 and b > 1) or a == 0
    return count * 10 + flag


def k_compare_values(a, b):
    return ((a < b) + (a > b) * 2 + (a <= b) * 4 + (a >= b) * 8
            + (a == b) * 16 + (a != b) * 32)


def k_arrays(arr, n):
    for i in range(n):
        arr[i] = i * i
    arr[0] += 5
    total = 0
    for i in range(n):
        total += arr[i]
    arr[n - 1] = arr[0] + arr[1]
    return total


def k_helper(x):
    return x * 2 + 1


def k_calls(a, b):
    return k_helper(a) + k_helper(k_helper(b)) + k_helper(a + b)


def k_fib(n):
    if n < 2:
        return n
    return k_fib(n - 1) + k_fib(n - 2)


def k_recursion(n):
    return k_fib(n)


def k_intrinsics(a, b):
    return (hash64(a) & 255) + min64(a, b) * 3 + max64(a, b)


def k_while_true(n):
    i = 0
    while True:
        i += 1
        if i >= n:
            break
    return i


def _check(module_funcs, main, args, arrays=None):
    mod = Module()
    for func in module_funcs:
        mod.add_function(func)
    array_lengths = {}
    build_args = []
    for arg in args:
        build_args.append(arg)
    if arrays:
        for name, values in arrays.items():
            mod.array(name, values)
            array_lengths[name] = (len(values) if not isinstance(values, int)
                                   else values)
    prog = mod.build(main, build_args)
    expected, native_arrays = mod.run_native()
    result = Emulator(prog).run(max_insts=3_000_000)
    got = to_signed(Module.read_result(prog, result.memory))
    assert got == expected, "result mismatch: %d != %d" % (got, expected)
    for name, length in array_lengths.items():
        sim = [to_signed(v) for v in
               Module.read_array(prog, result.memory, name, length)]
        assert sim == native_arrays[name], "array %r mismatch" % name
    return got


def test_arithmetic():
    _check([k_arith], "k_arith", [37, 11])
    _check([k_arith], "k_arith", [-1000, 999])


def test_bitops():
    _check([k_bitops], "k_bitops", [0x1234, 0x00FF])


def test_control_flow():
    _check([k_control], "k_control", [25])


def test_for_loop_variants():
    _check([k_for_loops], "k_for_loops", [13])


def test_break_continue():
    _check([k_break_continue], "k_break_continue", [30])


def test_boolops():
    for args in ([3, 4], [0, 0], [5, 5], [-2, 20]):
        _check([k_boolops], "k_boolops", args)


def test_compare_in_value_context():
    for args in ([1, 2], [2, 1], [3, 3], [-5, 5]):
        _check([k_compare_values], "k_compare_values", args)


def test_arrays():
    _check([k_arrays], "k_arrays", [array_ref("buf"), 10],
           arrays={"buf": [0] * 10})


def test_function_calls():
    _check([k_helper, k_calls], "k_calls", [4, 9])


def test_recursion():
    assert _check([k_fib, k_recursion], "k_recursion", [12]) == 144


def test_intrinsics():
    _check([k_intrinsics], "k_intrinsics", [123, -456])


def test_while_true():
    assert _check([k_while_true], "k_while_true", [9]) == 9


def test_unknown_function_call_rejected():
    def bad(a):
        return unknown_helper(a)  # noqa: F821

    mod = Module()
    mod.add_function(bad)
    with pytest.raises(CompileError):
        mod.build("bad", [1])


def test_unsupported_statement_rejected():
    def bad(a):
        del a
        return 0

    mod = Module()
    mod.add_function(bad)
    with pytest.raises(CompileError):
        mod.build("bad", [1])


def test_float_constant_rejected():
    def bad(a):
        return a * 1.5

    mod = Module()
    mod.add_function(bad)
    with pytest.raises(CompileError):
        mod.build("bad", [1])


def test_nonconstant_range_step_rejected():
    def bad(a):
        total = 0
        for i in range(0, 10, a):
            total += i
        return total

    mod = Module()
    mod.add_function(bad)
    with pytest.raises(CompileError):
        mod.build("bad", [1])


# ---------------------------------------------------------------------------
# Randomised equivalence
# ---------------------------------------------------------------------------
def k_random_mix(a, b, c):
    x = a * 3 + (b ^ c)
    if x & 1:
        x = (x >> 3) + b % (c | 1)
    else:
        x = x - c * 5
    total = 0
    for i in range(x & 15):
        total += (a + i) & (b + i)
        if total > 1 << 40:
            break
    return total + x


@settings(max_examples=25, deadline=None)
@given(st.integers(-(1 << 62), 1 << 62),
       st.integers(-(1 << 62), 1 << 62),
       st.integers(-(1 << 62), 1 << 62))
def test_random_inputs_match_native(a, b, c):
    mod = Module()
    mod.add_function(k_random_mix)
    prog = mod.build("k_random_mix", [a, b, c])
    expected, _ = mod.run_native()
    result = Emulator(prog).run(max_insts=500_000)
    assert to_signed(Module.read_result(prog, result.memory)) == expected


def test_i64_semantics():
    assert I64(1 << 64) == 0
    assert I64(-7) // I64(2) == -3          # truncation, not floor
    assert I64(-7) % I64(2) == -1
    assert I64(-8) >> 1 == -4               # arithmetic shift
    assert I64((1 << 63) - 1) + 1 == -(1 << 63)


def test_native_call_wraps_arrays():
    def writer(arr, n):
        for i in range(n):
            arr[i] = i * 2
        return arr[n - 1]

    result, arrays = native_call(writer, [0, 0, 0], 3)
    assert result == 4
    assert list(arrays[0]) == [0, 2, 4]
