"""Unit tests for the perf benchmark layer (logic, not throughput).

Wall-clock gating lives in ``benchmarks/test_perf_gate.py``; these tests
cover the pure machinery — point specs, report round-trips, the
normalised comparison — plus one tiny real measurement as a smoke test.
"""

import pytest

from repro.perf.bench import (BenchPoint, DEFAULT_MATRIX, QUICK_NAMES,
                              REPORT_VERSION, append_history,
                              build_report, compare_reports, load_report,
                              matrix_from_report, point_metric,
                              run_bench, run_point, select_points,
                              write_report)


def test_bench_point_spec_round_trip():
    for point in DEFAULT_MATRIX:
        clone = BenchPoint.from_spec(point.spec())
        assert clone.spec() == point.spec()
        assert clone.variant == point.variant


def test_bench_point_rejects_unknown_mode():
    with pytest.raises(ValueError):
        BenchPoint("bad", "gpu", "nested-mispred")


def test_bench_point_variant_omitted_when_unset():
    plain = BenchPoint("p", "emu", "nested-mispred")
    assert "variant" not in plain.spec()
    sb = BenchPoint("p-sb", "emu", "nested-mispred",
                    variant="superblock")
    assert sb.spec()["variant"] == "superblock"
    # Specs written before the field existed still load.
    legacy = dict(plain.spec())
    assert BenchPoint.from_spec(legacy).variant is None


def test_default_matrix_covers_new_modes():
    by_name = {p.name: p for p in DEFAULT_MATRIX}
    assert by_name["emu-sb-nested-mispred"].variant == "superblock"
    assert by_name["emu-sb-linear-mispred"].variant == "superblock"
    assert by_name["core-batched-nested-mispred"].mode == "batch"
    assert "emu-sb-nested-mispred" in QUICK_NAMES


def test_select_points_preserves_order_and_raises_on_unknown():
    points = select_points(QUICK_NAMES)
    assert [p.name for p in points] == list(QUICK_NAMES)
    with pytest.raises(KeyError):
        select_points(("no-such-point",))


def _fake_report(calibration=1000.0, scale=1.0):
    points = []
    for point in DEFAULT_MATRIX:
        result = {"point": point.spec(), "seconds": 1.0,
                  "cycles": 5000, "insts": 4000,
                  "kinsts_per_s": 40.0 * scale}
        if point.mode in ("core", "batch"):
            result["kcycles_per_s"] = 50.0 * scale
        points.append(result)
    return {"version": REPORT_VERSION, "commit": "deadbeef",
            "python": "3.12.0", "calibration_kops": calibration,
            "points": points}


def test_point_metric_selects_cycles_for_core():
    report = _fake_report()
    for result in report["points"]:
        if result["point"]["mode"] in ("core", "batch"):
            assert point_metric(result) == result["kcycles_per_s"]
        else:
            assert point_metric(result) == result["kinsts_per_s"]


def test_compare_reports_pass_and_fail():
    base = _fake_report()
    assert compare_reports(_fake_report(scale=1.0), base) == []
    assert compare_reports(_fake_report(scale=0.9), base,
                           threshold=0.15) == []
    failures = compare_reports(_fake_report(scale=0.5), base,
                               threshold=0.15)
    assert len(failures) == len(DEFAULT_MATRIX)
    assert all("normalised throughput" in f for f in failures)


def test_compare_reports_normalises_by_calibration():
    base = _fake_report(calibration=1000.0)
    # Half-speed machine: both metric and calibration halve -> pass.
    assert compare_reports(_fake_report(calibration=500.0, scale=0.5),
                           base) == []
    # Same raw metrics but a 2x faster machine -> normalised regression.
    failures = compare_reports(_fake_report(calibration=2000.0), base)
    assert len(failures) == len(DEFAULT_MATRIX)


def test_compare_reports_ignores_missing_and_bad_calibration():
    base = _fake_report()
    current = _fake_report(scale=0.1)
    current["points"] = current["points"][:1]  # only one point measured
    assert len(compare_reports(current, base, threshold=0.15)) == 1
    broken = _fake_report(calibration=0.0)
    failures = compare_reports(broken, base)
    assert failures and "calibration" in failures[0]


def test_report_round_trip(tmp_path):
    report = _fake_report()
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert load_report(str(path)) == report


def test_load_report_rejects_malformed(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"version": 1}')
    with pytest.raises(ValueError, match="missing"):
        load_report(str(path))


def test_append_history_is_append_only(tmp_path):
    import json

    path = tmp_path / "BENCH_HISTORY.jsonl"
    first = append_history(_fake_report(), str(path))
    append_history(_fake_report(scale=2.0), str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[0] == json.loads(json.dumps(first))
    for record in records:
        assert record["commit"] == "deadbeef"
        assert record["calibration_kops"] == 1000.0
        assert set(record["points"]) == {p.name for p in DEFAULT_MATRIX}
    # The second run's metrics doubled; history keeps both.
    assert records[1]["points"]["emu-nested-mispred"] == \
        2 * records[0]["points"]["emu-nested-mispred"]


def test_run_point_superblock_variant_matches_closure_insts():
    plain = BenchPoint("p", "emu", "nested-mispred", scale=0.02)
    sb = BenchPoint("p-sb", "emu", "nested-mispred", scale=0.02,
                    variant="superblock")
    r_plain = run_point(plain, repeats=1)
    r_sb = run_point(sb, repeats=1)
    # Same program, same retired instruction count — only dispatch
    # differs.
    assert r_sb["insts"] == r_plain["insts"] > 0
    assert r_sb["point"]["variant"] == "superblock"
    assert "kcycles_per_s" not in r_sb


def test_run_point_batch_mode_smoke():
    point = BenchPoint("b", "batch", "nested-mispred", scale=0.02)
    result = run_point(point, repeats=1)
    assert result["cycles"] > 0
    assert result["insts"] > 0
    assert result["kcycles_per_s"] > 0
    assert point_metric(result) == result["kcycles_per_s"]


def test_run_bench_smoke_tiny_point():
    """One real (tiny) measurement end-to-end through run_bench."""
    point = BenchPoint("smoke", "emu", "nested-mispred", scale=0.02)
    lines = []
    results = run_bench((point,), repeats=1, log=lines.append)
    assert len(results) == 1 and len(lines) == 1
    result = results[0]
    assert result["point"]["name"] == "smoke"
    assert result["seconds"] > 0
    assert result["insts"] > 0
    assert result["kinsts_per_s"] > 0
    assert "kcycles_per_s" not in result
    report = build_report(results, calibration=1234.5)
    assert report["calibration_kops"] == 1234.5
    assert report["version"] == REPORT_VERSION
