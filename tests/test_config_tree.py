"""The layered configuration tree: schema, resolution, provenance,
hashing and the env-var registry.

The two load-bearing invariants:

* layer precedence is ``default < file < env < override``, and every
  resolved value can say which layer set it;
* job hashes are environment-independent — the env layer binds only to
  runtime keys (``harness.*`` / ``perf.*``), which never enter the
  canonical model snapshot.
"""

import json

import pytest

from repro.config import envreg
from repro.config.schema import (CONFIG_SCHEMA_VERSION, field, model_keys,
                                 schema, suggestion)
from repro.config.tree import (LAYER_DEFAULT, LAYER_ENV, LAYER_FILE,
                               LAYER_OVERRIDE, job_snapshot,
                               parse_overrides, resolve, snapshot_hash)
from repro.harness.jobs import SimJob


# ---------------------------------------------------------------------------
# Env-var registry
# ---------------------------------------------------------------------------
def test_registry_covers_every_declared_variable():
    report = envreg.environment_report(env={})
    names = [var.name for var, _raw, _parsed in report]
    assert names == sorted(names)
    assert "REPRO_JOBS" in names and "REPRO_CONFIG" in names


def test_envreg_typed_parsing():
    env = {"REPRO_JOBS": "8", "REPRO_BENCH_SCALE": "0.3",
           "REPRO_LOCKSTEP": "yes", "REPRO_FULL": "0"}
    assert envreg.get("REPRO_JOBS", env=env) == 8
    assert envreg.get("REPRO_BENCH_SCALE", env=env) == 0.3
    assert envreg.get("REPRO_LOCKSTEP", env=env) is True
    assert envreg.get("REPRO_FULL", env=env) is False


def test_envreg_unparsable_falls_back_to_default():
    assert envreg.get("REPRO_JOBS", env={"REPRO_JOBS": "many"}) == 1
    assert envreg.get("REPRO_JOBS", env={}) == 1


def test_envreg_undeclared_variable_rejected():
    with pytest.raises(KeyError):
        envreg.get("REPRO_NOT_A_THING", env={})


def test_store_dir_sentinels():
    assert envreg.store_dir("REPRO_CACHE_DIR", env={}) == (True, None)
    assert envreg.store_dir(
        "REPRO_CACHE_DIR", env={"REPRO_CACHE_DIR": "off"}) == (False, None)
    assert envreg.store_dir(
        "REPRO_CACHE_DIR",
        env={"REPRO_CACHE_DIR": "/tmp/c"}) == (True, "/tmp/c")


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------
def test_schema_derived_from_dataclasses():
    from repro.pipeline.config import CoreConfig
    table = schema()
    assert table["core.width"].default == CoreConfig().width
    assert table["mssr.num_streams"].model
    assert not table["harness.jobs"].model
    assert table["harness.jobs"].env == "REPRO_JOBS"


def test_unknown_key_suggests_close_match():
    with pytest.raises(KeyError, match="mssr.num_streams"):
        field("mssr.num_stream")


def test_coerce_parses_strings_and_validates_choices():
    assert field("core.width").coerce("4") == 4
    assert field("mssr.single_page_wpb").coerce("true") is True
    assert field("core.l1_size").coerce("0x10000") == 65536
    with pytest.raises(ValueError, match='did you mean "bloom"'):
        field("mssr.memory_hazard_scheme").coerce("blooom")
    with pytest.raises(ValueError, match="cannot parse 'wide'"):
        field("core.width").coerce("wide")
    with pytest.raises(ValueError, match="integer"):
        field("core.width").coerce(2.5)


def test_model_keys_per_kind():
    baseline = model_keys(kind="baseline")
    mssr = model_keys(kind="mssr")
    # every kind resolves the core + frontend + mem sections, nothing else
    assert all(key.startswith(("core.", "frontend.", "mem."))
               for key in baseline)
    assert "frontend.ftq_depth" in baseline
    assert "mem.model" in baseline
    assert "mssr.num_streams" in mssr
    assert "ri.num_sets" not in mssr
    assert "sampling.interval_insts" in model_keys(kind="mssr",
                                                   sampled=True)
    with pytest.raises(KeyError, match="unknown config kind"):
        model_keys(kind="msr")


def test_suggestion_helper():
    assert "verify" in suggestion("verfy", ("verify", "bloom"))
    assert suggestion("zzz", ("verify", "bloom")) == ""


# ---------------------------------------------------------------------------
# Layer precedence + provenance
# ---------------------------------------------------------------------------
def test_layer_precedence_file_env_override():
    tree = resolve(file={"core": {"width": 4}, "harness": {"jobs": 2}},
                   env={"REPRO_JOBS": "6"},
                   overrides=["core.width=2"])
    # file < env for the runtime key both layers set:
    assert tree["harness.jobs"] == 6
    assert tree.provenance("harness.jobs").layer == LAYER_ENV
    assert tree.provenance("harness.jobs").describe() == "env:REPRO_JOBS"
    # file < override for the model key both layers set:
    assert tree["core.width"] == 2
    assert tree.provenance("core.width").layer == LAYER_OVERRIDE
    # untouched keys stay at their default:
    assert tree.provenance("core.rob_entries").layer == LAYER_DEFAULT


def test_file_layer_provenance_records_source(tmp_path):
    path = tmp_path / "cfg.toml"
    path.write_text("[mssr]\nnum_streams = 2\n")
    tree = resolve(file=str(path), env=False)
    entry = tree.provenance("mssr.num_streams")
    assert entry.value == 2
    assert entry.layer == LAYER_FILE
    assert str(path) in entry.describe()


def test_repro_config_names_the_file_layer(tmp_path):
    path = tmp_path / "cfg.toml"
    path.write_text("[core]\nwidth = 4\n")
    tree = resolve(env={"REPRO_CONFIG": str(path)})
    assert tree["core.width"] == 4
    assert tree.provenance("core.width").layer == LAYER_FILE


def test_unknown_file_key_fails_loudly():
    with pytest.raises(KeyError, match="core.width"):
        resolve(file={"core": {"widht": 4}}, env=False)


def test_env_layer_cannot_set_model_keys():
    """No REPRO_* variable binds to a model key, by construction."""
    for key, spec in schema().items():
        if spec.model:
            assert spec.env is None, key


def test_parse_overrides_forms():
    assert parse_overrides(["core.width=4"]) == {"core.width": 4}
    assert parse_overrides({"core.width": 4}) == {"core.width": 4}
    with pytest.raises(ValueError, match="key=value"):
        parse_overrides(["core.width"])


# ---------------------------------------------------------------------------
# Round-trip: resolved tree -> file -> resolved tree, same hash
# ---------------------------------------------------------------------------
def test_canonical_snapshot_round_trips_through_a_file(tmp_path):
    tree = resolve(env=False, overrides={"mssr.num_streams": 2,
                                         "core.width": 4})
    snapshot = tree.canonical(kind="mssr")
    # Persist the snapshot as a JSON config file (nested form) and
    # re-resolve with it as the file layer: same values, same hash.
    nested = {}
    for key, value in snapshot.items():
        section, _dot, name = key.partition(".")
        nested.setdefault(section, {})[name] = value
    path = tmp_path / "snapshot.json"
    path.write_text(json.dumps(nested))
    again = resolve(file=str(path), env=False)
    assert again.canonical(kind="mssr") == snapshot
    assert again.config_hash(kind="mssr") == tree.config_hash(kind="mssr")


def test_config_hash_is_order_independent_and_stable():
    a = snapshot_hash({"core.width": 8, "mssr.num_streams": 4})
    b = snapshot_hash({"mssr.num_streams": 4, "core.width": 8})
    assert a == b and len(a) == 24


# ---------------------------------------------------------------------------
# Job snapshots
# ---------------------------------------------------------------------------
def test_job_snapshot_covers_all_active_model_keys():
    snapshot = job_snapshot("mssr", {"mssr.num_streams": 2})
    assert set(snapshot) == set(model_keys(kind="mssr"))
    assert snapshot["mssr.num_streams"] == 2
    assert snapshot["core.width"] == schema()["core.width"].default


def test_job_snapshot_rejects_inactive_section_overrides():
    with pytest.raises(ValueError, match="no effect on kind"):
        job_snapshot("baseline", {"mssr.num_streams": 2})
    with pytest.raises(ValueError, match="runtime key"):
        job_snapshot("mssr", {"harness.jobs": 4})


def test_job_hash_is_environment_independent(monkeypatch):
    job = SimJob("bfs", "mssr", 0.1, {"streams": 2})
    before = job.job_hash()
    monkeypatch.setenv("REPRO_JOBS", "16")
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.9")
    assert SimJob("bfs", "mssr", 0.1, {"streams": 2}).job_hash() == before


def test_equivalent_declarations_hash_identically():
    """Short params, dotted config and sweep-style declaration of the
    same point are one job."""
    via_params = SimJob("bfs", "mssr", 0.1, {"streams": 2})
    via_config = SimJob("bfs", "mssr", 0.1,
                        config={"mssr.num_streams": 2})
    assert via_params.job_hash() == via_config.job_hash()
    assert via_params.config_hash() == via_config.config_hash()


def test_changed_default_changes_hash():
    base = SimJob("bfs", "mssr", 0.1)
    assert base.spec()["config"]["mssr.rgid_bits"] == 6
    tweaked = SimJob("bfs", "mssr", 0.1, config={"mssr.rgid_bits": 8})
    assert tweaked.job_hash() != base.job_hash()


def test_spec_embeds_snapshot_and_versions():
    spec = SimJob("bfs", "mssr", 0.1, {"streams": 4}).spec()
    assert spec["schema"] == CONFIG_SCHEMA_VERSION
    assert spec["config"]["mssr.num_streams"] == 4
    assert "sampling" not in spec
    sampled = SimJob("bfs", "mssr", 0.1, sampling=True).spec()
    knobs = {key: value for key, value in sampled["sampling"]}
    assert knobs["interval_insts"] == 100000


# ---------------------------------------------------------------------------
# Old-spec -> new-hash equivalence over the pinned experiment set
# ---------------------------------------------------------------------------
#: Every distinct (kind, params) point the checked-in experiments
#: declare (Figures 10-12, Tables 1-2, ablations); the new resolved
#: hashing must keep all of them distinct and deterministic.
_PINNED = [
    ("baseline", {}),
    ("mssr", {"streams": 1}),
    ("mssr", {"streams": 2}),
    ("mssr", {"streams": 4}),
    ("mssr", {"streams": 4, "wpb": 8, "log": 32}),
    ("mssr", {"streams": 4, "wpb": 16, "log": 128}),
    ("mssr", {"streams": 4, "wpb": 32, "log": 128}),
    ("mssr", {"streams": 2, "wpb": 32, "log": 128}),
    ("ri", {"sets": 64, "ways": 2}),
    ("ri", {"sets": 64, "ways": 4}),
    ("ri", {"sets": 128, "ways": 4}),
    ("dir", {"sets": 64, "ways": 4}),
]


def _old_spec(job):
    """The seed harness's spec shape (params, no resolved snapshot)."""
    from repro.isa.predecode import PREDECODE_VERSION
    return json.dumps({
        "workload": job.workload, "kind": job.kind, "scale": job.scale,
        "params": [[k, v] for k, v in job.params],
        "predecode": PREDECODE_VERSION,
    }, sort_keys=True, separators=(",", ":"))


def test_pinned_experiment_points_map_one_to_one():
    jobs = [SimJob("bfs", kind, 0.12, params)
            for kind, params in _PINNED]
    old = [_old_spec(job) for job in jobs]
    new = [job.job_hash() for job in jobs]
    # Distinct under the old scheme, still distinct under the new one,
    # and the mapping old->new is a function (1:1 on this set).
    assert len(set(old)) == len(jobs)
    assert len(set(new)) == len(jobs)
    mapping = {}
    for old_spec, new_hash in zip(old, new):
        assert mapping.setdefault(old_spec, new_hash) == new_hash


def test_params_spelling_defaults_collapses_to_the_default_point():
    """Explicitly passing the default wpb/log values is the *same
    simulation* as not passing them — under resolved-snapshot hashing
    the two declarations share one hash (the seed's params-list hashing
    kept them apart and simulated the point twice)."""
    explicit = SimJob("bfs", "mssr", 0.12,
                      {"streams": 4, "wpb": 16, "log": 64})
    implicit = SimJob("bfs", "mssr", 0.12, {"streams": 4})
    assert explicit.job_hash() == implicit.job_hash()


def test_pinned_hashes_are_deterministic_across_instances():
    for kind, params in _PINNED:
        a = SimJob("xz", kind, 0.12, dict(params))
        b = SimJob("xz", kind, 0.12, dict(params))
        assert a.job_hash() == b.job_hash()
