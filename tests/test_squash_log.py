"""Squash Log entries: reusability rules and stream lifecycle."""

from repro.isa import Op, Instruction
from repro.mssr.squash_log import SquashLog, LogEntry
from repro.pipeline.dyninst import DynInst
from repro.pipeline.rename import NULL_RGID


def _dyn(op, executed=True, dest=5, srcs=(1, 2), imm=0, rgids=(3, 4),
         dest_rgid=7, seq=0):
    inst = Instruction(op, dest=dest, srcs=srcs, imm=imm, pc=0x100 + 4 * seq)
    dyn = DynInst(seq, inst.pc, inst, block_id=0, fetch_cycle=0)
    dyn.executed = executed
    dyn.renamed = True
    dyn.src_rgids = tuple(rgids[:inst.info.num_srcs])
    dyn.dest_rgid = dest_rgid if inst.writes_reg else None
    dyn.dest_preg = 40 if inst.writes_reg else None
    return dyn


def test_alu_executed_is_reusable():
    entry = LogEntry(_dyn(Op.ADD))
    assert entry.reusable


def test_not_executed_not_reusable():
    entry = LogEntry(_dyn(Op.ADD, executed=False))
    assert not entry.reusable


def test_store_not_reusable():
    entry = LogEntry(_dyn(Op.SD, dest=None, srcs=(1, 2)))
    assert not entry.reusable


def test_branch_not_reusable():
    entry = LogEntry(_dyn(Op.BEQ, dest=None, srcs=(1, 2), imm=0x200))
    assert not entry.reusable
    jal = LogEntry(_dyn(Op.JAL, dest=1, srcs=(), imm=0x200, rgids=()))
    assert not jal.reusable


def test_null_rgid_not_reusable():
    entry = LogEntry(_dyn(Op.ADD, dest_rgid=NULL_RGID))
    assert not entry.reusable
    entry = LogEntry(_dyn(Op.ADD, rgids=(NULL_RGID, 4)))
    assert not entry.reusable


def test_x0_dest_not_reusable():
    entry = LogEntry(_dyn(Op.ADD, dest=0, dest_rgid=None))
    assert not entry.reusable


def test_load_records_address():
    dyn = _dyn(Op.LD, srcs=(1,), imm=8, rgids=(3,))
    dyn.mem_addr = 0x2000
    dyn.mem_size = 8
    entry = LogEntry(dyn)
    assert entry.is_load and entry.load_addr == 0x2000


def test_log_capacity_truncates_younger():
    log = SquashLog(num_streams=2, entries_per_stream=4)
    dyns = [_dyn(Op.ADD, seq=i) for i in range(10)]
    stream = log.fill(0, dyns, event_id=1)
    assert len(stream.entries) == 4
    assert stream.entries[0].pc == dyns[0].pc   # oldest kept


def test_reserved_preg_accounting():
    log = SquashLog(num_streams=1, entries_per_stream=8)
    dyns = [_dyn(Op.ADD, seq=i) for i in range(3)]
    stream = log.fill(0, dyns, event_id=1)
    for entry in stream.entries:
        entry.reserved = True
    assert len(stream.reserved_pregs()) == 3
    stream.entries[0].consumed = True
    stream.entries[1].failed = True
    assert len(stream.reserved_pregs()) == 1


def test_invalidate_bumps_generation():
    log = SquashLog(num_streams=1, entries_per_stream=8)
    stream = log.fill(0, [_dyn(Op.ADD)], event_id=1)
    gen = stream.generation
    stream.invalidate()
    assert stream.generation == gen + 1
    assert not stream.valid
    assert not log.any_valid()
