"""Dynamic Instruction Reuse (value-based) baseline."""

from repro.baselines import DynamicInstructionReuse, DIRConfig
from repro.compiler import Module, array_ref, hash64
from repro.pipeline import O3Core, baseline_config
from repro.emu import Emulator

from tests.conftest import run_both


def branchy_kernel(arr, n):
    acc = 0
    for i in range(n):
        v = hash64(i + (acc & 1))
        if v & 1:
            acc -= v & 7
        t = (i * 7 + (v & 31)) & 1023
        t = (t >> 2) * 13 + 5
        arr[i & 31] = t
        acc += t
    return acc & 0xFFFFF


def load_kernel(arr, n):
    total = 0
    for i in range(n):
        v = hash64(i)
        if v & 1:
            arr[v & 31] = arr[v & 31] + 1
        total += arr[(v >> 6) & 31]
    return total


def _build(kernel, n=150):
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", 32)
    return mod.build(kernel.__name__, [array_ref("arr"), n])


def _core_with_dir(prog, **geometry):
    return O3Core(prog, baseline_config(),
                  reuse_scheme=DynamicInstructionReuse(
                      DIRConfig(**geometry)))


def test_dir_is_architecturally_correct():
    prog = _build(branchy_kernel)
    emu = Emulator(prog).run()
    core = _core_with_dir(prog)
    result = core.run()
    assert result.regs == emu.regs
    assert result.memory == emu.memory


def test_dir_reuses_values():
    prog = _build(branchy_kernel)
    core = _core_with_dir(prog)
    result = core.run()
    assert core.scheme.insertions > 20
    assert result.stats.reuse_successes > 10


def test_dir_load_reuse_verified():
    prog = _build(load_kernel)
    emu = Emulator(prog).run()
    core = _core_with_dir(prog)
    result = core.run()
    assert result.regs == emu.regs
    assert result.memory == emu.memory


def test_dir_holds_no_registers():
    # DIR stores values, not register names: the regfile must never see
    # reserved registers.
    prog = _build(branchy_kernel)
    core = _core_with_dir(prog)
    core.run()
    assert core.regfile.count_states()["reserved"] == 0
    assert core.regfile.check_conservation()


def test_dir_tiny_table_conflicts():
    prog = _build(branchy_kernel)
    small = _core_with_dir(prog, num_sets=4, assoc=1)
    small.run()
    large = _core_with_dir(prog, num_sets=128, assoc=4)
    large.run()
    assert small.scheme.replacements > large.scheme.replacements


def test_dir_temporal_reference_overwrites_in_place():
    scheme = DynamicInstructionReuse(DIRConfig(num_sets=8, assoc=2))

    class _FakeDyn:
        pass

    class _FakeInst:
        is_load = False
        writes_reg = True

    dyn = _FakeDyn()
    dyn.pc = 0x40
    dyn.inst = _FakeInst()
    dyn.result = 1
    dyn.mem_addr = None
    dyn.mem_size = 0
    scheme._insert(dyn, (10, 20))
    dyn.result = 2
    scheme._insert(dyn, (30, 40))
    # Same PC: one entry, holding only the latest execution context —
    # the temporal-reference limitation of Section 3.7.1.
    entries = [e for ways in scheme.sets for e in ways if e.valid]
    assert len(entries) == 1
    assert entries[0].src_values == (30, 40)
    assert entries[0].result == 2
