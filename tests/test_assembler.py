"""Assembler: builder API, text syntax, labels, pseudo-instructions."""

import pytest

from repro.isa import Assembler, AsmError, assemble_text, Op
from repro.emu import Emulator
from repro.utils.bits import to_signed


def test_forward_and_backward_labels(asm):
    asm.li("t0", 3)
    asm.label("back")
    asm.addi("t0", "t0", -1)
    asm.bnez("t0", "back")
    asm.j("fwd")
    asm.li("t1", 99)   # skipped
    asm.label("fwd")
    asm.halt()
    prog = asm.finish()
    result = Emulator(prog).run()
    assert result.reg("t0") == 0
    assert result.reg("t1") == 0


def test_unresolved_label_raises(asm):
    asm.j("nowhere")
    with pytest.raises(AsmError):
        asm.finish()


def test_duplicate_label_raises(asm):
    asm.label("here")
    asm.nop()
    with pytest.raises(AsmError):
        asm.label("here")


def test_store_operand_order(asm):
    addr = asm.word("slot")
    asm.li("t0", 0xAB)
    asm.li("t1", addr)
    asm.sd("t0", "t1", 0)   # value, base
    asm.halt()
    result = Emulator(asm.finish()).run()
    assert result.memory.read(addr, 8) == 0xAB


def test_pseudo_instructions(asm):
    asm.li("t0", -5)
    asm.neg("t1", "t0")           # 5
    asm.not_("t2", "zero")        # -1
    asm.seqz("t3", "zero")        # 1
    asm.snez("t4", "t0")          # 1
    asm.mv("t5", "t1")
    asm.halt()
    result = Emulator(asm.finish()).run()
    assert to_signed(result.reg("t0")) == -5
    assert result.reg("t1") == 5
    assert to_signed(result.reg("t2")) == -1
    assert result.reg("t3") == 1
    assert result.reg("t4") == 1
    assert result.reg("t5") == 5


def test_call_ret(asm):
    asm.li("a0", 10)
    asm.call("double")
    asm.mv("s0", "a0")
    asm.halt()
    asm.label("double")
    asm.add("a0", "a0", "a0")
    asm.ret()
    result = Emulator(asm.finish()).run()
    assert result.reg("s0") == 20


def test_bgt_ble(asm):
    asm.li("t0", 5)
    asm.li("t1", 3)
    asm.li("s0", 0)
    asm.bgt("t0", "t1", "over")
    asm.li("s0", 99)
    asm.label("over")
    asm.ble("t1", "t0", "under")
    asm.li("s1", 99)
    asm.label("under")
    asm.halt()
    result = Emulator(asm.finish()).run()
    assert result.reg("s0") == 0
    assert result.reg("s1") == 0


def test_text_assembler_full_program():
    prog = assemble_text("""
        # sum the array
        .word data 4 5 6
        la a0, data
        li t0, 0        # index
        li t1, 0        # sum
    loop:
        slli t2, t0, 3
        add t2, a0, t2
        ld t3, 0(t2)
        add t1, t1, t3
        addi t0, t0, 1
        li t4, 3
        blt t0, t4, loop
        halt
    """)
    result = Emulator(prog).run()
    assert result.reg("t1") == 15


def test_text_assembler_memory_operands():
    prog = assemble_text("""
        .space buf 16
        la a0, buf
        li t0, 0x1122
        sd t0, 8(a0)
        ld t1, 8(a0)
        sw t0, 0(a0)
        lw t2, 0(a0)
        sb t0, 4(a0)
        lbu t3, 4(a0)
        halt
    """)
    result = Emulator(prog).run()
    assert result.reg("t1") == 0x1122
    assert result.reg("t2") == 0x1122
    assert result.reg("t3") == 0x22


def test_text_assembler_bad_mnemonic():
    with pytest.raises(AsmError):
        assemble_text("frobnicate t0, t1")


def test_text_assembler_reports_line_numbers():
    try:
        assemble_text("nop\nbogus x, y\n")
    except AsmError as exc:
        assert "line 2" in str(exc)
    else:
        raise AssertionError("expected AsmError")


def test_emit_wrong_arity(asm):
    with pytest.raises(AsmError):
        asm.emit(Op.ADD, dest="t0", srcs=("t1",))


def test_data_symbols(asm):
    a = asm.word_array("a", [1, 2])
    b = asm.word("b", 7)
    assert b == a + 16
    assert asm.data.addr_of("a") == a
    asm.la("t0", "b")
    asm.halt()
    result = Emulator(asm.finish()).run()
    assert result.reg("t0") == b
    assert result.memory.read(b, 8) == 7
