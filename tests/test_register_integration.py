"""Register Integration baseline: table behaviour and correctness."""

import pytest

from repro.compiler import Module, array_ref, hash64
from repro.pipeline import O3Core, ri_config
from repro.emu import Emulator

from tests.conftest import run_both


def branchy_kernel(arr, n):
    acc = 0
    for i in range(n):
        v = hash64(i + (acc & 1))
        if v & 1:
            acc -= v & 7
        t = (i * 7 + (v & 31)) & 1023
        t = (t >> 2) * 13 + 5
        arr[i & 31] = t
        acc += t
    return acc & 0xFFFFF


def load_kernel(arr, n):
    total = 0
    for i in range(n):
        v = hash64(i)
        if v & 1:
            arr[v & 31] = arr[v & 31] + 1
        total += arr[(v >> 6) & 31]
    return total


def _build(kernel, n=150):
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", 32)
    return mod, mod.build(kernel.__name__, [array_ref("arr"), n])


@pytest.mark.parametrize("sets,ways", [(16, 1), (64, 2), (64, 4), (128, 4)])
def test_correct_for_any_geometry(sets, ways):
    _mod, prog = _build(branchy_kernel)
    run_both(prog, ri_config(num_sets=sets, assoc=ways))


def test_integration_happens():
    _mod, prog = _build(branchy_kernel)
    core = O3Core(prog, ri_config())
    result = core.run()
    assert result.stats.ri_insertions > 20
    assert result.stats.reuse_successes > 20


def test_load_integration_verified():
    _mod, prog = _build(load_kernel)
    _emu, result = run_both(prog, ri_config())
    assert result.stats.reused_loads >= 0  # correctness is the real check


def test_replacements_counted_per_set():
    _mod, prog = _build(branchy_kernel)
    core = O3Core(prog, ri_config(num_sets=4, assoc=1))  # tiny: conflicts
    result = core.run()
    assert result.stats.ri_set_replacements is not None
    assert len(result.stats.ri_set_replacements) == 4
    assert sum(result.stats.ri_set_replacements) == \
        result.stats.ri_replacements
    assert result.stats.ri_replacements > 0


def test_low_assoc_replaces_more():
    _mod, prog = _build(branchy_kernel)
    repl = {}
    for ways in (1, 4):
        core = O3Core(prog, ri_config(num_sets=8, assoc=ways))
        repl[ways] = core.run().stats.ri_replacements
    assert repl[1] >= repl[4]


def test_transitive_invalidation_counted():
    _mod, prog = _build(branchy_kernel)
    core = O3Core(prog, ri_config())
    result = core.run()
    # Commit-time register frees constantly invalidate stale entries.
    assert result.stats.ri_invalidations > 0


def test_no_reserved_leak():
    _mod, prog = _build(branchy_kernel)
    core = O3Core(prog, ri_config())
    core.run()
    counts = core.regfile.count_states()
    # Entries may legitimately still hold registers at halt; force a
    # flush and verify they all return.
    core.scheme.on_verify_fail(None)
    assert core.regfile.count_states()["reserved"] == 0
    assert core.regfile.check_conservation()
