"""Randomised cosimulation: generated programs, emulator vs O3 core.

Hypothesis generates small programs with random ALU operations, memory
accesses to a scratch buffer and forward branches; the out-of-order core
(baseline and MSSR) must match the functional emulator's final
architectural state exactly. This fuzzes the pipeline against
combinations no hand-written test covers.

The ``*_lockstep`` variants run the same generated programs under the
commit-by-commit differential checker, so a divergence found by fuzzing
is localised to the exact first wrong commit rather than a final-state
diff.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import Assembler, Op
from repro.emu import Emulator
from repro.obs import run_lockstep
from repro.pipeline import O3Core, baseline_config, mssr_config, ri_config

_REGS = ["t0", "t1", "t2", "s1", "s3", "a4", "a5"]

_rr_op = st.sampled_from([Op.ADD, Op.SUB, Op.XOR, Op.AND, Op.OR,
                          Op.MUL, Op.SLT, Op.SLTU, Op.MIN, Op.MAX])
_ri_op = st.sampled_from([Op.ADDI, Op.XORI, Op.ANDI, Op.ORI,
                          Op.SLLI, Op.SRLI, Op.SRAI])
_reg = st.sampled_from(_REGS)
_imm = st.integers(min_value=-512, max_value=511)
_slot = st.integers(min_value=0, max_value=15)

_instruction = st.one_of(
    st.tuples(st.just("rr"), _rr_op, _reg, _reg, _reg),
    st.tuples(st.just("ri"), _ri_op, _reg, _reg, _imm),
    st.tuples(st.just("load"), _reg, _slot),
    st.tuples(st.just("store"), _reg, _slot),
    st.tuples(st.just("branch"),
              st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE]),
              _reg, _reg, st.integers(min_value=1, max_value=4)),
)


def _assemble(descriptors, seeds):
    asm = Assembler()
    buf = asm.reserve("buf", 16 * 8)
    asm.li("s0", buf)
    for reg, seed in zip(_REGS, seeds):
        asm.li(reg, seed)
    pending_labels = {}   # emit-index -> [label names]
    for index, desc in enumerate(descriptors):
        for label in pending_labels.pop(index, []):
            asm.label(label)
        kind = desc[0]
        if kind == "rr":
            _k, op, dest, src1, src2 = desc
            asm.rr(op, dest, src1, src2)
        elif kind == "ri":
            _k, op, dest, src, imm = desc
            if op in (Op.SLLI, Op.SRLI, Op.SRAI):
                imm = abs(imm) % 64
            asm.ri(op, dest, src, imm)
        elif kind == "load":
            _k, dest, slot = desc
            asm.ld(dest, "s0", slot * 8)
        elif kind == "store":
            _k, src, slot = desc
            asm.sd(src, "s0", slot * 8)
        elif kind == "branch":
            _k, op, src1, src2, skip = desc
            label = "skip%d" % index
            target = min(index + 1 + skip, len(descriptors))
            pending_labels.setdefault(target, []).append(label)
            asm.branch(op, src1, src2, label)
    for labels in pending_labels.values():
        for label in labels:
            asm.label(label)
    asm.halt()
    return asm.finish()


@settings(max_examples=30, deadline=None)
@given(st.lists(_instruction, min_size=1, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_random_program_cosim_baseline(descriptors, seeds):
    prog = _assemble(descriptors, seeds)
    emu = Emulator(prog).run(max_insts=100_000)
    result = O3Core(prog, baseline_config()).run(max_cycles=200_000)
    assert result.regs == emu.regs
    assert result.memory == emu.memory


@settings(max_examples=20, deadline=None)
@given(st.lists(_instruction, min_size=5, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_random_program_cosim_mssr(descriptors, seeds):
    prog = _assemble(descriptors, seeds)
    emu = Emulator(prog).run(max_insts=100_000)
    result = O3Core(prog, mssr_config(num_streams=4)).run(
        max_cycles=200_000)
    assert result.regs == emu.regs
    assert result.memory == emu.memory


def _lockstep(prog, config):
    outcome = run_lockstep(prog, config, max_cycles=200_000)
    assert outcome.ok, outcome.divergence.format()
    assert outcome.commits == outcome.result.stats.committed_insts


@settings(max_examples=15, deadline=None)
@given(st.lists(_instruction, min_size=1, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_random_program_lockstep_baseline(descriptors, seeds):
    _lockstep(_assemble(descriptors, seeds), baseline_config())


@settings(max_examples=15, deadline=None)
@given(st.lists(_instruction, min_size=5, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_random_program_lockstep_mssr(descriptors, seeds):
    _lockstep(_assemble(descriptors, seeds), mssr_config(num_streams=4))


@settings(max_examples=15, deadline=None)
@given(st.lists(_instruction, min_size=5, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_random_program_lockstep_ri(descriptors, seeds):
    _lockstep(_assemble(descriptors, seeds),
              ri_config(num_sets=16, assoc=2))
