"""Bloom filter: no false negatives, clearing, granule spanning."""

from hypothesis import given, strategies as st

from repro.mssr.bloom import BloomFilter


def test_empty_contains_nothing():
    bloom = BloomFilter()
    assert not bloom.maybe_contains(0x1000, 8)


@given(st.lists(st.tuples(st.integers(0, 1 << 20),
                          st.sampled_from([1, 4, 8])), max_size=50))
def test_no_false_negatives(insertions):
    bloom = BloomFilter(num_bits=512)
    for addr, size in insertions:
        bloom.insert(addr, size)
    for addr, size in insertions:
        assert bloom.maybe_contains(addr, size)


def test_spanning_access_detected():
    bloom = BloomFilter()
    bloom.insert(0x1007, 1)          # last byte of granule 0x1000
    assert bloom.maybe_contains(0x1000, 8)
    # An 8-byte access starting at 0x1004 spans into the next granule.
    bloom.clear()
    bloom.insert(0x1008, 8)
    assert bloom.maybe_contains(0x1004, 8)


def test_clear():
    bloom = BloomFilter()
    bloom.insert(0x42, 8)
    bloom.clear()
    assert not bloom.maybe_contains(0x42, 8)
    assert bloom.insertions == 0


def test_false_positive_rate_reasonable():
    bloom = BloomFilter(num_bits=1024, num_hashes=2)
    for i in range(40):
        bloom.insert(i * 64, 8)
    false_hits = sum(bloom.maybe_contains(1 << 30 | (i * 128), 8)
                     for i in range(200))
    assert false_hits < 60  # loose; mostly checks it's not saturated
