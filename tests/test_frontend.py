"""BTB, RAS and the block-based fetch unit."""

from repro.frontend import BranchTargetBuffer, ReturnAddressStack, FetchUnit
from repro.frontend.predictors import build_predictor
from repro.isa import assemble_text


def test_btb_install_and_lookup():
    btb = BranchTargetBuffer(num_sets=8, assoc=2)
    assert btb.lookup(0x100) is None
    btb.install(0x100, 0x500)
    assert btb.lookup(0x100) == 0x500
    btb.install(0x100, 0x600)   # update in place
    assert btb.lookup(0x100) == 0x600


def test_btb_lru_eviction():
    btb = BranchTargetBuffer(num_sets=1, assoc=2)
    btb.install(0x0, 1)
    btb.install(0x4, 2)
    btb.lookup(0x0)             # refresh
    btb.install(0x8, 3)         # evicts 0x4
    assert btb.lookup(0x0) == 1
    assert btb.lookup(0x4) is None
    assert btb.lookup(0x8) == 3


def test_ras_push_pop():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    ras.push(0x20)
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10
    assert ras.pop() is None


def test_ras_snapshot_restore():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    snap = ras.snapshot()
    ras.push(0x20)
    ras.pop()
    ras.pop()
    ras.restore(snap)
    assert ras.peek() == 0x10


def test_ras_wraps_without_error():
    ras = ReturnAddressStack(depth=2)
    for i in range(5):
        ras.push(i)
    assert ras.pop() == 4


def _fetch_unit(source):
    prog = assemble_text(source)
    predictor = build_predictor("always-taken")
    return prog, FetchUnit(prog, predictor, BranchTargetBuffer(),
                           ReturnAddressStack())


def test_block_ends_at_taken_branch():
    prog, fetch = _fetch_unit("""
        addi t0, t0, 1
        beq t0, t0, target
        addi t1, t1, 1
    target:
        halt
    """)
    block = fetch.fetch_block(cycle=1)
    assert block.num_insts == 2          # addi + predicted-taken beq
    assert block.pred_next_pc == prog.label_pc("target")


def test_block_limited_to_fetch_width():
    source = "\n".join(["addi t0, t0, 1"] * 20) + "\nhalt"
    prog, fetch = _fetch_unit(source)
    block = fetch.fetch_block(cycle=1)
    assert block.num_insts == 8
    assert block.pred_next_pc == prog.code_base + 8 * 4


def test_halt_ends_block_and_stalls():
    _prog, fetch = _fetch_unit("""
        addi t0, t0, 1
        halt
    """)
    block = fetch.fetch_block(cycle=1)
    assert block.insts[-1].inst.is_halt
    assert fetch.stalled
    assert fetch.fetch_block(cycle=2) is None


def test_redirect_unstalls():
    prog, fetch = _fetch_unit("""
        halt
        addi t0, t0, 1
        halt
    """)
    fetch.fetch_block(cycle=1)
    assert fetch.stalled
    fetch.redirect(prog.code_base + 4)
    block = fetch.fetch_block(cycle=2)
    assert block.start_pc == prog.code_base + 4


def test_ftq_squash_partial_block():
    source = "\n".join(["addi t0, t0, 1"] * 8) + "\nhalt"
    prog, fetch = _fetch_unit(source)
    block = fetch.fetch_block(cycle=1)
    boundary_seq = block.insts[2].seq
    squashed = fetch.squash_ftq_after(block.block_id,
                                      keep_partial_seq=boundary_seq)
    assert len(squashed) == 1
    partial = squashed[0]
    assert partial.insts[0].seq == boundary_seq + 1
    assert partial.num_insts == 5
    # The surviving FTQ entry keeps only the older instructions.
    assert fetch.ftq[0].num_insts == 3


def test_ras_drives_return_prediction():
    prog, fetch = _fetch_unit("""
        jal ra, func
        halt
    func:
        ret
    """)
    call_block = fetch.fetch_block(cycle=1)
    assert call_block.pred_next_pc == prog.label_pc("func")
    ret_block = fetch.fetch_block(cycle=2)
    # The return is predicted through the RAS back to pc+4 of the call.
    assert ret_block.pred_next_pc == prog.code_base + 4
