"""BTB, RAS and the block-based fetch unit."""

from repro.frontend import BranchTargetBuffer, ReturnAddressStack, FetchUnit
from repro.frontend.predictors import build_predictor
from repro.isa import assemble_text


def test_btb_install_and_lookup():
    btb = BranchTargetBuffer(num_sets=8, assoc=2)
    assert btb.lookup(0x100) is None
    btb.install(0x100, 0x500)
    assert btb.lookup(0x100) == 0x500
    btb.install(0x100, 0x600)   # update in place
    assert btb.lookup(0x100) == 0x600


def test_btb_lru_eviction():
    btb = BranchTargetBuffer(num_sets=1, assoc=2)
    btb.install(0x0, 1)
    btb.install(0x4, 2)
    btb.lookup(0x0)             # refresh
    btb.install(0x8, 3)         # evicts 0x4
    assert btb.lookup(0x0) == 1
    assert btb.lookup(0x4) is None
    assert btb.lookup(0x8) == 3


def test_ras_push_pop():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    ras.push(0x20)
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10
    assert ras.pop() is None


def test_ras_snapshot_restore():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    snap = ras.snapshot()
    ras.push(0x20)
    ras.pop()
    ras.pop()
    ras.restore(snap)
    assert ras.peek() == 0x10


def test_ras_wraps_without_error():
    ras = ReturnAddressStack(depth=2)
    for i in range(5):
        ras.push(i)
    assert ras.pop() == 4


def _fetch_unit(source):
    prog = assemble_text(source)
    predictor = build_predictor("always-taken")
    return prog, FetchUnit(prog, predictor, BranchTargetBuffer(),
                           ReturnAddressStack())


def test_block_ends_at_taken_branch():
    prog, fetch = _fetch_unit("""
        addi t0, t0, 1
        beq t0, t0, target
        addi t1, t1, 1
    target:
        halt
    """)
    block = fetch.fetch_block(cycle=1)
    assert block.num_insts == 2          # addi + predicted-taken beq
    assert block.pred_next_pc == prog.label_pc("target")


def test_block_limited_to_fetch_width():
    source = "\n".join(["addi t0, t0, 1"] * 20) + "\nhalt"
    prog, fetch = _fetch_unit(source)
    block = fetch.fetch_block(cycle=1)
    assert block.num_insts == 8
    assert block.pred_next_pc == prog.code_base + 8 * 4


def test_halt_ends_block_and_stalls():
    _prog, fetch = _fetch_unit("""
        addi t0, t0, 1
        halt
    """)
    block = fetch.fetch_block(cycle=1)
    assert block.insts[-1].inst.is_halt
    assert fetch.stalled
    assert fetch.fetch_block(cycle=2) is None


def test_redirect_unstalls():
    prog, fetch = _fetch_unit("""
        halt
        addi t0, t0, 1
        halt
    """)
    fetch.fetch_block(cycle=1)
    assert fetch.stalled
    fetch.redirect(prog.code_base + 4)
    block = fetch.fetch_block(cycle=2)
    assert block.start_pc == prog.code_base + 4


def test_ftq_squash_partial_block():
    source = "\n".join(["addi t0, t0, 1"] * 8) + "\nhalt"
    prog, fetch = _fetch_unit(source)
    block = fetch.fetch_block(cycle=1)
    boundary_seq = block.insts[2].seq
    squashed = fetch.squash_ftq_after(block.block_id,
                                      keep_partial_seq=boundary_seq)
    assert len(squashed) == 1
    partial = squashed[0]
    assert partial.insts[0].seq == boundary_seq + 1
    assert partial.num_insts == 5
    # The surviving FTQ entry keeps only the older instructions.
    assert fetch.ftq[0].num_insts == 3


def test_ras_drives_return_prediction():
    prog, fetch = _fetch_unit("""
        jal ra, func
        halt
    func:
        ret
    """)
    call_block = fetch.fetch_block(cycle=1)
    assert call_block.pred_next_pc == prog.label_pc("func")
    ret_block = fetch.fetch_block(cycle=2)
    # The return is predicted through the RAS back to pc+4 of the call.
    assert ret_block.pred_next_pc == prog.code_base + 4


# ---------------------------------------------------------------------------
# RAS overflow/underflow semantics
# ---------------------------------------------------------------------------
def test_ras_wrap_keeps_newest_entries():
    ras = ReturnAddressStack(depth=4)
    for i in range(10):
        ras.push(0x1000 + 4 * i)
    assert ras.count == 4
    for i in reversed(range(6, 10)):
        assert ras.pop() == 0x1000 + 4 * i
    # Entries overwritten by the wrap are not stale "predictions".
    assert ras.pop() is None


def test_ras_snapshot_restores_occupancy():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    ras.push(0x20)
    snap = ras.snapshot()
    ras.push(0x30)
    while ras.pop() is not None:
        pass
    ras.restore(snap)
    assert ras.count == 2
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10
    assert ras.pop() is None


def test_ras_deep_call_chain_with_mispredicts():
    """Call chain deeper than the RAS, with a mispredicting branch in
    every frame: wrap + checkpoint/restore must keep the machine
    architecturally correct and still predict the in-reach returns."""
    from repro.pipeline import baseline_config
    from tests.conftest import run_both

    depth = 12
    lines = [
        "    li sp, 0x80000",
        "    li t0, 1",
        "    jal ra, f0",
        "    halt",
    ]
    for i in range(depth):
        lines += [
            "f%d:" % i,
            "    addi sp, sp, -8",
            "    sd ra, 0(sp)",
            # Not taken, but always-taken predicts taken: one
            # misprediction (and RAS repair) per frame.
            "    beq t0, zero, skip%d" % i,
            "    addi t1, t1, 1",
            "skip%d:" % i,
        ]
        if i + 1 < depth:
            lines.append("    jal ra, f%d" % (i + 1))
        lines += [
            "    ld ra, 0(sp)",
            "    addi sp, sp, 8",
            "    ret",
        ]
    prog = assemble_text("\n".join(lines))
    cfg = baseline_config(predictor="always-taken", ras_depth=4)
    _emu, result = run_both(prog, cfg)
    assert result.reg("t1") == depth
    assert result.stats.cond_mispredicts >= depth


# ---------------------------------------------------------------------------
# FTQ squash/retire bookkeeping
# ---------------------------------------------------------------------------
def test_ftq_partial_repair_with_younger_blocks():
    source = "\n".join(["addi t0, t0, 1"] * 24) + "\nhalt"
    prog, fetch = _fetch_unit(source)
    b0 = fetch.fetch_block(cycle=1)
    b1 = fetch.fetch_block(cycle=2)
    b2 = fetch.fetch_block(cycle=3)
    boundary_seq = b0.insts[4].seq
    squashed = fetch.squash_ftq_after(b0.block_id,
                                      keep_partial_seq=boundary_seq)
    # Oldest first: the partial tail of b0, then b1, then b2 whole.
    assert [b.block_id for b in squashed] == [b0.block_id, b1.block_id,
                                             b2.block_id]
    assert squashed[0].insts[0].seq == boundary_seq + 1
    assert squashed[0].num_insts == 3
    assert all(b.squashed for b in squashed)
    # The surviving boundary entry keeps only the older instructions.
    assert fetch.ftq == [b0]
    assert b0.num_insts == 5
    assert b0.end_pc == b0.insts[-1].pc


def test_ftq_retire_under_nested_squashes():
    source = "\n".join(["addi t0, t0, 1"] * 40) + "\nhalt"
    prog, fetch = _fetch_unit(source)
    blocks = [fetch.fetch_block(cycle=c) for c in range(1, 5)]
    # Outer squash drops blocks 2..3; a nested (older-boundary) squash
    # then drops block 1 as well.
    outer = fetch.squash_ftq_after(blocks[1].block_id)
    assert [b.block_id for b in outer] == [blocks[2].block_id,
                                           blocks[3].block_id]
    inner = fetch.squash_ftq_after(blocks[0].block_id)
    assert [b.block_id for b in inner] == [blocks[1].block_id]
    # Commit-time cleanup: retiring block 0 leaves an empty FTQ, and
    # retirement is idempotent for already-dropped younger ids.
    fetch.retire_block(blocks[0].block_id)
    assert fetch.ftq == []
    fetch.retire_block(blocks[3].block_id)
    assert fetch.ftq == []


def test_retire_block_ordering_under_nested_mispredicts_core():
    """Commit-time FTQ cleanup across two nested mispredictions."""
    from repro.pipeline import O3Core, baseline_config

    prog = assemble_text("""
        li t0, 1
        beq t0, zero, wrong_a
        addi t1, t1, 1
        beq t0, zero, wrong_b
        addi t2, t2, 1
        halt
    wrong_a:
        addi t3, t3, 1
    wrong_b:
        addi t4, t4, 1
        halt
    """)
    core = O3Core(prog, baseline_config(predictor="always-taken"))
    result = core.run()
    assert result.reg("t1") == 1 and result.reg("t2") == 1
    assert result.reg("t3") == 0 and result.reg("t4") == 0
    assert result.stats.cond_mispredicts == 2
    # Everything older than the final block was retired at commit.
    assert all(not b.squashed for b in core.fetch.ftq)
    assert len(core.fetch.ftq) <= 2


# ---------------------------------------------------------------------------
# Decoupled BPU/FTQ mode
# ---------------------------------------------------------------------------
def _decoupled_fetch_unit(source, **kwargs):
    from repro.pipeline.config import FrontendConfig

    prog = assemble_text(source)
    predictor = build_predictor("always-taken")
    fe = FrontendConfig(decoupled=True, **kwargs)
    return prog, FetchUnit(prog, predictor, BranchTargetBuffer(),
                           ReturnAddressStack(), frontend=fe)


def test_decoupled_bpu_runs_ahead_and_honours_depth():
    source = "\n".join(["addi t0, t0, 1"] * 64) + "\nhalt"
    _prog, fetch = _decoupled_fetch_unit(source, ftq_depth=3,
                                         bpu_blocks_per_cycle=2)
    fetch.tick(cycle=1)
    assert len(fetch.pending) == 2
    fetch.tick(cycle=2)
    assert len(fetch.pending) == 3   # capped at ftq_depth
    fetch.tick(cycle=3)
    assert len(fetch.pending) == 3


def test_decoupled_fetch_latency_gates_delivery():
    source = "\n".join(["addi t0, t0, 1"] * 16) + "\nhalt"
    _prog, fetch = _decoupled_fetch_unit(source, fetch_latency=2)
    assert fetch.fetch_block(cycle=1) is None     # FTQ empty
    fetch.tick(cycle=1)
    assert fetch.fetch_block(cycle=2) is None     # icache latency
    block = fetch.fetch_block(cycle=3)
    assert block is not None and block.delivered
    # Delivery re-stamps the instructions' fetch cycle.
    assert all(dyn.fetch_cycle == 3 for dyn in block.insts)


def test_decoupled_squash_flushes_pending_and_rewinds():
    prog = assemble_text("""
    loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    """)
    from repro.pipeline.config import FrontendConfig

    predictor = build_predictor("gshare")
    ras = ReturnAddressStack()
    fetch = FetchUnit(prog, predictor, BranchTargetBuffer(), ras,
                      frontend=FrontendConfig(decoupled=True, ftq_depth=8,
                                              bpu_blocks_per_cycle=8))
    hist0 = predictor.snapshot_history()
    delivered = fetch.fetch_block(cycle=1)
    assert delivered is None          # nothing predicted yet
    fetch.tick(cycle=1)               # BPU runs ahead: speculates loop
    assert len(fetch.pending) > 1
    assert predictor.snapshot_history() != hist0
    # Squash everything: pending blocks flush and history rewinds to
    # the oldest flushed block's pre-prediction state.
    squashed = fetch.squash_ftq_after(-1)
    assert squashed == []             # nothing was delivered
    assert not fetch.pending and not fetch.ftq
    assert predictor.snapshot_history() == hist0


def test_decoupled_matches_fused_architecturally():
    from repro.emu import Emulator
    from repro.pipeline import O3Core, baseline_config
    from repro.pipeline.config import FrontendConfig

    prog = assemble_text("""
        li s0, 50
        li s1, 0
    loop:
        andi t0, s0, 3
        beqz t0, skip
        addi s1, s1, 2
    skip:
        addi s0, s0, -1
        bnez s0, loop
        halt
    """)
    emu = Emulator(prog).run()
    fused = O3Core(prog, baseline_config()).run()
    dec = O3Core(prog, baseline_config(
        frontend=FrontendConfig(decoupled=True))).run()
    assert fused.regs == emu.regs and dec.regs == emu.regs
    assert dec.stats.committed_insts == fused.stats.committed_insts
    # Decoupling costs cycles (redirect bubbles + fetch latency) and
    # surfaces the new frontend counters; fused mode keeps them zero.
    assert dec.stats.cycles >= fused.stats.cycles
    assert dec.stats.ftq_enqueues > 0 and dec.stats.fetch_stalls > 0
    assert fused.stats.ftq_enqueues == 0 and fused.stats.fetch_stalls == 0
