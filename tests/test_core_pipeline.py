"""Out-of-order core: cosimulation against the emulator and
squash/recovery behaviour."""

import pytest

from repro.isa import Assembler, assemble_text
from repro.pipeline import O3Core, baseline_config, SimulationError
from repro.utils.rng import XorShift64

from tests.conftest import run_both


def test_straightline_alu():
    prog = assemble_text("""
        li t0, 6
        li t1, 7
        mul t2, t0, t1
        sub t3, t2, t0
        div t4, t2, t1
        rem t5, t2, t0
        halt
    """)
    _emu, result = run_both(prog)
    assert result.reg("t2") == 42
    assert result.reg("t4") == 6
    assert result.stats.committed_insts == 7


def test_predictable_loop_ipc():
    prog = assemble_text("""
        li t0, 200
        li t1, 0
    loop:
        add t1, t1, t0
        addi t0, t0, -1
        bnez t0, loop
        halt
    """)
    _emu, result = run_both(prog)
    # The loop predictor / TAGE learns this completely; IPC should be
    # decent for a 3-instruction loop with a 1-cycle dependence chain.
    assert result.stats.ipc > 1.0
    assert result.stats.cond_mispredicts <= 5


def test_hard_branch_recovers_correctly():
    # Branch on pseudo-random data: heavy misprediction but identical
    # architectural results.
    asm = Assembler()
    rng = XorShift64(3)
    data = [rng.randint(0, 1) for _ in range(150)]
    base = asm.word_array("data", data)
    asm.li("s0", base)
    asm.li("s1", 0)        # index
    asm.li("s2", 0)        # count of ones
    asm.li("s3", 150)
    asm.label("loop")
    asm.slli("t0", "s1", 3)
    asm.add("t0", "s0", "t0")
    asm.ld("t1", "t0", 0)
    asm.beqz("t1", "skip")
    asm.addi("s2", "s2", 1)
    asm.label("skip")
    asm.addi("s1", "s1", 1)
    asm.blt("s1", "s3", "loop")
    asm.halt()
    _emu, result = run_both(asm.finish())
    assert result.reg("s2") == sum(data)
    assert result.stats.cond_mispredicts > 10  # genuinely hard branches


def test_store_load_forwarding():
    prog = assemble_text("""
        .space buf 8
        la a0, buf
        li t0, 77
        sd t0, 0(a0)
        ld t1, 0(a0)
        addi t2, t1, 1
        halt
    """)
    _emu, result = run_both(prog)
    assert result.reg("t2") == 78


def test_memory_order_violation_replay():
    # A load whose address matches a store that resolves late (after a
    # long dependence chain) must replay and still be correct.
    prog = assemble_text("""
        .word cell 5
        la a0, cell
        li t0, 9
        # long chain delaying the store's data AND address base
        li t3, 1
        mul t3, t3, t3
        mul t3, t3, t3
        mul t3, t3, t3
        mul t3, t3, t3
        mul t4, t3, t3
        add t5, a0, t4
        addi t5, t5, -1
        sd t0, 0(t5)
        ld t6, 0(a0)
        add s0, t6, t6
        halt
    """)
    _emu, result = run_both(prog)
    assert result.reg("s0") == 18
    assert result.stats.replay_squashes >= 1


def test_indirect_jump_through_table():
    asm = Assembler()
    asm.j("start")
    asm.label("f0")
    asm.li("s0", 100)
    asm.j("done")
    asm.label("f1")
    asm.li("s0", 200)
    asm.j("done")
    asm.label("start")
    table = asm.word_array("table", [0, 0])
    asm.li("t0", table)
    # patch the table at runtime with real addresses
    asm.li("t1", asm.resolve("f0"))
    asm.sd("t1", "t0", 0)
    asm.li("t1", asm.resolve("f1"))
    asm.sd("t1", "t0", 8)
    asm.ld("t2", "t0", 8)
    asm.jalr("zero", "t2", 0)
    asm.label("done")
    asm.halt()
    _emu, result = run_both(asm.finish())
    assert result.reg("s0") == 200


def test_call_return_chain():
    prog = assemble_text("""
        li a0, 3
        jal ra, f
        mv s0, a0
        halt
    f:
        addi sp, sp, -16
        sd ra, 8(sp)
        beqz a0, base
        addi a0, a0, -1
        jal ra, f
        addi a0, a0, 2
        j out
    base:
        li a0, 10
    out:
        ld ra, 8(sp)
        addi sp, sp, 16
        ret
    """)
    _emu, result = run_both(prog)
    assert result.reg("s0") == 16   # 10 + 2 + 2 + 2


def test_cycle_budget_enforced():
    prog = assemble_text("""
    loop:
        j loop
    """)
    core = O3Core(prog, baseline_config())
    with pytest.raises(SimulationError):
        core.run(max_cycles=500)


def test_regfile_conserved_at_end():
    prog = assemble_text("""
        li t0, 50
    loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    """)
    core = O3Core(prog, baseline_config())
    core.run()
    assert core.regfile.check_conservation()
    counts = core.regfile.count_states()
    assert counts["reserved"] == 0


def test_stats_accounting():
    prog = assemble_text("""
        li t0, 20
    loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    """)
    core = O3Core(prog, baseline_config())
    result = core.run()
    stats = result.stats
    assert stats.committed_insts == 1 + 20 * 2 + 1
    assert stats.cond_branches == 20
    assert stats.fetched_insts >= stats.committed_insts
