"""ISA definitions: registers, opcode table, instruction validation."""

import pytest

from repro.isa import (
    Op, OpClass, OPCODE_INFO, Instruction, reg_num, reg_name,
    NUM_ARCH_REGS,
)
from repro.isa.registers import REG_NUMBERS
from repro.utils.bits import to_unsigned


def test_register_naming_round_trip():
    for i in range(NUM_ARCH_REGS):
        assert reg_num(reg_name(i)) == i
        assert reg_num("x%d" % i) == i


def test_register_aliases():
    assert reg_num("fp") == reg_num("s0")
    assert reg_num("zero") == 0
    assert reg_num("sp") == 2
    assert reg_num(5) == 5


def test_bad_register_names():
    with pytest.raises(ValueError):
        reg_num("x99")
    with pytest.raises(ValueError):
        reg_num("bogus")
    with pytest.raises(ValueError):
        reg_num(32)


def test_every_opcode_has_info():
    for op in Op:
        info = OPCODE_INFO[op]
        assert info.op is op
        assert info.num_srcs in (0, 1, 2)


def test_alu_semantics_spot_checks():
    def alu(op, a, b):
        return OPCODE_INFO[op].alu_fn(to_unsigned(a), to_unsigned(b))

    assert alu(Op.ADD, 2, 3) == 5
    assert alu(Op.SUB, 2, 3) == to_unsigned(-1)
    assert alu(Op.AND, 0b1100, 0b1010) == 0b1000
    assert alu(Op.OR, 0b1100, 0b1010) == 0b1110
    assert alu(Op.XOR, 0b1100, 0b1010) == 0b0110
    assert alu(Op.SLT, -5, 3) == 1
    assert alu(Op.SLTU, -5, 3) == 0  # -5 is huge unsigned
    assert alu(Op.MIN, -5, 3) == to_unsigned(-5)
    assert alu(Op.MAX, -5, 3) == 3
    assert alu(Op.SLLI, 1, 4) == 16
    assert alu(Op.SRAI, -16, 2) == to_unsigned(-4)
    assert alu(Op.LUI, 0, 0x12345 << 12) == 0x12345 << 12


def test_branch_semantics():
    def br(op, a, b):
        return OPCODE_INFO[op].branch_fn(to_unsigned(a), to_unsigned(b))

    assert br(Op.BEQ, 4, 4) and not br(Op.BEQ, 4, 5)
    assert br(Op.BNE, 4, 5) and not br(Op.BNE, 4, 4)
    assert br(Op.BLT, -1, 0) and not br(Op.BLT, 0, -1)
    assert br(Op.BGE, 0, -1) and br(Op.BGE, 3, 3)
    assert br(Op.BLTU, 0, -1)        # -1 unsigned is max
    assert br(Op.BGEU, -1, 0)


def test_instruction_operand_validation():
    with pytest.raises(ValueError):
        Instruction(Op.ADD, dest=1, srcs=(2,), pc=0)       # needs 2 srcs
    with pytest.raises(ValueError):
        Instruction(Op.ADD, srcs=(1, 2), pc=0)             # needs dest
    with pytest.raises(ValueError):
        Instruction(Op.SD, dest=1, srcs=(2, 3), pc=0)      # no dest allowed
    with pytest.raises(TypeError):
        Instruction("add", dest=1, srcs=(2, 3), pc=0)


def test_instruction_classification():
    beq = Instruction(Op.BEQ, srcs=(1, 2), imm=0x100, pc=0)
    assert beq.is_branch and beq.is_cond_branch and not beq.is_indirect
    jalr = Instruction(Op.JALR, dest=0, srcs=(1,), pc=4)
    assert jalr.is_branch and jalr.is_indirect and not jalr.is_cond_branch
    assert jalr.taken_target() is None
    load = Instruction(Op.LD, dest=3, srcs=(4,), imm=8, pc=8)
    assert load.is_load and not load.is_store
    store = Instruction(Op.SD, srcs=(3, 4), imm=8, pc=12)
    assert store.is_store and not store.writes_reg
    x0_write = Instruction(Op.ADDI, dest=0, srcs=(1,), imm=1, pc=16)
    assert not x0_write.writes_reg  # writes to x0 are discarded


def test_mem_sizes():
    assert OPCODE_INFO[Op.LD].mem_size == 8
    assert OPCODE_INFO[Op.LW].mem_size == 4
    assert OPCODE_INFO[Op.LBU].mem_size == 1
    assert OPCODE_INFO[Op.SB].mem_size == 1
