"""Stage-object pipeline: parity, icache seam, FTQ-sourced capture.

The refactor contract: splitting ``O3Core`` into stage objects changes
*nothing* observable. ``tests/data/stage_parity_pinned.json`` pins
``SimStats.as_dict()`` snapshots captured from the pre-refactor
monolith for a micro/GAP matrix in fused and decoupled modes; every
pinned key must match byte-for-byte, and the counters added by this
refactor (icache, FTQ capture) must stay zero under default configs.
"""

import json
import pathlib

import pytest

from repro.emu import Emulator
from repro.obs import run_lockstep
from repro.pipeline import O3Core, baseline_config, mssr_config
from repro.pipeline.config import CoreConfig, FrontendConfig, MSSRConfig
from repro.pipeline.latches import SquashArbiter
from repro.workloads import get_workload

_PINNED = json.loads(
    (pathlib.Path(__file__).parent / "data"
     / "stage_parity_pinned.json").read_text())

#: Counters introduced after the snapshots were pinned: must be zero
#: whenever their feature (icache model, FTQ capture, ported memory) is
#: off, which includes every pinned pre-refactor configuration.
_NEW_COUNTERS = ("icache_accesses", "icache_misses", "wpb_captures_ftq",
                 "mem_accesses", "mem_l1d_hits", "mem_l1d_misses",
                 "mem_l2_hits", "mem_l2_misses", "mem_dram_accesses",
                 "mem_mshr_merges", "mem_mshr_stalls", "mem_mshr_peak",
                 "mem_wrong_path_insts")


def _run_pinned(entry):
    _mod, prog = get_workload(entry["workload"]).build(
        scale=entry["scale"])
    cfg = mssr_config() if entry["kind"] == "mssr" else baseline_config()
    if entry["decoupled"]:
        cfg.frontend.decoupled = True
    core = O3Core(prog, cfg)
    core.run()
    return core


@pytest.mark.parametrize(
    "entry", _PINNED,
    ids=["%s-%s-%s" % (e["workload"], e["kind"],
                       "dec" if e["decoupled"] else "fused")
         for e in _PINNED])
def test_stats_byte_identical_to_pre_refactor(entry):
    core = _run_pinned(entry)
    # JSON round-trip normalises int histogram keys the same way the
    # pinned snapshot was normalised when it was written.
    got = json.loads(json.dumps(core.stats.as_dict()))
    want = entry["stats"]
    for key, value in want.items():
        assert got[key] == value, \
            "stat %r diverged from the pre-refactor pipeline" % key
    for key in _NEW_COUNTERS:
        assert got[key] == 0


def test_new_counters_absent_from_pinned_snapshot():
    # The fixtures really are pre-refactor: they cannot know the new
    # counters (guards against accidentally regenerating them).
    for entry in _PINNED:
        for key in _NEW_COUNTERS:
            assert key not in entry["stats"]


# ---------------------------------------------------------------------------
# Squash arbiter
# ---------------------------------------------------------------------------
def test_squash_arbiter_keeps_oldest_boundary():
    class _Dyn:
        def __init__(self, seq):
            self.seq = seq

    arb = SquashArbiter()
    assert arb.take() is None
    arb.request(50, _Dyn(51), "branch", 0x100)
    arb.request(80, _Dyn(81), "replay", 0x200)   # younger: ignored
    arb.request(20, _Dyn(21), "verify", 0x300)   # older: wins
    winner = arb.take()
    assert winner.boundary_seq == 20
    assert winner.kind == "verify"
    assert winner.redirect_pc == 0x300
    assert arb.take() is None                    # drained


# ---------------------------------------------------------------------------
# Icache seam
# ---------------------------------------------------------------------------
def _icache_config(kind="baseline", lines=4, latency=12):
    frontend = FrontendConfig(decoupled=True, icache_lines=lines,
                              icache_latency=latency)
    mssr = MSSRConfig() if kind == "mssr" else None
    return CoreConfig(frontend=frontend, mssr=mssr)


def test_icache_requires_decoupled_frontend():
    with pytest.raises(ValueError, match="decoupled"):
        FrontendConfig(decoupled=False, icache_lines=64)


def test_icache_lines_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        FrontendConfig(decoupled=True, icache_lines=48)


def test_icache_misses_then_hits():
    from repro.frontend.icache import InstructionCache
    ic = InstructionCache(8, miss_latency=10)
    assert ic.access(0x1000, 0x103C) == 10      # cold: two lines miss
    assert ic.access(0x1000, 0x103C) == 0       # resident now
    ic.flush()
    assert ic.access(0x1000, 0x101C) == 10


def test_squash_during_icache_stall_is_architecturally_clean():
    """A tiny icache makes nearly every block stall in the fetch
    pipeline, so branch squashes constantly land while the FTQ head is
    still waiting on a (possibly missed) icache fill — the flushed
    pending blocks must unwind cleanly."""
    _mod, prog = get_workload("nested-mispred").build(scale=0.1)
    emu = Emulator(prog).run()
    core = O3Core(prog, _icache_config(lines=2, latency=16))
    result = core.run()
    assert result.regs == emu.regs
    assert result.memory == emu.memory
    stats = result.stats
    assert stats.icache_accesses > 0
    assert stats.icache_misses > 0
    assert stats.fetch_stall_reasons.get("icache", 0) > 0


def test_icache_off_leaves_decoupled_stats_unchanged():
    _mod, prog = get_workload("nested-mispred").build(scale=0.1)

    def _stats(frontend):
        core = O3Core(prog, CoreConfig(frontend=frontend))
        core.run()
        return core.stats.as_dict()

    plain = _stats(FrontendConfig(decoupled=True))
    nocache = _stats(FrontendConfig(decoupled=True, icache_lines=0))
    assert plain == nocache
    assert plain["icache_accesses"] == 0


def test_icache_pressure_costs_cycles():
    _mod, prog = get_workload("nested-mispred").build(scale=0.1)
    free = O3Core(prog, CoreConfig(frontend=FrontendConfig(
        decoupled=True)))
    free.run()
    tiny = O3Core(prog, _icache_config(lines=2, latency=16))
    tiny.run()
    assert tiny.stats.cycles > free.stats.cycles


# ---------------------------------------------------------------------------
# FTQ-sourced MSSR capture vs decode-time capture
# ---------------------------------------------------------------------------
def _capture_config(ftq_capture):
    frontend = FrontendConfig(decoupled=True)
    return CoreConfig(frontend=frontend,
                      mssr=MSSRConfig(ftq_capture=ftq_capture))


def test_ftq_capture_requires_decoupled_frontend():
    with pytest.raises(ValueError, match="decoupled"):
        CoreConfig(mssr=MSSRConfig(ftq_capture=True))


def test_ftq_capture_coverage_superset_of_decode_capture():
    """Acceptance: on nested-mispred, FTQ-sourced capture reuses at
    least as much as decode-time capture (the delivered squashed blocks
    fill the WPB first, so its streams are a superset), and the run
    stays lockstep-green against the golden emulator."""
    _mod, prog = get_workload("nested-mispred").build(scale=0.1)
    emu = Emulator(prog).run()

    decode_core = O3Core(prog, _capture_config(ftq_capture=False))
    decode = decode_core.run()
    ftq_core = O3Core(prog, _capture_config(ftq_capture=True))
    ftq = ftq_core.run()

    assert decode.regs == emu.regs and ftq.regs == emu.regs
    assert decode.memory == emu.memory and ftq.memory == emu.memory

    assert decode.stats.wpb_captures_ftq == 0
    assert ftq.stats.wpb_captures_ftq > 0
    assert decode.stats.reuse_successes > 0
    assert ftq.stats.reuse_successes >= decode.stats.reuse_successes

    outcome = run_lockstep(prog, _capture_config(ftq_capture=True))
    assert outcome.ok and outcome.divergence is None


def test_ftq_capture_counter_is_view_over_events():
    from repro.obs import Observability
    from repro.obs.sinks import MetricsSink

    _mod, prog = get_workload("nested-mispred").build(scale=0.1)
    obs = Observability()
    sink = obs.attach(MetricsSink())
    core = O3Core(prog, _capture_config(ftq_capture=True), obs=obs)
    core.run()
    assert core.stats.wpb_captures_ftq > 0
    assert sink.verify(core.stats) == []


def test_icache_counters_are_views_over_events():
    from repro.obs import Observability
    from repro.obs.sinks import MetricsSink

    _mod, prog = get_workload("nested-mispred").build(scale=0.1)
    obs = Observability()
    sink = obs.attach(MetricsSink())
    core = O3Core(prog, _icache_config(lines=2, latency=16), obs=obs)
    core.run()
    assert core.stats.icache_misses > 0
    assert sink.verify(core.stats) == []
