"""Program container, data segment and core configuration validation."""

import pytest

from repro.isa import assemble_text, Program, Instruction, Op
from repro.isa.program import DataSegment
from repro.pipeline.config import CoreConfig, MSSRConfig, RIConfig, \
    baseline_config, mssr_config, dci_config, ri_config


def test_pc_mapping():
    prog = assemble_text("nop\nnop\nhalt")
    base = prog.code_base
    assert prog.has_pc(base) and prog.has_pc(base + 8)
    assert not prog.has_pc(base + 12)     # past the end
    assert not prog.has_pc(base + 2)      # misaligned
    assert not prog.has_pc(base - 4)
    assert prog.inst_at(base + 8).is_halt


def test_inst_at_invalid_raises():
    prog = assemble_text("halt")
    with pytest.raises(KeyError):
        prog.inst_at(0)


def test_pc_consistency_enforced():
    good = Instruction(Op.NOP, pc=0x1000)
    bad = Instruction(Op.NOP, pc=0x2000)
    with pytest.raises(ValueError):
        Program([good, bad])


def test_disassemble_contains_labels():
    prog = assemble_text("""
    start:
        nop
    end:
        halt
    """)
    text = prog.disassemble()
    assert "start:" in text and "end:" in text


def test_data_segment_alignment_and_symbols():
    data = DataSegment(base=0x1000)
    a = data.reserve("a", 3)     # rounds up to 8
    b = data.word("b", 5)
    assert a == 0x1000
    assert b == 0x1008
    assert data.addr_of("b") == b
    assert data.image() == {b: 5}
    with pytest.raises(ValueError):
        data.reserve("a", 8)     # duplicate


def test_config_rejects_two_schemes():
    with pytest.raises(ValueError):
        CoreConfig(mssr=MSSRConfig(), ri=RIConfig())


def test_config_rejects_tiny_prf():
    with pytest.raises(ValueError):
        CoreConfig(num_phys_regs=32)


def test_config_builders():
    assert baseline_config().mssr is None
    assert mssr_config(num_streams=3).mssr.num_streams == 3
    assert dci_config().mssr.num_streams == 1
    cfg = ri_config(num_sets=32, assoc=8)
    assert cfg.ri.num_sets == 32 and cfg.ri.assoc == 8


def test_mssr_config_defaults_match_paper():
    cfg = MSSRConfig()
    assert cfg.num_streams == 4
    assert cfg.wpb_entries == 16
    assert cfg.squash_log_entries == 64
    assert cfg.rgid_bits == 6
    assert cfg.reconvergence_timeout == 1024
    assert cfg.rgid_overflow_limit == 8
