"""Superblock trace-JIT correctness: block dispatch vs per-inst paths.

The generated per-block functions must be unobservable next to the
per-instruction closure path (and the pre-predecode slowpath): same
final registers, memory, pc, halted flag and — crucially — the same
``inst_count``, including when a block body raises mid-block or the
instruction budget lands inside a block.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.emu import Emulator
from repro.emu.emulator import EmulationError
from repro.isa import Assembler, Op
from repro.isa.instruction import INST_BYTES
from repro.isa.predecode import KIND_BRANCH, KIND_HALT
from repro.isa.superblock import (MAX_BLOCK_INSTS, build_superblocks,
                                  discover_leaders)
from tests.test_random_programs import _REGS, _assemble, _instruction

BUDGET = 100_000


def _state(result):
    return (result.regs, result.inst_count, result.halted, result.pc)


def _run_pair(prog, max_insts=BUDGET):
    """Run ``prog`` under closure and superblock dispatch; assert every
    piece of architectural state matches and return the closure run."""
    base = Emulator(prog)
    base_halted = base.run_until(max_insts)
    sb = Emulator(prog, superblock=True)
    assert sb._sb_by_pc is not None
    sb_halted = sb.run_until(max_insts)
    assert base_halted == sb_halted
    assert _state(base.result()) == _state(sb.result())
    assert base.memory == sb.memory
    return base.result()


# ---------------------------------------------------------------------------
# Property tests over random programs
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(_instruction, min_size=1, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)))
def test_superblock_matches_closure_random(descriptors, seeds):
    _run_pair(_assemble(descriptors, seeds))


@settings(max_examples=15, deadline=None)
@given(st.lists(_instruction, min_size=1, max_size=40),
       st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                min_size=len(_REGS), max_size=len(_REGS)),
       st.integers(min_value=1, max_value=60))
def test_superblock_budget_boundary_random(descriptors, seeds, budget):
    """A budget landing mid-block must fall back to per-inst stepping
    for the tail: exact inst_count, never overshoot."""
    prog = _assemble(descriptors, seeds)
    base = Emulator(prog)
    base.run_until(budget)
    sb = Emulator(prog, superblock=True)
    sb.run_until(budget)
    assert sb.inst_count <= budget
    assert _state(base.result()) == _state(sb.result())
    assert base.memory == sb.memory


# ---------------------------------------------------------------------------
# Every opcode through a generated block
# ---------------------------------------------------------------------------
def test_superblock_covers_every_alu_op():
    """One straight-line block holding every ALU/shift/compare op, both
    register and immediate forms, with sign-boundary operands."""
    asm = Assembler()
    asm.li("t0", -7)
    asm.li("t1", (1 << 63) - 1)
    asm.li("t2", 1 << 62)
    for op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.MUL, Op.MULH,
               Op.DIV, Op.REM, Op.SLT, Op.SLTU, Op.SLL, Op.SRL, Op.SRA,
               Op.MIN, Op.MAX):
        asm.rr(op, "t3", "t0", "t1")
        asm.rr(op, "t4", "t1", "t2")
        asm.add("t0", "t0", "t3")
    for op, imm in ((Op.ADDI, -5), (Op.ANDI, 0x3F), (Op.ORI, 0x11),
                    (Op.XORI, -1), (Op.SLTI, -3), (Op.SLTIU, 9),
                    (Op.SLLI, 3), (Op.SRLI, 7), (Op.SRAI, 63)):
        asm.ri(op, "t5", "t0", imm)
        asm.add("t0", "t0", "t5")
    asm.lui("t6", 0x12345)
    asm.add("t0", "t0", "t6")
    asm.halt()
    result = _run_pair(asm.finish())
    assert result.halted


def test_superblock_memory_and_observers():
    """Loads/stores of every size, x0-destination loads, and the
    last_mem_* / last_branch_taken observer fields."""
    asm = Assembler()
    buf = asm.word_array("buf", [0x1122334455667788, -1, 0, 77])
    asm.li("s0", buf)
    asm.li("t0", -2)
    asm.sd("t0", "s0", 8)
    asm.sw("t0", "s0", 16)
    asm.sb("t0", "s0", 24)
    asm.ld("t1", "s0", 0)
    asm.lw("t2", "s0", 16)    # sext32 path
    asm.lbu("t3", "s0", 24)
    asm.load(Op.LD, "zero", "s0", 0)   # x0 dest: access still happens
    asm.halt()
    prog = asm.finish()

    base = Emulator(prog)
    base.run(max_insts=BUDGET)
    sb = Emulator(prog, superblock=True)
    sb.run(max_insts=BUDGET)
    assert base.memory == sb.memory
    assert (base.last_mem_addr, base.last_mem_size) \
        == (sb.last_mem_addr, sb.last_mem_size)
    assert base.last_branch_taken == sb.last_branch_taken
    assert base.regs == sb.regs


def test_superblock_branch_and_jump_boundaries():
    """Taken/not-taken conditional exits, jal/jalr (incl. the
    jalr-into-link-register ordering) across block boundaries."""
    asm = Assembler()
    asm.li("t0", 5)
    asm.li("t1", 0)
    asm.label("loop")
    asm.addi("t1", "t1", 3)
    asm.addi("t0", "t0", -1)
    asm.bnez("t0", "loop")
    asm.call("leaf")          # jal ra, leaf
    asm.jal("zero", "done")   # jal with x0 link
    asm.label("leaf")
    asm.addi("t1", "t1", 100)
    asm.jalr("ra", "ra")      # jalr ra, ra: target read before link write
    asm.label("done")
    asm.halt()
    result = _run_pair(asm.finish())
    assert result.halted
    assert result.reg("t1") == 5 * 3 + 100


def test_superblock_fallback_jump_into_block_middle():
    """An indirect jump landing off the leader set must fall back to
    per-inst stepping and still match the closure path exactly."""
    asm = Assembler()
    asm.li("t0", 1)
    asm.j("entry")
    asm.label("body")
    asm.addi("t0", "t0", 10)      # leader (jump target)
    asm.addi("t0", "t0", 100)     # NOT a leader: mid-block pc
    asm.addi("t0", "t0", 1000)
    asm.halt()
    asm.label("entry")
    asm.li("t1", 0)               # patched below with the mid-block pc
    asm.jr("t1")
    prog = asm.finish()

    mid_pc = prog.label_pc("body") + INST_BYTES
    assert mid_pc not in prog.superblocks().by_pc

    # Rebuild with the real target now that we know it.
    asm = Assembler()
    asm.li("t0", 1)
    asm.j("entry")
    asm.label("body")
    asm.addi("t0", "t0", 10)
    asm.addi("t0", "t0", 100)
    asm.addi("t0", "t0", 1000)
    asm.halt()
    asm.label("entry")
    asm.li("t1", mid_pc)
    asm.jr("t1")
    prog = asm.finish()
    assert mid_pc not in prog.superblocks().by_pc

    result = _run_pair(prog)
    assert result.halted
    assert result.reg("t0") == 1 + 100 + 1000   # skipped the +10


def test_superblock_unknown_pc_matches_closure():
    """Jumping outside the program raises the same EmulationError with
    the same committed inst_count and pc in both modes."""
    asm = Assembler()
    asm.addi("t0", "zero", 1)
    asm.li("t1", 0x40)        # below code_base: no instruction there
    asm.jr("t1")
    prog = asm.finish()

    states = []
    for kwargs in ({}, {"superblock": True}):
        emu = Emulator(prog, **kwargs)
        with pytest.raises(EmulationError):
            emu.run_until(BUDGET)
        states.append((emu.inst_count, emu.pc, list(emu.regs)))
    assert states[0] == states[1]


# ---------------------------------------------------------------------------
# Mid-block raise exactness
# ---------------------------------------------------------------------------
def _misaligned_prog():
    asm = Assembler()
    buf = asm.word_array("buf", [11, 22, 33])
    asm.li("s0", buf)
    asm.li("t0", 3)
    asm.addi("t0", "t0", 4)       # retired before the fault
    asm.sd("t0", "s0", 8)         # good store, retired
    asm.ld("t1", "s0", 4)         # misaligned 8-byte load: raises
    asm.addi("t0", "t0", 1000)    # must NOT retire
    asm.halt()
    return asm.finish()


def test_superblock_midblock_raise_exact_inst_count():
    prog = _misaligned_prog()
    states = []
    for kwargs in ({}, {"superblock": True}):
        emu = Emulator(prog, **kwargs)
        with pytest.raises(ValueError, match="misaligned"):
            emu.run_until(BUDGET)
        states.append(_state(emu.result()))
        assert emu.memory.read(prog.data.addr_of("buf") + 8, 8) == 7
    base, sb = states
    assert base == sb
    # The raising load's own pc, with everything before it committed.
    faulting = _misaligned_prog()
    emu = Emulator(faulting, superblock=True)
    with pytest.raises(ValueError):
        emu.run_until(BUDGET)
    assert emu.program.predecode().by_pc[emu.pc].is_load
    assert emu._sb_progress == 0   # reset after commit


def test_superblock_resume_after_midblock_raise():
    """After a mid-block fault the emulator can keep stepping from the
    faulting pc, exactly like the closure path."""
    results = []
    for kwargs in ({}, {"superblock": True}):
        emu = Emulator(_misaligned_prog(), **kwargs)
        with pytest.raises(ValueError):
            emu.run_until(BUDGET)
        # Skip the faulting load by hand, then resume.
        emu.pc = emu.program.predecode().by_pc[emu.pc].next_pc
        assert emu.run_until(BUDGET)
        results.append(_state(emu.result()))
    assert results[0] == results[1]


# ---------------------------------------------------------------------------
# Table structure
# ---------------------------------------------------------------------------
def test_superblock_table_structure():
    asm = Assembler()
    asm.li("t0", 4)
    asm.label("loop")
    asm.addi("t1", "t1", 2)
    asm.addi("t0", "t0", -1)
    asm.bnez("t0", "loop")
    asm.halt()
    prog = asm.finish()
    table = prog.superblocks()
    assert prog.superblocks() is table    # cached on the program

    by_pc = prog.predecode().by_pc
    leaders = discover_leaders(prog)
    assert prog.entry in leaders
    assert prog.label_pc("loop") in leaders
    for block in table.blocks:
        assert block.pc == block.pcs[0]
        assert block.length == len(block.pcs)
        assert block.length <= MAX_BLOCK_INSTS
        # Straight-line: only the final record may be a branch/halt.
        for pc in block.pcs[:-1]:
            assert by_pc[pc].kind not in (KIND_BRANCH, KIND_HALT)
        assert "def _block" in block.source


def test_superblock_cap_chains_long_regions():
    asm = Assembler()
    for _ in range(MAX_BLOCK_INSTS * 3 + 5):
        asm.addi("t0", "t0", 1)
    asm.halt()
    prog = asm.finish()
    table = build_superblocks(prog)
    assert all(b.length <= MAX_BLOCK_INSTS for b in table.blocks)
    # Chained continuation leaders cover the whole region.
    entry = table.by_pc[prog.entry]
    covered = entry.length
    cursor = entry
    while covered < len(prog):
        cursor = table.by_pc[cursor.pcs[-1] + INST_BYTES]
        covered += cursor.length
    assert covered == len(prog)
    result = _run_pair(prog)
    assert result.reg("t0") == MAX_BLOCK_INSTS * 3 + 5


# ---------------------------------------------------------------------------
# Gating: env key, slowpath precedence, fingerprint, observation
# ---------------------------------------------------------------------------
def _tiny_prog():
    asm = Assembler()
    asm.li("t0", 2)
    asm.label("loop")
    asm.addi("t0", "t0", -1)
    asm.bnez("t0", "loop")
    asm.halt()
    return asm.finish()


def test_superblock_env_gating(monkeypatch):
    prog = _tiny_prog()
    monkeypatch.setenv("REPRO_SUPERBLOCK", "1")
    assert Emulator(prog)._sb_by_pc is not None
    monkeypatch.setenv("REPRO_SLOWPATH", "1")
    assert Emulator(prog)._sb_by_pc is None      # slowpath wins
    monkeypatch.delenv("REPRO_SLOWPATH")
    monkeypatch.setenv("REPRO_SUPERBLOCK", "0")
    assert Emulator(prog)._sb_by_pc is None
    assert Emulator(prog, superblock=True)._sb_by_pc is not None


def test_superblock_fingerprint_suffix(monkeypatch):
    from repro.harness.cache import code_fingerprint
    plain = code_fingerprint()
    assert not plain.endswith(("-sb", "-slow"))
    monkeypatch.setenv("REPRO_SUPERBLOCK", "1")
    assert code_fingerprint() == plain + "-sb"
    monkeypatch.setenv("REPRO_SLOWPATH", "1")
    assert code_fingerprint() == plain + "-slow"


def test_superblock_matches_slowpath(monkeypatch):
    prog = _tiny_prog()
    sb = Emulator(prog, superblock=True)
    sb.run(max_insts=BUDGET)
    monkeypatch.setenv("REPRO_SLOWPATH", "1")
    slow = Emulator(prog)
    assert slow._slow
    slow.run(max_insts=BUDGET)
    assert _state(slow.result()) == _state(sb.result())
    assert slow.memory == sb.memory


def test_superblock_on_inst_falls_back_per_inst():
    """Observation (run_trace) forces per-inst stepping even with the
    superblock table attached — traces must be per-instruction."""
    prog = _tiny_prog()
    base_result, base_trace = Emulator(prog).run_trace(BUDGET)
    sb_result, sb_trace = Emulator(prog, superblock=True) \
        .run_trace(BUDGET)
    assert base_trace == sb_trace
    assert _state(base_result) == _state(sb_result)
