"""MSSR end-to-end: correctness under stress and policy behaviour."""

import pytest

from repro.compiler import Module, array_ref, hash64
from repro.pipeline import O3Core, mssr_config, MSSRConfig, CoreConfig
from repro.pipeline.core import SimResult
from repro.emu import Emulator
from repro.utils.bits import to_signed

from tests.conftest import run_both


def branchy_kernel(arr, n):
    acc = 0
    for i in range(n):
        v = hash64(i + (acc & 1))
        if v & 1:
            if v & 4:
                acc += v & 15
            acc -= v & 7
        t = (i * 7 + (v & 31)) & 1023
        t = (t >> 2) * 13 + 5
        arr[i & 31] = t
        acc += t
    return acc & 0xFFFFF


def memory_kernel(arr, n):
    total = 0
    for i in range(n):
        v = hash64(i)
        idx = v & 31
        if v & 1:
            arr[idx] = arr[idx] + 1
        total += arr[(v >> 8) & 31]
    return total


def _build(kernel, n=160):
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", 32)
    prog = mod.build(kernel.__name__, [array_ref("arr"), n])
    return mod, prog


@pytest.mark.parametrize("streams", [1, 2, 4, 8])
def test_correct_for_any_stream_count(streams):
    _mod, prog = _build(branchy_kernel)
    run_both(prog, mssr_config(num_streams=streams))


@pytest.mark.parametrize("wpb,log", [(4, 16), (16, 64), (64, 256)])
def test_correct_for_any_capacity(wpb, log):
    _mod, prog = _build(branchy_kernel)
    run_both(prog, mssr_config(num_streams=2, wpb_entries=wpb,
                               squash_log_entries=log))


def test_reuse_actually_happens():
    _mod, prog = _build(branchy_kernel)
    core = O3Core(prog, mssr_config(num_streams=4))
    result = core.run()
    assert result.stats.reconvergences > 10
    assert result.stats.reuse_successes > 50
    assert result.stats.reuse_tests >= result.stats.reuse_successes


def test_load_reuse_with_verification():
    # bfs is load-dominated with hard frontier branches: reused loads
    # (with NoSQ-style verification) are guaranteed to appear.
    from repro.workloads import get_workload
    _mod, prog = get_workload("bfs").build(0.15)
    core = O3Core(prog, mssr_config(num_streams=4))
    result = core.run()
    emu = Emulator(prog).run()
    assert result.regs == emu.regs
    assert result.memory == emu.memory
    assert result.stats.reused_loads > 0


def test_bloom_memory_scheme_is_correct():
    _mod, prog = _build(memory_kernel)
    cfg = CoreConfig(mssr=MSSRConfig(num_streams=4,
                                     memory_hazard_scheme="bloom"))
    run_both(prog, cfg)


def test_bloom_scheme_never_issues_verify_loads():
    _mod, prog = _build(memory_kernel)
    cfg = CoreConfig(mssr=MSSRConfig(num_streams=4,
                                     memory_hazard_scheme="bloom"))
    core = O3Core(prog, cfg)
    result = core.run()
    assert result.stats.verify_flushes == 0


def test_rgid_overflow_reset_is_correct():
    # Tiny RGID space: overflow + global reset paths are exercised hard.
    _mod, prog = _build(branchy_kernel)
    cfg = CoreConfig(mssr=MSSRConfig(num_streams=4, rgid_bits=3))
    core = O3Core(prog, cfg)
    emu, result = run_both(prog, cfg)
    assert result.stats.rgid_resets > 0


def test_register_pressure_release():
    # Few physical registers: the squash log must yield them back
    # (condition 5) without deadlock or corruption.
    _mod, prog = _build(branchy_kernel)
    cfg = CoreConfig(num_phys_regs=300,
                     mssr=MSSRConfig(num_streams=8,
                                     squash_log_entries=256,
                                     wpb_entries=64))
    # shrink the PRF close to the ROB size so pressure appears
    cfg.num_phys_regs = 280
    run_both(prog, cfg)


def test_single_page_wpb_restriction_is_correct():
    _mod, prog = _build(branchy_kernel)
    cfg = CoreConfig(mssr=MSSRConfig(num_streams=4, single_page_wpb=True))
    run_both(prog, cfg)


def test_timeout_invalidates_streams():
    # A very short reconvergence timeout forces streams whose
    # reconvergence point is not reached quickly to be invalidated; the
    # run must remain architecturally correct and hold no registers.
    _mod, prog = _build(branchy_kernel)
    cfg = CoreConfig(mssr=MSSRConfig(num_streams=4,
                                     reconvergence_timeout=24))
    core = O3Core(prog, cfg)
    emu = Emulator(prog).run()
    result = core.run()
    assert result.regs == emu.regs
    assert result.stats.wpb_timeouts > 0
    # Streams still valid at halt may legitimately hold registers;
    # releasing them must return every last one.
    core.scheme.invalidate_all()
    assert core.regfile.count_states()["reserved"] == 0
    assert core.regfile.check_conservation()


def test_no_reserved_registers_leak_at_halt():
    _mod, prog = _build(branchy_kernel)
    core = O3Core(prog, mssr_config(num_streams=4))
    core.run()
    assert core.regfile.check_conservation()


def test_dci_is_single_stream():
    from repro.pipeline import dci_config
    cfg = dci_config()
    assert cfg.mssr.num_streams == 1
