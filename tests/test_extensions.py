"""Paper Section 3.9 extensions: multiple-block fetching."""

from repro.compiler import Module, array_ref, hash64
from repro.pipeline import O3Core, CoreConfig, MSSRConfig, mssr_config
from repro.emu import Emulator

from tests.conftest import run_both


def wide_kernel(arr, n):
    acc = 0
    for i in range(n):
        v = hash64(i)
        if v & 1:
            acc += v & 15
        t = (i * 5 + (v & 63)) & 2047
        t = (t >> 1) * 9 + 1
        arr[i & 31] = t
        acc += t
    return acc & 0xFFFFF


def _prog(n=120):
    mod = Module()
    mod.add_function(wide_kernel)
    mod.array("arr", 32)
    return mod.build("wide_kernel", [array_ref("arr"), n])


def test_two_block_fetch_is_correct():
    run_both(_prog(), CoreConfig(fetch_blocks_per_cycle=2))


def test_two_block_fetch_with_mssr_is_correct():
    cfg = CoreConfig(fetch_blocks_per_cycle=2, mssr=MSSRConfig())
    run_both(_prog(), cfg)


def test_two_block_fetch_helps_fetch_bound_code():
    prog = _prog()
    one = O3Core(prog, CoreConfig(fetch_blocks_per_cycle=1)).run()
    two = O3Core(prog, CoreConfig(fetch_blocks_per_cycle=2)).run()
    # Doubling fetch bandwidth can only reduce (or match) cycles here.
    assert two.stats.cycles <= one.stats.cycles
    assert two.stats.ipc >= one.stats.ipc


def test_reconvergence_still_detected_with_two_blocks():
    prog = _prog()
    cfg = CoreConfig(fetch_blocks_per_cycle=2, mssr=MSSRConfig())
    result = O3Core(prog, cfg).run()
    single = O3Core(prog, mssr_config()).run()
    assert result.stats.reconvergences > 0
    # Wider fetch feeds the WPB scan the same stream content.
    assert result.stats.reuse_successes > 0
    emu = Emulator(prog).run()
    assert result.regs == emu.regs
    assert single.regs == emu.regs
